"""Tests for the memory model, QUIC model, features, and datasets."""

import random

import pytest

from repro.coap.codes import Code
from repro.datasets import (
    DATASET_PROFILES,
    generate_names,
    generate_queries,
    name_length_stats,
    record_type_shares,
)
from repro.datasets.stats import length_histogram
from repro.dns import RecordType
from repro.doc.features import TABLE1, TABLE5, method_features
from repro.memmodel import build_size, fig5_builds, fig8_builds
from repro.quicmodel import (
    HEADER_RANGE_0RTT,
    HEADER_RANGE_1RTT,
    penalty_series,
    quic_packet_size,
    quic_penalty,
)


class TestMemoryModel:
    def test_fig5_all_transports_present(self):
        builds = fig5_builds()
        assert set(builds) == {"UDP", "DTLSv1.2", "CoAP", "CoAPSv1.2", "OSCORE"}

    def test_dtls_rom_overhead_about_24k(self):
        """Section 5.2: DTLS adds about 24 kB of ROM over plain CoAP."""
        builds = fig5_builds()
        delta = builds["CoAPSv1.2"].rom - builds["CoAP"].rom
        assert 23_000 <= delta <= 27_000

    def test_oscore_rom_overhead_about_11k(self):
        builds = fig5_builds()
        delta = builds["OSCORE"].rom - builds["CoAP"].rom
        assert 10_000 <= delta <= 12_000

    def test_dtls_more_than_double_oscore(self):
        """Section 5.2: 'the DTLS part expects more than double the
        memory space of the OSCORE part'."""
        builds = fig5_builds()
        dtls_part = builds["CoAPSv1.2"].rom_by_category["DTLS"]
        oscore_part = builds["OSCORE"].rom_by_category["OSCORE"]
        assert dtls_part > 2 * oscore_part

    def test_oscore_saves_over_10k_vs_dtls(self):
        """The abstract's headline: >10 kB saved with OSCORE when a
        CoAP application is already present."""
        builds = fig5_builds()
        assert builds["CoAPSv1.2"].rom - builds["OSCORE"].rom > 10_000

    def test_dtls_ram_overhead_about_1_5k(self):
        builds = fig5_builds()
        delta = builds["CoAPSv1.2"].ram - builds["CoAP"].ram
        assert 1_400 <= delta <= 2_200

    def test_get_overhead(self):
        """GET adds ≈2 kB ROM and 173 B RAM (Section 5.2)."""
        plain = fig5_builds(with_get=False)["CoAP"]
        with_get = fig5_builds(with_get=True)["CoAP"]
        assert with_get.rom - plain.rom == 2_000
        assert with_get.ram - plain.ram == 173

    def test_doc_dns_part_largest(self):
        """The DoC DNS implementation (~4 kB) exceeds the other DNS
        transport implementations."""
        from repro.memmodel.modules import MODULES

        assert MODULES["dns_doc"].rom > MODULES["dns_udp"].rom
        assert MODULES["dns_doc"].rom > MODULES["dns_dtls"].rom

    def test_udp_is_smallest_build(self):
        builds = fig5_builds()
        assert min(builds.values(), key=lambda b: b.rom).name == "UDP"

    def test_fig8_quic_nearly_double(self):
        """Section 5.5: QUIC+TLS uses nearly double the ROM of the
        common IoT transports (≈2× DNS over CoAP and over DTLS)."""
        builds = fig8_builds()
        quic = builds["QUIC"].rom
        assert quic > 2.0 * builds["DTLSv1.2"].rom
        assert quic > 2.0 * builds["OSCORE"].rom
        assert quic > max(b.rom for n, b in builds.items() if n != "QUIC")

    def test_fig8_quic_still_larger_after_optimisation(self):
        """Even minus the ~20 kB of proposed savings, QUIC exceeds
        DNS over CoAP."""
        from repro.memmodel.modules import QUANT_OPTIMISATION_SAVINGS

        builds = fig8_builds()
        assert builds["QUIC"].rom - QUANT_OPTIMISATION_SAVINGS > builds["CoAP"].rom

    def test_build_size_categories_sum(self):
        build = build_size("x", ("gcoap", "sock_udp"))
        assert build.rom == sum(build.rom_by_category.values())
        assert build.ram == sum(build.ram_by_category.values())


class TestQuicModel:
    def test_packet_size_structure(self):
        assert quic_packet_size(40, 42) == 40 + 2 + 42 + 16

    def test_penalty_increases_with_header(self):
        low = quic_penalty(HEADER_RANGE_1RTT[0], "CoAPSv1.2", "query")
        high = quic_penalty(HEADER_RANGE_1RTT[1], "CoAPSv1.2", "query")
        assert high > low

    def test_best_case_comparable_worst_case_loses(self):
        """Figure 9b: best-case 1-RTT DoQ is comparable (≈100%), but in
        the majority of cases the established transports win (>100%)."""
        best = quic_penalty(HEADER_RANGE_1RTT[0], "CoAPSv1.2", "query")
        worst = quic_penalty(HEADER_RANGE_1RTT[1], "DTLSv1.2", "response_aaaa")
        assert best <= 110
        assert worst > 100

    def test_0rtt_worse_than_1rtt(self):
        for baseline in ("DTLSv1.2", "CoAPSv1.2", "OSCORE"):
            zero = quic_penalty(HEADER_RANGE_0RTT[1], baseline, "response_aaaa")
            one = quic_penalty(HEADER_RANGE_1RTT[1], baseline, "response_aaaa")
            assert zero >= one

    def test_worst_case_aaaa_three_fragments(self):
        """Section 5.5: the max-header 0-RTT AAAA response fragments
        into 3 frames."""
        from repro.quicmodel.model import aaaa_fragments_worst_case

        assert aaaa_fragments_worst_case() == 3

    def test_series_spans_range(self):
        series = penalty_series("0rtt", "OSCORE", "query", step=8)
        headers = [h for h, _ in series]
        assert headers[0] == HEADER_RANGE_0RTT[0]
        assert headers[-1] <= HEADER_RANGE_0RTT[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            quic_penalty(40, "TCP", "query")
        with pytest.raises(ValueError):
            quic_penalty(40, "OSCORE", "bogus")


class TestFeatures:
    def test_table1_oscore_unique_caching(self):
        """Only OSCORE offers content-secure en-route caching."""
        caching = [t.name for t in TABLE1 if t.secure_enroute_caching]
        assert caching == ["OSCORE"]

    def test_table1_constrained_suitability(self):
        suitable = {t.name for t in TABLE1 if t.constrained_iot_suitable}
        assert suitable == {"UDP", "DTLS", "CoAP", "CoAPS", "OSCORE"}

    def test_table1_encryption(self):
        encrypted = {t.name for t in TABLE1 if t.message_encryption}
        assert "UDP" not in encrypted and "CoAP" not in encrypted
        assert {"DTLS", "TLS", "QUIC", "HTTPS", "CoAPS", "OSCORE"} <= encrypted

    def test_table5_fetch_has_everything(self):
        fetch = TABLE5["FETCH"]
        assert fetch.cacheable and fetch.body_carried and fetch.blockwise_query

    def test_table5_get_cacheable_no_body(self):
        get = TABLE5["GET"]
        assert get.cacheable and not get.body_carried and not get.blockwise_query

    def test_table5_post_body_not_cacheable(self):
        post = TABLE5["POST"]
        assert not post.cacheable and post.body_carried and post.blockwise_query

    def test_table5_derived_from_stack(self):
        """The registry is derived from the CoAP implementation, not
        hand-written: cross-check against the cache module."""
        from repro.coap import CoapMessage, cache_key_for

        assert cache_key_for(CoapMessage.request(Code.POST, "/dns")) is None
        assert cache_key_for(CoapMessage.request(Code.FETCH, "/dns")) is not None
        assert method_features(Code.FETCH).cacheable


class TestDatasets:
    def test_table3_iot_statistics(self):
        """Generated IoT names match Table 3 within tolerance:
        median ≈ 23-26, mean ≈ 24-29, max ≈ 82-83."""
        rng = random.Random(1)
        for key in ("yourthings", "iotfinder", "moniotr"):
            stats = name_length_stats(
                generate_names(DATASET_PROFILES[key], rng)
            )
            assert 20 <= stats["q2"] <= 28, key
            assert 22 <= stats["mean"] <= 30, key
            assert stats["max"] <= 83
            assert 8 <= stats["std"] <= 16

    def test_name_count_matches_profile(self):
        rng = random.Random(2)
        names = generate_names(DATASET_PROFILES["yourthings"], rng)
        assert len(names) == 1293
        assert len(set(names)) == 1293

    def test_exact_lengths(self):
        rng = random.Random(3)
        names = generate_names(DATASET_PROFILES["ixp"], rng, count=200)
        for name in names:
            assert DATASET_PROFILES["ixp"].min_length <= len(name) <= 68

    def test_names_are_valid_dns_names(self):
        from repro.dns import split_name

        rng = random.Random(4)
        for name in generate_names(DATASET_PROFILES["yourthings"], rng, count=300):
            labels = split_name(name)
            assert all(len(label) <= 63 for label in labels)

    def test_table4_record_shares(self):
        """A/AAAA dominate; PTR visible with mDNS (Table 4)."""
        rng = random.Random(5)
        profile = DATASET_PROFILES["yourthings"]
        queries = generate_queries(profile, rng, 20000)
        shares = record_type_shares(queries)
        assert 0.50 <= shares[int(RecordType.A)] <= 0.58
        assert 0.13 <= shares[int(RecordType.AAAA)] <= 0.20
        assert 0.16 <= shares[int(RecordType.PTR)] <= 0.23

    def test_ixp_includes_https_records(self):
        rng = random.Random(6)
        queries = generate_queries(DATASET_PROFILES["ixp"], rng, 20000)
        shares = record_type_shares(queries)
        assert 0.06 <= shares[int(RecordType.HTTPS)] <= 0.12

    def test_mdns_flagging(self):
        rng = random.Random(7)
        queries = generate_queries(DATASET_PROFILES["moniotr"], rng, 5000)
        mdns = [q for q in queries if q.is_mdns]
        assert mdns
        assert all(
            q.rtype in (int(RecordType.PTR), int(RecordType.SRV), int(RecordType.ANY))
            for q in mdns
        )

    def test_histogram_normalised(self):
        rng = random.Random(8)
        names = generate_names(DATASET_PROFILES["yourthings"], rng, count=500)
        histogram = length_histogram(names)
        assert sum(histogram) == pytest.approx(1.0)

    def test_histogram_peak_in_body_range(self):
        """Figure 1a: the density peaks in the 15-35 char region."""
        rng = random.Random(9)
        names = generate_names(DATASET_PROFILES["yourthings"], rng)
        histogram = length_histogram(names)
        peak = histogram.index(max(histogram))
        assert 15 <= peak <= 35
