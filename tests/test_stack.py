"""Node stack and topology tests: routing, sockets, forwarding."""

import pytest

from repro.net import UdpDatagram
from repro.sim import Simulator
from repro.stack import Network, build_figure2_topology
from repro.stack.node import StackError


class TestNetworkBasics:
    def test_duplicate_node_rejected(self):
        network = Network(Simulator())
        network.add_node("a")
        with pytest.raises(ValueError):
            network.add_node("a")

    def test_unique_addresses_and_macs(self):
        network = Network(Simulator())
        a = network.add_node("a")
        b = network.add_node("b")
        assert a.address != b.address
        assert a.mac != b.mac

    def test_port_binding(self):
        network = Network(Simulator())
        node = network.add_node("a")
        node.bind(5683)
        with pytest.raises(StackError):
            node.bind(5683)

    def test_ephemeral_ports_distinct(self):
        network = Network(Simulator())
        node = network.add_node("a")
        assert node.bind().port != node.bind().port

    def test_ephemeral_ports_stay_in_dynamic_range(self):
        from repro.stack.node import EPHEMERAL_PORT_RANGE

        network = Network(Simulator())
        node = network.add_node("a")
        low, high = EPHEMERAL_PORT_RANGE
        for _ in range(100):
            assert low <= node.bind().port <= high

    def test_ephemeral_allocation_wraps_at_top(self):
        from repro.stack.node import EPHEMERAL_PORT_RANGE

        network = Network(Simulator())
        node = network.add_node("a")
        node._ephemeral_port = EPHEMERAL_PORT_RANGE[1]
        top = node.bind()
        assert top.port == EPHEMERAL_PORT_RANGE[1]
        # The next allocation wraps to the bottom instead of 65536.
        assert node.bind().port == EPHEMERAL_PORT_RANGE[0]

    def test_ephemeral_allocation_skips_bound_ports_after_wrap(self):
        from repro.stack.node import EPHEMERAL_PORT_RANGE

        network = Network(Simulator())
        node = network.add_node("a")
        low, high = EPHEMERAL_PORT_RANGE
        node.bind(low)
        node._ephemeral_port = high
        assert node.bind().port == high
        assert node.bind().port == low + 1  # low itself is taken

    def test_ephemeral_exhaustion_raises(self):
        from repro.stack import node as node_module

        network = Network(Simulator())
        node = network.add_node("a")
        low = node_module.EPHEMERAL_PORT_RANGE[0]
        # Shrink the range so exhaustion is cheap to reach.
        original = node_module.EPHEMERAL_PORT_RANGE
        node_module.EPHEMERAL_PORT_RANGE = (low, low + 3)
        try:
            for _ in range(4):
                node.bind()
            with pytest.raises(StackError, match="exhausted"):
                node.bind()
        finally:
            node_module.EPHEMERAL_PORT_RANGE = original

    def test_no_route_raises(self):
        network = Network(Simulator())
        a = network.add_node("a")
        network.add_node("b")
        socket = a.bind()
        with pytest.raises(StackError):
            socket.sendto(b"x", network.nodes["b"].address, 99)


class TestDelivery:
    def _two_nodes(self, loss=0.0):
        sim = Simulator(seed=1)
        network = Network(sim)
        a, b = network.add_node("a"), network.add_node("b")
        network.connect_radio("a", "b", loss=loss)
        return sim, network, a, b

    def test_neighbour_delivery(self):
        sim, network, a, b = self._two_nodes()
        inbox = []
        server = b.bind(7000)
        server.on_datagram = lambda src, sport, data, md: inbox.append(data)
        a.bind().sendto(b"hello", b.address, 7000)
        sim.run()
        assert inbox == [b"hello"]

    def test_source_address_correct(self):
        sim, network, a, b = self._two_nodes()
        sources = []
        server = b.bind(7000)
        server.on_datagram = lambda src, sport, data, md: sources.append(src)
        a.bind(6000).sendto(b"x", b.address, 7000)
        sim.run()
        assert sources == [a.address]

    def test_unbound_port_dropped(self):
        sim, network, a, b = self._two_nodes()
        a.bind().sendto(b"x", b.address, 9999)
        sim.run()
        assert b.packets_dropped == 1

    def test_fragmented_delivery(self):
        sim, network, a, b = self._two_nodes()
        inbox = []
        server = b.bind(7000)
        server.on_datagram = lambda src, sport, data, md: inbox.append(data)
        payload = bytes(range(256)) * 2
        a.bind().sendto(payload, b.address, 7000)
        sim.run()
        assert inbox == [payload]


class TestMulticastLoopback:
    def test_wired_only_member_gets_loopback_copy(self):
        """A radio-less node that joined the group receives its own
        multicast sends instead of raising StackError."""
        network = Network(Simulator())
        node = network.add_node("wired", wireless=False)
        node.join_group("ff02::fb")
        inbox = []
        server = node.bind(5353)
        server.on_datagram = lambda src, sport, data, md: inbox.append(data)
        node.bind(6000).sendto(b"announce", "ff02::fb", 5353)
        assert inbox == [b"announce"]

    def test_wired_only_non_member_still_raises(self):
        network = Network(Simulator())
        node = network.add_node("wired", wireless=False)
        with pytest.raises(StackError, match="no radio"):
            node.bind(6000).sendto(b"announce", "ff02::fb", 5353)

    def test_wireless_member_still_broadcasts_and_loops_back(self):
        sim = Simulator()
        network = Network(sim)
        a, b = network.add_node("a"), network.add_node("b")
        network.connect_radio("a", "b")
        for node in (a, b):
            node.join_group("ff02::fb")
        inboxes = {"a": [], "b": []}
        for name, node in (("a", a), ("b", b)):
            socket = node.bind(5353)
            socket.on_datagram = (
                lambda src, sport, data, md, name=name:
                inboxes[name].append(data)
            )
        a.bind(6000).sendto(b"hello", "ff02::fb", 5353)
        sim.run()
        assert inboxes["a"] == [b"hello"]
        assert inboxes["b"] == [b"hello"]


class TestLinearTopology:
    def test_one_hop_resolution_path(self):
        from repro.stack import build_linear_topology

        sim = Simulator()
        topo = build_linear_topology(sim, hops=1, clients=2)
        assert topo.relays == []
        assert topo.forwarder is topo.border_router
        inbox = []
        server = topo.resolver_host.bind(7000)
        server.on_datagram = lambda src, sport, data, md: inbox.append(data)
        topo.clients[0].bind().sendto(b"q", topo.resolver_host.address, 7000)
        sim.run()
        assert inbox == [b"q"]

    def test_three_hop_chain_forwards_both_ways(self):
        from repro.stack import build_linear_topology

        sim = Simulator()
        topo = build_linear_topology(sim, hops=3, clients=2)
        assert len(topo.relays) == 2
        assert topo.hops == 3
        echoes = []
        server = topo.resolver_host.bind(7000)

        def echo(src, sport, data, md):
            server.sendto(data + b"!", src, sport)

        server.on_datagram = echo
        client_socket = topo.clients[0].bind(6000)
        client_socket.on_datagram = (
            lambda src, sport, data, md: echoes.append(data)
        )
        client_socket.sendto(b"ping", topo.resolver_host.address, 7000)
        sim.run()
        assert echoes == [b"ping!"]
        # Every hop distance saw traffic.
        for hop in (1, 2, 3):
            assert topo.frames_at_hop(hop) > 0, hop

    def test_wireless_tail_hosts_resolver_on_br(self):
        from repro.stack import build_linear_topology

        sim = Simulator()
        topo = build_linear_topology(sim, hops=2, wired_tail=False)
        assert topo.resolver_host is topo.border_router

    def test_invalid_shapes_rejected(self):
        from repro.stack import build_linear_topology

        with pytest.raises(ValueError):
            build_linear_topology(Simulator(), hops=0)
        with pytest.raises(ValueError):
            build_linear_topology(Simulator(), clients=0)


class TestFigure2Topology:
    def test_multi_hop_forwarding(self):
        sim = Simulator(seed=2)
        topo = build_figure2_topology(sim)
        inbox = []
        server = topo.resolver_host.bind(53)
        server.on_datagram = lambda src, sport, data, md: inbox.append((src, data))
        topo.clients[0].bind().sendto(b"q", topo.resolver_host.address, 53)
        sim.run()
        assert inbox == [(topo.clients[0].address, b"q")]
        assert topo.forwarder.packets_forwarded >= 1
        assert topo.border_router.packets_forwarded >= 1

    def test_reverse_path(self):
        sim = Simulator(seed=3)
        topo = build_figure2_topology(sim)
        inbox = []
        client_sock = topo.clients[1].bind(6000)
        client_sock.on_datagram = lambda src, sport, data, md: inbox.append(data)
        host_sock = topo.resolver_host.bind(53)
        host_sock.sendto(b"resp", topo.clients[1].address, 6000)
        sim.run()
        assert inbox == [b"resp"]

    def test_hop_limit_decrements(self):
        sim = Simulator(seed=4)
        topo = build_figure2_topology(sim)
        # Client -> host passes forwarder + BR: the sniffer sees the
        # frames; we verify the stack forwards rather than re-originates.
        server = topo.resolver_host.bind(53)
        seen = []
        server.on_datagram = lambda src, sport, data, md: seen.append(src)
        topo.clients[0].bind().sendto(b"x", topo.resolver_host.address, 53)
        sim.run()
        assert seen == [topo.clients[0].address]

    def test_sniffer_sees_both_wireless_hops(self):
        sim = Simulator(seed=5)
        topo = build_figure2_topology(sim)
        topo.resolver_host.bind(53).on_datagram = lambda *a: None
        topo.clients[0].bind().sendto(b"x", topo.resolver_host.address, 53)
        sim.run()
        assert topo.sniffer.frame_count("c1", "forwarder") == 1
        assert topo.sniffer.frame_count("forwarder", "br") == 1

    def test_client_count_configurable(self):
        sim = Simulator()
        topo = build_figure2_topology(sim, clients=3)
        assert [c.name for c in topo.clients] == ["c1", "c2", "c3"]

    def test_wired_link_invisible_to_sniffer(self):
        sim = Simulator(seed=6)
        topo = build_figure2_topology(sim)
        topo.resolver_host.bind(53).on_datagram = lambda *a: None
        topo.clients[0].bind().sendto(b"x", topo.resolver_host.address, 53)
        sim.run()
        for record in topo.sniffer.records:
            assert "host" not in (record.src, record.dst)

    def test_metadata_flows_with_frames(self):
        sim = Simulator(seed=7)
        topo = build_figure2_topology(sim)
        topo.resolver_host.bind(53).on_datagram = lambda *a: None
        topo.clients[0].bind().sendto(
            b"x", topo.resolver_host.address, 53, {"kind": "query"}
        )
        sim.run()
        assert all(r.kind == "query" for r in topo.sniffer.records)
