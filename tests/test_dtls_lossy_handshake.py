"""In-network DTLS handshakes under loss and reordering.

Regression coverage for two bugs the lossy regime exposed:

* a reordered ServerHelloDone polluting the Finished transcript even
  though it was rejected (handshake then never completes);
* duplicated flights (from handshake retransmissions) re-driving the
  server state machine and desynchronising epochs.
"""

import pytest

from repro.dns import RecordType, RecursiveResolver, Zone
from repro.sim import Simulator
from repro.stack import build_figure2_topology
from repro.transports import DnsOverDtlsClient, DnsOverDtlsServer


def _run_once(seed, loss, l2_retries, resolve_retries=5, until=900.0):
    sim = Simulator(seed=seed)
    topo = build_figure2_topology(sim, loss=loss, l2_retries=l2_retries)
    zone = Zone()
    zone.add_address("n.example.org", "2001:db8::1", ttl=60)
    server = DnsOverDtlsServer(
        sim, topo.resolver_host.bind(853), RecursiveResolver(zone)
    )
    client = DnsOverDtlsClient(
        sim, topo.clients[0].bind(6001), (topo.resolver_host.address, 853)
    )
    results = []
    attempts = {"n": 0}

    def on_done(result, error):
        if error is not None and attempts["n"] < resolve_retries:
            attempts["n"] += 1
            client.resolve("n.example.org", RecordType.AAAA, on_done)
        else:
            results.append((result, error))

    client.resolve("n.example.org", RecordType.AAAA, on_done)
    sim.run(until=until)
    return results, client


class TestLossyHandshake:
    def test_moderate_loss_always_completes(self):
        """Per-frame loss 25% with one MAC retry: the RFC 6347 flight
        retransmission must carry every run to completion."""
        for seed in range(10):
            results, client = _run_once(seed, loss=0.25, l2_retries=1)
            result, error = results[0]
            assert error is None, (seed, error)
            assert result.addresses == ["2001:db8::1"]

    def test_reordered_server_flight_recovers(self):
        """Seed 1 at 35% loss reorders SH/SHD via a MAC retry — the
        original transcript-pollution bug made this seed fail forever."""
        results, client = _run_once(1, loss=0.35, l2_retries=3)
        result, error = results[0]
        assert error is None
        assert client.adapter.session.established

    def test_handshake_retransmissions_counted(self):
        results, client = _run_once(1, loss=0.35, l2_retries=3)
        assert client.adapter.handshake_retransmissions >= 1

    def test_lossless_handshake_no_retransmissions(self):
        results, client = _run_once(3, loss=0.0, l2_retries=0)
        assert results[0][1] is None
        assert client.adapter.handshake_retransmissions == 0

    def test_duplicate_flights_do_not_poison_server(self):
        """Force a duplicated client flight and check the server replays
        its reply instead of corrupting its state machine."""
        sim = Simulator(seed=5)
        topo = build_figure2_topology(sim, loss=0.0)
        zone = Zone()
        zone.add_address("n.example.org", "2001:db8::1", ttl=60)
        server = DnsOverDtlsServer(
            sim, topo.resolver_host.bind(853), RecursiveResolver(zone)
        )
        client = DnsOverDtlsClient(
            sim, topo.clients[0].bind(6001), (topo.resolver_host.address, 853)
        )
        # Duplicate every client datagram at the source socket.
        inner_socket = client.adapter.socket
        original_sendto = inner_socket.sendto

        def duplicating_sendto(payload, dst, port, metadata=None):
            original_sendto(payload, dst, port, metadata)
            original_sendto(payload, dst, port, dict(metadata or {}))

        inner_socket.sendto = duplicating_sendto
        results = []
        client.resolve("n.example.org", RecordType.AAAA,
                       lambda r, e: results.append((r, e)))
        sim.run(until=120)
        result, error = results[0]
        assert error is None
        assert result.addresses == ["2001:db8::1"]

    def test_extreme_loss_mostly_completes_with_mac_retries(self):
        completed = 0
        for seed in range(6):
            results, _ = _run_once(seed, loss=0.35, l2_retries=3)
            if results and results[0][1] is None:
                completed += 1
        assert completed >= 5
