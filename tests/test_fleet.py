"""The fleet substrate: golden tolerance vs the exact simulator,
sampling plans, fleet-only dimensions, and the API wiring.

The acceptance core is the golden-cell grid: every simulatable
transport × both caching schemes runs the same small scenario on both
substrates, and each common metric must agree within the checked-in
per-metric tolerances (``tests/fleet_tolerances.json``). Counters and
cache behaviour reproduce exactly by construction; latency tails and
throughput carry the service-model resampling error those tolerances
bound.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.api import ApiError, RunSpec, run
from repro.api.schema import load_schema, validate
from repro.fleet import (
    FleetCacheModel,
    FleetOptions,
    FleetOptionsError,
    flash_crowd_warp,
    plan_sample,
    probe_scenario,
    run_fleet,
    wake_time,
)
from repro.scenarios import CachingSpec, scenario_from_spec

SCHEMA = load_schema(
    str(pathlib.Path(__file__).parent / "report_schema.json")
)
TOLERANCES = json.loads(
    (pathlib.Path(__file__).parent / "fleet_tolerances.json").read_text()
)

#: The golden-cell scenario both substrates run: small enough to finish
#: quickly on the exact simulator, busy enough to exercise cache hits,
#: losses, and retransmission tails.
GOLDEN_CELL = (
    "one-hop,clients=4,queries=30,names=6,rate=10,loss=0.05,"
    "cache=client-dns+client-coap"
)
TRANSPORTS = ("udp", "dtls", "coap", "coaps", "oscore")
SCHEMES = ("doh-like", "eol-ttls")


def tolerance_for(key: str):
    if key in TOLERANCES:
        return TOLERANCES[key]
    if key.startswith("cache."):
        return TOLERANCES["cache.*"]
    raise AssertionError(f"no tolerance on record for metric {key!r}")


# -- the acceptance criterion: golden cells within tolerance ---------------


class TestGoldenCells:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_fleet_matches_exact_sim_within_tolerance(
        self, transport, scheme
    ):
        spec = f"{GOLDEN_CELL},transport={transport},scheme={scheme}"
        sim_report = run(RunSpec.from_spec(spec))
        fleet_report = run(RunSpec.from_spec(spec + ",substrate=fleet"))
        assert sorted(sim_report.common_metrics()) == sorted(
            fleet_report.common_metrics()
        )
        for key, sim_value in sim_report.common_metrics().items():
            fleet_value = fleet_report.metrics[key]
            if sim_value is None or fleet_value is None:
                assert sim_value == fleet_value, key
                continue
            bound = tolerance_for(key)
            limit = bound["abs"] + bound["rel"] * max(
                abs(sim_value), abs(fleet_value)
            )
            assert abs(sim_value - fleet_value) <= limit, (
                f"{transport}/{scheme} {key}: sim={sim_value} "
                f"fleet={fleet_value} exceeds abs={bound['abs']} "
                f"rel={bound['rel']}"
            )
        assert fleet_report.metrics["fleet.tolerance.exact"] is True
        validate(fleet_report.to_json(), SCHEMA)


# -- the sampling plan ------------------------------------------------------


class TestSamplePlan:
    def test_below_cap_is_exact(self):
        plan = plan_sample(clients=1000, queries=500, rate=50.0, cap=1000)
        assert plan.exact
        assert plan.query_scale == 1.0
        assert plan.client_scale == 1.0
        assert plan.rate == 50.0

    def test_thinning_preserves_per_client_rate(self):
        plan = plan_sample(
            clients=1_000_000, queries=1_000_000, rate=100_000.0, cap=65536
        )
        assert not plan.exact
        assert plan.clients <= 65536 + 1
        # Per-client rate is invariant under thinning.
        assert plan.rate / plan.clients == pytest.approx(
            100_000.0 / 1_000_000
        )
        assert plan.query_scale == pytest.approx(
            1_000_000 / plan.queries
        )
        assert plan.client_scale == pytest.approx(1_000_000 / plan.clients)

    def test_small_fleet_truncates_in_time(self):
        # Two clients issuing a million queries cannot be client-thinned
        # below the cap; the sample truncates the run in time instead.
        plan = plan_sample(clients=2, queries=1_000_000, rate=10.0, cap=1000)
        assert plan.clients == 1
        assert plan.queries == 1000
        assert plan.query_scale == 1000.0
        assert plan.client_scale == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_sample(clients=0, queries=10, rate=1.0, cap=10)
        with pytest.raises(ValueError):
            plan_sample(clients=1, queries=0, rate=1.0, cap=10)


# -- fleet-only dimensions --------------------------------------------------


class TestFlashCrowd:
    def test_multiplier_one_is_identity(self):
        arrivals = [0.5, 1.0, 2.0]
        assert flash_crowd_warp(arrivals, 1.0, 0.0, 3.0) == arrivals

    def test_warp_preserves_count_and_order(self):
        arrivals = [i * 0.1 for i in range(300)]
        warped = flash_crowd_warp(arrivals, 3.0, 0.0, 30.0)
        assert len(warped) == 300
        assert warped == sorted(warped)

    def test_middle_third_compresses_and_tail_shifts(self):
        # Uniform arrivals over [0, 30) with multiplier 3: cumulative
        # mass [10, 25] maps into [10, 15] (3x hot), later arrivals
        # shift 10 s earlier; arrivals before the window are untouched.
        arrivals = [5.0, 12.0, 24.9, 26.0, 29.9]
        warped = flash_crowd_warp(arrivals, 3.0, 0.0, 30.0)
        assert warped[0] == 5.0
        assert warped[1] == pytest.approx(10.0 + 2.0 / 3.0)
        assert warped[2] == pytest.approx(10.0 + 14.9 / 3.0)
        assert warped[3] == pytest.approx(16.0)
        assert warped[4] == pytest.approx(19.9)


class TestDutyCycle:
    def test_always_on_is_identity(self):
        assert wake_time(3, 7.25, 1.0, 10.0) == 7.25

    def test_awake_window_issues_immediately(self):
        # Client 0 has phase 0: awake during [0, duty*period) of each
        # period.
        assert wake_time(0, 0.5, 0.2, 10.0) == 0.5
        assert wake_time(0, 10.5, 0.2, 10.0) == 10.5

    def test_sleeping_defers_to_next_wake(self):
        # Client 0, period 10, duty 0.2: asleep during [2, 10); a query
        # arising at t=5 waits until the next period starts.
        assert wake_time(0, 5.0, 0.2, 10.0) == pytest.approx(10.0)

    def test_phases_spread_clients(self):
        phases = {
            round(wake_time(client, 0.0, 0.001, 10.0), 6)
            for client in range(8)
        }
        # Golden-ratio phasing: every client wakes at a distinct point.
        assert len(phases) == 8


class FixedRng:
    """A 'random' source that always returns the same value."""

    def __init__(self, value: float) -> None:
        self.value = value

    def random(self) -> float:
        return self.value


class TestChurn:
    def make_model(self, churn: float, rng_value: float) -> FleetCacheModel:
        return FleetCacheModel(
            CachingSpec(client_dns=True, client_coap=False, proxy=False),
            coap_based=False,
            churn=churn,
            model_rng=FixedRng(rng_value),
        )

    def test_replacement_restarts_cold(self):
        model = self.make_model(churn=10.0, rng_value=0.999)
        cache = model.dns(0)
        cache.store("key", True, lifetime=300.0, now=0.0)
        model.touch(0, 0.0)
        # Survival probability exp(-10 * 5) is far below 0.999: the
        # client is replaced and its cache cleared.
        model.touch(0, 5.0)
        entry, state = model.dns(0).lookup("key", 5.0)
        assert entry is None

    def test_survivor_keeps_cache(self):
        model = self.make_model(churn=0.001, rng_value=0.5)
        cache = model.dns(0)
        cache.store("key", True, lifetime=300.0, now=0.0)
        model.touch(0, 0.0)
        # Survival probability exp(-0.001 * 5) ~ 0.995 > 0.5: survives.
        model.touch(0, 5.0)
        entry, state = model.dns(0).lookup("key", 5.0)
        assert entry is not None

    def test_churn_lowers_hit_ratio_end_to_end(self):
        base = scenario_from_spec(
            "one-hop,transport=coap,clients=4,queries=60,names=4,rate=10,"
            "cache=client-dns"
        )
        steady = run_fleet(base, FleetOptions())
        churned = run_fleet(base, FleetOptions(churn=20.0))
        assert (
            churned.cache_stats["client-dns"]["hits"]
            < steady.cache_stats["client-dns"]["hits"]
        )


# -- options and spec wiring ------------------------------------------------


class TestFleetOptions:
    def test_validation(self):
        with pytest.raises(FleetOptionsError):
            FleetOptions(churn=-0.1)
        with pytest.raises(FleetOptionsError):
            FleetOptions(duty_cycle=0.0)
        with pytest.raises(FleetOptionsError):
            FleetOptions(duty_cycle=1.5)
        with pytest.raises(FleetOptionsError):
            FleetOptions(flash_crowd=0.5)
        with pytest.raises(FleetOptionsError):
            FleetOptions(sample_cap=0)

    def test_from_spec_parses_fleet_keys(self):
        spec = RunSpec.from_spec(
            "transport=coap,substrate=fleet,churn=0.5,duty_cycle=0.25,"
            "duty-period=20,flash-crowd=4,fleet-sample-cap=1000"
        )
        assert spec.substrate == "fleet"
        assert spec.fleet.churn == 0.5
        assert spec.fleet.duty_cycle == 0.25
        assert spec.fleet.duty_period == 20.0
        assert spec.fleet.flash_crowd == 4.0
        assert spec.fleet.sample_cap == 1000

    def test_from_spec_rejects_bad_fleet_values(self):
        with pytest.raises(ApiError):
            RunSpec.from_spec("substrate=fleet,churn=-1")

    def test_to_dict_carries_fleet_block_and_topology(self):
        payload = RunSpec.from_spec(
            "one-hop,transport=coap,clients=5000,substrate=fleet,churn=0.1"
        ).to_dict()
        json.dumps(payload)
        assert payload["substrate"] == "fleet"
        assert payload["topology"]["clients"] == 5000
        assert payload["fleet"]["churn"] == 0.1
        assert "live" not in payload


# -- the probe --------------------------------------------------------------


class TestProbe:
    def test_probe_disables_client_caches_and_caps_clients(self):
        scenario = scenario_from_spec(
            "one-hop,transport=coap,clients=5000,queries=500,rate=100,"
            "cache=client-dns+client-coap"
        )
        probe = probe_scenario(scenario, FleetOptions())
        assert probe.topology.clients == 4
        caching = probe.caching_spec
        assert not caching.client_dns
        assert not caching.client_coap
        # Per-client rate is preserved: 100 qps over 5000 clients is
        # 0.08 qps over 4 — but floored so the probe finishes inside
        # the run-duration cutoff.
        assert probe.workload.num_queries == 160
        assert probe.workload.query_rate >= (
            2.0 * probe.workload.num_queries / scenario.run_duration
        )

    def test_calibration_is_memoised(self):
        from repro.fleet.service import calibrate

        scenario = scenario_from_spec(
            "one-hop,transport=udp,clients=8,queries=20,rate=10"
        )
        first = calibrate(scenario, FleetOptions())
        assert calibrate(scenario, FleetOptions()) is first


# -- scale ------------------------------------------------------------------


class TestFleetAtScale:
    def test_sampled_run_scales_counters(self):
        report = run(RunSpec.from_spec(
            "one-hop,transport=coap,clients=100000,queries=100000,"
            "rate=10000,cache=client-dns,substrate=fleet,"
            "fleet-sample-cap=2000"
        ))
        metrics = report.metrics
        assert metrics["queries.issued"] == pytest.approx(100000, rel=0.02)
        assert metrics["fleet.sample.scale"] > 1.0
        assert metrics["fleet.tolerance.exact"] is False
        assert metrics["fleet.clients"] == 100000
        # The telemetry timeline reports fleet totals, not sample
        # counts: the per-second series must sum to ~the fleet size.
        assert report.telemetry is not None
        assert sum(s["queries"] for s in report.telemetry) == pytest.approx(
            100000, rel=0.05
        )
        validate(report.to_json(), SCHEMA)

    def test_repeats_pool_and_fan_out(self):
        report = run(RunSpec.from_spec(
            "one-hop,transport=udp,clients=50,queries=40,rate=20,"
            "cache=client-dns,substrate=fleet,repeats=3"
        ))
        assert report.metrics["fleet.repeats"] == 3
        assert report.metrics["queries.issued"] == 120
        assert report.telemetry is None
        assert isinstance(report.raw, list) and len(report.raw) == 3
        validate(report.to_json(), SCHEMA)

    def test_duty_cycle_defers_and_flash_crowd_preserves_counts(self):
        base = "one-hop,transport=udp,clients=32,queries=64,rate=20,substrate=fleet"
        plain = run(RunSpec.from_spec(base))
        duty = run(RunSpec.from_spec(base + ",duty_cycle=0.2,duty_period=8"))
        crowd = run(RunSpec.from_spec(base + ",flash_crowd=5"))
        assert duty.metrics["queries.issued"] == plain.metrics["queries.issued"]
        assert crowd.metrics["queries.issued"] == plain.metrics["queries.issued"]
        assert duty.metrics["fleet.duty_cycle"] == 0.2
        assert crowd.metrics["fleet.flash_crowd"] == 5.0
        # Deferral pushes arrivals to wake boundaries, stretching the
        # observed span: the duty-cycled run cannot finish earlier.
        duty_last = max(o.issued_at for o in duty.raw.outcomes)
        plain_last = max(o.issued_at for o in plain.raw.outcomes)
        assert duty_last >= plain_last


# -- engine semantics -------------------------------------------------------


class TestEngineSemantics:
    def test_dns_hits_are_zero_latency(self):
        scenario = scenario_from_spec(
            "one-hop,transport=udp,clients=2,queries=30,names=2,rate=10,"
            "cache=client-dns"
        )
        result = run_fleet(scenario)
        hits = [o for o in result.outcomes if o.resolution_time == 0.0]
        assert hits, "expected repeat queries to hit the client DNS cache"
        assert result.cache_stats["client-dns"]["hits"] == len(hits)

    def test_zero_ttl_is_uncacheable(self):
        scenario = scenario_from_spec(
            "one-hop,transport=udp,clients=2,queries=20,names=2,rate=10,"
            "cache=client-dns,records=1"
        )
        from dataclasses import replace

        scenario = replace(
            scenario, workload=replace(scenario.workload, ttl=(0, 0))
        )
        result = run_fleet(scenario)
        assert result.cache_stats["client-dns"]["hits"] == 0

    def test_oscore_coap_cache_exists_but_is_never_consulted(self):
        scenario = scenario_from_spec(
            "one-hop,transport=oscore,clients=2,queries=20,names=2,rate=10,"
            "cache=client-coap"
        )
        result = run_fleet(scenario)
        stats = result.cache_stats["client-coap"]
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_deterministic_for_seed(self):
        scenario = scenario_from_spec(
            "one-hop,transport=coap,clients=8,queries=30,rate=10,"
            "cache=client-dns"
        )
        first = run_fleet(scenario)
        second = run_fleet(scenario)
        assert first.outcomes == second.outcomes
        assert first.cache_stats == second.cache_stats
