"""Table 1, executed: each feature claimed for the CoAP-based DNS
transports is demonstrated against the implementation, not just
asserted in a registry."""

import pytest

from repro.coap import CoapMessage, Code, ContentFormat, OptionNumber
from repro.dns import make_query
from repro.oscore import (
    SecurityContext,
    derive_deterministic_context,
    protect_request,
    unprotect_request,
)


class TestMessageSegmentation:
    """Row 1: CoAP/CoAPS/OSCORE segment via block-wise transfer."""

    def test_coap_segments_large_messages(self):
        from repro.coap.blockwise import BlockAssembler, block_for, split_body

        body = bytes(500)
        blocks = split_body(body, 64)
        assert len(blocks) > 1
        assembler = BlockAssembler()
        for number in range(len(blocks)):
            block, chunk = block_for(body, number, 64)
            assembler.add(block, chunk)
        assert assembler.body() == body

    def test_udp_and_dtls_do_not_segment(self):
        """Plain UDP/DTLS rely on 6LoWPAN fragmentation below them —
        application-layer segmentation is absent (the Table 1 ✘)."""
        from repro.experiments.packet_sizes import dissect_transport

        for transport in ("udp", "dtls"):
            aaaa = {
                d.message: d for d in dissect_transport(transport)
            }["response_aaaa"]
            assert aaaa.fragmented  # pushed to the adaptation layer


class TestMessageEncryption:
    """Row 3: CoAPS and OSCORE encrypt; plain CoAP does not."""

    def test_plain_coap_payload_visible(self):
        wire = make_query("secret-host.example.org", txid=0).encode()
        message = CoapMessage.request(Code.FETCH, "/dns", payload=wire)
        assert b"secret-host" in message.encode()

    def test_oscore_payload_hidden(self):
        client, _ = SecurityContext.pair(b"m", b"s")
        wire = make_query("secret-host.example.org", txid=0).encode()
        message = CoapMessage.request(Code.FETCH, "/dns", payload=wire)
        outer, _ = protect_request(client, message)
        assert b"secret-host" not in outer.encode()

    def test_dtls_record_hides_payload(self):
        from repro.dtls import establish_pair

        client, _, _ = establish_pair()
        record = client.protect(b"secret-host.example.org query bytes")
        assert b"secret-host" not in record


class TestMessageFormatMultiplexing:
    """Row 4: the Content-Format option multiplexes message formats."""

    def test_two_formats_one_resource(self):
        message = CoapMessage.request(Code.FETCH, "/dns", payload=b"x")
        wire_format = message.with_uint_option(
            OptionNumber.CONTENT_FORMAT, int(ContentFormat.DNS_MESSAGE)
        )
        cbor_format = message.with_uint_option(
            OptionNumber.CONTENT_FORMAT, int(ContentFormat.DNS_CBOR)
        )
        assert wire_format.content_format != cbor_format.content_format
        # Both decodable from the wire; a server can dispatch on them.
        assert CoapMessage.decode(wire_format.encode()).content_format == 553
        assert CoapMessage.decode(cbor_format.encode()).content_format == 554


class TestSharesProtocolWithApplication:
    """Row 5: DNS rides the same CoAP stack an application already uses."""

    def test_dns_and_app_resources_coexist(self):
        from repro.coap.endpoint import CoapClient, CoapServer
        from repro.sim import Simulator
        from repro.stack import build_figure2_topology

        sim = Simulator(seed=91)
        topo = build_figure2_topology(sim)
        server = CoapServer(sim, topo.resolver_host.bind(5683))
        server.add_resource(
            "/dns",
            lambda req, respond, md: respond(
                req.make_response(Code.CONTENT, payload=b"dns")
            ),
        )
        server.add_resource(
            "/sensor",
            lambda req, respond, md: respond(
                req.make_response(Code.CONTENT, payload=b"21.5C")
            ),
        )
        client = CoapClient(sim, topo.clients[0].bind())
        results = {}
        for path in ("/dns", "/sensor"):
            client.request(
                CoapMessage.request(Code.FETCH, path, payload=b"q"),
                topo.resolver_host.address, 5683,
                lambda r, e, path=path: results.__setitem__(path, r.payload),
            )
        sim.run(until=10)
        assert results == {"/dns": b"dns", "/sensor": b"21.5C"}


class TestSecureEnrouteCaching:
    """Row 7: only OSCORE (with deterministic requests) offers caching
    of *encrypted* content on untrusted intermediaries."""

    def test_deterministic_oscore_cacheable_ciphertext(self):
        from repro.coap.cache import CoapCache
        from repro.oscore import protect_cacheable_request

        client_a = derive_deterministic_context(b"grp", b"s", role="client")
        client_b = derive_deterministic_context(b"grp", b"s", role="client")
        request = CoapMessage.request(Code.FETCH, "/dns", payload=b"q" * 20)
        outer_a, _ = protect_cacheable_request(client_a, request)
        outer_b, _ = protect_cacheable_request(client_b, request)

        # An untrusted cache (it has no keys) still correlates them.
        cache = CoapCache()
        response = outer_a.make_response(Code.CONTENT, payload=b"\xAA" * 30)
        assert cache.store(outer_a, response, now=0.0)
        hit, _ = cache.lookup(outer_b, now=1.0)
        assert hit is not None
        assert hit.payload == b"\xAA" * 30

    def test_dtls_cannot_offer_this(self):
        """DTLS protection is per-session: the same DNS query from two
        clients yields unrelated ciphertexts, so nothing correlates."""
        import random

        from repro.dtls import establish_pair

        client_1, _, _ = establish_pair(rng=random.Random(1))
        client_2, _, _ = establish_pair(rng=random.Random(2))
        query = make_query("example.org", txid=0).encode()
        assert client_1.protect(query) != client_2.protect(query)

    def test_plain_oscore_cannot_offer_this_either(self):
        client, _ = SecurityContext.pair(b"m", b"s")
        request = CoapMessage.request(Code.FETCH, "/dns", payload=b"q" * 20)
        outer_1, _ = protect_request(client, request)
        outer_2, _ = protect_request(client, request)
        assert outer_1.payload != outer_2.payload  # fresh PIV each time
