"""Reliability parameters and URI template tests."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.coap.reliability import (
    ReliabilityParams,
    TransmissionState,
    retransmission_offsets,
)
from repro.coap.uri import (
    UriTemplate,
    UriTemplateError,
    base64url_decode,
    base64url_encode,
)


class TestReliability:
    def test_default_parameters(self):
        params = ReliabilityParams()
        assert params.ack_timeout == 2.0
        assert params.ack_random_factor == 1.5
        assert params.max_retransmit == 4

    def test_max_transmit_span(self):
        # RFC 7252 §4.8.2: 45 s with default parameters.
        assert ReliabilityParams().max_transmit_span == pytest.approx(45.0)

    def test_max_transmit_wait(self):
        # RFC 7252 §4.8.2: 93 s with default parameters.
        assert ReliabilityParams().max_transmit_wait == pytest.approx(93.0)

    def test_initial_timeout_range(self):
        params = ReliabilityParams()
        rng = random.Random(1)
        for _ in range(100):
            timeout = params.initial_timeout(rng)
            assert 2.0 <= timeout <= 3.0

    def test_retransmission_windows_figure11(self):
        """The gray areas of Figure 11: [2,3], [6,9], [14,21], [30,45]."""
        params = ReliabilityParams()
        assert params.retransmission_window(1) == (2.0, 3.0)
        assert params.retransmission_window(2) == (6.0, 9.0)
        assert params.retransmission_window(3) == (14.0, 21.0)
        assert params.retransmission_window(4) == (30.0, 45.0)

    def test_window_one_based(self):
        with pytest.raises(ValueError):
            ReliabilityParams().retransmission_window(0)

    def test_transmission_state_doubling(self):
        state = TransmissionState(ReliabilityParams(), random.Random(2))
        first = state.timeout
        assert state.register_timeout()
        assert state.timeout == pytest.approx(2 * first)

    def test_transmission_exhaustion(self):
        state = TransmissionState(ReliabilityParams(), random.Random(2))
        sent = 0
        while state.register_timeout():
            sent += 1
        assert sent == 4
        assert state.exhausted
        assert not state.register_timeout()

    def test_ack_stops_retransmission(self):
        state = TransmissionState(ReliabilityParams(), random.Random(2))
        state.acknowledge()
        assert not state.register_timeout()

    def test_offsets_within_windows(self):
        params = ReliabilityParams()
        offsets = retransmission_offsets(params, random.Random(3))
        assert len(offsets) == 4
        for attempt, offset in enumerate(offsets, start=1):
            low, high = params.retransmission_window(attempt)
            assert low <= offset <= high


class TestUriTemplate:
    def test_simple_expansion(self):
        template = UriTemplate("/dns?dns={dns}")
        assert template.expand(dns="abc") == "/dns?dns=abc"

    def test_form_style_expansion(self):
        template = UriTemplate("/dns{?dns}")
        assert template.expand(dns="abc") == "/dns?dns=abc"

    def test_percent_encoding(self):
        template = UriTemplate("/r/{x}")
        assert template.expand(x="a b/c") == "/r/a%20b%2Fc"

    def test_missing_variable(self):
        with pytest.raises(UriTemplateError):
            UriTemplate("/dns{?dns}").expand()

    def test_malformed_template(self):
        with pytest.raises(UriTemplateError):
            UriTemplate("/dns{dns")

    def test_repeated_variable_rejected(self):
        with pytest.raises(UriTemplateError):
            UriTemplate("/{a}/{a}")

    def test_split_expanded(self):
        template = UriTemplate("/sub/dns{?dns}")
        segments, queries = template.split_expanded(dns="QQ")
        assert segments == ["sub", "dns"]
        assert queries == ["dns=QQ"]

    def test_split_no_query(self):
        segments, queries = UriTemplate("/a/b").split_expanded()
        assert segments == ["a", "b"] and queries == []

    def test_base64url_no_padding(self):
        encoded = base64url_encode(b"\x00\x01\x02")
        assert "=" not in encoded
        assert base64url_decode(encoded) == b"\x00\x01\x02"

    def test_base64url_urlsafe_alphabet(self):
        encoded = base64url_encode(bytes([0xFF, 0xFE, 0xFD]))
        assert "+" not in encoded and "/" not in encoded

    @given(st.binary(max_size=120))
    def test_base64url_round_trip(self, data):
        assert base64url_decode(base64url_encode(data)) == data

    def test_get_inflation_factor(self):
        """Section 5.3: base64 inflates GET queries ≈ 1.33× (+ URI)."""
        from repro.dns import make_query

        wire = make_query("name0000.example-iot.org").encode()
        encoded = base64url_encode(wire)
        assert 1.3 <= len(encoded) / len(wire) <= 1.4
