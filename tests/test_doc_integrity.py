"""Max-Age integrity (Section 7) and load-balancing helper tests,
including failure injection with a malicious proxy."""

import random

import pytest

from repro.dns import (
    AAAAData,
    DNSClass,
    Flags,
    Message,
    Question,
    RecordType,
    ResourceRecord,
)
from repro.doc.caching import CachingScheme
from repro.doc.integrity import MaxAgeIntegrityError, check_max_age_consistency
from repro.doc.loadbalance import shuffle_answers, sort_answers, stable_representation


def _response(ttls=(60, 30), addresses=("2001:db8::1", "2001:db8::2")):
    return Message(
        flags=Flags(qr=True),
        questions=(Question("example.org", RecordType.AAAA),),
        answers=tuple(
            ResourceRecord("example.org", RecordType.AAAA, DNSClass.IN, ttl,
                           AAAAData(address))
            for ttl, address in zip(ttls, addresses)
        ),
    )


class TestMaxAgeConsistency:
    def test_eol_accepts_aged_outer(self):
        assert check_max_age_consistency(
            CachingScheme.EOL_TTLS, outer_max_age=20, inner_max_age=30
        ) == 20

    def test_eol_rejects_extended_outer(self):
        """The lifetime-extension attack the paper describes."""
        with pytest.raises(MaxAgeIntegrityError):
            check_max_age_consistency(
                CachingScheme.EOL_TTLS, outer_max_age=300, inner_max_age=30
            )

    def test_eol_requires_protected_value(self):
        with pytest.raises(MaxAgeIntegrityError):
            check_max_age_consistency(
                CachingScheme.EOL_TTLS, outer_max_age=10, inner_max_age=None
            )

    def test_eol_allows_equal(self):
        assert check_max_age_consistency(
            CachingScheme.EOL_TTLS, outer_max_age=30, inner_max_age=30
        ) == 30

    def test_doh_like_bounded_by_original_ttls(self):
        response = _response(ttls=(60, 30))
        assert check_max_age_consistency(
            CachingScheme.DOH_LIKE, outer_max_age=25, response=response
        ) == 25
        with pytest.raises(MaxAgeIntegrityError):
            check_max_age_consistency(
                CachingScheme.DOH_LIKE, outer_max_age=31, response=response
            )

    def test_doh_like_requires_response(self):
        with pytest.raises(MaxAgeIntegrityError):
            check_max_age_consistency(CachingScheme.DOH_LIKE, outer_max_age=10)

    def test_missing_outer_falls_back_to_inner(self):
        assert check_max_age_consistency(
            CachingScheme.EOL_TTLS, outer_max_age=None, inner_max_age=44
        ) == 44

    def test_nothing_available_rejected(self):
        with pytest.raises(MaxAgeIntegrityError):
            check_max_age_consistency(
                CachingScheme.EOL_TTLS, outer_max_age=None, inner_max_age=None
            )

    def test_shortening_always_allowed(self):
        """Unauthorised *reduction* of lifetimes remains possible (the
        paper accepts this availability-only degradation)."""
        assert check_max_age_consistency(
            CachingScheme.EOL_TTLS, outer_max_age=1, inner_max_age=600
        ) == 1


class TestMaliciousProxyInjection:
    """End-to-end failure injection: a proxy that inflates Max-Age."""

    def _run(self, verify: bool, tamper_enabled: bool = True):
        from repro.doc import DocClient, DocServer
        from repro.dns import RecursiveResolver, Zone
        from repro.oscore import SecurityContext
        from repro.sim import Simulator
        from repro.stack import build_figure2_topology
        from repro.coap.message import CoapMessage
        from repro.coap.options import OptionNumber

        sim = Simulator(seed=51)
        topo = build_figure2_topology(sim)
        zone = Zone()
        zone.add_address("victim.example.org", "2001:db8::66", ttl=30)
        ctx_client, ctx_server = SecurityContext.pair(b"m", b"s")
        DocServer(sim, topo.resolver_host.bind(5683),
                  RecursiveResolver(zone), oscore_context=ctx_server)
        client = DocClient(
            sim, topo.clients[0].bind(), (topo.resolver_host.address, 5683),
            oscore_context=ctx_client, verify_max_age=verify,
        )

        # The "malicious proxy": the border router tampers with the
        # outer Max-Age of passing responses.
        original = topo.border_router._receive_packet

        def tamper(packet, metadata):
            from repro.net.udp import UdpDatagram
            try:
                datagram = UdpDatagram.decode(packet.payload)
                message = CoapMessage.decode(datagram.payload)
            except Exception:
                original(packet, metadata)
                return
            if message.code.is_response:
                message = message.replace_uint_option(
                    OptionNumber.MAX_AGE, 999_999
                )
                datagram = UdpDatagram(
                    datagram.src_port, datagram.dst_port, message.encode()
                )
                from dataclasses import replace as dc_replace

                packet = dc_replace(
                    packet, payload=datagram.encode(packet.src, packet.dst)
                )
            original(packet, metadata)

        if tamper_enabled:
            topo.border_router._receive_packet = tamper

        results = []
        client.resolve("victim.example.org", RecordType.AAAA,
                       lambda r, e: results.append((r, e)))
        sim.run(until=60)
        return results[0]

    def test_unverifying_client_uses_protected_inner_value(self):
        """Without the explicit check, the OSCORE-protected inner
        Max-Age already shields this client (the attack surface is the
        outer option, which plain-CoAP/cacheable-mode clients consume)."""
        result, error = self._run(verify=False)
        assert error is None
        # Inner Max-Age protected by OSCORE: TTL restored correctly.
        assert result.response.min_ttl() == 30

    def test_verifying_client_discards_tampered_response(self):
        """Section 7: the client 'discards the response when the
        consistency check fails'."""
        result, error = self._run(verify=True, tamper_enabled=True)
        assert result is None
        assert isinstance(error, MaxAgeIntegrityError)

    def test_verifying_client_accepts_honest_path(self):
        result, error = self._run(verify=True, tamper_enabled=False)
        assert error is None
        assert result.response.min_ttl() == 30


class TestLoadBalancing:
    def test_sort_is_canonical(self):
        response = _response(addresses=("2001:db8::9", "2001:db8::1"))
        sorted_response = sort_answers(response)
        addresses = [r.rdata.address for r in sorted_response.answers]
        assert addresses == ["2001:db8::1", "2001:db8::9"]

    def test_sort_stable_under_rotation(self):
        """Rotated resolver output yields identical representations —
        the stable-ETag property of Section 7."""
        a = _response(addresses=("2001:db8::1", "2001:db8::2"))
        rotated = Message(
            flags=a.flags, questions=a.questions,
            answers=(a.answers[1], a.answers[0]),
        )
        assert stable_representation(a) == stable_representation(rotated)

    def test_sort_ignores_ttl(self):
        a = _response(ttls=(60, 30))
        b = _response(ttls=(5, 999))
        order_a = [r.rdata.address for r in sort_answers(a).answers]
        order_b = [r.rdata.address for r in sort_answers(b).answers]
        assert order_a == order_b

    def test_shuffle_preserves_records(self):
        response = _response(
            ttls=(1, 2), addresses=("2001:db8::1", "2001:db8::2")
        )
        shuffled = shuffle_answers(response, random.Random(1))
        assert sorted(r.rdata.address for r in shuffled.answers) == [
            "2001:db8::1", "2001:db8::2",
        ]

    def test_shuffle_varies_order(self):
        response = Message(
            flags=Flags(qr=True),
            questions=(Question("example.org", RecordType.AAAA),),
            answers=tuple(
                ResourceRecord("example.org", RecordType.AAAA, DNSClass.IN,
                               60, AAAAData(f"2001:db8::{i}"))
                for i in range(1, 9)
            ),
        )
        rng = random.Random(3)
        orders = {
            tuple(r.rdata.address for r in shuffle_answers(response, rng).answers)
            for _ in range(10)
        }
        assert len(orders) > 1

    def test_server_sorting_end_to_end(self):
        """A DocServer with sort_records produces identical ETags for
        rotated resolver outputs."""
        from repro.doc.caching import compute_etag
        from repro.doc.loadbalance import sort_answers as sort_fn

        rotated_a = _response(addresses=("2001:db8::2", "2001:db8::1"))
        rotated_b = _response(addresses=("2001:db8::1", "2001:db8::2"))
        etag_a = compute_etag(sort_fn(rotated_a).with_ttls(0).encode())
        etag_b = compute_etag(sort_fn(rotated_b).with_ttls(0).encode())
        assert etag_a == etag_b
