"""Unit tests for the unified caching subsystem (``repro.cache``)."""

import pytest

from repro.cache import (
    CacheEntry,
    CacheStats,
    EvictionPolicy,
    ExpiryIndex,
    KeyedCache,
    LookupState,
)


class TestCacheEntry:
    def test_freshness_window(self):
        entry = CacheEntry("value", stored_at=10.0, lifetime=5.0)
        assert entry.is_fresh(14.9)
        assert not entry.is_fresh(15.0)
        assert entry.expires_at == 15.0

    def test_remaining_clamps_at_zero(self):
        entry = CacheEntry("value", stored_at=0.0, lifetime=5.0)
        assert entry.remaining(1.5) == 3
        assert entry.remaining(100.0) == 0


class TestKeyedCacheBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            KeyedCache(0)

    def test_miss_then_hit(self):
        cache = KeyedCache(4)
        entry, state = cache.lookup("k", now=0.0)
        assert entry is None and state is LookupState.MISS
        cache.store("k", "v", lifetime=10.0, now=0.0)
        entry, state = cache.lookup("k", now=5.0)
        assert state is LookupState.HIT and entry.value == "v"
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_expired_dropped_without_keep_stale(self):
        cache = KeyedCache(4, keep_stale=False)
        cache.store("k", "v", lifetime=5.0, now=0.0)
        entry, state = cache.lookup("k", now=6.0)
        assert entry is None and state is LookupState.MISS
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_expired_kept_with_keep_stale(self):
        cache = KeyedCache(4, keep_stale=True)
        cache.store("k", "v", lifetime=5.0, now=0.0)
        entry, state = cache.lookup("k", now=6.0)
        assert state is LookupState.STALE and entry.value == "v"
        assert len(cache) == 1
        assert cache.stats.stale_hits == 1

    def test_overwrite_replaces(self):
        cache = KeyedCache(2)
        cache.store("k", "old", lifetime=10.0, now=0.0)
        cache.store("k", "new", lifetime=10.0, now=1.0)
        assert len(cache) == 1
        entry, _ = cache.lookup("k", now=2.0)
        assert entry.value == "new"

    def test_refresh_revives_and_counts_validation(self):
        cache = KeyedCache(2, keep_stale=True)
        cache.store("k", "v", lifetime=5.0, now=0.0)
        cache.lookup("k", now=6.0)  # stale
        entry = cache.refresh("k", now=6.0, lifetime=8.0, value="v2")
        assert entry.value == "v2"
        _, state = cache.lookup("k", now=10.0)
        assert state is LookupState.HIT
        assert cache.stats.validations == 1

    def test_refresh_unknown_key(self):
        cache = KeyedCache(2)
        assert cache.refresh("missing", now=0.0, lifetime=5.0) is None
        assert cache.stats.validations == 0

    def test_validation_failure_hook(self):
        cache = KeyedCache(2)
        cache.note_validation_failure()
        assert cache.stats.validation_failures == 1


class TestEvictionPolicies:
    def _filled(self, policy, keep_stale=False):
        cache = KeyedCache(2, policy=policy, keep_stale=keep_stale)
        cache.store("a", 1, lifetime=100.0, now=0.0)
        cache.store("b", 2, lifetime=100.0, now=1.0)
        return cache

    def test_lru_evicts_least_recently_used(self):
        cache = self._filled(EvictionPolicy.LRU)
        cache.lookup("a", now=2.0)  # refresh a's recency
        cache.store("c", 3, lifetime=100.0, now=3.0)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_fifo_ignores_recency(self):
        cache = self._filled(EvictionPolicy.FIFO)
        cache.lookup("a", now=2.0)  # does not protect a under FIFO
        cache.store("c", 3, lifetime=100.0, now=3.0)
        assert "b" in cache and "c" in cache and "a" not in cache

    def test_expired_first_prefers_dead_entry(self):
        cache = KeyedCache(2, policy=EvictionPolicy.EXPIRED_FIRST)
        cache.store("short", 1, lifetime=1.0, now=0.0)
        cache.store("long", 2, lifetime=100.0, now=0.5)
        cache.lookup("long", now=2.0)  # most recent; short is expired
        cache.store("new", 3, lifetime=100.0, now=3.0)
        assert "long" in cache and "new" in cache and "short" not in cache
        # Removing a dead entry is not an eviction.
        assert cache.stats.evictions == 0

    def test_expired_first_falls_back_to_lru(self):
        cache = self._filled(EvictionPolicy.EXPIRED_FIRST)
        cache.lookup("a", now=2.0)
        cache.store("c", 3, lifetime=100.0, now=3.0)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1


class TestBulkExpiry:
    def test_expire_removes_only_stale(self):
        cache = KeyedCache(8)
        for index in range(4):
            cache.store(index, index, lifetime=float(index + 1), now=0.0)
        assert cache.expire(now=2.5) == 2   # lifetimes 1 and 2
        assert len(cache) == 2
        assert cache.expire(now=2.5) == 0

    def test_expire_after_refresh_respects_new_lifetime(self):
        cache = KeyedCache(4, keep_stale=True)
        cache.store("k", "v", lifetime=2.0, now=0.0)
        cache.refresh("k", now=1.0, lifetime=10.0)
        assert cache.expire(now=5.0) == 0
        assert cache.expire(now=12.0) == 1

    def test_expire_many_is_cheap_on_fresh_cache(self):
        # The O(log n) claim in spirit: expire() on an all-fresh cache
        # does constant work (one heap peek), not a full scan. Hard to
        # time reliably; assert the heap survives repeated no-op calls.
        cache = KeyedCache(1000)
        for index in range(1000):
            cache.store(index, index, lifetime=1000.0, now=0.0)
        for _ in range(100):
            assert cache.expire(now=1.0) == 0
        assert len(cache) == 1000


class TestExpiryIndex:
    def test_lazy_invalidation(self):
        live = {}
        index = ExpiryIndex(live.get)
        live["a"] = 5.0
        index.push(5.0, "a")
        index.push(9.0, "a")   # superseded record
        live["a"] = 9.0
        assert index.peek_expired(6.0) is None   # 5.0 record is dead
        assert index.pop_expired(10.0) == "a"

    def test_compaction_bounds_heap(self):
        live = {}
        index = ExpiryIndex(live.get)
        for round_number in range(50):
            live["k"] = float(round_number)
            index.push(float(round_number), "k")
            index.compact_if_needed(live_entries=1)
        assert len(index) <= 8

    def test_peek_does_not_pop(self):
        live = {"a": 1.0}
        index = ExpiryIndex(live.get)
        index.push(1.0, "a")
        assert index.peek_expired(2.0) == "a"
        assert index.peek_expired(2.0) == "a"
        assert index.pop_expired(2.0) == "a"
        assert index.pop_expired(2.0) is None


class TestCacheStats:
    def test_ratios(self):
        stats = CacheStats(hits=6, misses=2, stale_hits=2, validations=1)
        assert stats.lookups == 10
        assert stats.hit_ratio == pytest.approx(0.6)
        assert stats.stale_ratio == pytest.approx(0.2)
        assert stats.validation_ratio == pytest.approx(0.5)

    def test_empty_ratios_are_zero(self):
        stats = CacheStats()
        assert stats.hit_ratio == 0.0
        assert stats.stale_ratio == 0.0
        assert stats.validation_ratio == 0.0

    def test_merge_sums_all_fields(self):
        a = CacheStats(hits=1, misses=2, evictions=3)
        b = CacheStats(hits=10, stale_hits=5, validation_failures=7)
        a.merge(b)
        assert a.hits == 11 and a.misses == 2 and a.stale_hits == 5
        assert a.evictions == 3 and a.validation_failures == 7

    def test_reset(self):
        stats = CacheStats(hits=3, validations=1)
        stats.reset()
        assert stats.as_dict() == CacheStats().as_dict()


class TestDnsCacheAdapter:
    """The DNS cache keeps its public face but shares the engine."""

    def _response(self, ttl):
        from repro.dns import (
            AAAAData,
            DNSClass,
            Flags,
            Message,
            Question,
            RecordType,
            ResourceRecord,
        )

        name = f"ttl{ttl}.example.org"
        return Message(
            flags=Flags(qr=True),
            questions=(Question(name, RecordType.AAAA),),
            answers=(
                ResourceRecord(name, RecordType.AAAA, DNSClass.IN, ttl,
                               AAAAData("2001:db8::1")),
            ),
        )

    def test_expired_evicted_before_live_lru(self):
        """The PR's headline DNS fix: a full cache holding an expired
        entry must sacrifice it, not a live LRU entry."""
        from repro.dns import DNSCache, Question, RecordType

        cache = DNSCache(2)
        short = Question("short.org", RecordType.AAAA)
        live = Question("live.org", RecordType.AAAA)
        fresh = Question("fresh.org", RecordType.AAAA)
        cache.store(short, self._response(2), now=0.0)
        cache.store(live, self._response(600), now=1.0)
        # short is expired at t=5; storing a third entry must evict it
        # even though live is less recently used at that point.
        cache.lookup(live, now=5.0)
        cache.store(fresh, self._response(600), now=5.0)
        assert cache.lookup(live, now=6.0) is not None
        assert cache.lookup(fresh, now=6.0) is not None
        assert cache.lookup(short, now=6.0) is None

    def test_unified_stats_exposed(self):
        from repro.cache import CacheStats
        from repro.dns import DNSCache, Question, RecordType

        cache = DNSCache(4)
        question = Question("ttl60.example.org", RecordType.AAAA)
        cache.lookup(question, now=0.0)
        cache.store(question, self._response(60), now=0.0)
        cache.lookup(question, now=1.0)
        assert isinstance(cache.stats, CacheStats)
        assert cache.stats.hits == cache.hits == 1
        assert cache.stats.misses == cache.misses == 1


class TestCoapCacheAdapter:
    def test_eviction_counts_in_unified_stats(self):
        from repro.coap import CoapCache, CoapMessage, Code

        cache = CoapCache(capacity=2)
        for index in range(3):
            request = CoapMessage.request(
                Code.FETCH, "/dns", payload=bytes([index])
            )
            response = request.make_response(Code.CONTENT, payload=b"x")
            cache.store(request, response, now=0.0)
        assert cache.stats.evictions == 1


class TestCiphertextCache:
    """The cacheable-OSCORE proxy cache (draft-amsuess-core-cachable-oscore)."""

    def _protected_pair(self, payload=b"query"):
        from repro.coap.message import CoapMessage
        from repro.coap.codes import Code
        from repro.oscore.cacheable import (
            derive_deterministic_context,
            protect_cacheable_request,
            protect_cacheable_response,
            unprotect_deterministic_request,
        )

        client = derive_deterministic_context(b"group-secret", b"salt")
        server = derive_deterministic_context(
            b"group-secret", b"salt", role="server"
        )
        request = CoapMessage.request(Code.FETCH, "/dns", payload=payload)
        outer, binding = protect_cacheable_request(client, request)
        inner, server_binding = unprotect_deterministic_request(server, outer)
        response = inner.make_response(Code.CONTENT, payload=b"answer")
        protected = protect_cacheable_response(
            server, response, server_binding, outer_max_age=30
        )
        return outer, protected

    def test_deterministic_requests_share_an_entry(self):
        from repro.oscore import CiphertextCache

        cache = CiphertextCache(capacity=4)
        outer1, protected = self._protected_pair()
        outer2, _ = self._protected_pair()
        assert cache.store(outer1, protected, now=0.0)
        served = cache.lookup(outer2, now=10.0)
        assert served is not None
        assert served.payload == protected.payload
        assert cache.stats.hits == 1

    def test_served_copy_ages_outer_max_age(self):
        from repro.oscore import CiphertextCache

        cache = CiphertextCache()
        outer, protected = self._protected_pair()
        cache.store(outer, protected, now=0.0)
        assert cache.lookup(outer, now=12.0).max_age == 18
        assert cache.lookup(outer, now=40.0) is None   # expired

    def test_response_without_outer_max_age_not_cached(self):
        from repro.coap.options import OptionNumber
        from repro.oscore import CiphertextCache

        cache = CiphertextCache()
        outer, protected = self._protected_pair()
        bare = protected.without_option(OptionNumber.MAX_AGE)
        assert not cache.store(outer, bare, now=0.0)

    def test_non_oscore_request_not_shareable(self):
        from repro.coap.codes import Code
        from repro.coap.message import CoapMessage
        from repro.oscore import CiphertextCache

        cache = CiphertextCache()
        plain = CoapMessage.request(Code.FETCH, "/dns", payload=b"q")
        assert CiphertextCache.key_for(plain) is None
        assert cache.lookup(plain, now=0.0) is None
        assert cache.stats.lookups == 0
