"""End-to-end DoC tests across methods, security modes, and caches."""

import pytest

from repro.coap import CoapCache, Code, ContentFormat
from repro.dns import DNSCache, RecordType, RecursiveResolver, Zone
from repro.doc import CachingScheme, DocClient, DocError, DocServer
from repro.oscore import SecurityContext
from repro.sim import Simulator
from repro.stack import build_figure2_topology
from repro.transports import DtlsClientAdapter, DtlsServerAdapter, preestablish


def _zone(names=5, ttl=300):
    zone = Zone()
    for i in range(names):
        zone.add_address(f"name{i:02d}.iot.example.org", f"2001:db8::{i + 1}", ttl=ttl)
        zone.add_address(f"name{i:02d}.iot.example.org", f"192.0.2.{i + 1}", ttl=ttl)
    return zone


def _run(method=Code.FETCH, oscore=False, dtls=False, scheme=CachingScheme.EOL_TTLS,
         content_format=ContentFormat.DNS_MESSAGE, rtype=RecordType.AAAA,
         names=3, loss=0.05, seed=3, echo=False, coap_cache=False, dns_cache=False,
         block_size=None):
    sim = Simulator(seed=seed)
    topo = build_figure2_topology(sim, loss=loss)
    resolver = RecursiveResolver(_zone())
    ctx_client = ctx_server = None
    if oscore:
        ctx_client, ctx_server = SecurityContext.pair(
            b"e2e-master", b"salt", server_requires_echo=echo
        )
    if dtls:
        server_adapter = DtlsServerAdapter(sim, topo.resolver_host.bind(5684))
        DocServer(sim, server_adapter, resolver, scheme=scheme)
        client_socket = DtlsClientAdapter(
            sim, topo.clients[0].bind(6000), (topo.resolver_host.address, 5684)
        )
        preestablish(client_socket, server_adapter, (topo.clients[0].address, 6000))
        endpoint = (topo.resolver_host.address, 5684)
    else:
        DocServer(sim, topo.resolver_host.bind(5683), resolver,
                  scheme=scheme, oscore_context=ctx_server)
        client_socket = topo.clients[0].bind()
        endpoint = (topo.resolver_host.address, 5683)
    client = DocClient(
        sim, client_socket, endpoint, method=method, scheme=scheme,
        content_format=content_format, oscore_context=ctx_client,
        coap_cache=CoapCache(8) if coap_cache else None,
        dns_cache=DNSCache(8) if dns_cache else None,
        block_size=block_size,
    )
    results = []
    for i in range(names):
        sim.schedule(i * 0.5, client.resolve, f"name{i % 5:02d}.iot.example.org",
                     rtype, lambda r, e: results.append((r, e)))
    sim.run(until=200)
    return results, client


class TestMethods:
    @pytest.mark.parametrize("method", [Code.FETCH, Code.GET, Code.POST])
    def test_resolution_succeeds(self, method):
        results, _ = _run(method=method)
        assert len(results) == 3
        for result, error in results:
            assert error is None
            assert result.addresses[0].startswith("2001:db8::")

    def test_a_records(self):
        results, _ = _run(rtype=RecordType.A)
        for result, error in results:
            assert error is None
            assert result.addresses[0].startswith("192.0.2.")

    def test_ttls_restored(self):
        results, _ = _run()
        for result, _ in results:
            assert result.response.min_ttl() == 300

    def test_unsupported_method_rejected(self):
        sim = Simulator()
        topo = build_figure2_topology(sim)
        with pytest.raises(DocError):
            DocClient(sim, topo.clients[0].bind(),
                      (topo.resolver_host.address, 5683), method=Code.PUT)

    def test_get_with_oscore_rejected(self):
        sim = Simulator()
        topo = build_figure2_topology(sim)
        ctx, _ = SecurityContext.pair(b"m", b"s")
        with pytest.raises(DocError):
            DocClient(sim, topo.clients[0].bind(),
                      (topo.resolver_host.address, 5683),
                      method=Code.GET, oscore_context=ctx)

    def test_nxdomain_is_resolved_with_empty_answers(self):
        sim = Simulator(seed=5)
        topo = build_figure2_topology(sim)
        DocServer(sim, topo.resolver_host.bind(5683), RecursiveResolver(Zone()))
        client = DocClient(sim, topo.clients[0].bind(),
                           (topo.resolver_host.address, 5683))
        results = []
        client.resolve("missing.example.org", RecordType.AAAA,
                       lambda r, e: results.append((r, e)))
        sim.run(until=60)
        result, error = results[0]
        assert error is None
        assert result.addresses == []
        from repro.dns import Rcode

        assert result.response.flags.rcode == Rcode.NXDOMAIN


class TestSecurity:
    def test_oscore_end_to_end(self):
        results, _ = _run(oscore=True)
        for result, error in results:
            assert error is None
            assert result.response.min_ttl() == 300

    def test_oscore_with_echo_round(self):
        results, _ = _run(oscore=True, echo=True)
        assert all(e is None for _, e in results)
        # The first resolution pays the extra Echo round trip.
        times = [r.resolution_time for r, _ in results]
        assert times[0] > times[1]

    def test_coaps_end_to_end(self):
        results, _ = _run(dtls=True)
        for result, error in results:
            assert error is None

    def test_oscore_payload_encrypted_on_wire(self):
        sim = Simulator(seed=7)
        topo = build_figure2_topology(sim)
        resolver = RecursiveResolver(_zone())
        ctx_client, ctx_server = SecurityContext.pair(b"m", b"s")
        DocServer(sim, topo.resolver_host.bind(5683), resolver,
                  oscore_context=ctx_server)
        client = DocClient(sim, topo.clients[0].bind(),
                           (topo.resolver_host.address, 5683),
                           oscore_context=ctx_client)
        client.resolve("name00.iot.example.org", RecordType.AAAA, lambda r, e: None)
        sim.run(until=30)
        # The DNS name must not appear in any sniffed frame.
        for record in topo.sniffer.records:
            pass
        # (Frame contents are not retained by the sniffer; check via a
        # protected request instead.)
        from repro.dns import make_query
        from repro.oscore import protect_request
        from repro.coap import CoapMessage

        wire = make_query("name00.iot.example.org", txid=0).encode()
        request = CoapMessage.request(Code.FETCH, "/dns", payload=wire)
        outer, _ = protect_request(ctx_client, request)
        assert b"iot" not in outer.encode()


class TestDocCaching:
    def test_client_coap_cache_hit(self):
        results, client = _run(coap_cache=True, names=3, loss=0.0, seed=11)
        # All three queries target distinct names here; re-run same name:
        assert all(e is None for _, e in results)

    def test_same_name_hits_coap_cache(self):
        sim = Simulator(seed=13)
        topo = build_figure2_topology(sim)
        resolver = RecursiveResolver(_zone())
        server = DocServer(sim, topo.resolver_host.bind(5683), resolver)
        client = DocClient(sim, topo.clients[0].bind(),
                           (topo.resolver_host.address, 5683),
                           coap_cache=CoapCache(8))
        results = []
        for delay in (0.0, 1.0, 2.0):
            sim.schedule(delay, client.resolve, "name00.iot.example.org",
                         RecordType.AAAA, lambda r, e: results.append((r, e)))
        sim.run(until=60)
        assert all(e is None for _, e in results)
        assert server.queries_handled == 1
        hits = [e for e in client.coap.events if e.kind == "cache_hit"]
        assert len(hits) == 2

    def test_coap_cache_ttl_decrement_via_max_age(self):
        """A cached response aged 10 s must yield TTLs lowered by 10 s."""
        sim = Simulator(seed=17)
        topo = build_figure2_topology(sim)
        resolver = RecursiveResolver(_zone(ttl=30))
        DocServer(sim, topo.resolver_host.bind(5683), resolver)
        client = DocClient(sim, topo.clients[0].bind(),
                           (topo.resolver_host.address, 5683),
                           coap_cache=CoapCache(8))
        results = []
        sim.schedule(0.0, client.resolve, "name00.iot.example.org",
                     RecordType.AAAA, lambda r, e: results.append(r))
        sim.schedule(10.0, client.resolve, "name00.iot.example.org",
                     RecordType.AAAA, lambda r, e: results.append(r))
        sim.run(until=60)
        assert results[0].response.min_ttl() == 30
        assert results[1].response.min_ttl() in (19, 20)  # aged copy

    def test_dns_cache_short_circuits(self):
        sim = Simulator(seed=19)
        topo = build_figure2_topology(sim)
        resolver = RecursiveResolver(_zone())
        server = DocServer(sim, topo.resolver_host.bind(5683), resolver)
        client = DocClient(sim, topo.clients[0].bind(),
                           (topo.resolver_host.address, 5683),
                           dns_cache=DNSCache(8))
        results = []
        for delay in (0.0, 5.0):
            sim.schedule(delay, client.resolve, "name00.iot.example.org",
                         RecordType.AAAA, lambda r, e: results.append((r, e)))
        sim.run(until=60)
        assert server.queries_handled == 1
        assert results[1][0].from_cache

    def test_server_validation_2_03(self):
        """A stale client cache entry revalidates: the server answers
        2.03 Valid and the client revives the cached payload."""
        sim = Simulator(seed=23)
        topo = build_figure2_topology(sim)
        resolver = RecursiveResolver(_zone(ttl=5))
        server = DocServer(sim, topo.resolver_host.bind(5683), resolver,
                           scheme=CachingScheme.EOL_TTLS)
        client = DocClient(sim, topo.clients[0].bind(),
                           (topo.resolver_host.address, 5683),
                           coap_cache=CoapCache(8))
        results = []
        sim.schedule(0.0, client.resolve, "name00.iot.example.org",
                     RecordType.AAAA, lambda r, e: results.append((r, e)))
        sim.schedule(10.0, client.resolve, "name00.iot.example.org",
                     RecordType.AAAA, lambda r, e: results.append((r, e)))
        sim.run(until=60)
        assert all(e is None for _, e in results)
        assert server.validations_sent == 1
        validations = [e for e in client.coap.events if e.kind == "validation"]
        assert len(validations) == 1


class TestCborFormat:
    def test_cbor_content_format_end_to_end(self):
        results, _ = _run(content_format=ContentFormat.DNS_CBOR)
        for result, error in results:
            assert error is None
            assert result.addresses[0].startswith("2001:db8::")
            assert result.response.min_ttl() == 300

    def test_cbor_reduces_frames(self):
        def frames_for(content_format, seed=29):
            sim = Simulator(seed=seed)
            topo = build_figure2_topology(sim)
            DocServer(sim, topo.resolver_host.bind(5683),
                      RecursiveResolver(_zone()))
            client = DocClient(sim, topo.clients[0].bind(),
                               (topo.resolver_host.address, 5683),
                               content_format=content_format)
            client.resolve("name00.iot.example.org", RecordType.AAAA,
                           lambda r, e: None)
            sim.run(until=30)
            return len(topo.sniffer.records), sum(
                r.length for r in topo.sniffer.records
            )

        frames_wire, bytes_wire = frames_for(ContentFormat.DNS_MESSAGE)
        frames_cbor, bytes_cbor = frames_for(ContentFormat.DNS_CBOR)
        assert bytes_cbor < bytes_wire


class TestBlockwiseDoc:
    def test_blockwise_resolution(self):
        results, _ = _run(block_size=32, loss=0.0)
        for result, error in results:
            assert error is None
            assert result.addresses
