"""CoAP codec tests: header, options, codes, factories."""

import pytest
from hypothesis import given, strategies as st

from repro.coap import (
    CoapMessage,
    CoapMessageError,
    Code,
    ContentFormat,
    MessageType,
    OptionNumber,
    decode_options,
    encode_options,
)
from repro.coap.options import OptionError, decode_uint, encode_uint, option_def


class TestCodes:
    def test_dotted_notation(self):
        assert Code.CONTENT.dotted == "2.05"
        assert Code.VALID.dotted == "2.03"
        assert Code.CONTINUE.dotted == "2.31"
        assert Code.UNAUTHORIZED.dotted == "4.01"

    def test_request_classification(self):
        assert Code.FETCH.is_request
        assert Code.GET.is_request
        assert not Code.CONTENT.is_request
        assert not Code.EMPTY.is_request

    def test_response_classification(self):
        assert Code.CONTENT.is_response
        assert Code.NOT_FOUND.is_response
        assert not Code.FETCH.is_response

    def test_success_classification(self):
        assert Code.VALID.is_success
        assert not Code.BAD_REQUEST.is_success


class TestOptionEncoding:
    def test_uint_shortest_form(self):
        assert encode_uint(0) == b""
        assert encode_uint(1) == b"\x01"
        assert encode_uint(256) == b"\x01\x00"
        assert decode_uint(b"") == 0
        assert decode_uint(b"\x01\x00") == 256

    def test_negative_uint_rejected(self):
        with pytest.raises(OptionError):
            encode_uint(-1)

    def test_delta_extended_13(self):
        # Option 14 (Max-Age) needs the 13+ext encoding from delta 0.
        data = encode_options([(14, b"\x3c")])
        assert data[0] >> 4 == 13
        options, _ = decode_options(data)
        assert options == [(14, b"\x3c")]

    def test_delta_extended_14(self):
        data = encode_options([(1000, b"")])
        options, _ = decode_options(data)
        assert options == [(1000, b"")]

    def test_large_value_length(self):
        value = bytes(300)
        options, _ = decode_options(encode_options([(11, value)]))
        assert options == [(11, value)]

    def test_options_sorted_on_encode(self):
        data = encode_options([(27, b"\x01"), (11, b"dns"), (12, b"")])
        options, _ = decode_options(data)
        assert [n for n, _ in options] == [11, 12, 27]

    def test_repeated_option_preserved(self):
        data = encode_options([(11, b"a"), (11, b"b")])
        options, _ = decode_options(data)
        assert options == [(11, b"a"), (11, b"b")]

    def test_payload_marker_with_empty_payload_rejected(self):
        with pytest.raises(OptionError):
            decode_options(b"\xff")

    def test_reserved_nibble_rejected(self):
        with pytest.raises(OptionError):
            decode_options(b"\xf0")

    def test_option_properties(self):
        assert OptionNumber.URI_PATH.is_critical
        assert not OptionNumber.MAX_AGE.is_critical
        assert option_def(OptionNumber.ETAG).repeatable
        assert option_def(9999) is None

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=2000),
                st.binary(max_size=40),
            ),
            max_size=8,
        )
    )
    def test_round_trip_property(self, options):
        encoded = encode_options(options)
        decoded, _ = decode_options(encoded)
        assert sorted(decoded) == sorted((n, bytes(v)) for n, v in options)


class TestMessageCodec:
    def _message(self):
        return (
            CoapMessage.request(
                Code.FETCH, "/dns", mid=0x1234, token=b"\xAA\xBB",
                payload=b"body",
            )
            .with_uint_option(OptionNumber.CONTENT_FORMAT, 553)
            .with_uint_option(OptionNumber.MAX_AGE, 30)
        )

    def test_round_trip(self):
        message = self._message()
        decoded = CoapMessage.decode(message.encode())
        assert decoded.code == Code.FETCH
        assert decoded.mid == 0x1234
        assert decoded.token == b"\xAA\xBB"
        assert decoded.payload == b"body"
        assert decoded.uri_path == "/dns"
        assert decoded.content_format == 553
        assert decoded.max_age == 30

    def test_header_is_four_bytes_plus_token(self):
        message = CoapMessage(code=Code.GET, mid=1, token=b"\x01")
        assert len(message.encode()) == 5

    def test_empty_message(self):
        message = CoapMessage(mtype=MessageType.ACK, code=Code.EMPTY, mid=7)
        decoded = CoapMessage.decode(message.encode())
        assert decoded.code == Code.EMPTY
        assert decoded.mid == 7

    def test_empty_with_payload_rejected(self):
        data = CoapMessage(mtype=MessageType.ACK, code=Code.EMPTY, mid=7).encode()
        with pytest.raises(CoapMessageError):
            CoapMessage.decode(data + b"\xff\x01")

    def test_token_length_cap(self):
        with pytest.raises(CoapMessageError):
            CoapMessage(code=Code.GET, token=bytes(9)).encode()

    def test_version_check(self):
        data = bytearray(self._message().encode())
        data[0] = (2 << 6) | (data[0] & 0x3F)
        with pytest.raises(CoapMessageError):
            CoapMessage.decode(bytes(data))

    def test_unknown_code_rejected(self):
        data = bytearray(self._message().encode())
        data[1] = 0x3F
        with pytest.raises(CoapMessageError):
            CoapMessage.decode(bytes(data))

    def test_multi_segment_path(self):
        message = CoapMessage.request(Code.GET, "/a/b/c")
        assert CoapMessage.decode(message.encode()).uri_path == "/a/b/c"

    def test_uri_queries(self):
        message = CoapMessage.request(Code.GET, "/dns").with_option(
            OptionNumber.URI_QUERY, b"dns=AAE"
        )
        assert CoapMessage.decode(message.encode()).uri_queries == ["dns=AAE"]

    def test_with_without_option(self):
        message = self._message().without_option(OptionNumber.MAX_AGE)
        assert message.max_age is None
        message = message.replace_uint_option(OptionNumber.MAX_AGE, 99)
        assert message.max_age == 99

    def test_etags_accessor(self):
        message = self._message().with_option(OptionNumber.ETAG, b"\x01").with_option(
            OptionNumber.ETAG, b"\x02"
        )
        assert message.etags == [b"\x01", b"\x02"]
        assert message.etag == b"\x01"

    def test_make_response_piggyback(self):
        request = self._message()
        response = request.make_response(Code.CONTENT, payload=b"x")
        assert response.mtype == MessageType.ACK
        assert response.mid == request.mid
        assert response.token == request.token

    def test_make_response_non(self):
        request = CoapMessage.request(Code.GET, "/x", confirmable=False)
        assert request.make_response(Code.CONTENT).mtype == MessageType.NON

    def test_make_ack_and_reset(self):
        request = self._message()
        assert request.make_ack().code == Code.EMPTY
        assert request.make_ack().mid == request.mid
        assert request.make_reset().mtype == MessageType.RST

    def test_request_factory_validates_code(self):
        with pytest.raises(CoapMessageError):
            CoapMessage.request(Code.CONTENT, "/x")

    def test_content_format_registry(self):
        assert ContentFormat.DNS_MESSAGE == 553

    @given(st.binary(max_size=64), st.binary(max_size=8))
    def test_payload_token_round_trip(self, payload, token):
        message = CoapMessage(
            code=Code.POST, mid=1, token=token, payload=payload
        )
        if not payload:
            decoded = CoapMessage.decode(message.encode())
            assert decoded.payload == b""
        else:
            decoded = CoapMessage.decode(message.encode())
            assert decoded.payload == payload
        assert decoded.token == token
