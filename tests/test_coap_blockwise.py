"""Block-wise transfer tests (RFC 7959)."""

import pytest
from hypothesis import given, strategies as st

from repro.coap.blockwise import (
    Block,
    BlockAssembler,
    BlockError,
    VALID_BLOCK_SIZES,
    block_for,
    split_body,
)


class TestBlockOption:
    def test_szx_mapping(self):
        assert VALID_BLOCK_SIZES == (16, 32, 64, 128, 256, 512, 1024)
        assert Block(0, False, 16).szx == 0
        assert Block(0, False, 1024).szx == 6

    def test_encode_decode_round_trip(self):
        for size in VALID_BLOCK_SIZES:
            for number in (0, 1, 15, 16, 4095):
                for more in (False, True):
                    block = Block(number, more, size)
                    assert Block.decode(block.encode()) == block

    def test_zero_block_empty_encoding(self):
        assert Block(0, False, 16).encode() == b""
        assert Block.decode(b"") == Block(0, False, 16)

    def test_paper_notation(self):
        assert str(Block(2, False, 32)) == "2/0/32"
        assert str(Block(1, True, 32)) == "1/1/32"

    def test_offset(self):
        assert Block(3, True, 32).offset == 96

    def test_invalid_size_rejected(self):
        with pytest.raises(BlockError):
            Block(0, False, 48)

    def test_szx7_rejected(self):
        with pytest.raises(BlockError):
            Block.decode(b"\x0f")

    def test_number_range(self):
        with pytest.raises(BlockError):
            Block(1 << 20, False, 16)

    def test_long_option_rejected(self):
        with pytest.raises(BlockError):
            Block.decode(bytes(4))


class TestSplitting:
    def test_split_exact_multiple(self):
        blocks = split_body(bytes(64), 32)
        assert [len(b) for b in blocks] == [32, 32]

    def test_split_remainder(self):
        blocks = split_body(bytes(70), 32)
        assert [len(b) for b in blocks] == [32, 32, 6]

    def test_empty_body_single_block(self):
        assert split_body(b"", 16) == [b""]

    def test_block_for_more_flag(self):
        block, chunk = block_for(bytes(70), 0, 32)
        assert block.more and len(chunk) == 32
        block, chunk = block_for(bytes(70), 2, 32)
        assert not block.more and len(chunk) == 6

    def test_block_for_out_of_range(self):
        with pytest.raises(BlockError):
            block_for(bytes(70), 3, 32)


class TestAssembler:
    def test_complete_assembly(self):
        body = bytes(range(100))
        assembler = BlockAssembler()
        for number in range(4):
            block, chunk = block_for(body, number, 32)
            done = assembler.add(block, chunk)
        assert done
        assert assembler.body() == body

    def test_single_block(self):
        assembler = BlockAssembler()
        assert assembler.add(Block(0, False, 32), b"short")
        assert assembler.body() == b"short"

    def test_must_start_at_zero(self):
        with pytest.raises(BlockError):
            BlockAssembler().add(Block(1, True, 32), bytes(32))

    def test_out_of_order_rejected(self):
        assembler = BlockAssembler()
        assembler.add(Block(0, True, 32), bytes(32))
        with pytest.raises(BlockError):
            assembler.add(Block(2, True, 32), bytes(32))

    def test_size_switch_rejected(self):
        assembler = BlockAssembler()
        assembler.add(Block(0, True, 32), bytes(32))
        with pytest.raises(BlockError):
            assembler.add(Block(1, True, 16), bytes(16))

    def test_short_intermediate_block_rejected(self):
        assembler = BlockAssembler()
        with pytest.raises(BlockError):
            assembler.add(Block(0, True, 32), bytes(31))

    def test_incomplete_body_raises(self):
        assembler = BlockAssembler()
        assembler.add(Block(0, True, 32), bytes(32))
        with pytest.raises(BlockError):
            assembler.body()

    def test_add_after_complete_rejected(self):
        assembler = BlockAssembler()
        assembler.add(Block(0, False, 32), b"x")
        with pytest.raises(BlockError):
            assembler.add(Block(1, False, 32), b"y")

    def test_reset(self):
        assembler = BlockAssembler()
        assembler.add(Block(0, False, 32), b"x")
        assembler.reset()
        assert not assembler.complete
        assembler.add(Block(0, False, 32), b"y")
        assert assembler.body() == b"y"

    @given(st.binary(min_size=1, max_size=500), st.sampled_from([16, 32, 64]))
    def test_split_assemble_round_trip(self, body, size):
        assembler = BlockAssembler()
        blocks = split_body(body, size)
        for number in range(len(blocks)):
            block, chunk = block_for(body, number, size)
            assembler.add(block, chunk)
        assert assembler.body() == body

    @given(st.binary(max_size=300), st.sampled_from([16, 32, 64, 128]))
    def test_split_covers_body(self, body, size):
        blocks = split_body(body, size)
        assert b"".join(blocks) == body
        for chunk in blocks[:-1]:
            assert len(chunk) == size
