"""Parallel sweep execution: determinism and plumbing.

The acceptance bar for the parallel executor is bit-identical results:
``sweep(workers=4)`` must produce exactly the metrics of
``sweep(workers=1)`` for a grid that exercises the cache-placement and
scheme axes, because every cell seeds its own simulator and no state
crosses cells.
"""

from repro.experiments import ExperimentConfig, run_repeated
from repro.scenarios import Scenario, ScenarioRunner, WorkloadSpec


def _small_base() -> Scenario:
    return Scenario(
        workload=WorkloadSpec(num_queries=8, num_names=8),
        run_duration=120.0,
    )


class TestParallelSweepDeterminism:
    def test_process_pool_matches_serial_with_cache_axes(self):
        runner = ScenarioRunner()
        grid = dict(
            base=_small_base(),
            transports=("coap",),
            topologies=("figure2",),
            losses=(0.05,),
            cache_placements=("none", "client-coap+proxy"),
            schemes=("doh-like", "eol-ttls"),
        )
        serial = runner.sweep(**grid, workers=1)
        parallel = runner.sweep(**grid, workers=4)
        assert len(serial) == len(parallel) == 4
        serial_metrics = serial.metrics()
        parallel_metrics = parallel.metrics()
        # Same cells in the same grid order, and bit-identical metric
        # values (floats included — the simulations are deterministic).
        assert list(serial_metrics) == list(parallel_metrics)
        assert serial_metrics == parallel_metrics

    def test_explicit_process_executor_name(self):
        runner = ScenarioRunner()
        grid = dict(
            base=_small_base(),
            transports=("udp", "coap"),
            topologies=("one-hop",),
            losses=(0.05,),
        )
        serial = runner.sweep(**grid, executor="serial")
        process = runner.sweep(**grid, executor="process", workers=2)
        assert serial.metrics() == process.metrics()

    def test_enumerate_cells_is_pure(self):
        runner = ScenarioRunner()
        cells = runner.enumerate_cells(
            base=_small_base(),
            transports=("coap",),
            topologies=("figure2",),
            losses=(0.05, 0.25),
        )
        assert [cell.result for cell in cells] == [None, None]
        assert [cell.scenario.topology.loss for cell in cells] == [0.05, 0.25]

    def test_sweep_cells_use_counting_capture(self):
        # Sweep metrics only read aggregate frame tallies; the cells
        # must still report non-zero link utilisation through them.
        runner = ScenarioRunner()
        sweep = runner.sweep(
            base=_small_base(),
            transports=("coap",),
            topologies=("figure2",),
            losses=(0.0,),
        )
        metrics = sweep.cell("coap", "figure2", 0.0).metrics()
        assert metrics["frames_1hop"] > 0
        assert metrics["bytes_2hop"] > 0
        assert metrics["success_rate"] == 1.0


class TestRepeatedRunsParallel:
    def test_run_repeated_workers_match_serial(self):
        config = ExperimentConfig(num_queries=6, num_names=6)
        serial = run_repeated(config, runs=3)
        parallel = run_repeated(config, runs=3, workers=3)
        assert [r.resolution_times for r in serial] == [
            r.resolution_times for r in parallel
        ]
        assert [r.link.frames_1hop for r in serial] == [
            r.link.frames_1hop for r in parallel
        ]
