"""DNS substrate tests: names, rdata, messages, cache, zone, resolver."""

import pytest
from hypothesis import given, strategies as st

from repro.dns import (
    AData,
    AAAAData,
    CNAMEData,
    DNSCache,
    DNSClass,
    Flags,
    HTTPSData,
    Message,
    NSData,
    NameError_,
    OPTData,
    PTRData,
    Question,
    RawData,
    Rcode,
    RecordType,
    RecursiveResolver,
    ResourceRecord,
    SOAData,
    SRVData,
    StubResolver,
    TXTData,
    Zone,
    ZoneRecord,
    decode_name,
    encode_name,
    make_query,
    split_name,
)
from repro.dns.resolver import extract_addresses


class TestNames:
    def test_simple_round_trip(self):
        wire = encode_name("example.org")
        name, offset = decode_name(wire, 0)
        assert name == "example.org"
        assert offset == len(wire)

    def test_root_name(self):
        assert encode_name("") == b"\x00"
        assert encode_name(".") == b"\x00"
        assert decode_name(b"\x00", 0) == ("", 1)

    def test_trailing_dot_equivalent(self):
        assert encode_name("a.b.") == encode_name("a.b")

    def test_label_too_long(self):
        with pytest.raises(NameError_):
            split_name("a" * 64 + ".org")

    def test_name_too_long(self):
        with pytest.raises(NameError_):
            split_name(".".join(["abcdefgh"] * 32))

    def test_empty_label_rejected(self):
        with pytest.raises(NameError_):
            split_name("a..b")

    def test_compression_pointer(self):
        table = {}
        first = encode_name("www.example.org", table, 0)
        second = encode_name("mail.example.org", table, len(first))
        # second should end with a 2-byte pointer to "example.org".
        assert len(second) < len(encode_name("mail.example.org"))
        data = first + second
        name, _ = decode_name(data, len(first))
        assert name == "mail.example.org"

    def test_pointer_to_full_name(self):
        table = {}
        first = encode_name("example.org", table, 0)
        second = encode_name("example.org", table, len(first))
        assert second == bytes([0xC0, 0x00])

    def test_forward_pointer_rejected(self):
        data = bytes([0xC0, 0x04, 0x00, 0x00, 0x00])
        with pytest.raises(NameError_):
            decode_name(data, 0)

    def test_pointer_loop_rejected(self):
        # name at 2 points to 0 which points to 2.
        data = bytes([0xC0, 0x02, 0xC0, 0x00])
        with pytest.raises(NameError_):
            decode_name(data, 2)

    def test_truncated_label_rejected(self):
        with pytest.raises(NameError_):
            decode_name(b"\x05ab", 0)

    @given(
        st.lists(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=20),
            min_size=1,
            max_size=5,
        )
    )
    def test_round_trip_property(self, labels):
        name = ".".join(labels)
        if len(name) > 255:
            return
        decoded, _ = decode_name(encode_name(name), 0)
        assert decoded == name


class TestRdata:
    def test_a_round_trip(self):
        data = AData("192.0.2.1").encode()
        assert len(data) == 4
        assert AData.decode(data, 0, 4).address == "192.0.2.1"

    def test_aaaa_round_trip(self):
        data = AAAAData("2001:db8::1").encode()
        assert len(data) == 16
        assert AAAAData.decode(data, 0, 16).address == "2001:db8::1"

    def test_a_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            AData.decode(bytes(3), 0, 3)

    @pytest.mark.parametrize("cls", [NSData, CNAMEData, PTRData])
    def test_name_rdata_round_trip(self, cls):
        data = cls("ns1.example.org").encode()
        assert cls.decode(data, 0, len(data)).target == "ns1.example.org"

    def test_soa_round_trip(self):
        soa = SOAData("ns1.example.org", "admin.example.org", 1, 2, 3, 4, 5)
        data = soa.encode()
        decoded = SOAData.decode(data, 0, len(data))
        assert decoded == soa

    def test_txt_round_trip(self):
        txt = TXTData((b"hello", b"world"))
        data = txt.encode()
        assert TXTData.decode(data, 0, len(data)) == txt

    def test_txt_string_too_long(self):
        with pytest.raises(ValueError):
            TXTData((b"x" * 256,))

    def test_srv_round_trip(self):
        srv = SRVData(10, 20, 8080, "service.example.org")
        data = srv.encode()
        assert SRVData.decode(data, 0, len(data)) == srv

    def test_https_round_trip(self):
        https = HTTPSData(1, "svc.example.org", ((1, b"\x02h2"),))
        data = https.encode()
        assert HTTPSData.decode(data, 0, len(data)) == https

    def test_opt_round_trip(self):
        opt = OPTData(((10, b"cookie"),))
        data = opt.encode()
        assert OPTData.decode(data, 0, len(data)) == opt

    def test_raw_fallback(self):
        raw = RawData(b"\x01\x02\x03")
        assert RawData.decode(raw.encode(), 0, 3) == raw


class TestMessage:
    def _response(self, ttls=(300, 60)):
        return Message(
            id=0x1234,
            flags=Flags(qr=True, ra=True),
            questions=(Question("example.org", RecordType.AAAA),),
            answers=tuple(
                ResourceRecord(
                    "example.org", RecordType.AAAA, DNSClass.IN, ttl,
                    AAAAData(f"2001:db8::{i + 1}"),
                )
                for i, ttl in enumerate(ttls)
            ),
        )

    def test_query_round_trip(self):
        query = make_query("example.org", RecordType.A, txid=99)
        decoded = Message.decode(query.encode())
        assert decoded.id == 99
        assert decoded.questions[0].name == "example.org"
        assert decoded.questions[0].rtype == RecordType.A
        assert not decoded.flags.qr
        assert decoded.flags.rd

    def test_response_round_trip(self):
        response = self._response()
        decoded = Message.decode(response.encode())
        assert decoded.flags.qr
        assert len(decoded.answers) == 2
        assert extract_addresses(decoded) == ["2001:db8::1", "2001:db8::2"]

    def test_compression_shrinks_message(self):
        response = self._response()
        assert len(response.encode(compress=True)) < len(
            response.encode(compress=False)
        )

    def test_with_id(self):
        assert self._response().with_id(0).id == 0

    def test_with_ttls_zero(self):
        zeroed = self._response().with_ttls(0)
        assert all(r.ttl == 0 for r in zeroed.answers)

    def test_adjust_ttls_floors_at_zero(self):
        adjusted = self._response(ttls=(10, 600)).adjust_ttls(-100)
        assert [r.ttl for r in adjusted.answers] == [0, 500]

    def test_min_ttl(self):
        assert self._response(ttls=(300, 60)).min_ttl() == 60
        assert make_query("a.org").min_ttl() is None

    def test_opt_ttl_not_rewritten(self):
        message = Message(
            answers=(
                ResourceRecord("", RecordType.OPT, 4096, 0x8000, OPTData()),
            )
        )
        assert message.with_ttls(0).answers[0].ttl == 0x8000

    def test_flags_bits_round_trip(self):
        flags = Flags(qr=True, aa=True, tc=True, rd=False, ra=True, ad=True,
                      cd=True, rcode=Rcode.NXDOMAIN)
        assert Flags.decode(flags.encode()) == flags

    def test_truncated_message_rejected(self):
        with pytest.raises(ValueError):
            Message.decode(bytes(11))

    def test_question_cache_key_case_insensitive(self):
        a = Question("Example.ORG", RecordType.A).cache_key()
        b = Question("example.org", RecordType.A).cache_key()
        assert a == b

    def test_authority_and_additional_sections(self):
        message = Message(
            flags=Flags(qr=True),
            questions=(Question("example.org"),),
            authorities=(
                ResourceRecord("org", RecordType.NS, DNSClass.IN, 300,
                               NSData("ns.org")),
            ),
            additionals=(
                ResourceRecord("ns.org", RecordType.A, DNSClass.IN, 300,
                               AData("192.0.2.53")),
            ),
        )
        decoded = Message.decode(message.encode())
        assert decoded.authorities[0].rdata.target == "ns.org"
        assert decoded.additionals[0].rdata.address == "192.0.2.53"


class TestDnsCache:
    def _response(self, ttl=60):
        return Message(
            flags=Flags(qr=True),
            questions=(Question("example.org", RecordType.AAAA),),
            answers=(
                ResourceRecord("example.org", RecordType.AAAA, DNSClass.IN,
                               ttl, AAAAData("2001:db8::1")),
            ),
        )

    def test_store_and_fresh_lookup(self):
        cache = DNSCache(4)
        q = Question("example.org", RecordType.AAAA)
        cache.store(q, self._response(60), now=0.0)
        hit = cache.lookup(q, now=10.0)
        assert hit is not None
        assert hit.answers[0].ttl == 50  # aged

    def test_expiry(self):
        cache = DNSCache(4)
        q = Question("example.org", RecordType.AAAA)
        cache.store(q, self._response(5), now=0.0)
        assert cache.lookup(q, now=6.0) is None

    def test_zero_ttl_not_cached(self):
        cache = DNSCache(4)
        q = Question("example.org", RecordType.AAAA)
        cache.store(q, self._response(0), now=0.0)
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = DNSCache(2)
        for i in range(3):
            q = Question(f"n{i}.org", RecordType.AAAA)
            r = Message(
                flags=Flags(qr=True), questions=(q,),
                answers=(ResourceRecord(f"n{i}.org", RecordType.AAAA,
                                        DNSClass.IN, 60, AAAAData("2001:db8::1")),),
            )
            cache.store(q, r, now=0.0)
        assert len(cache) == 2
        assert cache.lookup(Question("n0.org", RecordType.AAAA), now=1.0) is None
        assert cache.lookup(Question("n2.org", RecordType.AAAA), now=1.0) is not None

    def test_hit_miss_counters(self):
        cache = DNSCache(4)
        q = Question("example.org", RecordType.AAAA)
        cache.lookup(q, 0.0)
        cache.store(q, self._response(60), now=0.0)
        cache.lookup(q, 1.0)
        assert cache.misses == 1 and cache.hits == 1

    def test_expire_sweep(self):
        cache = DNSCache(4)
        q = Question("example.org", RecordType.AAAA)
        cache.store(q, self._response(5), now=0.0)
        assert cache.expire(now=10.0) == 1
        assert len(cache) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DNSCache(0)


class TestZoneAndResolver:
    def _zone(self):
        zone = Zone()
        zone.add_address("a.example.org", "2001:db8::1", ttl=300)
        zone.add_address("a.example.org", "192.0.2.1", ttl=300)
        zone.add_address("b.example.org", "2001:db8::2", ttl=60)
        return zone

    def test_lookup_by_type(self):
        zone = self._zone()
        assert len(zone.lookup("a.example.org", RecordType.AAAA)) == 1
        assert len(zone.lookup("a.example.org", RecordType.A)) == 1

    def test_any_lookup(self):
        assert len(self._zone().lookup("a.example.org", RecordType.ANY)) == 2

    def test_case_insensitive(self):
        assert self._zone().lookup("A.Example.ORG", RecordType.AAAA)

    def test_set_ttl(self):
        zone = self._zone()
        assert zone.set_ttl("a.example.org", RecordType.AAAA, 10) == 1
        assert zone.lookup("a.example.org", RecordType.AAAA)[0].ttl == 10

    def test_names_listing(self):
        assert self._zone().names() == ["a.example.org", "b.example.org"]

    def test_resolve_success(self):
        resolver = RecursiveResolver(self._zone())
        response = resolver.resolve(make_query("a.example.org", txid=7), now=0.0)
        assert response.id == 7
        assert response.flags.qr
        assert extract_addresses(response) == ["2001:db8::1"]

    def test_resolve_nxdomain(self):
        resolver = RecursiveResolver(self._zone())
        response = resolver.resolve(make_query("missing.org"), now=0.0)
        assert response.flags.rcode == Rcode.NXDOMAIN

    def test_resolver_cache_ages_ttls(self):
        resolver = RecursiveResolver(self._zone())
        resolver.resolve(make_query("b.example.org"), now=0.0)
        aged = resolver.resolve(make_query("b.example.org"), now=10.0)
        assert aged.answers[0].ttl == 50
        assert resolver.stats.cache_hits == 1

    def test_multiple_questions_formerr(self):
        query = Message(
            questions=(Question("a.org"), Question("b.org")),
        )
        resolver = RecursiveResolver(self._zone())
        assert resolver.resolve(query, 0.0).flags.rcode == Rcode.FORMERR

    def test_empty_question_formerr(self):
        resolver = RecursiveResolver(self._zone())
        assert resolver.resolve(Message(), 0.0).flags.rcode == Rcode.FORMERR

    def test_stub_validates_mismatched_question(self):
        stub = StubResolver()
        response = Message(
            flags=Flags(qr=True),
            questions=(Question("other.org", RecordType.AAAA),),
        )
        with pytest.raises(ValueError):
            stub.handle_response(Question("a.org", RecordType.AAAA), response, 0.0)

    def test_stub_requires_qr_flag(self):
        stub = StubResolver()
        with pytest.raises(ValueError):
            stub.handle_response(
                Question("a.org"), make_query("a.org"), 0.0
            )

    def test_stub_populates_cache(self):
        cache = DNSCache(4)
        stub = StubResolver(cache)
        resolver = RecursiveResolver(self._zone())
        q = Question("a.example.org", RecordType.AAAA)
        response = resolver.resolve(make_query("a.example.org"), 0.0)
        result = stub.handle_response(q, response, 0.0)
        assert result.addresses == ["2001:db8::1"]
        assert stub.cached_response(q, 1.0) is not None
