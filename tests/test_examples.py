"""Every example script must run to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should print their findings"


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "secure_transports.py",
        "caching_proxy.py",
        "compressed_dns.py",
        "oscore_via_untrusted_proxy.py",
        "service_discovery.py",
    } <= names
