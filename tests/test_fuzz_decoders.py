"""Decoder fuzzing: arbitrary bytes must fail *cleanly*.

Every wire-format decoder in the repository is fed random and mutated
inputs; the contract is that they either return a valid object or raise
their documented error type — never IndexError/KeyError/struct.error,
which on a constrained device would be the moral equivalent of a crash.
"""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.cborlib import CBORDecodeError, loads
from repro.coap.message import CoapMessage, CoapMessageError
from repro.coap.options import OptionError, decode_options
from repro.dns.message import Message, MessageError
from repro.dns.name import NameError_, decode_name
from repro.dtls.record import DtlsError, RecordLayer, split_records
from repro.lowpan.fragmentation import FragmentationError, Reassembler
from repro.lowpan.iphc import IphcError, decompress, header_extents
from repro.oscore.option import OscoreOptionValue
from repro.oscore.context import OscoreError


@given(st.binary(max_size=200))
@example(b"")
@example(b"\xff" * 16)
def test_cbor_loads_clean_errors(data):
    try:
        loads(data)
    except CBORDecodeError:
        pass


@given(st.binary(max_size=200))
@example(b"")
def test_dns_message_decode_clean_errors(data):
    try:
        Message.decode(data)
    except (MessageError, NameError_, ValueError):
        pass


@given(st.binary(max_size=120), st.integers(0, 119))
def test_dns_name_decode_clean_errors(data, offset):
    try:
        decode_name(data, min(offset, len(data)))
    except (NameError_, ValueError):
        pass


@given(st.binary(max_size=200))
@example(b"")
@example(b"\x40\x01\x00\x00")
def test_coap_message_decode_clean_errors(data):
    try:
        CoapMessage.decode(data)
    except (CoapMessageError, OptionError, ValueError):
        pass


@given(st.binary(max_size=100))
def test_coap_options_decode_clean_errors(data):
    try:
        decode_options(data)
    except (OptionError, ValueError):
        pass


@given(st.binary(max_size=64))
def test_oscore_option_decode_clean_errors(data):
    try:
        OscoreOptionValue.decode(data)
    except OscoreError:
        pass


@given(st.binary(max_size=200))
def test_dtls_record_open_clean_errors(data):
    layer = RecordLayer()
    try:
        layer.open(data)
    except (DtlsError, ValueError):
        pass


@given(st.binary(max_size=300))
def test_dtls_split_records_clean_errors(data):
    try:
        split_records(data)
    except DtlsError:
        pass


@given(st.binary(min_size=1, max_size=150))
def test_iphc_decompress_clean_errors(data):
    try:
        decompress(data, 0x1111, 0x2222)
    except (IphcError, ValueError):
        pass


@given(st.binary(min_size=2, max_size=150))
def test_iphc_header_extents_clean_errors(data):
    try:
        header_extents(data)
    except (IphcError, ValueError, IndexError):
        # header_extents is only called on data that passed the FRAG1
        # dispatch check; IndexError on truncated input is tolerated by
        # its only caller, which treats any failure as "incomplete".
        pass


@given(st.binary(min_size=1, max_size=150), st.integers(0, 3))
def test_reassembler_push_clean_errors(data, sender):
    reassembler = Reassembler()
    try:
        reassembler.push(sender, data, now=0.0)
    except (FragmentationError, IphcError, ValueError):
        pass


class TestBytesMemoryviewParity:
    """The zero-copy contract: ``bytes`` and ``memoryview`` inputs are
    interchangeable — identical decode results, and on bad input the
    identical documented error type."""

    @staticmethod
    def _outcomes_match(decode, data, errors):
        """Decode *data* as bytes and as a memoryview; both sides must
        produce equal results or raise the same error type."""
        outcomes = []
        for variant in (data, memoryview(data)):
            try:
                outcomes.append(("ok", repr(decode(variant))))
            except errors as exc:
                outcomes.append(("err", type(exc).__name__))
        assert outcomes[0] == outcomes[1], outcomes
        return outcomes[0]

    @given(st.binary(max_size=200))
    @example(b"")
    def test_dns_parity(self, data):
        self._outcomes_match(
            Message.decode, data, (MessageError, NameError_, ValueError)
        )

    @given(st.binary(max_size=200))
    @example(b"")
    @example(b"\x40\x01\x00\x00")
    def test_coap_parity(self, data):
        self._outcomes_match(
            CoapMessage.decode, data,
            (CoapMessageError, OptionError, ValueError),
        )

    @given(st.binary(max_size=200))
    @example(b"")
    @example(b"\xff" * 16)
    def test_cbor_parity(self, data):
        self._outcomes_match(loads, data, (CBORDecodeError,))

    @given(st.integers(0, 80))
    def test_truncated_valid_dns_parity(self, cut):
        from repro.experiments.packet_sizes import canonical_messages

        wire = canonical_messages()["response_aaaa"].encode()
        self._outcomes_match(
            Message.decode, wire[: min(cut, len(wire))],
            (MessageError, NameError_, ValueError),
        )

    @given(st.integers(0, 60))
    def test_truncated_valid_coap_parity(self, cut):
        from repro.coap import Code

        wire = CoapMessage.request(
            Code.FETCH, "/dns", mid=7, token=b"\x01", payload=b"abc"
        ).with_uint_option(12, 553).encode()
        self._outcomes_match(
            CoapMessage.decode, wire[: min(cut, len(wire))],
            (CoapMessageError, OptionError, ValueError),
        )

    @given(st.integers(0, 30))
    def test_truncated_valid_cbor_parity(self, cut):
        from repro.cborlib import dumps

        wire = dumps({1: b"key", "name": ["example.org", 28]})
        self._outcomes_match(
            loads, wire[: min(cut, len(wire))], (CBORDecodeError,)
        )


class TestMutatedValidMessages:
    """Bit-flip valid messages and require clean handling."""

    @given(st.integers(0, 60), st.integers(0, 7))
    def test_mutated_dns_response(self, position, bit):
        from repro.experiments.packet_sizes import canonical_messages

        wire = bytearray(canonical_messages()["response_aaaa"].encode())
        position = min(position, len(wire) - 1)
        wire[position] ^= 1 << bit
        try:
            Message.decode(bytes(wire))
        except (MessageError, NameError_, ValueError):
            pass

    @given(st.integers(0, 40), st.integers(0, 7))
    def test_mutated_coap_message(self, position, bit):
        from repro.coap import Code

        message = CoapMessage.request(
            Code.FETCH, "/dns", mid=7, token=b"\x01", payload=b"abc"
        ).with_uint_option(12, 553)
        wire = bytearray(message.encode())
        position = min(position, len(wire) - 1)
        wire[position] ^= 1 << bit
        try:
            CoapMessage.decode(bytes(wire))
        except (CoapMessageError, OptionError, ValueError):
            pass
