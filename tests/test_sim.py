"""Simulator tests: event loop, radio medium, sniffer, workload."""

import random

import pytest

from repro.sim import RadioMedium, Simulator, Sniffer, poisson_arrival_times
from repro.sim.medium import PHY_OVERHEAD_BYTES


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fifo(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_run_until_stops(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 2)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, 1)
        event.cancel()
        sim.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [5.0]

    def test_schedule_at_past_time_rejected(self):
        sim = Simulator()
        errors = []

        def late() -> None:
            # At t=2.0, scheduling for t=1.0 is a past time: it must
            # raise instead of silently clamping to "now".
            try:
                sim.schedule_at(1.0, lambda: None)
            except ValueError as exc:
                errors.append(str(exc))

        sim.schedule(2.0, late)
        sim.run()
        assert len(errors) == 1
        assert "simulated time" in errors[0]

    def test_schedule_at_now_is_allowed(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule_at(1.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]

    def test_schedule_many_matches_sequential_order(self):
        batched = Simulator()
        fired_batched = []
        batched.schedule_many(
            (time, fired_batched.append, (tag,))
            for time, tag in [(2.0, "b"), (1.0, "a"), (2.0, "c"), (1.0, "d")]
        )
        batched.run()
        sequential = Simulator()
        fired_sequential = []
        for time, tag in [(2.0, "b"), (1.0, "a"), (2.0, "c"), (1.0, "d")]:
            sequential.schedule_at(time, fired_sequential.append, tag)
        sequential.run()
        # Same (time, sequence) keys -> identical pop order, including
        # the FIFO tie-break at equal timestamps.
        assert fired_batched == fired_sequential == ["a", "d", "b", "c"]

    def test_schedule_many_interleaves_with_singles(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, fired.append, "single")
        events = sim.schedule_many(
            [(1.0, fired.append, ("x",)), (2.0, fired.append, ("y",))]
        )
        assert len(events) == 2
        assert sim.pending() == 3
        sim.run()
        assert fired == ["x", "single", "y"]

    def test_schedule_many_rejects_past_times_atomically(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_many(
                [(3.0, fired.append, ("ok",)), (1.0, fired.append, ("past",))]
            )
        # All-or-nothing: the valid entry must not have been scheduled.
        assert sim.pending() == 0
        sim.run()
        assert fired == []

    def test_schedule_many_events_cancellable(self):
        sim = Simulator()
        fired = []
        events = sim.schedule_many(
            [(1.0, fired.append, (1,)), (2.0, fired.append, (2,))]
        )
        events[1].cancel()
        sim.run()
        assert fired == [1]

    def test_same_timestamp_callbacks_coalesce_under_compaction(self):
        # Same-timestamp pops coalesce inside run(); a callback that
        # triggers mass cancellation (hence heap compaction, which
        # replaces the heap list) must not break the batch in flight.
        sim = Simulator()
        fired = []
        doomed = [
            sim.schedule(5.0, fired.append, f"late{i}") for i in range(600)
        ]

        def cancel_all():
            fired.append("cancel")
            for event in doomed:
                event.cancel()

        sim.schedule_many(
            [(1.0, cancel_all, ()), (1.0, fired.append, ("after",))]
        )
        sim.run()
        assert fired == ["cancel", "after"]
        assert sim.pending() == 0

    def test_runaway_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError):
            sim.run(max_events=1000)

    def test_deterministic_rng(self):
        assert Simulator(seed=9).rng.random() == Simulator(seed=9).rng.random()

    def test_pending_count(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        event.cancel()
        assert sim.pending() == 1

    def test_cancel_after_fire_is_noop(self):
        """Cancelling an event that already ran must not corrupt the
        live-event counter (timers are often cancelled after firing)."""
        sim = Simulator()
        fired = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        fired.cancel()
        fired.cancel()
        assert sim.pending() == 1
        sim.run()
        assert sim.pending() == 0

    def test_pending_cancel_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending() == 0

    def test_pending_tracks_fired_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        assert sim.pending() == 1
        sim.run()
        assert sim.pending() == 0

    def test_pending_is_constant_time(self):
        """pending() reads a counter, not the heap."""
        sim = Simulator()
        for _ in range(1000):
            sim.schedule(1.0, lambda: None)
        heap_snapshot = list(sim._heap)
        assert sim.pending() == 1000
        assert sim._heap == heap_snapshot  # no scan side effects

    def test_mass_cancellation_compacts_heap(self):
        """Cancelled events are purged lazily so long sweeps don't
        accumulate dead heap entries."""
        sim = Simulator()
        events = [sim.schedule(1.0, lambda: None) for _ in range(1000)]
        keeper = sim.schedule(2.0, lambda: None)
        for event in events:
            event.cancel()
        assert sim.pending() == 1
        assert len(sim._heap) < 1000
        fired = []
        keeper.callback = lambda: fired.append(True)
        keeper.args = ()
        sim.run()
        assert fired == [True]

    def test_compaction_preserves_order(self):
        sim = Simulator()
        sim.COMPACT_MIN_SIZE  # class attr exists
        fired = []
        cancelled = [
            sim.schedule(0.5, fired.append, "dead") for _ in range(200)
        ]
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "c")
        for event in cancelled:
            event.cancel()
        sim.run()
        assert fired == ["a", "b", "c"]


class TestMedium:
    def _medium(self, loss=0.0, seed=1, retries=3):
        sim = Simulator(seed=seed)
        medium = RadioMedium(sim, l2_retries=retries)
        received = []
        medium.register("a", lambda src, f, md: received.append(("a", f)))
        medium.register("b", lambda src, f, md: received.append(("b", f)))
        medium.connect("a", "b", loss=loss)
        return sim, medium, received

    def test_delivery(self):
        sim, medium, received = self._medium()
        medium.transmit("a", "b", b"frame", {})
        sim.run()
        assert received == [("b", b"frame")]

    def test_airtime_at_250kbps(self):
        sim, medium, _ = self._medium()
        airtime = medium.airtime(127)
        expected = ((127 + PHY_OVERHEAD_BYTES + 11) * 8) / 250_000
        assert airtime == pytest.approx(expected)

    def test_channel_serialisation(self):
        """Two frames queued back-to-back occupy consecutive airtime."""
        sim, medium, received = self._medium()
        times = []
        medium.register("c", lambda *args: None)
        medium.connect("a", "c")
        medium.observer = lambda t, *args: times.append(t)
        medium.transmit("a", "b", bytes(100), {})
        medium.transmit("a", "c", bytes(100), {})
        sim.run()
        assert times[1] - times[0] == pytest.approx(medium.airtime(100))

    def test_unknown_link_rejected(self):
        _, medium, _ = self._medium()
        with pytest.raises(ValueError):
            medium.transmit("a", "zz", b"", {})

    def test_duplicate_interface_rejected(self):
        sim = Simulator()
        medium = RadioMedium(sim)
        medium.register("x", lambda *a: None)
        with pytest.raises(ValueError):
            medium.register("x", lambda *a: None)

    def test_loss_with_retries_recovers(self):
        sim, medium, received = self._medium(loss=0.5, seed=3)
        for _ in range(20):
            medium.transmit("a", "b", b"f", {})
        sim.run()
        # With 3 retries at 50% loss almost every frame gets through.
        assert len(received) >= 17
        assert medium.frames_lost > 0

    def test_no_retries_drops(self):
        sim, medium, received = self._medium(loss=0.9, seed=4, retries=0)
        for _ in range(20):
            medium.transmit("a", "b", b"f", {})
        sim.run()
        assert medium.frames_dropped > 0
        assert len(received) + medium.frames_dropped == 20

    def test_loss_probability_validated(self):
        sim = Simulator()
        medium = RadioMedium(sim)
        medium.register("a", lambda *a: None)
        medium.register("b", lambda *a: None)
        with pytest.raises(ValueError):
            medium.connect("a", "b", loss=1.0)

    def test_neighbours(self):
        _, medium, _ = self._medium()
        assert medium.neighbours("a") == ["b"]


class TestFrameTally:
    def _wired_pair(self):
        from repro.sim import FrameTally

        sim = Simulator()
        medium = RadioMedium(sim)
        tally = FrameTally(medium)
        for name in "ab":
            medium.register(name, lambda *a: None)
        medium.connect("a", "b")
        return sim, medium, tally

    def test_matches_sniffer_aggregates(self):
        from repro.sim import FrameTally

        sim = Simulator()
        medium = RadioMedium(sim)
        sniffer = Sniffer(medium)
        tally = FrameTally(medium)
        for name in "ab":
            medium.register(name, lambda *a: None)
        medium.connect("a", "b")
        medium.transmit("a", "b", bytes(10), {"kind": "query"})
        medium.transmit("b", "a", bytes(25), {"kind": "response"})
        medium.transmit("a", "b", bytes(40), {"kind": "query"})
        sim.run()
        assert tally.frame_count("a", "b") == sniffer.frame_count("a", "b") == 3
        assert tally.bytes_on_link("a", "b") == sniffer.bytes_on_link("a", "b")
        assert tally.by_kind() == sniffer.by_kind()
        assert tally.max_frame() == sniffer.max_frame() == 40
        assert tally.max_frame("response") == sniffer.max_frame("response") == 25

    def test_empty_tally(self):
        _, _, tally = self._wired_pair()
        assert tally.frame_count("a", "b") == 0
        assert tally.bytes_on_link("a", "b") == 0
        assert tally.by_kind() == {}
        assert tally.max_frame() == 0

    def test_clear(self):
        sim, medium, tally = self._wired_pair()
        medium.transmit("a", "b", bytes(10), {})
        sim.run()
        assert tally.frame_count("a", "b") == 1
        tally.clear()
        assert tally.frame_count("a", "b") == 0
        assert tally.by_kind() == {}


class TestSniffer:
    def test_records_frames(self):
        sim = Simulator()
        medium = RadioMedium(sim)
        sniffer = Sniffer(medium)
        medium.register("a", lambda *a: None)
        medium.register("b", lambda *a: None)
        medium.connect("a", "b")
        medium.transmit("a", "b", bytes(60), {"kind": "query"})
        sim.run()
        assert len(sniffer.records) == 1
        record = sniffer.records[0]
        assert record.length == 60
        assert record.kind == "query"

    def test_link_aggregation_bidirectional(self):
        sim = Simulator()
        medium = RadioMedium(sim)
        sniffer = Sniffer(medium)
        for name in "ab":
            medium.register(name, lambda *a: None)
        medium.connect("a", "b")
        medium.transmit("a", "b", bytes(10), {})
        medium.transmit("b", "a", bytes(20), {})
        sim.run()
        assert sniffer.frame_count("a", "b") == 2
        assert sniffer.bytes_on_link("a", "b") == 30

    def test_sniffer_coexists_with_another_observer(self):
        """A sniffer must not clobber (or be clobbered by) another
        observer: both see every frame."""
        sim = Simulator()
        medium = RadioMedium(sim)
        sniffer = Sniffer(medium)
        seen = []
        medium.add_observer(lambda t, *args: seen.append(t))
        for name in "ab":
            medium.register(name, lambda *a: None)
        medium.connect("a", "b")
        medium.transmit("a", "b", bytes(10), {})
        sim.run()
        assert len(sniffer.records) == 1
        assert len(seen) == 1

    def test_two_sniffers_both_record(self):
        sim = Simulator()
        medium = RadioMedium(sim)
        first, second = Sniffer(medium), Sniffer(medium)
        for name in "ab":
            medium.register(name, lambda *a: None)
        medium.connect("a", "b")
        medium.transmit("a", "b", bytes(10), {})
        sim.run()
        assert len(first.records) == len(second.records) == 1

    def test_double_attach_rejected(self):
        sim = Simulator()
        medium = RadioMedium(sim)
        observer = lambda *args: None
        medium.add_observer(observer)
        with pytest.raises(ValueError):
            medium.add_observer(observer)

    def test_legacy_assignment_replaces(self):
        sim = Simulator()
        medium = RadioMedium(sim)
        sniffer = Sniffer(medium)
        spied = []
        # The pre-existing chaining idiom: read the current observer,
        # assign a wrapper. Assignment keeps replace semantics.
        original = medium.observer
        assert original is not None

        def spy(*args):
            spied.append(args)
            original(*args)

        medium.observer = spy
        for name in "ab":
            medium.register(name, lambda *a: None)
        medium.connect("a", "b")
        medium.transmit("a", "b", bytes(10), {})
        sim.run()
        assert len(spied) == 1
        assert len(sniffer.records) == 1   # via the chain, not directly
        medium.observer = None
        assert medium.observer is None

    def test_by_kind_and_max_frame(self):
        sim = Simulator()
        medium = RadioMedium(sim)
        sniffer = Sniffer(medium)
        for name in "ab":
            medium.register(name, lambda *a: None)
        medium.connect("a", "b")
        medium.transmit("a", "b", bytes(10), {"kind": "query"})
        medium.transmit("a", "b", bytes(90), {"kind": "response"})
        sim.run()
        assert sniffer.by_kind() == {"query": 1, "response": 1}
        assert sniffer.max_frame() == 90
        assert sniffer.max_frame("query") == 10


class TestWorkload:
    def test_count_and_monotonic(self):
        times = poisson_arrival_times(random.Random(1), 5.0, 50)
        assert len(times) == 50
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_rate(self):
        times = poisson_arrival_times(random.Random(2), 5.0, 5000)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(0.2, rel=0.1)

    def test_start_offset(self):
        times = poisson_arrival_times(random.Random(3), 1.0, 5, start=100.0)
        assert all(t > 100.0 for t in times)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrival_times(random.Random(1), 0.0, 5)
        with pytest.raises(ValueError):
            poisson_arrival_times(random.Random(1), 1.0, -1)


class TestScheduleManyBitIdentity:
    def test_sweep_grid_identical_with_sequential_scheduling(self, monkeypatch):
        # The batched arrival path (Simulator.schedule_many + coalesced
        # same-timestamp pops) must be a pure optimisation: the full
        # 8-cell perf-sweep grid replays bit-identically when arrivals
        # are scheduled one at a time through schedule_at.
        from repro.scenarios import Scenario, ScenarioRunner, WorkloadSpec
        from repro.sim.core import Simulator

        grid = dict(
            transports=("coap", "oscore"),
            topologies=("figure2", "one-hop"),
            losses=(0.05, 0.25),
        )
        base = Scenario(workload=WorkloadSpec(num_queries=6))
        batched = ScenarioRunner().sweep(base=base, **grid)

        def sequential(self, entries):
            return [
                self.schedule_at(time, callback, *args)
                for time, callback, args in entries
            ]

        monkeypatch.setattr(Simulator, "schedule_many", sequential)
        looped = ScenarioRunner().sweep(base=base, **grid)

        cells_batched = list(batched)
        cells_looped = list(looped)
        assert len(cells_batched) == 8
        for cell_b, cell_l in zip(cells_batched, cells_looped):
            assert cell_b.result.outcomes == cell_l.result.outcomes
            assert cell_b.result.cache_stats == cell_l.result.cache_stats
            assert cell_b.metrics() == cell_l.metrics()
