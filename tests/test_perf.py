"""Tests for the `repro.perf` subsystem.

Covers the harness mechanics (registration, measurement, JSON reports,
baseline comparison), the golden codec vectors — including the
checked-in ``tests/golden_codec_vectors.json`` copy staying in sync —
and the sweep executors the macro benchmarks rely on.
"""

import json
import os

import pytest

from repro.perf import golden
from repro.perf.harness import (
    Benchmark,
    BenchmarkError,
    benchmark_names,
    build_report,
    compare_reports,
    get_benchmark,
    run_one,
    write_report,
)


class TestGoldenVectors:
    def test_verify_passes(self):
        assert golden.verify() == len(golden.vectors())

    def test_vectors_cover_both_codecs(self):
        codecs = {v.codec for v in golden.vectors()}
        assert codecs == {"coap", "dns"}

    def test_encode_matches_golden_bytes(self):
        for vector in golden.vectors():
            assert vector.build().encode().hex() == vector.wire_hex, vector.name

    def test_checked_in_json_matches_golden_module(self):
        path = os.path.join(os.path.dirname(__file__), "golden_codec_vectors.json")
        with open(path, "r", encoding="utf-8") as handle:
            checked_in = json.load(handle)
        from_module = [
            {"name": v.name, "codec": v.codec, "wire_hex": v.wire_hex}
            for v in golden.vectors()
        ]
        assert checked_in["vectors"] == from_module

    def test_mismatch_raises(self, monkeypatch):
        vector = golden.vectors()[0]
        bad = golden.GoldenVector(
            vector.name, vector.codec, vector.build, "00" * 8
        )
        monkeypatch.setattr(golden, "vectors", lambda: [bad])
        with pytest.raises(golden.GoldenMismatch):
            golden.verify()


class TestHarness:
    def test_registered_benchmarks_present(self):
        names = benchmark_names()
        for expected in (
            "sweep_serial",
            "sweep_process4",
            "single_resolution",
            "coap_encode",
            "coap_decode",
            "dns_encode",
            "dns_decode",
            "aesccm_seal",
            "aesccm_open",
            "sim_event_churn",
        ):
            assert expected in names

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(BenchmarkError):
            get_benchmark("no-such-benchmark")

    def test_run_one_measures(self):
        bench = Benchmark("t", "test", "op", lambda quick: 7)
        result = run_one(bench, repeats=3, warmup=1)
        assert result.error is None
        assert len(result.times_s) == 3
        assert result.units == 7
        assert result.best_s <= result.mean_s
        assert result.per_unit_us > 0

    def test_run_one_captures_errors(self):
        def boom(quick):
            raise RuntimeError("kaput")

        result = run_one(Benchmark("t", "test", "op", boom), repeats=2)
        assert result.error == "RuntimeError: kaput"
        assert result.times_s == []

    def test_setup_guard_runs_before_timing(self):
        calls = []
        bench = Benchmark(
            "t", "test", "op", lambda quick: calls.append("fn") or 1,
            setup=lambda: calls.append("setup"),
        )
        run_one(bench, repeats=1, warmup=0)
        assert calls[0] == "setup"

    def test_report_roundtrip_and_compare(self, tmp_path):
        # The work must take measurable time — a zero-duration entry is
        # (correctly) excluded from baseline comparisons.
        bench = Benchmark("t", "test", "op", lambda quick: sum(range(200_000)) and 100)
        results = [run_one(bench, repeats=2, warmup=0)]
        path = tmp_path / "bench.json"
        report = write_report(str(path), results)
        on_disk = json.loads(path.read_text())
        assert on_disk["schema"] == "repro.perf/1"
        assert on_disk["results"][0]["name"] == "t"
        assert on_disk["results"][0]["units"] == 100
        # Compare a second run against the written baseline.
        again = [run_one(bench, repeats=2, warmup=0)]
        comparison = compare_reports(on_disk, again)
        assert "t" in comparison
        assert comparison["t"]["speedup"] > 0
        with_baseline = build_report(again, quick=False, baseline=report)
        assert "comparison" in with_baseline

    def test_errored_benchmarks_excluded_from_comparison(self):
        good = Benchmark("ok", "d", "op", lambda quick: 1)
        baseline = build_report([run_one(good, repeats=1, warmup=0)], quick=False)

        def boom(quick):
            raise RuntimeError("x")

        failed = run_one(Benchmark("ok", "d", "op", boom), repeats=1)
        assert compare_reports(baseline, [failed]) == {}

    def test_cli_quick_smoke(self, capsys):
        from repro.perf.__main__ import main

        assert main(["--only", "sim_event_churn", "--quick", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "sim_event_churn" in out

    def test_cli_list(self, capsys):
        from repro.perf.__main__ import main

        assert main(["--list"]) == 0
        assert "coap_encode" in capsys.readouterr().out


class TestExecutors:
    def test_get_executor_default_serial(self):
        from repro.scenarios import SerialExecutor, get_executor

        assert isinstance(get_executor(None, None), SerialExecutor)
        assert isinstance(get_executor(None, 1), SerialExecutor)

    def test_get_executor_workers_pick_process(self):
        from repro.scenarios import ProcessExecutor, get_executor

        executor = get_executor(None, 3)
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers == 3

    def test_get_executor_by_name_and_instance(self):
        from repro.scenarios import SerialExecutor, get_executor

        assert get_executor("serial").name == "serial"
        assert get_executor("process", 2).name == "process"
        instance = SerialExecutor()
        assert get_executor(instance) is instance

    def test_unknown_executor_rejected(self):
        from repro.scenarios import ExecutorError, get_executor

        with pytest.raises(ExecutorError):
            get_executor("cluster")

    def test_invalid_worker_count_rejected(self):
        from repro.scenarios import ExecutorError, ProcessExecutor

        with pytest.raises(ExecutorError):
            ProcessExecutor(0)

    def test_register_executor_conflict(self):
        from repro.scenarios import ExecutorError, register_executor

        with pytest.raises(ExecutorError):
            register_executor("serial", lambda workers: None)

    def test_process_map_preserves_order(self):
        from repro.scenarios import ProcessExecutor

        result = ProcessExecutor(4).map(_square, list(range(12)))
        assert result == [n * n for n in range(12)]

    def test_serial_map(self):
        from repro.scenarios import SerialExecutor

        assert SerialExecutor().map(_square, [1, 2, 3]) == [1, 4, 9]


def _square(n: int) -> int:
    return n * n
