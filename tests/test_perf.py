"""Tests for the `repro.perf` subsystem.

Covers the harness mechanics (registration, measurement, JSON reports,
baseline comparison), the golden codec vectors — including the
checked-in ``tests/golden_codec_vectors.json`` copy staying in sync —
and the sweep executors the macro benchmarks rely on.
"""

import json
import os

import pytest

from repro.perf import golden
from repro.perf.harness import (
    Benchmark,
    BenchmarkError,
    benchmark_names,
    build_report,
    compare_reports,
    gate_regressions,
    get_benchmark,
    run_one,
    write_report,
)


class TestGoldenVectors:
    def test_verify_passes(self):
        assert golden.verify() == len(golden.vectors())

    def test_vectors_cover_both_codecs(self):
        codecs = {v.codec for v in golden.vectors()}
        assert codecs == {"coap", "dns"}

    def test_encode_matches_golden_bytes(self):
        for vector in golden.vectors():
            assert vector.build().encode().hex() == vector.wire_hex, vector.name

    def test_checked_in_json_matches_golden_module(self):
        path = os.path.join(os.path.dirname(__file__), "golden_codec_vectors.json")
        with open(path, "r", encoding="utf-8") as handle:
            checked_in = json.load(handle)
        from_module = [
            {"name": v.name, "codec": v.codec, "wire_hex": v.wire_hex}
            for v in golden.vectors()
        ]
        assert checked_in["vectors"] == from_module

    def test_mismatch_raises(self, monkeypatch):
        vector = golden.vectors()[0]
        bad = golden.GoldenVector(
            vector.name, vector.codec, vector.build, "00" * 8
        )
        monkeypatch.setattr(golden, "vectors", lambda: [bad])
        with pytest.raises(golden.GoldenMismatch):
            golden.verify()


class TestHarness:
    def test_registered_benchmarks_present(self):
        names = benchmark_names()
        for expected in (
            "sweep_serial",
            "sweep_process4",
            "single_resolution",
            "coap_encode",
            "coap_decode",
            "dns_encode",
            "dns_decode",
            "aesccm_seal",
            "aesccm_open",
            "sim_event_churn",
            "cache_lookup",
        ):
            assert expected in names

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(BenchmarkError):
            get_benchmark("no-such-benchmark")

    def test_run_one_measures(self):
        bench = Benchmark("t", "test", "op", lambda quick: 7)
        result = run_one(bench, repeats=3, warmup=1)
        assert result.error is None
        assert len(result.times_s) == 3
        assert result.units == 7
        assert result.best_s <= result.mean_s
        assert result.per_unit_us > 0

    def test_run_one_captures_errors(self):
        def boom(quick):
            raise RuntimeError("kaput")

        result = run_one(Benchmark("t", "test", "op", boom), repeats=2)
        assert result.error == "RuntimeError: kaput"
        assert result.times_s == []

    def test_setup_guard_runs_before_timing(self):
        calls = []
        bench = Benchmark(
            "t", "test", "op", lambda quick: calls.append("fn") or 1,
            setup=lambda: calls.append("setup"),
        )
        run_one(bench, repeats=1, warmup=0)
        assert calls[0] == "setup"

    def test_report_roundtrip_and_compare(self, tmp_path):
        # The work must take measurable time — a zero-duration entry is
        # (correctly) excluded from baseline comparisons.
        bench = Benchmark("t", "test", "op", lambda quick: sum(range(200_000)) and 100)
        results = [run_one(bench, repeats=2, warmup=0)]
        path = tmp_path / "bench.json"
        report = write_report(str(path), results)
        on_disk = json.loads(path.read_text())
        assert on_disk["schema"] == "repro.perf/1"
        assert on_disk["results"][0]["name"] == "t"
        assert on_disk["results"][0]["units"] == 100
        # Compare a second run against the written baseline.
        again = [run_one(bench, repeats=2, warmup=0)]
        comparison = compare_reports(on_disk, again)
        assert "t" in comparison
        assert comparison["t"]["speedup"] > 0
        with_baseline = build_report(again, quick=False, baseline=report)
        assert "comparison" in with_baseline

    def test_errored_benchmarks_excluded_from_comparison(self):
        good = Benchmark("ok", "d", "op", lambda quick: 1)
        baseline = build_report([run_one(good, repeats=1, warmup=0)], quick=False)

        def boom(quick):
            raise RuntimeError("x")

        failed = run_one(Benchmark("ok", "d", "op", boom), repeats=1)
        assert compare_reports(baseline, [failed]) == {}

    def test_cli_quick_smoke(self, capsys):
        from repro.perf.__main__ import main

        assert main(["--only", "sim_event_churn", "--quick", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "sim_event_churn" in out

    def test_cli_list(self, capsys):
        from repro.perf.__main__ import main

        assert main(["--list"]) == 0
        assert "coap_encode" in capsys.readouterr().out


class TestGate:
    """--gate regression thresholds over a comparison document."""

    @staticmethod
    def _comparison(speedup, name="dns_decode"):
        return {name: {"speedup": speedup}}

    def test_within_threshold_passes(self):
        assert gate_regressions(self._comparison(0.85), 0.25) == []

    def test_improvement_passes(self):
        assert gate_regressions(self._comparison(1.6), 0.25) == []

    def test_regression_beyond_threshold_fails(self):
        failures = gate_regressions(self._comparison(0.5), 0.25)
        assert [f["name"] for f in failures] == ["dns_decode"]
        assert failures[0]["regression"] == 1.0  # 2x slower
        assert failures[0]["allowed"] == 0.25

    def test_noisy_benchmark_override_loosens(self):
        # live_loopback is allowed 60%: a 43% slowdown passes there but
        # would fail a benchmark on the default threshold.
        noisy = self._comparison(0.7, name="live_loopback")
        assert gate_regressions(noisy, 0.25) == []
        assert gate_regressions(self._comparison(0.7), 0.25)

    def test_negative_threshold_rejected(self):
        with pytest.raises(BenchmarkError):
            gate_regressions({}, -0.1)

    def test_cli_gate_requires_compare(self, capsys):
        from repro.perf.__main__ import main

        code = main(
            ["--only", "sim_event_churn", "--quick", "--repeats", "1",
             "--gate", "0.25"]
        )
        assert code == 2

    def test_cli_gate_pass_and_fail(self, tmp_path, capsys):
        from repro.perf.__main__ import main

        base = tmp_path / "base.json"
        assert main(
            ["--only", "sim_event_churn", "--quick", "--repeats", "1",
             "--json", str(base)]
        ) == 0

        # Same machine, same workload, generous threshold: passes.
        out = tmp_path / "out.json"
        assert main(
            ["--only", "sim_event_churn", "--quick", "--repeats", "1",
             "--json", str(out), "--compare", str(base), "--gate", "10.0"]
        ) == 0
        assert json.loads(out.read_text())["gate"]["passed"] is True

        # Doctor the baseline 10x faster — an artificial >25% regression
        # — and the gate must trip with its distinct exit code.
        doc = json.loads(base.read_text())
        for entry in doc["results"]:
            entry["per_unit_us"] = entry["per_unit_us"] / 10
            entry["best_s"] = entry["best_s"] / 10
        base.write_text(json.dumps(doc))
        code = main(
            ["--only", "sim_event_churn", "--quick", "--repeats", "1",
             "--json", str(out), "--compare", str(base), "--gate", "0.25"]
        )
        assert code == 3
        written = json.loads(out.read_text())
        assert written["gate"]["passed"] is False
        assert written["gate"]["failures"][0]["name"] == "sim_event_churn"
        assert "GATE FAIL" in capsys.readouterr().err


class TestAllocationBudget:
    """tracemalloc micro-asserts pinning the zero-copy decode contract."""

    def test_coap_decode_materialises_payload_once(self):
        import gc
        import tracemalloc

        from repro.coap import CoapMessage, Code

        payload = bytes(range(256)) * 16  # 4 KiB
        wire = CoapMessage.request(
            Code.POST, "/dns", payload=payload, token=b"\x01"
        ).encode()
        rounds = 50
        CoapMessage.decode(wire)  # warm enum/option caches
        gc.collect()
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        decoded = [CoapMessage.decode(wire) for _ in range(rounds)]
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert decoded[-1].payload == payload
        # One boundary copy of the payload plus small fixed overhead
        # (message object, token, options); a second hidden copy of the
        # wire or payload would blow well past 1.5x.
        per_decode = (after - before) / rounds
        assert per_decode < len(payload) * 1.5, per_decode

    def test_memoryview_decode_allocates_no_extra(self):
        import gc
        import tracemalloc

        from repro.coap import CoapMessage, Code

        payload = bytes(range(256)) * 16
        wire = CoapMessage.request(
            Code.POST, "/dns", payload=payload, token=b"\x01"
        ).encode()
        view = memoryview(wire)
        rounds = 50
        CoapMessage.decode(view)
        gc.collect()
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        decoded = [CoapMessage.decode(view) for _ in range(rounds)]
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert decoded[-1].payload == payload
        per_decode = (after - before) / rounds
        assert per_decode < len(payload) * 1.5, per_decode


class TestExecutors:
    def test_get_executor_default_serial(self):
        from repro.scenarios import SerialExecutor, get_executor

        assert isinstance(get_executor(None, None), SerialExecutor)
        assert isinstance(get_executor(None, 1), SerialExecutor)

    def test_get_executor_workers_pick_process(self):
        from repro.scenarios import ProcessExecutor, get_executor

        executor = get_executor(None, 3)
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers == 3

    def test_get_executor_by_name_and_instance(self):
        from repro.scenarios import SerialExecutor, get_executor

        assert get_executor("serial").name == "serial"
        assert get_executor("process", 2).name == "process"
        instance = SerialExecutor()
        assert get_executor(instance) is instance

    def test_unknown_executor_rejected(self):
        from repro.scenarios import ExecutorError, get_executor

        with pytest.raises(ExecutorError):
            get_executor("cluster")

    def test_invalid_worker_count_rejected(self):
        from repro.scenarios import ExecutorError, ProcessExecutor

        with pytest.raises(ExecutorError):
            ProcessExecutor(0)

    def test_register_executor_conflict(self):
        from repro.scenarios import ExecutorError, register_executor

        with pytest.raises(ExecutorError):
            register_executor("serial", lambda workers: None)

    def test_process_map_preserves_order(self):
        from repro.scenarios import ProcessExecutor

        result = ProcessExecutor(4).map(_square, list(range(12)))
        assert result == [n * n for n in range(12)]

    def test_serial_map(self):
        from repro.scenarios import SerialExecutor

        assert SerialExecutor().map(_square, [1, 2, 3]) == [1, 4, 9]


def _square(n: int) -> int:
    return n * n
