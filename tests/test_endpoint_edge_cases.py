"""CoAP endpoint edge cases: NON exchanges, duplicates, resets,
malformed input, and full-stack property tests."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.coap import CoapMessage, Code, MessageType, OptionNumber
from repro.coap.endpoint import CoapClient, CoapServer
from repro.sim import Simulator
from repro.stack import build_figure2_topology


def _setup(seed=1, loss=0.0, handler=None):
    sim = Simulator(seed=seed)
    topo = build_figure2_topology(sim, loss=loss)
    server = CoapServer(sim, topo.resolver_host.bind(5683))
    if handler is None:
        def handler(request, respond, metadata):
            respond(request.make_response(Code.CONTENT, payload=request.payload))
    server.add_resource("/echo", handler)
    client = CoapClient(sim, topo.clients[0].bind())
    return sim, topo, client, server


class TestNonConfirmable:
    def test_non_request_gets_non_response(self):
        sim, topo, client, _ = _setup()
        request = CoapMessage.request(
            Code.FETCH, "/echo", payload=b"x", confirmable=False
        )
        results = []
        client.request(request, topo.resolver_host.address, 5683,
                       lambda r, e: results.append((r, e)))
        sim.run(until=10)
        response, error = results[0]
        assert error is None
        assert response.mtype == MessageType.NON
        assert response.payload == b"x"

    def test_non_request_not_retransmitted(self):
        sim = Simulator(seed=2)
        topo = build_figure2_topology(sim)
        client = CoapClient(sim, topo.clients[0].bind())
        request = CoapMessage.request(
            Code.FETCH, "/echo", payload=b"x", confirmable=False
        )
        client.request(request, topo.resolver_host.address, 5683, lambda r, e: None)
        sim.run(until=120)
        kinds = [event.kind for event in client.events]
        assert kinds == ["transmission"]


class TestDuplicateSuppression:
    def test_duplicate_request_replays_cached_reply(self):
        calls = {"n": 0}

        def handler(request, respond, metadata):
            calls["n"] += 1
            respond(request.make_response(Code.CONTENT, payload=b"once"))

        sim, topo, client, server = _setup(handler=handler)
        # Send the identical wire message twice, bypassing the client.
        raw = topo.clients[0].bind()
        request = CoapMessage.request(
            Code.FETCH, "/echo", mid=0x0101, token=b"\x0A", payload=b"q"
        )
        replies = []
        raw.on_datagram = lambda src, sport, data, md: replies.append(data)
        for _ in range(2):
            raw.sendto(request.encode(), topo.resolver_host.address, 5683)
        sim.run(until=10)
        assert calls["n"] == 1
        assert len(replies) == 2
        assert replies[0] == replies[1]

    def test_distinct_mids_processed_separately(self):
        calls = {"n": 0}

        def handler(request, respond, metadata):
            calls["n"] += 1
            respond(request.make_response(Code.CONTENT))

        sim, topo, client, server = _setup(handler=handler)
        raw = topo.clients[0].bind()
        raw.on_datagram = lambda *args: None
        for mid in (1, 2):
            message = CoapMessage.request(
                Code.FETCH, "/echo", mid=mid, token=bytes([mid]), payload=b"q"
            )
            raw.sendto(message.encode(), topo.resolver_host.address, 5683)
        sim.run(until=10)
        assert calls["n"] == 2


class TestRobustness:
    def test_garbage_datagram_ignored(self):
        sim, topo, client, server = _setup()
        raw = topo.clients[0].bind()
        raw.sendto(b"\xff\xff\xff", topo.resolver_host.address, 5683)
        raw.sendto(b"", topo.resolver_host.address, 5683)
        sim.run(until=5)  # no exception

    def test_rst_fails_exchange(self):
        sim = Simulator(seed=3)
        topo = build_figure2_topology(sim)
        # A "server" that answers everything with RST.
        socket = topo.resolver_host.bind(5683)

        def reset_everything(src, sport, data, metadata):
            message = CoapMessage.decode(data)
            socket.sendto(message.make_reset().encode(), src, sport)

        socket.on_datagram = reset_everything
        client = CoapClient(sim, topo.clients[0].bind())
        results = []
        client.request(
            CoapMessage.request(Code.FETCH, "/echo", payload=b"q"),
            topo.resolver_host.address, 5683,
            lambda r, e: results.append((r, e)),
        )
        sim.run(until=120)
        response, error = results[0]
        assert response is None and error is not None

    def test_response_without_exchange_ignored(self):
        sim, topo, client, server = _setup()
        # Deliver an unsolicited response directly to the client socket.
        stray = CoapMessage(
            mtype=MessageType.ACK, code=Code.CONTENT, mid=999,
            token=b"\xDE\xAD", payload=b"stray",
        )
        client._on_datagram(topo.resolver_host.address, 5683,
                            stray.encode(), {})
        sim.run(until=1)  # nothing blows up

    def test_unknown_critical_option_is_preserved(self):
        """The endpoint does not strip options it does not understand —
        forward compatibility for new CoAP extensions."""
        seen = []

        def handler(request, respond, metadata):
            seen.append(request.option(65001))
            respond(request.make_response(Code.CONTENT))

        sim, topo, client, server = _setup(handler=handler)
        request = CoapMessage.request(Code.FETCH, "/echo", payload=b"q")
        request = request.with_option(65001, b"\x01\x02")
        results = []
        client.request(request, topo.resolver_host.address, 5683,
                       lambda r, e: results.append((r, e)))
        sim.run(until=10)
        assert seen == [b"\x01\x02"]


class TestFullStackProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(payload=st.binary(min_size=0, max_size=300), seed=st.integers(0, 1000))
    def test_arbitrary_payload_round_trip(self, payload, seed):
        """Any payload survives the full CoAP/6LoWPAN/radio path,
        fragmentation included."""
        sim, topo, client, _ = _setup(seed=seed)
        results = []
        client.request(
            CoapMessage.request(Code.FETCH, "/echo", payload=payload),
            topo.resolver_host.address, 5683,
            lambda r, e: results.append((r, e)),
        )
        sim.run(until=60)
        response, error = results[0]
        assert error is None
        assert response.payload == payload

    @settings(max_examples=10, deadline=None)
    @given(
        name=st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=40
        ).filter(lambda s: not s.startswith("-") and not s.endswith("-")),
        seed=st.integers(0, 100),
    )
    def test_arbitrary_names_resolve(self, name, seed):
        from repro.dns import RecordType, RecursiveResolver, Zone
        from repro.doc import DocClient, DocServer

        sim = Simulator(seed=seed)
        topo = build_figure2_topology(sim)
        zone = Zone()
        fqdn = f"{name}.example.org"
        zone.add_address(fqdn, "2001:db8::1", ttl=60)
        DocServer(sim, topo.resolver_host.bind(5683), RecursiveResolver(zone))
        client = DocClient(
            sim, topo.clients[0].bind(), (topo.resolver_host.address, 5683)
        )
        results = []
        client.resolve(fqdn, RecordType.AAAA,
                       lambda r, e: results.append((r, e)))
        sim.run(until=60)
        result, error = results[0]
        assert error is None
        assert result.addresses == ["2001:db8::1"]
