"""Scenario engine: specs, presets, runner, and sweeps."""

import random

import pytest

from repro.dns import RecordType
from repro.experiments import ExperimentConfig, run_resolution_experiment
from repro.experiments.metrics import fraction_below, percentile
from repro.scenarios import (
    Scenario,
    ScenarioError,
    ScenarioRunner,
    TopologySpec,
    WorkloadSpec,
    get_scenario,
    get_topology,
    scenario_from_spec,
)


class TestSpecs:
    def test_defaults_are_figure2(self):
        scenario = Scenario()
        assert scenario.topology.hops == 2
        assert scenario.topology.clients == 2
        assert scenario.workload.num_queries == 50

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            Scenario(transport="smtp")

    def test_model_only_transport_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario(transport="quic")

    def test_proxy_requires_coap(self):
        with pytest.raises(ScenarioError):
            Scenario(transport="udp", use_proxy=True)

    def test_proxy_requires_distinct_forwarder(self):
        """One hop + no wired tail puts the resolver on the proxy node."""
        with pytest.raises(ScenarioError, match="forwarder"):
            Scenario(
                use_proxy=True,
                topology=TopologySpec(hops=1, wired_tail=False),
            )
        # A wired tail (or more hops) keeps the nodes distinct.
        Scenario(use_proxy=True, topology=TopologySpec(hops=1))
        Scenario(use_proxy=True, topology=TopologySpec(hops=2, wired_tail=False))

    def test_invalid_topology_rejected(self):
        with pytest.raises(ScenarioError):
            TopologySpec(hops=0)
        with pytest.raises(ScenarioError):
            TopologySpec(clients=0)
        with pytest.raises(ScenarioError):
            TopologySpec(loss=1.5)

    def test_invalid_workload_rejected(self):
        with pytest.raises(ScenarioError):
            WorkloadSpec(query_rate=0)
        with pytest.raises(ScenarioError):
            WorkloadSpec(rtype_mix=())
        with pytest.raises(ScenarioError):
            WorkloadSpec(burst_size=0)

    def test_burst_arrivals_grouped(self):
        workload = WorkloadSpec(num_queries=10, burst_size=5)
        times = workload.arrival_times(random.Random(1))
        assert len(times) == 10
        assert len(set(times)) == 2  # two burst instants

    def test_steady_arrivals_distinct(self):
        workload = WorkloadSpec(num_queries=10)
        times = workload.arrival_times(random.Random(1))
        assert len(set(times)) == 10

    def test_rtype_mix_draw(self):
        workload = WorkloadSpec(
            rtype_mix=((int(RecordType.A), 0.5), (int(RecordType.AAAA), 0.5))
        )
        rng = random.Random(3)
        drawn = {workload.draw_rtype(rng) for _ in range(50)}
        assert drawn == {int(RecordType.A), int(RecordType.AAAA)}

    def test_pure_mix_skips_rng(self):
        rng = random.Random(7)
        state = rng.getstate()
        assert WorkloadSpec().draw_rtype(rng) == int(RecordType.AAAA)
        assert rng.getstate() == state


class TestPresets:
    def test_named_topologies(self):
        assert get_topology("one-hop").hops == 1
        assert get_topology("three-hop").hops == 3
        assert not get_topology("all-wireless").wired_tail
        with pytest.raises(ScenarioError):
            get_topology("ring")

    def test_named_scenarios(self):
        assert get_scenario("figure7").topology.loss == 0.25
        assert get_scenario("burst").workload.burst_size == 5
        with pytest.raises(ScenarioError):
            get_scenario("nope")

    def test_spec_parser(self):
        scenario = scenario_from_spec(
            "three-hop,transport=oscore,loss=0.1,queries=12,clients=3,seed=9"
        )
        assert scenario.transport == "oscore"
        assert scenario.topology.hops == 3
        assert scenario.topology.clients == 3
        assert scenario.topology.loss == 0.1
        assert scenario.workload.num_queries == 12
        assert scenario.seed == 9

    def test_spec_parser_rtype_and_bools(self):
        scenario = scenario_from_spec(
            "rtype=mixed,proxy=yes,wired=no,burst=4"
        )
        assert len(scenario.workload.rtype_mix) == 2
        assert scenario.use_proxy
        assert not scenario.topology.wired_tail
        assert scenario.workload.burst_size == 4

    def test_spec_parser_rejects_junk(self):
        with pytest.raises(ScenarioError):
            scenario_from_spec("hops")
        with pytest.raises(ScenarioError):
            scenario_from_spec("color=red")
        with pytest.raises(ScenarioError):
            scenario_from_spec("proxy=maybe")


def _quick(workload_queries=12, **kwargs):
    defaults = dict(
        workload=WorkloadSpec(num_queries=workload_queries, num_names=12),
        run_duration=120.0,
    )
    defaults.update(kwargs)
    return Scenario(**defaults)


class TestRunner:
    def test_one_hop_scenario_resolves(self):
        scenario = _quick(
            transport="coap",
            topology=TopologySpec(name="one-hop", hops=1, loss=0.0),
        )
        result = ScenarioRunner().run(scenario)
        assert result.success_rate == 1.0
        assert result.scenario is scenario
        assert result.link.per_hop_frames.keys() == {1}
        assert result.link.frames_1hop > 0

    def test_three_hop_scenario_resolves(self):
        scenario = _quick(
            transport="coap",
            topology=TopologySpec(name="three-hop", hops=3, loss=0.0),
        )
        result = ScenarioRunner().run(scenario)
        assert result.success_rate == 1.0
        assert result.link.per_hop_frames.keys() == {1, 2, 3}
        assert all(v > 0 for v in result.link.per_hop_frames.values())

    def test_deeper_topology_is_slower(self):
        runner = ScenarioRunner()
        one = runner.run(
            _quick(topology=TopologySpec(name="one-hop", hops=1, loss=0.0))
        )
        three = runner.run(
            _quick(topology=TopologySpec(name="three-hop", hops=3, loss=0.0))
        )
        assert percentile(three.resolution_times, 50) > percentile(
            one.resolution_times, 50
        )

    @pytest.mark.parametrize("hops", [1, 3])
    def test_figure7_ordering_holds_off_figure2(self, hops):
        """The known Figure 7 ordering — unencrypted UDP resolves a
        larger fraction below 250 ms than the fragmenting secure
        transports — also holds on 1-hop and 3-hop topologies."""
        runner = ScenarioRunner()
        topology = TopologySpec(
            name=f"{hops}-hop", hops=hops, loss=0.15, l2_retries=1
        )
        fractions = {}
        for transport in ("udp", "coaps", "oscore"):
            # A records (the UDP exchange never fragments, Section 5.4),
            # pooled over three seeds as the paper pools repetitions.
            times = []
            for seed in (1, 1001, 2001):
                scenario = Scenario(
                    transport=transport,
                    topology=topology,
                    workload=WorkloadSpec(
                        num_queries=25,
                        num_names=25,
                        rtype_mix=((int(RecordType.A), 1.0),),
                    ),
                    seed=seed,
                    run_duration=200.0,
                )
                result = runner.run(scenario)
                assert result.success_rate >= 0.9, transport
                times.extend(result.resolution_times)
            fractions[transport] = fraction_below(times, 0.25)
        assert fractions["udp"] > fractions["coaps"]
        assert fractions["udp"] > fractions["oscore"]

    def test_all_wireless_topology(self):
        scenario = _quick(
            topology=TopologySpec(
                name="all-wireless", hops=2, loss=0.0, wired_tail=False
            ),
        )
        result = ScenarioRunner().run(scenario)
        assert result.success_rate == 1.0

    def test_mixed_record_types_resolve(self):
        scenario = _quick(
            workload_queries=16,
            workload=WorkloadSpec(
                num_queries=16,
                num_names=8,
                rtype_mix=(
                    (int(RecordType.A), 0.5),
                    (int(RecordType.AAAA), 0.5),
                ),
            ),
            topology=TopologySpec(loss=0.0),
        )
        result = ScenarioRunner().run(scenario)
        assert result.success_rate == 1.0
        drawn = {outcome.rtype for outcome in result.outcomes}
        assert drawn == {int(RecordType.A), int(RecordType.AAAA)}

    def test_burst_workload_resolves(self):
        scenario = _quick(
            workload=WorkloadSpec(num_queries=12, burst_size=4),
            topology=TopologySpec(loss=0.0),
        )
        result = ScenarioRunner().run(scenario)
        assert result.success_rate == 1.0
        issued = sorted({o.issued_at for o in result.outcomes})
        assert len(issued) == 3  # three bursts of four

    def test_legacy_config_path_equivalent(self):
        config = ExperimentConfig(
            transport="coap", num_queries=8, loss=0.1, seed=6
        )
        legacy = run_resolution_experiment(config)
        native = ScenarioRunner().run(config.to_scenario())
        assert legacy.resolution_times == native.resolution_times
        assert legacy.config is config
        assert legacy.scenario is not None


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        base = _quick(workload_queries=8)
        return ScenarioRunner().sweep(
            base=base,
            transports=("udp", "coap", "oscore"),
            topologies=("figure2", "one-hop"),
            losses=(0.05, 0.25),
        )

    def test_grid_is_complete(self, sweep):
        assert len(sweep) == 3 * 2 * 2
        keys = {cell.key for cell in sweep}
        assert ("udp", "figure2", 0.05) in keys
        assert ("oscore", "one-hop", 0.25) in keys

    def test_per_cell_metrics(self, sweep):
        metrics = sweep.metrics()
        assert len(metrics) == 12
        for key, cell_metrics in metrics.items():
            assert cell_metrics["queries"] == 8, key
            assert cell_metrics["success_rate"] > 0.0, key
            assert cell_metrics["median_s"] > 0.0, key
            assert cell_metrics["frames_1hop"] > 0, key

    def test_cell_lookup(self, sweep):
        cell = sweep.cell("coap", "one-hop", 0.05)
        assert cell.scenario.transport == "coap"
        assert cell.scenario.topology.hops == 1
        assert cell.result.success_rate > 0.0
        with pytest.raises(KeyError):
            sweep.cell("coap", "ring", 0.05)

    def test_loss_hurts(self, sweep):
        """More loss never *helps* the low-latency fraction (coarse,
        but deterministic for these seeds)."""
        for transport in ("udp", "coap", "oscore"):
            clean = sweep.cell(transport, "figure2", 0.05).result
            lossy = sweep.cell(transport, "figure2", 0.25).result
            assert fraction_below(clean.resolution_times, 0.25) >= (
                fraction_below(lossy.resolution_times, 0.25) - 0.15
            )

    def test_duplicate_cells_rejected_before_running(self):
        with pytest.raises(ScenarioError, match="duplicate sweep cell"):
            ScenarioRunner().sweep(
                base=_quick(workload_queries=4),
                transports=("coap",),
                topologies=("one-hop", "one-hop"),
                losses=(0.0,),
            )

    def test_topology_names_accept_specs(self):
        base = _quick(workload_queries=4)
        sweep = ScenarioRunner().sweep(
            base=base,
            transports=("coap",),
            topologies=(TopologySpec(name="deep", hops=4),),
            losses=(0.0,),
        )
        assert sweep.cell("coap", "deep", 0.0).result.success_rate == 1.0
