"""Transport plugin registry: lookups, profiles, plugin registration."""

import pytest

from repro.experiments.packet_sizes import dissect_transport
from repro.transports.registry import (
    TransportCapabilityError,
    TransportProfile,
    UnknownTransportError,
    get_profile,
    registry,
    transport_names,
)

BUILTINS = ("udp", "dtls", "coap", "coaps", "oscore")


class TestLookup:
    def test_builtins_registered(self):
        for name in BUILTINS + ("quic",):
            assert name in registry
            assert registry.get(name).name == name

    def test_unknown_transport_raises(self):
        with pytest.raises(UnknownTransportError):
            registry.get("tcp")

    def test_unknown_transport_is_value_error(self):
        """Callers that predate the registry catch ValueError."""
        with pytest.raises(ValueError):
            get_profile("smtp")

    def test_error_names_known_transports(self):
        with pytest.raises(UnknownTransportError, match="udp"):
            registry.get("bogus")

    def test_names_order_stable(self):
        names = transport_names()
        assert names[: len(BUILTINS)] == list(BUILTINS)
        assert "quic" in names

    def test_simulatable_filter_excludes_quic(self):
        names = transport_names(simulatable_only=True)
        assert set(names) == set(BUILTINS)


class TestProfiles:
    def test_default_ports(self):
        assert registry.get("udp").default_port == 53
        assert registry.get("dtls").default_port == 853
        assert registry.get("coap").default_port == 5683
        assert registry.get("coaps").default_port == 5684

    def test_coap_based_flags(self):
        for name in ("coap", "coaps", "oscore"):
            assert registry.get(name).coap_based, name
        for name in ("udp", "dtls"):
            assert not registry.get(name).coap_based, name

    def test_secure_flags(self):
        for name in ("dtls", "coaps", "oscore", "quic"):
            assert registry.get(name).secure, name
        for name in ("udp", "coap"):
            assert not registry.get(name).secure, name

    def test_quic_is_model_only(self):
        profile = registry.get("quic")
        assert not profile.simulatable
        with pytest.raises(TransportCapabilityError):
            profile.build_server(None)
        with pytest.raises(TransportCapabilityError):
            profile.build_client(None, None, 0)

    def test_quic_dissects(self):
        dissections = dissect_transport("quic")
        assert dissections
        assert all(d.transport == "quic" for d in dissections)
        # The modeled AEAD/header overhead is pure security bytes.
        assert all(d.security_bytes > 0 for d in dissections)

    def test_dissection_dispatches_through_registry(self):
        udp = dissect_transport("udp")
        assert {d.message for d in udp} == {
            "query", "response_a", "response_aaaa"
        }


class TestPluginRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            registry.register(
                TransportProfile(name="udp", display_name="UDP2", default_port=1)
            )

    def test_register_and_dissect_plugin(self):
        from repro.experiments.packet_sizes import dissect_plain_dns

        profile = TransportProfile(
            name="rawdns",
            display_name="RawDNS",
            default_port=9953,
            in_figure6=False,
            dissector=lambda profile, method=None, name=None, with_echo=False:
                dissect_plain_dns(profile, name=name),
        )
        registry.register(profile)
        try:
            dissections = dissect_transport("rawdns")
            assert all(d.transport == "rawdns" for d in dissections)
            assert all(d.security_bytes == 0 for d in dissections)
        finally:
            registry.unregister("rawdns")
        with pytest.raises(UnknownTransportError):
            registry.get("rawdns")

    def test_register_before_first_lookup_loads_builtins(self):
        """A plugin overriding a builtin before any lookup must not
        wedge the lazy builtin registration (fresh interpreter)."""
        import subprocess
        import sys

        script = (
            "from repro.transports.registry import TransportProfile, registry\n"
            "registry.register(TransportProfile(name='coap',"
            " display_name='X', default_port=1), replace=True)\n"
            "assert registry.get('udp').default_port == 53\n"
            "assert registry.get('coap').default_port == 1\n"
            "assert {'udp','dtls','coap','coaps','oscore','quic'}"
            " <= set(registry.names())\n"
            "print('ok')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env={"PYTHONPATH": "src"},
            cwd=__file__.rsplit("/tests/", 1)[0],
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "ok"

    def test_replace_flag_allows_override(self):
        original = registry.get("udp")
        try:
            registry.register(
                TransportProfile(
                    name="udp", display_name="UDPx", default_port=54
                ),
                replace=True,
            )
            assert registry.get("udp").default_port == 54
        finally:
            registry.register(original, replace=True)
        assert registry.get("udp").default_port == 53
