"""The unified ``repro.api`` façade: RunSpec, Report, schema, parity.

Covers the acceptance criteria of the API-redesign PR: one RunSpec
executes on both substrates with identical non-namespaced metric key
sets, every emitted JSON document validates against the checked-in
``tests/report_schema.json``, and the legacy ``ExperimentConfig`` path
stays bit-identical to a direct ScenarioRunner execution.
"""

from __future__ import annotations

import asyncio
import json
import pathlib

import pytest

from repro.api import (
    ApiError,
    Report,
    ReportError,
    REPORT_VERSION,
    RunSpec,
    provenance,
    report_from_experiment_result,
    run,
)
from repro.api.schema import (
    SchemaError,
    ValidationError,
    is_valid,
    load_schema,
    validate,
)

SCHEMA_PATH = pathlib.Path(__file__).parent / "report_schema.json"
SCHEMA = load_schema(str(SCHEMA_PATH))

#: One small scenario shared by the sim/live parity tests: a transport
#: both substrates can run, a client-side cache, no proxy.
PARITY_SPEC = "transport=coap,queries=8,loss=0.0,rate=100,cache=client-dns"


def run_sim(spec_text: str = PARITY_SPEC, **overrides) -> Report:
    return run(RunSpec.from_spec(spec_text, base=RunSpec(**overrides)))


# -- RunSpec ---------------------------------------------------------------


class TestRunSpec:
    def test_from_spec_parses_api_keys(self):
        spec = RunSpec.from_spec(
            "one-hop,transport=oscore,queries=12,substrate=live,"
            "repeats=3,workers=2,mode=closed,concurrency=4,timeout=2.5"
        )
        assert spec.substrate == "live"
        assert spec.repeats == 3
        assert spec.workers == 2
        assert spec.live.mode == "closed"
        assert spec.live.concurrency == 4
        assert spec.live.timeout == 2.5
        assert spec.scenario.transport == "oscore"
        assert spec.scenario.workload.num_queries == 12
        assert spec.scenario.topology.name == "one-hop"

    def test_from_spec_defaults_to_sim(self):
        spec = RunSpec.from_spec("figure7")
        assert spec.substrate == "sim"
        assert spec.repeats == 1

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ApiError):
            RunSpec.from_spec("substrate=quantum")

    def test_live_rejects_non_live_transport(self):
        # quic is model-only; the scenario layer rejects it before the
        # substrate check can.
        from repro.scenarios import ScenarioError

        with pytest.raises(ScenarioError):
            RunSpec.from_spec("transport=quic,substrate=live")

    def test_live_rejects_proxy_placement(self):
        with pytest.raises(ApiError):
            RunSpec.from_spec("transport=coap,cache=proxy,substrate=live")

    def test_live_rejects_explicit_proxy_cache_without_forwarder(self):
        # An explicit placement naming the proxy must not silently
        # degrade to a client-only live run even when the scenario's
        # use_proxy flag is off.
        from repro.scenarios import CachingSpec, Scenario

        scenario = Scenario(
            transport="coap",
            caching=CachingSpec.from_placement("proxy+client-dns"),
        )
        with pytest.raises(ApiError):
            RunSpec(scenario=scenario, substrate="live")
        # ...while the implicit caching_spec default (proxy=True but no
        # caching given, no forwarder) stays accepted.
        assert RunSpec(
            scenario=Scenario(transport="coap"), substrate="live"
        ).client_cache_placement() == "none"

    def test_repeat_seeds_match_run_repeated_spacing(self):
        spec = RunSpec.from_spec("seed=7,repeats=3")
        assert spec.repeat_seeds() == [7, 1007, 2007]

    def test_client_cache_placement_strips_proxy(self):
        spec = RunSpec.from_spec("transport=coap,cache=all,proxy=false")
        assert spec.client_cache_placement() == "client-dns+client-coap"
        assert RunSpec.from_spec("").client_cache_placement() == "none"

    def test_to_dict_is_json_ready(self):
        payload = RunSpec.from_spec("figure7,cache=client-coap").to_dict()
        json.dumps(payload)
        assert payload["topology"]["loss"] == 0.25
        assert payload["caching"]["placement"] == "client-coap"


# -- Report ----------------------------------------------------------------


class TestReport:
    def test_round_trip(self):
        report = run_sim()
        clone = Report.from_json(
            json.loads(json.dumps(report.to_json()))
        )
        assert clone == Report.from_json(report.to_json())
        assert clone.metrics == report.metrics
        assert clone.spec == report.spec
        assert clone.substrate == report.substrate
        assert clone.report_version == REPORT_VERSION

    def test_from_json_rejects_missing_keys(self):
        with pytest.raises(ReportError):
            Report.from_json({"substrate": "sim"})
        with pytest.raises(ReportError):
            Report.from_json({
                "report_version": "two", "substrate": "sim",
                "spec": {}, "metrics": {},
            })

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ReportError):
            Report(substrate="testbed", spec={}, metrics={})

    def test_sim_report_metrics_and_schema(self):
        report = run_sim()
        metrics = report.metrics
        assert metrics["queries.issued"] == 8
        assert metrics["queries.success_rate"] == 1.0
        assert metrics["latency.p50_ms"] <= metrics["latency.p95_ms"]
        assert metrics["sim.link.frames_1hop"] > 0
        assert "cache.client_dns.hit_ratio" in metrics
        validate(report.to_json(), SCHEMA)

    def test_raw_keeps_native_result_and_skips_equality(self):
        from repro.experiments.resolution import ExperimentResult

        report = run_sim()
        assert isinstance(report.raw, ExperimentResult)
        assert Report.from_json(report.to_json()).raw is None
        assert Report.from_json(report.to_json()) == Report.from_json(
            report.to_json()
        )

    def test_provenance_stamp_shape(self):
        stamp = provenance()
        assert set(stamp) == {"python", "platform", "git"}
        assert all(isinstance(value, str) for value in stamp.values())

    def test_repeats_pool_samples(self):
        single = run_sim("queries=4,loss=0.0")
        pooled = run(RunSpec.from_spec("queries=4,loss=0.0,repeats=3"))
        assert pooled.metrics["sim.repeats"] == 3
        assert pooled.metrics["queries.issued"] == 3 * single.metrics[
            "queries.issued"
        ]
        assert isinstance(pooled.raw, list) and len(pooled.raw) == 3

    def test_pooled_qps_averages_per_run_rates(self):
        # Every repetition restarts the simulated clock; pooling must
        # average the per-run rates, not divide the pooled count by a
        # single run's span (which would inflate qps ~linearly with
        # repeats).
        spec_text = "queries=6,loss=0.0,transport=udp"
        pooled = run(RunSpec.from_spec(spec_text + ",repeats=3"))
        singles = [
            run(RunSpec.from_spec(spec_text, base=RunSpec(seed=seed)))
            for seed in RunSpec.from_spec(spec_text + ",repeats=3").repeat_seeds()
        ]
        mean_qps = sum(r.metrics["throughput.qps"] for r in singles) / 3
        assert pooled.metrics["throughput.qps"] == pytest.approx(
            mean_qps, abs=0.01
        )

    def test_loadgen_pooled_cache_ratios_match_cachestats_semantics(self):
        from repro.api import report_from_loadgen

        base = {
            "mode": "open", "offered_rate_qps": 10.0, "concurrency": None,
            "elapsed_s": 1.0, "achieved_qps": 10.0,
            "queries": 10, "succeeded": 10, "failed": 0,
            "timeouts": 0, "rcode_failures": 0,
            "latency_ms": {"p50": 1, "p95": 1, "p99": 1,
                           "mean": 1, "min": 1, "max": 1},
            "latencies_ms": [1.0] * 10,
            "cache": {"client_dns": {
                "hits": 4, "misses": 4, "stale_hits": 2, "validations": 2,
                "validation_failures": 0,
            }},
        }
        report = report_from_loadgen([base, base])
        metrics = report.metrics
        # CacheStats semantics: hit/stale ratios over lookups,
        # validation_ratio per *stale hit* (not per lookup).
        assert metrics["cache.client_dns.hit_ratio"] == pytest.approx(0.4)
        assert metrics["cache.client_dns.stale_ratio"] == pytest.approx(0.2)
        assert metrics["cache.client_dns.validation_ratio"] == pytest.approx(
            1.0
        )
        assert metrics["queries.issued"] == 20


# -- the acceptance criterion: one spec, two substrates --------------------


class TestSubstrateParity:
    def test_all_substrates_report_identical_common_keys(self):
        sim_report = run(RunSpec.from_spec(PARITY_SPEC))
        live_report = run(
            RunSpec.from_spec(PARITY_SPEC + ",substrate=live,timeout=5")
        )
        fleet_report = run(
            RunSpec.from_spec(PARITY_SPEC + ",substrate=fleet")
        )
        assert sim_report.substrate == "sim"
        assert live_report.substrate == "live"
        assert fleet_report.substrate == "fleet"
        assert (
            sorted(sim_report.common_metrics())
            == sorted(live_report.common_metrics())
            == sorted(fleet_report.common_metrics())
        )
        validate(sim_report.to_json(), SCHEMA)
        validate(live_report.to_json(), SCHEMA)
        validate(fleet_report.to_json(), SCHEMA)
        # All substrates resolved real queries against the same
        # deterministic name universe.
        assert live_report.metrics["queries.succeeded"] > 0
        assert live_report.metrics["live.elapsed_s"] > 0
        assert fleet_report.metrics["queries.succeeded"] > 0

    def test_live_repeats_sum_server_counters(self):
        # Each live repeat restarts the loopback server; the pooled
        # Report must sum the per-repeat server counters, not keep only
        # the final instance's (which would undercount by ~repeats x).
        report = run(RunSpec.from_spec(
            "transport=udp,queries=5,rate=100,substrate=live,"
            "timeout=5,repeats=2"
        ))
        metrics = report.metrics
        assert metrics["live.repeats"] == 2
        # Open-loop arrivals beyond the offered window are truncated,
        # so issued can fall slightly short of 2 x num_queries — but it
        # must pool both repeats, and the summed server-side counters
        # must cover every client-side success.
        assert metrics["queries.issued"] > 5
        assert (
            metrics["live.server.queries_handled"]
            >= metrics["queries.succeeded"]
        )

    def test_live_report_namespaces_server_counters(self):
        live_report = run(
            RunSpec.from_spec(
                "transport=udp,queries=6,rate=100,substrate=live,timeout=5"
            )
        )
        assert live_report.metrics["live.server.queries_handled"] >= 0
        assert "live.cache.resolver.hit_ratio" in live_report.metrics
        validate(live_report.to_json(), SCHEMA)


# -- legacy adapter stays bit-identical ------------------------------------


class TestLegacyAdapter:
    def test_run_resolution_experiment_bit_identical(self):
        from repro.experiments import ExperimentConfig, run_resolution_experiment
        from repro.scenarios import ScenarioRunner

        config = ExperimentConfig(
            transport="coap", num_queries=10, loss=0.1, seed=5
        )
        via_api = run_resolution_experiment(config)
        direct = ScenarioRunner().run(config.to_scenario(), _config=config)
        assert via_api.config is config
        assert via_api.outcomes == direct.outcomes
        assert via_api.link == direct.link
        assert via_api.client_events == direct.client_events
        assert via_api.cache_stats == direct.cache_stats
        assert via_api.proxy_cache_hits == direct.proxy_cache_hits

    def test_to_run_spec_round_trips_scenario(self):
        from repro.experiments import ExperimentConfig

        config = ExperimentConfig(transport="oscore", num_queries=3)
        spec = config.to_run_spec()
        assert spec.substrate == "sim"
        assert spec.scenario == config.to_scenario()


# -- sweeps ----------------------------------------------------------------


class TestSweepJson:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.scenarios import Scenario, ScenarioRunner, WorkloadSpec

        base = Scenario(workload=WorkloadSpec(num_queries=4))
        return ScenarioRunner().sweep(
            base=base, transports=("udp", "coap"),
            topologies=("one-hop",), losses=(0.0,),
        )

    def test_metrics_keeps_tuple_accessor(self, sweep):
        metrics = sweep.metrics()
        assert ("udp", "one-hop", 0.0) in metrics
        with pytest.raises(TypeError):
            json.dumps(metrics)  # tuple keys are Python-only, by design

    def test_cell_metrics_gain_p99_and_mean(self, sweep):
        for cell in sweep:
            metrics = cell.metrics()
            assert metrics["median_s"] <= metrics["p95_s"] <= metrics["p99_s"]
            assert metrics["p99_s"] <= metrics["max_s"]
            assert metrics["median_s"] <= metrics["mean_s"] <= metrics["max_s"]

    def test_to_json_uses_string_grid_keys(self, sweep):
        payload = sweep.to_json()
        json.dumps(payload)  # serialisable as-is
        assert payload["report_version"] == REPORT_VERSION
        assert sorted(payload["cells"]) == ["coap/one-hop/0", "udp/one-hop/0"]
        validate(payload, SCHEMA)

    def test_cell_reports_are_unified(self, sweep):
        reports = sweep.reports()
        report = reports["udp/one-hop/0"]
        assert report.substrate == "sim"
        assert report.spec["transport"] == "udp"
        assert report.metrics["queries.issued"] == 4


# -- perf harness stamp ----------------------------------------------------


def test_perf_report_carries_shared_stamp_and_validates():
    from repro.perf.harness import BenchResult, build_report

    result = BenchResult(
        name="noop", description="noop", unit="ops", repeats=1, warmup=0,
        times_s=[0.001], units=10,
    )
    report = build_report([result], quick=True)
    assert report["report_version"] == REPORT_VERSION
    assert report["provenance"] == provenance()
    validate(report, SCHEMA)


def test_loadgen_shares_the_report_version():
    from repro.api.report import REPORT_VERSION as shared
    from repro.live.loadgen import REPORT_VERSION as loadgen_version

    assert loadgen_version == shared


# -- the schema validator itself -------------------------------------------


class TestSchemaValidator:
    def test_rejects_wrong_type_with_path(self):
        schema = {
            "type": "object",
            "properties": {"n": {"type": "integer"}},
        }
        with pytest.raises(ValidationError) as excinfo:
            validate({"n": "three"}, schema)
        assert "$['n']" in str(excinfo.value)

    def test_bool_is_not_a_number(self):
        with pytest.raises(ValidationError):
            validate(True, {"type": "integer"})

    def test_additional_properties_false(self):
        schema = {"type": "object", "properties": {},
                  "additionalProperties": False}
        with pytest.raises(ValidationError):
            validate({"surprise": 1}, schema)

    def test_pattern_properties_apply(self):
        schema = {
            "type": "object",
            "patternProperties": {"^x\\.": {"type": "number"}},
            "additionalProperties": False,
        }
        validate({"x.a": 1.5}, schema)
        with pytest.raises(ValidationError):
            validate({"x.a": "nope"}, schema)
        with pytest.raises(ValidationError):
            validate({"y.a": 1.5}, schema)

    def test_one_of_requires_exactly_one_match(self):
        schema = {"oneOf": [{"type": "integer"}, {"type": "number"}]}
        with pytest.raises(ValidationError):
            validate(3, schema)  # matches both branches
        validate(3.5, schema)

    def test_local_ref_resolution(self):
        schema = {
            "$defs": {"positive": {"type": "number", "minimum": 0}},
            "$ref": "#/$defs/positive",
        }
        validate(2.0, schema)
        with pytest.raises(ValidationError):
            validate(-1.0, schema)

    def test_unknown_keyword_is_loud(self):
        with pytest.raises(SchemaError):
            validate(1, {"type": "integer", "exclusiveMaximum": 3})

    def test_is_valid_wrapper(self):
        assert is_valid({"report": 1}, {"type": "object"})
        assert not is_valid([], {"type": "object"})

    def test_validate_cli_on_real_artifacts(self, tmp_path, capsys):
        from repro.api.validate import main

        report = run_sim("queries=4,loss=0.0")
        good = tmp_path / "good.json"
        good.write_text(json.dumps(report.to_json()))
        bad = tmp_path / "bad.json"
        payload = report.to_json()
        payload["metrics"]["bogus key"] = 1
        bad.write_text(json.dumps(payload))
        assert main([str(SCHEMA_PATH), str(good)]) == 0
        assert main([str(SCHEMA_PATH), str(good), str(bad)]) == 1
        err = capsys.readouterr().err
        assert "bogus key" in err


def test_schema_substrates_stay_in_sync_with_the_enum():
    # SUBSTRATES (repro.api.report) is the single source of truth; the
    # checked-in schema must list exactly those names and carry one
    # namespaced patternProperty per substrate so adding a substrate
    # without updating the schema fails loudly here.
    from repro.api import SUBSTRATES

    report_schema = SCHEMA["$defs"]["report"]
    assert report_schema["properties"]["substrate"]["enum"] == list(SUBSTRATES)
    patterns = SCHEMA["$defs"]["metrics"]["patternProperties"]
    for substrate in SUBSTRATES:
        namespaced = [
            pattern for pattern in patterns
            if pattern.startswith(f"^{substrate}\\.")
        ]
        assert namespaced, f"no {substrate}.* patternProperty in the schema"


def test_schema_is_valid_draft7_and_agrees_with_jsonschema():
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.Draft7Validator.check_schema(SCHEMA)
    report = run_sim("queries=4,loss=0.0").to_json()
    jsonschema.validate(report, SCHEMA)
    validate(report, SCHEMA)


# -- the live loadgen Report entry point -----------------------------------


def test_generate_report_returns_unified_report():
    from repro.live import DocLiveServer, LiveResolver, generate_report

    async def body():
        server = DocLiveServer(transport="udp", port=0, num_names=8)
        async with server:
            async with LiveResolver(server.endpoint, transport="udp") as r:
                return await generate_report(
                    r, server.names,
                    server_stats=server.stats(),
                    rate=100.0, duration=0.2, timeout=5.0, seed=5,
                )

    report = asyncio.run(asyncio.wait_for(body(), timeout=20))
    assert isinstance(report, Report)
    assert report.substrate == "live"
    assert report.metrics["queries.issued"] > 0
    assert "latencies_ms" in report.raw
    validate(report.to_json(), SCHEMA)
