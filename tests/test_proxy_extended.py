"""Extended forward-proxy coverage: methods, validation paths, errors."""

import pytest

from repro.coap import CoapMessage, Code, OptionNumber
from repro.coap.endpoint import CoapClient, CoapServer
from repro.coap.proxy import ForwardProxy
from repro.sim import Simulator
from repro.stack import build_figure2_topology


def _build(seed=81, origin_handler=None, max_age=30, etag=b"\x01"):
    sim = Simulator(seed=seed)
    topo = build_figure2_topology(sim)
    origin_calls = {"n": 0}

    if origin_handler is None:
        def origin_handler(request, respond, metadata):
            origin_calls["n"] += 1
            response = request.make_response(Code.CONTENT, payload=b"data")
            response = response.with_uint_option(OptionNumber.MAX_AGE, max_age)
            if etag is not None:
                response = response.with_option(OptionNumber.ETAG, etag)
            respond(response)

    origin = CoapServer(sim, topo.resolver_host.bind(5683))
    origin.default_handler = origin_handler
    proxy = ForwardProxy(
        sim, topo.forwarder.bind(5683), topo.forwarder.bind(),
        (topo.resolver_host.address, 5683),
    )
    client = CoapClient(sim, topo.clients[0].bind())
    return sim, topo, proxy, client, origin_calls


def _request(method=Code.FETCH, payload=b"q"):
    return CoapMessage.request(method, "/dns", payload=payload)


class TestProxyMethods:
    def test_post_always_forwarded(self):
        sim, topo, proxy, client, calls = _build()
        results = []
        for delay in (0.0, 1.0):
            sim.schedule(delay, client.request, _request(Code.POST),
                         topo.forwarder.address, 5683,
                         lambda r, e: results.append((r, e)))
        sim.run(until=30)
        assert all(e is None for _, e in results)
        assert calls["n"] == 2
        assert proxy.requests_served_from_cache == 0

    def test_get_cached(self):
        sim, topo, proxy, client, calls = _build(seed=82)
        results = []
        request = CoapMessage.request(Code.GET, "/dns")
        for delay in (0.0, 1.0):
            sim.schedule(delay, client.request, request,
                         topo.forwarder.address, 5683,
                         lambda r, e: results.append((r, e)))
        sim.run(until=30)
        assert calls["n"] == 1
        assert proxy.requests_served_from_cache == 1

    def test_different_payloads_not_conflated(self):
        sim, topo, proxy, client, calls = _build(seed=83)
        results = []
        sim.schedule(0.0, client.request, _request(payload=b"q1"),
                     topo.forwarder.address, 5683,
                     lambda r, e: results.append((r, e)))
        sim.schedule(1.0, client.request, _request(payload=b"q2"),
                     topo.forwarder.address, 5683,
                     lambda r, e: results.append((r, e)))
        sim.run(until=30)
        assert calls["n"] == 2
        assert proxy.requests_served_from_cache == 0


class TestProxyValidation:
    def test_client_etag_confirmed_from_fresh_cache(self):
        """RFC 7252 §5.7: the proxy answers a matching ETag on a fresh
        entry with 2.03 Valid rather than the full payload."""
        sim, topo, proxy, client, calls = _build(seed=84)
        responses = []
        sim.schedule(0.0, client.request, _request(),
                     topo.forwarder.address, 5683,
                     lambda r, e: responses.append(r))
        sim.run(until=5)
        etag = responses[0].etag
        assert etag is not None
        validation = _request().with_option(OptionNumber.ETAG, etag)
        sim.schedule(0.0, client.request, validation,
                     topo.forwarder.address, 5683,
                     lambda r, e: responses.append(r))
        sim.run(until=10)
        assert responses[1].code == Code.VALID
        assert responses[1].payload == b""
        assert calls["n"] == 1   # never reached the origin

    def test_stale_entry_revalidated_upstream(self):
        sim, topo, proxy, client, calls = _build(seed=85, max_age=3)
        responses = []
        sim.schedule(0.0, client.request, _request(),
                     topo.forwarder.address, 5683,
                     lambda r, e: responses.append(r))
        sim.schedule(10.0, client.request, _request(),
                     topo.forwarder.address, 5683,
                     lambda r, e: responses.append(r))
        sim.run(until=30)
        assert len(responses) == 2
        assert responses[1].code == Code.CONTENT
        assert proxy.requests_revalidated == 1

    def test_error_responses_not_cached(self):
        def failing(request, respond, metadata):
            respond(request.make_response(Code.INTERNAL_SERVER_ERROR))

        sim, topo, proxy, client, _ = _build(seed=86, origin_handler=failing)
        results = []
        for delay in (0.0, 1.0):
            sim.schedule(delay, client.request, _request(),
                         topo.forwarder.address, 5683,
                         lambda r, e: results.append((r, e)))
        sim.run(until=30)
        assert all(
            r is not None and r.code == Code.INTERNAL_SERVER_ERROR
            for r, e in results
        )
        assert proxy.requests_served_from_cache == 0
        assert len(proxy.cache) == 0

    def test_blockwise_through_proxy(self):
        """Large responses travel the proxy in blocks and are cached as
        the reassembled whole."""
        big = bytes(range(180))

        def big_handler(request, respond, metadata):
            response = request.make_response(Code.CONTENT, payload=big)
            respond(response.with_uint_option(OptionNumber.MAX_AGE, 60))

        sim = Simulator(seed=87)
        topo = build_figure2_topology(sim)
        origin = CoapServer(sim, topo.resolver_host.bind(5683))
        origin.default_handler = big_handler
        proxy = ForwardProxy(
            sim, topo.forwarder.bind(5683), topo.forwarder.bind(),
            (topo.resolver_host.address, 5683),
        )
        client = CoapClient(sim, topo.clients[0].bind(), block_size=64)
        results = []
        client.request(_request(), topo.forwarder.address, 5683,
                       lambda r, e: results.append((r, e)))
        sim.run(until=60)
        response, error = results[0]
        assert error is None
        assert response.payload == big
