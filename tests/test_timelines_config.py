"""Tests for the Figure 11 timeline extractor and the Table 6 registry."""

import pytest

from repro.config import TABLE6, paper_defaults
from repro.experiments import ExperimentConfig, run_resolution_experiment
from repro.experiments.timelines import (
    TimelinePoint,
    event_timeline,
    offsets_in_windows,
    retransmission_window_bands,
)


class TestTimelines:
    @pytest.fixture(scope="class")
    def lossy_result(self):
        return run_resolution_experiment(
            ExperimentConfig(
                transport="coap", num_queries=30, loss=0.35,
                l2_retries=0, seed=21,
            )
        )

    def test_points_extracted(self, lossy_result):
        points = event_timeline(lossy_result)
        kinds = {p.kind for p in points}
        assert "transmission" in kinds
        assert "retransmission" in kinds

    def test_transmissions_have_zero_offset(self, lossy_result):
        points = event_timeline(lossy_result)
        for point in points:
            if point.kind == "transmission":
                assert point.offset == 0.0

    def test_retransmission_offsets_positive(self, lossy_result):
        points = event_timeline(lossy_result)
        retransmissions = [p for p in points if p.kind == "retransmission"]
        assert retransmissions
        assert all(p.offset > 0 for p in retransmissions)

    def test_offsets_inside_backoff_windows(self, lossy_result):
        points = event_timeline(lossy_result)
        assert offsets_in_windows(points) >= 0.95

    def test_window_bands_figure11(self):
        bands = retransmission_window_bands()
        assert bands == [(2.0, 3.0), (6.0, 9.0), (14.0, 21.0), (30.0, 45.0)]

    def test_cache_hits_at_query_time(self):
        result = run_resolution_experiment(
            ExperimentConfig(
                transport="coap", num_queries=20, num_names=2,
                ttl=(300, 300), client_coap_cache=True, seed=22,
            )
        )
        points = event_timeline(result)
        hits = [p for p in points if p.kind == "cache_hit"]
        assert hits
        assert all(p.offset == 0.0 for p in hits)

    def test_no_retransmissions_means_full_score(self):
        assert offsets_in_windows([]) == 1.0
        assert offsets_in_windows(
            [TimelinePoint(0.0, 0.0, "transmission")]
        ) == 1.0


class TestTable6:
    def test_all_paper_parameters_present(self):
        names = {parameter.riot_name for parameter in TABLE6}
        assert names == {
            "CONFIG_DNS_CACHE_SIZE",
            "CONFIG_DTLS_PEER_MAX",
            "CONFIG_GCOAP_DNS_BLOCK_SIZE",
            "CONFIG_GCOAP_PDU_BUF_SIZE",
            "CONFIG_GCOAP_REQ_WAITING_MAX",
            "CONFIG_GCOAP_RESEND_BUFS_MAX",
            "CONFIG_GNRC_IPV6_NIB_NUMOF",
            "CONFIG_GNRC_PKTBUF_SIZE",
            "CONFIG_NANOCOAP_CACHE_ENTRIES",
            "CONFIG_NANOCOAP_CACHE_RESPONSE_SIZE",
            "CONFIG_SOCK_DODTLS_RETRIES",
            "CONFIG_SOCK_DODTLS_TIMEOUT_MS",
        }

    def test_defaults_match_implementations(self):
        """The registry's claims hold against the actual defaults."""
        from repro.coap.cache import CoapCache
        from repro.coap.proxy import ForwardProxy
        from repro.coap.reliability import ReliabilityParams
        from repro.dns.cache import DNSCache

        defaults = paper_defaults()
        assert DNSCache().capacity == defaults["dns_cache_capacity"]
        assert CoapCache().capacity == defaults["coap_cache_capacity_client"]
        params = ReliabilityParams()
        assert params.max_retransmit == defaults["max_retransmit"]
        assert params.ack_timeout == defaults["ack_timeout"]
        import inspect

        signature = inspect.signature(ForwardProxy.__init__)
        assert signature.parameters["cache_entries"].default == (
            defaults["coap_cache_capacity_proxy"]
        )

    def test_defaults_match_experiment_harness(self):
        from repro.experiments import ExperimentConfig
        from repro.experiments.resolution import NAME_TEMPLATE

        defaults = paper_defaults()
        config = ExperimentConfig()
        assert config.query_rate == defaults["query_rate"]
        assert config.num_queries == defaults["queries_per_run"]
        assert len(NAME_TEMPLATE.format(index=0)) == defaults["name_length"]
