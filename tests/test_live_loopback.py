"""Loopback integration tests for the live serving runtime.

Every test binds real UDP sockets on 127.0.0.1 with ephemeral ports
(port 0) and drives full query→response round trips through the same
protocol stack the simulator runs. Hard wall-clock timeouts guard
every await so a wedged socket fails fast instead of hanging CI.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.dns.enums import RecordType
from repro.live import (
    AsyncioClock,
    DocLiveServer,
    LiveResolver,
    LiveWiringError,
    REPORT_FIELDS,
    build_names,
    generate_load,
)

#: Hard deadline for one whole test body (seconds, wall clock).
TEST_DEADLINE = 20.0

#: Per-query deadline used inside the tests.
QUERY_TIMEOUT = 5.0


def run(coro):
    """Run *coro* under the suite's wall-clock deadline."""
    async def bounded():
        return await asyncio.wait_for(coro, timeout=TEST_DEADLINE)

    return asyncio.run(bounded())


async def _round_trip(transport: str, **client_kwargs):
    server = DocLiveServer(transport=transport, port=0, num_names=8)
    async with server:
        resolver = LiveResolver(
            server.endpoint, transport=transport, **client_kwargs
        )
        async with resolver:
            results = []
            for name in server.names[:3]:
                results.append(
                    await resolver.resolve(name, timeout=QUERY_TIMEOUT)
                )
            return server, resolver, results


# -- full round trips per transport profile ------------------------------


def test_udp_round_trip():
    server, resolver, results = run(_round_trip("udp"))
    assert [r.addresses for r in results] == [
        ["2001:db8::1"], ["2001:db8::1:1"], ["2001:db8::2:1"]
    ]
    assert all(0 < r.rtt < QUERY_TIMEOUT for r in results)
    assert server.stats()["queries_handled"] == 3


def test_batched_io_active_and_counted():
    """Selector loops take the burst-drain reader path; its counters
    and the mmsg detection report surface in the server stats."""
    server, resolver, results = run(_round_trip("coap"))
    io = server.stats()["io"]
    assert io["batched"] is True
    assert io["recv_bursts"] >= 1
    assert io["largest_burst"] >= 1
    assert set(io["mmsg"]) == {"recvmmsg", "sendmmsg"}
    assert len(results) == 3


def test_fastpath_cache_hits_on_repeat_queries():
    """Live serving enables the wire-level response cache by default:
    repeats of the same question replay the prebuilt template."""
    async def body():
        server = DocLiveServer(transport="coap", port=0, num_names=4)
        async with server:
            resolver = LiveResolver(server.endpoint, transport="coap")
            async with resolver:
                for _ in range(3):
                    await resolver.resolve(
                        server.names[0], timeout=QUERY_TIMEOUT
                    )
            return server.stats()

    stats = run(body())
    assert stats["queries_handled"] == 3
    assert stats["fastpath_misses"] == 1
    assert stats["fastpath_hits"] == 2


def test_oscore_round_trip():
    server, resolver, results = run(_round_trip("oscore"))
    assert [r.addresses for r in results] == [
        ["2001:db8::1"], ["2001:db8::1:1"], ["2001:db8::2:1"]
    ]
    # The server actually unprotected OSCORE requests (not plain CoAP).
    assert server.stats()["queries_handled"] == 3
    stats = resolver.stats()
    assert stats["resolutions_completed"] == 3
    assert stats["resolutions_failed"] == 0


def test_coap_round_trip_a_records():
    async def body():
        server = DocLiveServer(transport="coap", port=0, num_names=4)
        async with server:
            async with LiveResolver(server.endpoint, transport="coap") as r:
                return await r.resolve(
                    server.names[0], rtype=int(RecordType.A),
                    timeout=QUERY_TIMEOUT,
                )

    result = run(body())
    assert result.addresses == ["192.0.2.1"]


def test_coaps_round_trip_in_network_handshake():
    # CoAP over DTLS: the very first request triggers a real handshake
    # over loopback before the query flows.
    server, resolver, results = run(_round_trip("coaps"))
    assert all(r.addresses for r in results)


def test_dtls_round_trip():
    server, resolver, results = run(_round_trip("dtls"))
    assert all(r.addresses for r in results)


def test_oscore_secret_mismatch_fails():
    async def body():
        server = DocLiveServer(transport="oscore", port=0, num_names=4)
        async with server:
            resolver = LiveResolver(
                server.endpoint, transport="oscore", secret=b"wrong-secret"
            )
            async with resolver:
                try:
                    await resolver.resolve(server.names[0], timeout=2.0)
                except Exception as exc:
                    return exc
                return None

    error = run(body())
    assert error is not None


def test_unknown_live_transport_rejected():
    with pytest.raises(LiveWiringError):
        DocLiveServer(transport="quic")
    with pytest.raises(LiveWiringError):
        LiveResolver(("127.0.0.1", 5853), transport="quic")


def test_client_dns_cache_short_circuits():
    async def body():
        server = DocLiveServer(transport="coap", port=0, num_names=4)
        async with server:
            resolver = LiveResolver(
                server.endpoint, transport="coap",
                cache_placement="client-dns",
            )
            async with resolver:
                name = server.names[0]
                first = await resolver.resolve(name, timeout=QUERY_TIMEOUT)
                second = await resolver.resolve(name, timeout=QUERY_TIMEOUT)
                return first, second, server.stats()

    first, second, stats = run(body())
    assert not first.from_cache
    assert second.from_cache
    assert stats["queries_handled"] == 1  # one wire query, one cache hit


def test_client_dns_cache_short_circuits_udp():
    # The datagram baseline reports cache hits too (ResolutionResult
    # carries from_cache, not just DocResult).
    async def body():
        server = DocLiveServer(transport="udp", port=0, num_names=4)
        async with server:
            resolver = LiveResolver(
                server.endpoint, transport="udp",
                cache_placement="client-dns",
            )
            async with resolver:
                name = server.names[0]
                first = await resolver.resolve(name, timeout=QUERY_TIMEOUT)
                second = await resolver.resolve(name, timeout=QUERY_TIMEOUT)
                return first, second, server.stats()

    first, second, stats = run(body())
    assert (first.from_cache, second.from_cache) == (False, True)
    assert first.ok and second.ok
    assert stats["queries_handled"] == 1


# -- the AsyncioClock against the Clock protocol -------------------------


def test_asyncio_clock_satisfies_protocol():
    from repro.sim import Clock

    clock = AsyncioClock(seed=3)
    assert isinstance(clock, Clock)
    with pytest.raises(ValueError):
        clock.schedule(-1.0, lambda: None)


def test_asyncio_clock_timers_fire_and_cancel():
    async def body():
        clock = AsyncioClock(seed=3)
        fired = []
        clock.schedule(0.01, fired.append, "a")
        cancelled = clock.schedule(0.01, fired.append, "b")
        cancelled.cancel()
        with pytest.raises(ValueError):
            clock.schedule_at(clock.now - 1.0, fired.append, "c")
        await asyncio.sleep(0.05)
        before = clock.now
        await asyncio.sleep(0.01)
        assert clock.now > before
        return fired

    assert run(body()) == ["a"]


def test_asyncio_clock_rng_is_seeded():
    draws = [AsyncioClock(seed=11).rng.randrange(1 << 30) for _ in range(2)]
    assert draws[0] == draws[1]


def test_live_protocol_identifiers_replayable_under_seed():
    # MID/token/DTLS-random generation must draw from the injectable
    # clock RNG only — two stacks built under the same seed make the
    # same protocol choices (the --seed replayability contract).
    from repro.coap.endpoint import CoapClient
    from repro.dtls.session import DtlsSession

    class DummySocket:
        on_datagram = None

        def sendto(self, *args):  # pragma: no cover - never sent
            raise AssertionError("no traffic expected")

    def fingerprint():
        clock = AsyncioClock(seed=21)
        client = CoapClient(clock, DummySocket())
        session = DtlsSession("client", psk=b"k", rng=clock.rng)
        return (client._next_mid, client._next_token,
                session._client._random)

    assert fingerprint() == fingerprint()


# -- load generator smoke ------------------------------------------------


def test_loadgen_report_schema():
    async def body():
        server = DocLiveServer(transport="coap", port=0, num_names=8)
        async with server:
            async with LiveResolver(server.endpoint, transport="coap") as r:
                return await generate_load(
                    r, server.names, rate=100.0, duration=0.4,
                    timeout=QUERY_TIMEOUT, seed=5,
                )

    report = run(body())
    assert tuple(report.keys()) == REPORT_FIELDS
    assert report["queries"] > 0
    assert report["succeeded"] + report["failed"] == report["queries"]
    assert report["success_rate"] >= 0.95
    latency = report["latency_ms"]
    assert set(latency) == {"p50", "p95", "p99", "mean", "min", "max"}
    assert latency["p50"] <= latency["p95"] <= latency["p99"]
    json.dumps(report)  # must be JSON-serialisable as-is


def test_loadgen_closed_loop():
    async def body():
        server = DocLiveServer(transport="udp", port=0, num_names=8)
        async with server:
            async with LiveResolver(server.endpoint, transport="udp") as r:
                return await generate_load(
                    r, server.names, duration=0.3, mode="closed",
                    concurrency=4, timeout=QUERY_TIMEOUT,
                )

    report = run(body())
    assert report["mode"] == "closed"
    assert report["concurrency"] == 4
    assert report["offered_rate_qps"] is None
    assert report["queries"] > 0
    assert report["success_rate"] == 1.0


def test_loadgen_zipf_skews_names():
    async def body():
        server = DocLiveServer(transport="udp", port=0, num_names=16)
        async with server:
            resolver = LiveResolver(
                server.endpoint, transport="udp",
                cache_placement="client-dns",
            )
            async with resolver:
                from repro.scenarios import WorkloadSpec

                return await generate_load(
                    resolver, server.names, rate=150.0, duration=0.4,
                    timeout=QUERY_TIMEOUT, seed=5,
                    workload=WorkloadSpec(zipf_alpha=1.2),
                )

    report = run(body())
    assert report["workload"]["zipf_alpha"] == 1.2
    # Zipf repetition + client DNS cache => some hits.
    assert report["cache"]["client_dns"]["hits"] > 0


def test_names_universe_is_deterministic():
    assert build_names(5) == build_names(5)
    assert build_names(5, dataset="ixp") == build_names(5, dataset="ixp")
    assert build_names(5, dataset="ixp") != build_names(5, dataset="ixp",
                                                        name_seed=8)
