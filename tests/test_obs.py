"""Tests for the repro.obs observability core.

Covers the metrics registry (instrument semantics, exposition
rendering, snapshot merge purity, parse round-trips), histogram
quantile estimation against exact percentiles and the live-path
``LatencyReservoir`` on a 20k-sample distribution, the per-second
telemetry sampler and timeline merging, the structured JSON logger,
the /metrics + /healthz asyncio listener, and the schema contract
between ``SNAPSHOT_SCHEMA`` and ``tests/report_schema.json``.
"""

from __future__ import annotations

import asyncio
import copy
import io
import json
import os
import random

import pytest

from repro.api.schema import ValidationError, validate
from repro.live.reservoir import LatencyReservoir
from repro.obs.http import ObsHttpServer, ObsHttpThread
from repro.obs.log import JsonLogger, configure, get_logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    label_snapshot,
    merge_snapshots,
    parse_exposition,
    render_snapshot,
)
from repro.obs.telemetry import (
    LATENCY_SECONDS,
    QUERIES_TOTAL,
    RESPONSES_TOTAL,
    SNAPSHOT_SCHEMA,
    TelemetrySampler,
    format_snapshot,
    merge_timelines,
    quantile_from_buckets,
    run_sampler,
    timeline_from_outcomes,
    validate_snapshot,
)

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "report_schema.json")


# -- registry instruments --------------------------------------------------


def test_counter_fast_path_and_family_total():
    registry = MetricsRegistry()
    responses = registry.counter(
        RESPONSES_TOTAL, "responses", labels=("result",)
    )
    ok = responses.labels(result="ok")
    timeout = responses.labels(result="timeout")
    for _ in range(10):
        ok.inc()
    timeout.inc(3)
    assert ok.value == 10
    assert timeout.value == 3
    assert responses.value == 13
    # The same label set resolves to the same child object.
    assert responses.labels(result="ok") is ok


def test_label_validation_rejects_wrong_names():
    registry = MetricsRegistry()
    family = registry.counter("x_total", labels=("result",))
    with pytest.raises(ValueError):
        family.labels(direction="in")
    with pytest.raises(ValueError):
        family.labels()


def test_reregistration_returns_same_family_and_checks_kind():
    registry = MetricsRegistry()
    first = registry.counter("dup_total")
    assert registry.counter("dup_total") is first
    with pytest.raises(ValueError):
        registry.gauge("dup_total")


def test_default_latency_buckets_shape():
    # Four per decade, 100 µs up to 10 s, strictly increasing.
    assert len(DEFAULT_LATENCY_BUCKETS) == 21
    assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-4)
    assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(10.0)
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


def test_histogram_le_boundary_is_inclusive():
    registry = MetricsRegistry()
    hist = registry.histogram("h_seconds", buckets=(0.001, 0.01)).labels()
    hist.observe(0.001)  # exactly the first bound -> first bucket
    hist.observe(0.0011)  # just above -> second bucket
    hist.observe(5.0)  # beyond all bounds -> overflow
    assert hist.counts == [1, 1, 1]
    assert hist.count == 3


# -- histogram quantiles vs exact vs reservoir -----------------------------


def test_histogram_quantiles_track_exact_and_reservoir():
    """On 20k lognormal-ish samples the bucket estimate must stay within
    one bucket width of the exact quantile, and the LatencyReservoir
    (which holds every sample below capacity-saturation) must agree
    with exact to float precision."""
    rng = random.Random(42)
    samples = [min(9.9, 0.0005 * rng.lognormvariate(0.0, 1.0))
               for _ in range(20_000)]

    registry = MetricsRegistry()
    hist = registry.histogram(LATENCY_SECONDS).labels()
    reservoir = LatencyReservoir(capacity=20_000, seed=1)
    for s in samples:
        hist.observe(s)
        reservoir.add(s)

    ordered = sorted(samples)
    for q, pct in ((0.50, 50), (0.95, 95), (0.99, 99)):
        exact = ordered[min(int(q * len(ordered)), len(ordered) - 1)]
        estimate = quantile_from_buckets(
            DEFAULT_LATENCY_BUCKETS, hist.counts, q
        )
        held = reservoir.percentile(pct)
        # Log-spaced buckets: the estimate lands within the winning
        # bucket, i.e. within a factor of 10**(1/4) of exact.
        assert estimate is not None
        assert exact / 1.9 <= estimate <= exact * 1.9, (q, exact, estimate)
        # Unsaturated reservoir == full sample set, so exact-ish.
        assert held == pytest.approx(exact, rel=0.01)
    assert hist.count == reservoir.count == 20_000
    assert hist.sum == pytest.approx(sum(samples))


def test_quantile_from_buckets_edges():
    assert quantile_from_buckets((0.1, 1.0), [0, 0, 0], 0.5) is None
    # All mass in overflow reports the last bound, not beyond.
    assert quantile_from_buckets((0.1, 1.0), [0, 0, 7], 0.5) == 1.0
    # Single bucket interpolates between the bounds.
    est = quantile_from_buckets((0.1, 1.0), [0, 10, 0], 0.5)
    assert 0.1 <= est <= 1.0


# -- exposition rendering --------------------------------------------------


GOLDEN_EXPOSITION = """\
# HELP demo_latency_seconds latency
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="0.001"} 1
demo_latency_seconds_bucket{le="0.1"} 3
demo_latency_seconds_bucket{le="+Inf"} 4
demo_latency_seconds_count 4
demo_latency_seconds_sum 1.153
# HELP demo_queries_total queries handled
# TYPE demo_queries_total counter
demo_queries_total{result="error"} 2
demo_queries_total{result="ok"} 40
# HELP demo_up up flag
# TYPE demo_up gauge
demo_up 1
"""


def test_prometheus_exposition_golden():
    registry = MetricsRegistry()
    queries = registry.counter(
        "demo_queries_total", "queries handled", labels=("result",)
    )
    queries.labels(result="ok").inc(40)
    queries.labels(result="error").inc(2)
    registry.gauge("demo_up", "up flag").labels().set(1)
    hist = registry.histogram(
        "demo_latency_seconds", "latency", buckets=(0.001, 0.1)
    ).labels()
    for value in (0.0005, 0.002, 0.1, 1.0505):
        hist.observe(value)
    assert registry.render() == GOLDEN_EXPOSITION


def test_exposition_label_escaping_round_trip():
    registry = MetricsRegistry()
    family = registry.counter("esc_total", labels=("name",))
    tricky = 'a"b\\c\nd'
    family.labels(name=tricky).inc(5)
    text = registry.render()
    parsed = parse_exposition(text)
    assert parsed["esc_total"][(("name", tricky),)] == 5.0


def test_parse_exposition_round_trip_histogram():
    registry = MetricsRegistry()
    hist = registry.histogram(
        LATENCY_SECONDS, "latency", labels=("worker",)
    )
    child = hist.labels(worker="0")
    for value in (0.0002, 0.003, 0.05, 2.0):
        child.observe(value)
    parsed = parse_exposition(registry.render())
    buckets = parsed[f"{LATENCY_SECONDS}_bucket"]
    inf_key = (("le", "+Inf"), ("worker", "0"))
    assert buckets[inf_key] == 4.0
    # Cumulative counts are monotone in le.
    ordered = sorted(
        (
            (float("inf") if dict(k)["le"] == "+Inf" else float(dict(k)["le"]),
             v)
            for k, v in buckets.items()
        ),
    )
    values = [v for _le, v in ordered]
    assert values == sorted(values)
    assert parsed[f"{LATENCY_SECONDS}_count"][(("worker", "0"),)] == 4.0


# -- snapshot merge --------------------------------------------------------


def _loaded_registry(scale: int = 1) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(QUERIES_TOTAL).labels().inc(100 * scale)
    responses = registry.counter(RESPONSES_TOTAL, labels=("result",))
    responses.labels(result="ok").inc(90 * scale)
    responses.labels(result="timeout").inc(10 * scale)
    hist = registry.histogram(LATENCY_SECONDS).labels()
    for i in range(10 * scale):
        hist.observe(0.001 * (i + 1))
    return registry


def test_merge_snapshots_sums_and_is_pure():
    one = _loaded_registry(1).snapshot()
    two = _loaded_registry(2).snapshot()
    before_one = copy.deepcopy(one)
    before_two = copy.deepcopy(two)

    merged = merge_snapshots([one, two])
    assert one == before_one and two == before_two  # inputs untouched
    assert "_index" not in merged[QUERIES_TOTAL]

    samples = {(): v for labels, v in merged[QUERIES_TOTAL]["samples"]
               if not labels}
    assert samples[()] == 300
    hist_samples = merged[LATENCY_SECONDS]["samples"]
    assert hist_samples[0][1][1] == 30  # count summed

    # Commutative: order of inputs does not change totals.
    flipped = merge_snapshots([two, one])
    assert (
        sorted(json.dumps(s) for s in flipped[RESPONSES_TOTAL]["samples"])
        == sorted(json.dumps(s) for s in merged[RESPONSES_TOTAL]["samples"])
    )


def test_merge_snapshots_kind_conflict_raises():
    a = MetricsRegistry()
    a.counter("thing")
    b = MetricsRegistry()
    b.gauge("thing")
    with pytest.raises(ValueError):
        merge_snapshots([a.snapshot(), b.snapshot()])


def test_label_snapshot_stamps_without_mutating():
    snap = _loaded_registry().snapshot()
    before = copy.deepcopy(snap)
    stamped = label_snapshot(snap, worker="3")
    assert snap == before
    for entry in stamped.values():
        for labels, _value in entry["samples"]:
            assert labels["worker"] == "3"
    # Histogram values are deep-copied, not aliased.
    stamped[LATENCY_SECONDS]["samples"][0][1][0][0] += 999
    assert snap == before


def test_worker_series_sum_to_pool_totals():
    """The pool exposition contract CI asserts over HTTP, in-process:
    stamped per-worker series summed across workers equal the merged
    (unstamped) pool totals."""
    snaps = [_loaded_registry(1).snapshot(), _loaded_registry(3).snapshot()]
    stamped = [
        label_snapshot(s, worker=str(i)) for i, s in enumerate(snaps)
    ]
    exposition = render_snapshot(merge_snapshots(stamped))
    parsed = parse_exposition(exposition)
    per_worker = sum(parsed[QUERIES_TOTAL].values())
    pool = merge_snapshots(snaps)
    total = sum(v for _l, v in pool[QUERIES_TOTAL]["samples"])
    assert per_worker == total == 400


# -- telemetry sampler -----------------------------------------------------


def test_sampler_emits_interval_deltas():
    registry = _loaded_registry()
    clock = iter([0.0, 1.0, 2.0])
    seen = []
    sampler = TelemetrySampler(
        registry, interval=1.0, time_fn=lambda: next(clock),
        sinks=(seen.append,),
    )
    assert sampler.tick() is None  # priming
    first = sampler.tick()
    assert first["queries"] == 100
    assert first["succeeded"] == 90
    assert first["failed"] == 10
    assert first["timeouts"] == 10
    assert first["qps"] == pytest.approx(90.0)
    assert first["latency_ms"]["p50"] is not None
    validate_snapshot(first)

    # No traffic in the second interval -> zero deltas, null latency.
    second = sampler.tick()
    assert second["queries"] == 0
    assert second["latency_ms"] == {"p50": None, "p99": None, "mean": None}
    validate_snapshot(second)
    assert seen == [first, second]
    assert sampler.timeline == [first, second]


def test_sampler_sink_errors_do_not_break_sampling():
    registry = _loaded_registry()
    clock = iter([0.0, 1.0])

    def broken(_record):
        raise OSError("gone")

    sampler = TelemetrySampler(
        registry, interval=1.0, time_fn=lambda: next(clock), sinks=(broken,)
    )
    sampler.tick()
    assert sampler.tick() is not None


def test_run_sampler_takes_final_tick():
    registry = _loaded_registry()

    async def drive():
        stop = asyncio.Event()
        sampler = TelemetrySampler(registry, interval=0.05)
        task = asyncio.ensure_future(run_sampler(sampler, stop))
        await asyncio.sleep(0.12)
        stop.set()
        return await task

    timeline = asyncio.run(drive())
    assert len(timeline) >= 2  # at least one interval plus the tail tick
    total = sum(r["queries"] for r in timeline)
    assert total == 100  # every count lands in exactly one interval


def test_merge_timelines_weights_latency_by_successes():
    a = [{"t": 1.0, "interval_s": 1.0, "queries": 10, "succeeded": 10,
          "failed": 0, "timeouts": 0, "qps": 10.0,
          "latency_ms": {"p50": 1.0, "p99": 2.0, "mean": 1.0}}]
    b = [{"t": 1.1, "interval_s": 1.0, "queries": 30, "succeeded": 30,
          "failed": 0, "timeouts": 0, "qps": 30.0,
          "latency_ms": {"p50": 3.0, "p99": 4.0, "mean": 3.0}}]
    merged = merge_timelines([a, b])
    assert len(merged) == 1
    row = merged[0]
    assert row["queries"] == 40
    assert row["qps"] == pytest.approx(40.0)
    assert row["t"] == 1.1
    # 10 successes at 1.0ms + 30 at 3.0ms -> 2.5ms weighted p50.
    assert row["latency_ms"]["p50"] == pytest.approx(2.5)
    validate_snapshot(row)
    assert merge_timelines([[], []]) == []


def test_timeline_from_outcomes_buckets_by_issue_second():
    class Outcome:
        def __init__(self, issued_at, resolution_time=None, error=None):
            self.issued_at = issued_at
            self.resolution_time = resolution_time
            self.error = error

    outcomes = [
        Outcome(0.1, 0.010),
        Outcome(0.6, 0.020),
        Outcome(1.2, None, "timeout waiting for response"),
        Outcome(2.5, 0.040),
    ]
    timeline = timeline_from_outcomes(outcomes)
    assert [r["t"] for r in timeline] == [1.0, 2.0, 3.0]
    assert timeline[0]["queries"] == 2
    assert timeline[0]["succeeded"] == 2
    assert timeline[1]["failed"] == 1
    assert timeline[1]["timeouts"] == 1
    assert timeline[2]["latency_ms"]["p50"] == pytest.approx(40.0)
    for row in timeline:
        validate_snapshot(row)


def test_format_snapshot_is_compact():
    line = format_snapshot({
        "t": 3.0, "interval_s": 1.0, "queries": 512, "succeeded": 508,
        "failed": 4, "timeouts": 1, "qps": 508.0,
        "latency_ms": {"p50": 0.4, "p99": 2.11, "mean": 0.6},
    })
    assert "t=   3.0s" in line
    assert "qps=" in line and "p99=2.1ms" in line
    no_latency = format_snapshot({
        "t": 1.0, "interval_s": 1.0, "queries": 0, "succeeded": 0,
        "failed": 0, "timeouts": 0, "qps": 0.0,
        "latency_ms": {"p50": None, "p99": None, "mean": None},
    })
    assert "p99=-" in no_latency


# -- schema contract -------------------------------------------------------


def test_snapshot_schema_matches_report_schema_defs():
    """SNAPSHOT_SCHEMA and tests/report_schema.json must describe the
    same shape; a drift here would let --stream lines diverge from what
    CI validates Report telemetry against."""
    with open(SCHEMA_PATH) as handle:
        report_schema = json.load(handle)
    embedded = report_schema["$defs"]["telemetry_snapshot"]
    assert json.loads(json.dumps(SNAPSHOT_SCHEMA)) == embedded


def test_validate_snapshot_rejects_bad_records():
    good = {
        "t": 1.0, "interval_s": 1.0, "queries": 1, "succeeded": 1,
        "failed": 0, "timeouts": 0, "qps": 1.0,
        "latency_ms": {"p50": 1.0, "p99": 1.0, "mean": 1.0},
    }
    validate_snapshot(good)
    bad = dict(good, queries=-1)
    with pytest.raises(ValidationError):
        validate_snapshot(bad)
    extra = dict(good, surprise=1)
    with pytest.raises(ValidationError):
        validate_snapshot(extra)


def test_report_schema_accepts_snapshot_document():
    with open(SCHEMA_PATH) as handle:
        report_schema = json.load(handle)
    validate(
        {
            "t": 1.0, "interval_s": 1.0, "queries": 5, "succeeded": 5,
            "failed": 0, "timeouts": 0, "qps": 5.0,
            "latency_ms": {"p50": 0.5, "p99": 0.9, "mean": 0.6},
        },
        report_schema,
    )


# -- structured logging ----------------------------------------------------


def test_logger_emits_json_with_bound_context():
    stream = io.StringIO()
    log = get_logger("test.obs", run="r1").bind(worker=2)
    configure(stream=stream, level="info")
    try:
        log.info("hello", extra=7)
        log.debug("hidden")
    finally:
        configure(stream=None, level="warning")
        from repro.obs import log as log_module

        log_module._state["stream"] = None
    lines = [json.loads(l) for l in stream.getvalue().splitlines()]
    assert len(lines) == 1
    record = lines[0]
    assert record["logger"] == "test.obs"
    assert record["msg"] == "hello"
    assert record["run"] == "r1"
    assert record["worker"] == 2
    assert record["extra"] == 7
    assert record["level"] == "info"
    assert "ts" in record


def test_logger_bind_does_not_mutate_parent():
    parent = JsonLogger("p", {"a": 1})
    child = parent.bind(b=2)
    assert parent._context == {"a": 1}
    assert child._context == {"a": 1, "b": 2}


def test_logger_survives_closed_stream():
    stream = io.StringIO()
    stream.close()
    configure(stream=stream, level="error")
    try:
        get_logger("t").error("boom")  # must not raise
    finally:
        from repro.obs import log as log_module

        log_module._state["stream"] = None
        log_module._state["level"] = None


def test_configure_rejects_unknown_level():
    with pytest.raises(ValueError):
        configure(level="loud")


# -- HTTP listener ---------------------------------------------------------


async def _http_get(port: int, path: str) -> tuple:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body.decode()


def test_obs_http_server_routes():
    registry = _loaded_registry()

    async def scenario():
        server = ObsHttpServer(
            registry.render, lambda: (True, {"role": "test"}), port=0
        )
        await server.start()
        try:
            status, body = await _http_get(server.port, "/metrics")
            assert status == 200
            parsed = parse_exposition(body)
            assert parsed[QUERIES_TOTAL][()] == 100.0

            status, body = await _http_get(server.port, "/healthz")
            assert status == 200
            payload = json.loads(body)
            assert payload["status"] == "ok"
            assert payload["role"] == "test"

            status, _ = await _http_get(server.port, "/nope")
            assert status == 404
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_obs_http_unhealthy_is_503_and_post_rejected():
    async def scenario():
        server = ObsHttpServer(
            lambda: "", lambda: (False, {"reason": "socket closed"}), port=0
        )
        await server.start()
        try:
            status, body = await _http_get(server.port, "/healthz")
            assert status == 503
            assert json.loads(body)["status"] == "unhealthy"

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"POST /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b" 405 " in raw.split(b"\r\n", 1)[0]
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_obs_http_thread_serves_from_sync_caller():
    registry = _loaded_registry()
    thread = ObsHttpThread(
        registry.render, lambda: (True, {}), port=0
    )
    port = thread.start()
    try:
        status, body = asyncio.run(_http_get(port, "/metrics"))
        assert status == 200
        assert QUERIES_TOTAL in body
    finally:
        thread.stop()


def test_obs_http_thread_bind_failure_raises():
    holder = ObsHttpThread(lambda: "", lambda: (True, {}), port=0)
    port = holder.start()
    try:
        clashing = ObsHttpThread(lambda: "", lambda: (True, {}), port=port)
        with pytest.raises(RuntimeError):
            clashing.start()
    finally:
        holder.stop()
