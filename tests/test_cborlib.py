"""Tests for the CBOR codec (RFC 8949 vectors and round trips)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cborlib import (
    CBORDecodeError,
    CBOREncodeError,
    Simple,
    Tag,
    UNDEFINED,
    dumps,
    loads,
    loads_prefix,
)


# RFC 8949 Appendix A test vectors (encode direction).
RFC_VECTORS = [
    (0, "00"),
    (1, "01"),
    (10, "0a"),
    (23, "17"),
    (24, "1818"),
    (25, "1819"),
    (100, "1864"),
    (1000, "1903e8"),
    (1000000, "1a000f4240"),
    (1000000000000, "1b000000e8d4a51000"),
    (18446744073709551615, "1bffffffffffffffff"),
    (-1, "20"),
    (-10, "29"),
    (-100, "3863"),
    (-1000, "3903e7"),
    (False, "f4"),
    (True, "f5"),
    (None, "f6"),
    (b"", "40"),
    (bytes.fromhex("01020304"), "4401020304"),
    ("", "60"),
    ("a", "6161"),
    ("IETF", "6449455446"),
    ("ü", "62c3bc"),
    ("水", "63e6b0b4"),
    ([], "80"),
    ([1, 2, 3], "83010203"),
    ([1, [2, 3], [4, 5]], "8301820203820405"),
    ({}, "a0"),
    ({1: 2, 3: 4}, "a201020304"),
    ({"a": 1, "b": [2, 3]}, "a26161016162820203"),
    (Tag(1, 1363896240), "c11a514b67b0"),
    (1.5, "f93e00"),
    (-4.1, "fbc010666666666666"),
    (100000.0, "fa47c35000"),
]


@pytest.mark.parametrize("value,expected_hex", RFC_VECTORS)
def test_rfc8949_encode_vectors(value, expected_hex):
    assert dumps(value).hex() == expected_hex


@pytest.mark.parametrize("value,expected_hex", RFC_VECTORS)
def test_rfc8949_decode_vectors(value, expected_hex):
    assert loads(bytes.fromhex(expected_hex)) == value


def test_long_array_25_items():
    value = list(range(1, 26))
    assert loads(dumps(value)) == value
    assert dumps(value).startswith(b"\x98\x19")


def test_undefined_round_trip():
    assert loads(dumps(UNDEFINED)) == UNDEFINED


def test_simple_value_range_validation():
    with pytest.raises(ValueError):
        Simple(24)
    with pytest.raises(ValueError):
        Simple(256)


def test_tag_negative_number_rejected():
    with pytest.raises(ValueError):
        Tag(-1, 0)


def test_map_keys_sorted_deterministically():
    a = dumps({"b": 1, "a": 2})
    b = dumps({"a": 2, "b": 1})
    assert a == b


def test_nan_half_precision():
    assert dumps(float("nan")) == bytes.fromhex("f97e00")
    assert math.isnan(loads(bytes.fromhex("f97e00")))


def test_unencodable_type_raises():
    with pytest.raises(CBOREncodeError):
        dumps(object())


def test_trailing_bytes_rejected():
    with pytest.raises(CBORDecodeError):
        loads(b"\x00\x00")


def test_truncated_input_rejected():
    with pytest.raises(CBORDecodeError):
        loads(b"\x18")  # uint8 follows, missing


def test_reserved_additional_info_rejected():
    with pytest.raises(CBORDecodeError):
        loads(bytes([0x1C]))  # info 28 is reserved


def test_unexpected_break_rejected():
    with pytest.raises(CBORDecodeError):
        loads(b"\xff")


def test_indefinite_text_string():
    # 0x7f "strea" "ming" 0xff
    data = bytes.fromhex("7f657374726561646d696e67ff")
    assert loads(data) == "streaming"


def test_indefinite_array():
    data = bytes.fromhex("9f018202039f0405ffff")
    assert loads(data) == [1, [2, 3], [4, 5]]


def test_indefinite_map():
    data = bytes.fromhex("bf61610161629f0203ffff")
    assert loads(data) == {"a": 1, "b": [2, 3]}


def test_invalid_utf8_rejected():
    with pytest.raises(CBORDecodeError):
        loads(b"\x61\xff")


def test_unhashable_map_key_rejected():
    # {[1]: 2}
    with pytest.raises(CBORDecodeError):
        loads(bytes.fromhex("a1810102"))


def test_loads_prefix_returns_consumed():
    data = dumps([1, 2]) + dumps("x")
    value, consumed = loads_prefix(data)
    assert value == [1, 2]
    assert loads(data[consumed:]) == "x"


def test_bytes_like_inputs_encode():
    assert dumps(bytearray(b"ab")) == dumps(b"ab")
    assert dumps(memoryview(b"ab")) == dumps(b"ab")


_scalars = st.one_of(
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    st.binary(max_size=64),
    st.text(max_size=32),
    st.booleans(),
    st.none(),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(
            st.one_of(st.integers(-1000, 1000), st.text(max_size=8)),
            children,
            max_size=6,
        ),
    ),
    max_leaves=20,
)


@given(_values)
def test_round_trip_property(value):
    decoded = loads(dumps(value))
    # Lists come back as lists; tuples are encoded as arrays.
    assert decoded == value


@given(st.floats(allow_nan=False))
def test_float_round_trip(value):
    assert loads(dumps(value)) == value


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_uint_shortest_form(value):
    encoded = dumps(value)
    if value < 24:
        assert len(encoded) == 1
    elif value < 256:
        assert len(encoded) == 2
    elif value < 65536:
        assert len(encoded) == 3
