"""CoAP cache tests: keys, freshness, validation (the Table 5 core)."""

import pytest

from repro.coap import CoapCache, CoapMessage, Code, OptionNumber, cache_key_for


def _fetch(payload=b"query", path="/dns"):
    return CoapMessage.request(Code.FETCH, path, payload=payload)


def _response(request, payload=b"answer", max_age=30, etag=b"\x01"):
    response = request.make_response(Code.CONTENT, payload=payload)
    response = response.with_uint_option(OptionNumber.MAX_AGE, max_age)
    if etag is not None:
        response = response.with_option(OptionNumber.ETAG, etag)
    return response


class TestCacheKey:
    def test_fetch_includes_payload(self):
        assert cache_key_for(_fetch(b"a")) != cache_key_for(_fetch(b"b"))

    def test_get_ignores_payload(self):
        a = CoapMessage.request(Code.GET, "/dns")
        b = CoapMessage.request(Code.GET, "/dns")
        assert cache_key_for(a) == cache_key_for(b)

    def test_post_not_cacheable(self):
        assert cache_key_for(CoapMessage.request(Code.POST, "/dns")) is None

    def test_uri_path_distinguishes(self):
        assert cache_key_for(_fetch(path="/dns")) != cache_key_for(_fetch(path="/x"))

    def test_token_and_mid_irrelevant(self):
        from dataclasses import replace

        a = _fetch()
        b = replace(a, token=b"\x09", mid=777)
        assert cache_key_for(a) == cache_key_for(b)

    def test_block_and_etag_options_excluded(self):
        a = _fetch()
        b = _fetch().with_option(OptionNumber.ETAG, b"\x01").with_option(
            OptionNumber.BLOCK2, b"\x01"
        )
        assert cache_key_for(a) == cache_key_for(b)

    def test_identical_dns_queries_share_key(self):
        """The Section 4.2 design point: ID-zeroed DNS queries are
        byte-identical and therefore share a cache entry."""
        from repro.dns import make_query

        wire1 = make_query("example.org", txid=0).encode()
        wire2 = make_query("example.org", txid=0).encode()
        assert cache_key_for(_fetch(wire1)) == cache_key_for(_fetch(wire2))

    def test_distinct_dns_ids_break_key(self):
        from repro.dns import make_query

        wire1 = make_query("example.org", txid=1).encode()
        wire2 = make_query("example.org", txid=2).encode()
        assert cache_key_for(_fetch(wire1)) != cache_key_for(_fetch(wire2))


class TestFreshness:
    def test_fresh_hit_ages_max_age(self):
        cache = CoapCache()
        request = _fetch()
        cache.store(request, _response(request, max_age=30), now=0.0)
        hit, _ = cache.lookup(request, now=12.0)
        assert hit is not None
        assert hit.max_age == 18

    def test_stale_after_max_age(self):
        cache = CoapCache()
        request = _fetch()
        cache.store(request, _response(request, max_age=5), now=0.0)
        hit, entry = cache.lookup(request, now=6.0)
        assert hit is None and entry is not None

    def test_default_max_age_60(self):
        cache = CoapCache()
        request = _fetch()
        response = request.make_response(Code.CONTENT, payload=b"x")
        cache.store(request, response, now=0.0)
        hit, _ = cache.lookup(request, now=59.0)
        assert hit is not None
        hit, _ = cache.lookup(request, now=61.0)
        assert hit is None

    def test_error_responses_not_cached(self):
        cache = CoapCache()
        request = _fetch()
        assert not cache.store(request, request.make_response(Code.NOT_FOUND), 0.0)

    def test_post_store_rejected(self):
        cache = CoapCache()
        request = CoapMessage.request(Code.POST, "/dns", payload=b"q")
        assert not cache.store(request, _response(request), 0.0)

    def test_lru_eviction(self):
        cache = CoapCache(capacity=2)
        for i in range(3):
            request = _fetch(payload=bytes([i]))
            cache.store(request, _response(request), now=0.0)
        assert len(cache) == 2
        hit, entry = cache.lookup(_fetch(payload=b"\x00"), now=0.0)
        assert hit is None and entry is None


class TestValidation:
    def test_refresh_with_matching_etag(self):
        cache = CoapCache()
        request = _fetch()
        cache.store(request, _response(request, max_age=5, etag=b"\x01"), now=0.0)
        _, entry = cache.lookup(request, now=10.0)   # stale
        valid = request.make_response(Code.VALID).with_option(
            OptionNumber.ETAG, b"\x01"
        ).with_uint_option(OptionNumber.MAX_AGE, 8)
        revived = cache.refresh(request, valid, now=10.0)
        assert revived is not None
        assert revived.payload == b"answer"
        assert revived.max_age == 8
        hit, _ = cache.lookup(request, now=12.0)
        assert hit is not None  # fresh again

    def test_refresh_with_changed_etag_fails(self):
        """The DoH-like failure of Figure 3 step 4."""
        cache = CoapCache()
        request = _fetch()
        cache.store(request, _response(request, etag=b"\x01"), now=0.0)
        valid = request.make_response(Code.VALID).with_option(
            OptionNumber.ETAG, b"\x02"
        )
        assert cache.refresh(request, valid, now=70.0) is None
        assert cache.stats.validation_failures == 1

    def test_refresh_unknown_entry(self):
        cache = CoapCache()
        request = _fetch()
        valid = request.make_response(Code.VALID)
        assert cache.refresh(request, valid, now=0.0) is None

    def test_etags_for_stale_entry(self):
        cache = CoapCache()
        request = _fetch()
        cache.store(request, _response(request, etag=b"\x42"), now=0.0)
        assert cache.etags_for(request, now=100.0) == [b"\x42"]
        assert cache.etags_for(_fetch(b"other"), now=0.0) == []

    def test_store_valid_routes_to_refresh(self):
        cache = CoapCache()
        request = _fetch()
        cache.store(request, _response(request, max_age=5, etag=b"\x01"), now=0.0)
        valid = request.make_response(Code.VALID).with_option(
            OptionNumber.ETAG, b"\x01"
        ).with_uint_option(OptionNumber.MAX_AGE, 9)
        assert cache.store(request, valid, now=6.0)
        hit, _ = cache.lookup(request, now=7.0)
        assert hit is not None

    def test_stats_counters(self):
        cache = CoapCache()
        request = _fetch()
        cache.lookup(request, now=0.0)
        cache.store(request, _response(request, max_age=5), now=0.0)
        cache.lookup(request, now=1.0)
        cache.lookup(request, now=6.0)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stale_hits == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CoapCache(0)
