"""DNS-over-UDP / DNS-over-DTLS baseline and adapter tests."""

import pytest

from repro.dns import DNSCache, RecordType, RecursiveResolver, Zone
from repro.sim import Simulator
from repro.stack import build_figure2_topology
from repro.transports import (
    DnsOverDtlsClient,
    DnsOverDtlsServer,
    DnsOverUdpClient,
    DnsOverUdpServer,
    DtlsClientAdapter,
    DtlsServerAdapter,
    preestablish,
)
from repro.transports.dns_over_udp import DnsTimeoutError


def _zone():
    zone = Zone()
    zone.add_address("n.example.org", "2001:db8::1", ttl=60)
    zone.add_address("n.example.org", "192.0.2.1", ttl=60)
    return zone


class TestDnsOverUdp:
    def _setup(self, loss=0.0, seed=1, cache=False):
        sim = Simulator(seed=seed)
        topo = build_figure2_topology(sim, loss=loss)
        resolver = RecursiveResolver(_zone())
        DnsOverUdpServer(sim, topo.resolver_host.bind(53), resolver)
        client = DnsOverUdpClient(
            sim, topo.clients[0].bind(), (topo.resolver_host.address, 53),
            dns_cache=DNSCache(8) if cache else None,
        )
        return sim, topo, client

    def test_resolution(self):
        sim, _, client = self._setup()
        results = []
        client.resolve("n.example.org", RecordType.AAAA,
                       lambda r, e: results.append((r, e)))
        sim.run(until=30)
        result, error = results[0]
        assert error is None
        assert result.addresses == ["2001:db8::1"]

    def test_a_record(self):
        sim, _, client = self._setup()
        results = []
        client.resolve("n.example.org", RecordType.A,
                       lambda r, e: results.append((r, e)))
        sim.run(until=30)
        assert results[0][0].addresses == ["192.0.2.1"]

    def test_txids_distinct(self):
        sim, _, client = self._setup()
        client.resolve("n.example.org", RecordType.A, lambda r, e: None)
        client.resolve("n.example.org", RecordType.AAAA, lambda r, e: None)
        assert len(client._pending) == 2
        ids = list(client._pending)
        assert ids[0] != ids[1]
        sim.run(until=30)

    def test_retransmission_on_loss(self):
        sim, topo, client = self._setup(loss=0.5, seed=9)
        topo.network.medium.l2_retries = 0
        results = []
        for i in range(5):
            sim.schedule(i * 0.2, client.resolve, "n.example.org",
                         RecordType.AAAA, lambda r, e: results.append((r, e)))
        sim.run(until=200)
        assert len(results) == 5
        assert client.retransmissions > 0

    def test_timeout_error(self):
        sim = Simulator(seed=10)
        topo = build_figure2_topology(sim)
        client = DnsOverUdpClient(
            sim, topo.clients[0].bind(), (topo.resolver_host.address, 53)
        )
        results = []
        client.resolve("n.example.org", RecordType.AAAA,
                       lambda r, e: results.append((r, e)))
        sim.run(until=200)
        assert isinstance(results[0][1], DnsTimeoutError)

    def test_client_dns_cache(self):
        sim, topo, client = self._setup(cache=True)
        results = []
        sim.schedule(0.0, client.resolve, "n.example.org", RecordType.AAAA,
                     lambda r, e: results.append(r))
        sim.schedule(5.0, client.resolve, "n.example.org", RecordType.AAAA,
                     lambda r, e: results.append(r))
        sim.run(until=30)
        assert len(results) == 2
        assert client.transmissions == 1
        # TTL aged by the cache (stored just after t=0, read at t=5).
        assert results[1].response.min_ttl() in (55, 56)

    def test_server_delay(self):
        sim = Simulator(seed=11)
        topo = build_figure2_topology(sim)
        DnsOverUdpServer(sim, topo.resolver_host.bind(53),
                         RecursiveResolver(_zone()), response_delay=1.0)
        client = DnsOverUdpClient(
            sim, topo.clients[0].bind(), (topo.resolver_host.address, 53)
        )
        done = []
        client.resolve("n.example.org", RecordType.AAAA,
                       lambda r, e: done.append(sim.now))
        sim.run(until=30)
        assert done[0] >= 1.0


class TestDnsOverDtls:
    def _setup(self, preestablished=True, seed=2):
        sim = Simulator(seed=seed)
        topo = build_figure2_topology(sim)
        resolver = RecursiveResolver(_zone())
        server = DnsOverDtlsServer(sim, topo.resolver_host.bind(853), resolver)
        client = DnsOverDtlsClient(
            sim, topo.clients[0].bind(6001), (topo.resolver_host.address, 853)
        )
        if preestablished:
            preestablish(client.adapter, server.adapter,
                         (topo.clients[0].address, 6001))
        return sim, topo, client

    def test_resolution_preestablished(self):
        sim, _, client = self._setup()
        results = []
        client.resolve("n.example.org", RecordType.AAAA,
                       lambda r, e: results.append((r, e)))
        sim.run(until=30)
        result, error = results[0]
        assert error is None
        assert result.addresses == ["2001:db8::1"]

    def test_resolution_with_in_network_handshake(self):
        sim, topo, client = self._setup(preestablished=False)
        results = []
        client.resolve("n.example.org", RecordType.AAAA,
                       lambda r, e: results.append((r, e)))
        sim.run(until=60)
        result, error = results[0]
        assert error is None
        # The handshake flights are visible on the radio links.
        handshake_frames = [
            r for r in topo.sniffer.records
            if r.metadata.get("kind") == "dtls-handshake"
        ]
        assert len(handshake_frames) > 0

    def test_payloads_encrypted_on_wire(self):
        sim = Simulator(seed=3)
        topo = build_figure2_topology(sim)
        resolver = RecursiveResolver(_zone())
        server = DnsOverDtlsServer(sim, topo.resolver_host.bind(853), resolver)
        client = DnsOverDtlsClient(
            sim, topo.clients[0].bind(6001), (topo.resolver_host.address, 853)
        )
        preestablish(client.adapter, server.adapter, (topo.clients[0].address, 6001))
        wire = client.adapter.session.protect(b"sensitive-name")
        assert b"sensitive-name" not in wire


class TestDtlsAdapters:
    def test_server_adapter_requires_session_to_send(self):
        sim = Simulator()
        topo = build_figure2_topology(sim)
        adapter = DtlsServerAdapter(sim, topo.resolver_host.bind(5684))
        with pytest.raises(RuntimeError):
            adapter.sendto(b"x", topo.clients[0].address, 6000)

    def test_client_adapter_queues_until_established(self):
        sim = Simulator(seed=4)
        topo = build_figure2_topology(sim)
        server_adapter = DtlsServerAdapter(sim, topo.resolver_host.bind(5684))
        inbox = []
        server_adapter.on_datagram = lambda src, sport, data, md: inbox.append(data)
        client_adapter = DtlsClientAdapter(
            sim, topo.clients[0].bind(6000), (topo.resolver_host.address, 5684)
        )
        client_adapter.sendto(b"early", topo.resolver_host.address, 5684)
        sim.run(until=30)
        assert inbox == [b"early"]
