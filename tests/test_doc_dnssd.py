"""Tests for DNS-SD over multicast DoC with Group OSCORE."""

import pytest

from repro.dns import RecordType
from repro.doc.dnssd import (
    DNSSD_GROUP,
    DnsSdClient,
    DnsSdResponder,
    ServiceInstance,
)
from repro.oscore.group import GroupContext
from repro.sim import Simulator
from repro.stack import Network


def _ctx(member: bytes) -> GroupContext:
    return GroupContext(b"grp", member, b"sd-master-secret", b"salt")


def _star(sim, responders=2, loss=0.0):
    """A browser with *responders* service hosts in radio range."""
    net = Network(sim)
    browser_node = net.add_node("browser")
    hosts = []
    for index in range(responders):
        host = net.add_node(f"host{index}")
        net.connect_radio("browser", host.name, loss=loss)
        hosts.append(host)
    return net, browser_node, hosts


def _light(index=0):
    return ServiceInstance(
        "_coap._udp.local",
        f"Device {index}._coap._udp.local",
        f"device-{index}.local",
        5683,
        (b"version=1",),
    )


class TestDiscovery:
    def test_browse_finds_all_responders(self):
        sim = Simulator(seed=1)
        net, browser_node, hosts = _star(sim, responders=3)
        browser = DnsSdClient(sim, browser_node, _ctx(b"\x01"))
        for index, host in enumerate(hosts):
            responder = DnsSdResponder(sim, host, _ctx(bytes([0x10 + index])))
            responder.register(_light(index))
        done = []
        browser.browse("_coap._udp.local", done.append)
        sim.run(until=5)
        result = done[0]
        assert len(result.answers) == 3
        assert result.instances == [
            "Device 0._coap._udp.local",
            "Device 1._coap._udp.local",
            "Device 2._coap._udp.local",
        ]

    def test_non_matching_service_silent(self):
        sim = Simulator(seed=2)
        net, browser_node, hosts = _star(sim, responders=1)
        browser = DnsSdClient(sim, browser_node, _ctx(b"\x01"))
        responder = DnsSdResponder(sim, hosts[0], _ctx(b"\x10"))
        responder.register(_light())
        done = []
        browser.browse("_mqtt._tcp.local", done.append)
        sim.run(until=5)
        assert done[0].answers == {}
        assert responder.queries_answered == 0

    def test_srv_and_txt_records_returned(self):
        from repro.dns.rdata import PTRData, SRVData, TXTData

        sim = Simulator(seed=3)
        net, browser_node, hosts = _star(sim, responders=1)
        browser = DnsSdClient(sim, browser_node, _ctx(b"\x01"))
        responder = DnsSdResponder(sim, hosts[0], _ctx(b"\x10"))
        responder.register(_light())
        done = []
        browser.browse(
            "Device 0._coap._udp.local", done.append, rtype=RecordType.ANY
        )
        sim.run(until=5)
        records = list(done[0].answers.values())[0]
        types = {type(record.rdata) for record in records}
        assert SRVData in types and TXTData in types

    def test_responder_jitter_applied(self):
        """mDNS-style 20-120 ms answer delay desynchronises responders."""
        sim = Simulator(seed=4)
        net, browser_node, hosts = _star(sim, responders=1)
        browser = DnsSdClient(sim, browser_node, _ctx(b"\x01"))
        responder = DnsSdResponder(sim, hosts[0], _ctx(b"\x10"))
        responder.register(_light())
        done = []
        start = sim.now
        browser.browse("_coap._udp.local", done.append, window=1.0)
        sim.run(until=5)
        response_frames = [
            r for r in net.sniffer.records
            if r.metadata.get("kind") == "dnssd-response"
        ]
        assert response_frames
        assert response_frames[0].time - start >= 0.020

    def test_lossy_medium_partial_discovery(self):
        """Broadcasts are unacknowledged: under heavy loss some
        responders are simply not discovered — no crash, no retry storm."""
        sim = Simulator(seed=6)
        net, browser_node, hosts = _star(sim, responders=4, loss=0.6)
        browser = DnsSdClient(sim, browser_node, _ctx(b"\x01"))
        for index, host in enumerate(hosts):
            responder = DnsSdResponder(sim, host, _ctx(bytes([0x10 + index])))
            responder.register(_light(index))
        done = []
        browser.browse("_coap._udp.local", done.append)
        sim.run(until=5)
        assert 0 <= len(done[0].answers) <= 4

    def test_names_encrypted_on_air(self):
        sim = Simulator(seed=7)
        net, browser_node, hosts = _star(sim, responders=1)
        captured = []
        original = net.medium.observer

        def spy(time, src, dst, frame, metadata, lost):
            captured.append(bytes(frame))
            if original:
                original(time, src, dst, frame, metadata, lost)

        net.medium.observer = spy
        browser = DnsSdClient(sim, browser_node, _ctx(b"\x01"))
        responder = DnsSdResponder(sim, hosts[0], _ctx(b"\x10"))
        responder.register(_light())
        browser.browse("_coap._udp.local", lambda r: None)
        sim.run(until=5)
        joined = b"".join(captured)
        assert b"_coap._udp" not in joined
        assert b"Device" not in joined

    def test_outsider_cannot_browse(self):
        """A client with the wrong group secret gets no answers."""
        sim = Simulator(seed=8)
        net, browser_node, hosts = _star(sim, responders=1)
        outsider_ctx = GroupContext(b"grp", b"\x01", b"WRONG", b"salt")
        browser = DnsSdClient(sim, browser_node, outsider_ctx)
        responder = DnsSdResponder(sim, hosts[0], _ctx(b"\x10"))
        responder.register(_light())
        done = []
        browser.browse("_coap._udp.local", done.append)
        sim.run(until=5)
        assert done[0].answers == {}
        assert responder.queries_answered == 0


class TestMulticastStack:
    def test_join_group_required_for_delivery(self):
        sim = Simulator(seed=9)
        net = Network(sim)
        a = net.add_node("a")
        b = net.add_node("b")
        net.connect_radio("a", "b")
        inbox = []
        socket = b.bind(9999)
        socket.on_datagram = lambda src, sport, data, md: inbox.append(data)
        a.bind().sendto(b"hello", DNSSD_GROUP, 9999)
        sim.run(until=1)
        assert inbox == []          # not joined
        b.join_group(DNSSD_GROUP)
        a.bind().sendto(b"hello2", DNSSD_GROUP, 9999)
        sim.run(until=2)
        assert inbox == [b"hello2"]

    def test_multicast_reaches_all_neighbours(self):
        sim = Simulator(seed=10)
        net = Network(sim)
        sender = net.add_node("s")
        inboxes = {}
        for name in ("r1", "r2", "r3"):
            node = net.add_node(name)
            net.connect_radio("s", name)
            node.join_group(DNSSD_GROUP)
            socket = node.bind(7777)
            inboxes[name] = []
            socket.on_datagram = (
                lambda src, sport, data, md, name=name: inboxes[name].append(data)
            )
        sender.bind().sendto(b"announce", DNSSD_GROUP, 7777)
        sim.run(until=1)
        assert all(inbox == [b"announce"] for inbox in inboxes.values())

    def test_multicast_not_forwarded(self):
        """Link-scope multicast must not cross routers."""
        from repro.stack import build_figure2_topology

        sim = Simulator(seed=11)
        topo = build_figure2_topology(sim)
        host = topo.resolver_host
        # Even if the host joined, C1's ff02:: traffic must not arrive
        # (it would need to be forwarded by forwarder + BR).
        inbox = []
        topo.forwarder.join_group(DNSSD_GROUP)
        forwarder_socket = topo.forwarder.bind(7777)
        forwarder_socket.on_datagram = lambda *args: inbox.append(args)
        topo.clients[0].bind().sendto(b"x", DNSSD_GROUP, 7777)
        sim.run(until=1)
        assert len(inbox) == 1      # direct neighbour hears it...
        assert topo.border_router.packets_forwarded == 0  # ...routers don't forward

    def test_join_validates_multicast(self):
        from repro.stack.node import StackError

        sim = Simulator()
        net = Network(sim)
        node = net.add_node("a")
        with pytest.raises(StackError):
            node.join_group("2001:db8::1")

    def test_loopback_to_local_member(self):
        sim = Simulator(seed=12)
        net = Network(sim)
        a = net.add_node("a")
        b = net.add_node("b")
        net.connect_radio("a", "b")
        a.join_group(DNSSD_GROUP)
        inbox = []
        socket = a.bind(7777)
        socket.on_datagram = lambda src, sport, data, md: inbox.append(data)
        a.bind().sendto(b"self", DNSSD_GROUP, 7777)
        sim.run(until=1)
        assert inbox == [b"self"]
