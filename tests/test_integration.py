"""Cross-module integration scenarios and failure injection."""

import pytest

from repro.coap import CoapCache, Code, ContentFormat
from repro.coap.proxy import ForwardProxy
from repro.dns import DNSCache, RecordType, RecursiveResolver, Zone
from repro.doc import CachingScheme, DocClient, DocServer
from repro.oscore import SecurityContext
from repro.sim import Simulator
from repro.stack import build_figure2_topology
from repro.transports import (
    DnsOverDtlsClient,
    DnsOverDtlsServer,
    DnsOverUdpClient,
    DnsOverUdpServer,
    preestablish,
)


def _zone(names=4, ttl=300):
    zone = Zone()
    for index in range(names):
        zone.add_address(
            f"name{index:02d}.example.org", f"2001:db8::{index + 1}", ttl=ttl
        )
    return zone


class TestCoexistence:
    def test_all_transports_share_one_resolver(self):
        """UDP, DTLS, and DoC servers on one host, one resolver, three
        clients resolving concurrently — traffic does not interfere."""
        sim = Simulator(seed=61)
        topo = build_figure2_topology(sim, loss=0.05)
        resolver = RecursiveResolver(_zone())
        host = topo.resolver_host

        DnsOverUdpServer(sim, host.bind(53), resolver)
        dtls_server = DnsOverDtlsServer(sim, host.bind(853), resolver)
        DocServer(sim, host.bind(5683), resolver)

        udp_client = DnsOverUdpClient(
            sim, topo.clients[0].bind(), (host.address, 53)
        )
        dtls_client = DnsOverDtlsClient(
            sim, topo.clients[0].bind(6001), (host.address, 853)
        )
        preestablish(
            dtls_client.adapter, dtls_server.adapter,
            (topo.clients[0].address, 6001),
        )
        doc_client = DocClient(
            sim, topo.clients[1].bind(), (host.address, 5683)
        )

        results = {"udp": [], "dtls": [], "doc": []}
        udp_client.resolve("name00.example.org", RecordType.AAAA,
                           lambda r, e: results["udp"].append((r, e)))
        dtls_client.resolve("name01.example.org", RecordType.AAAA,
                            lambda r, e: results["dtls"].append((r, e)))
        doc_client.resolve("name02.example.org", RecordType.AAAA,
                           lambda r, e: results["doc"].append((r, e)))
        sim.run(until=60)

        assert results["udp"][0][0].addresses == ["2001:db8::1"]
        assert results["dtls"][0][0].addresses == ["2001:db8::2"]
        assert results["doc"][0][0].addresses == ["2001:db8::3"]

    def test_two_oscore_clients_one_server(self):
        """Distinct OSCORE contexts per client, multiplexed by kid would
        need a context registry; the paper's setup shares one context —
        both clients use it and the server's replay window absorbs the
        interleaved Partial IVs."""
        sim = Simulator(seed=62)
        topo = build_figure2_topology(sim)
        resolver = RecursiveResolver(_zone())
        client_ctx, server_ctx = SecurityContext.pair(b"shared", b"s")
        DocServer(sim, topo.resolver_host.bind(5683), resolver,
                  oscore_context=server_ctx)
        clients = [
            DocClient(sim, node.bind(), (topo.resolver_host.address, 5683),
                      oscore_context=client_ctx)
            for node in topo.clients
        ]
        results = []
        for index in range(6):
            sim.schedule(index * 0.3, clients[index % 2].resolve,
                         f"name{index % 4:02d}.example.org", RecordType.AAAA,
                         lambda r, e: results.append((r, e)))
        sim.run(until=60)
        assert len(results) == 6
        assert all(e is None for _, e in results)


class TestCacheLayering:
    def test_dns_cache_over_coap_cache(self):
        """Both client caches active: the DNS cache absorbs repeats
        within TTL without even consulting the CoAP cache."""
        sim = Simulator(seed=63)
        topo = build_figure2_topology(sim)
        resolver = RecursiveResolver(_zone(ttl=100))
        server = DocServer(sim, topo.resolver_host.bind(5683), resolver)
        client = DocClient(
            sim, topo.clients[0].bind(), (topo.resolver_host.address, 5683),
            coap_cache=CoapCache(8), dns_cache=DNSCache(8),
        )
        results = []
        for delay in (0.0, 1.0, 2.0):
            sim.schedule(delay, client.resolve, "name00.example.org",
                         RecordType.AAAA, lambda r, e: results.append((r, e)))
        sim.run(until=30)
        assert server.queries_handled == 1
        assert results[1][0].from_cache and results[2][0].from_cache

    def test_proxy_and_client_cache_costack(self):
        sim = Simulator(seed=64)
        topo = build_figure2_topology(sim)
        resolver = RecursiveResolver(_zone(ttl=50))
        DocServer(sim, topo.resolver_host.bind(5683), resolver)
        proxy = ForwardProxy(
            sim, topo.forwarder.bind(5683), topo.forwarder.bind(),
            (topo.resolver_host.address, 5683),
        )
        clients = [
            DocClient(sim, node.bind(), (topo.forwarder.address, 5683),
                      coap_cache=CoapCache(8))
            for node in topo.clients
        ]
        results = []
        # c1 warms proxy; c2's first query hits the proxy; repeats hit
        # the local caches.
        sim.schedule(0.0, clients[0].resolve, "name00.example.org",
                     RecordType.AAAA, lambda r, e: results.append((r, e)))
        sim.schedule(2.0, clients[1].resolve, "name00.example.org",
                     RecordType.AAAA, lambda r, e: results.append((r, e)))
        sim.schedule(4.0, clients[1].resolve, "name00.example.org",
                     RecordType.AAAA, lambda r, e: results.append((r, e)))
        sim.run(until=30)
        assert all(e is None for _, e in results)
        assert proxy.requests_served_from_cache == 1
        local_hits = sum(
            1 for client in clients
            for event in client.coap.events if event.kind == "cache_hit"
        )
        assert local_hits == 1

    def test_ttl_decrements_through_cache_chain(self):
        """Proxy → client CoAP cache → DNS: TTLs keep decrementing and
        never exceed the original."""
        sim = Simulator(seed=65)
        topo = build_figure2_topology(sim)
        resolver = RecursiveResolver(_zone(ttl=40))
        DocServer(sim, topo.resolver_host.bind(5683), resolver)
        proxy = ForwardProxy(
            sim, topo.forwarder.bind(5683), topo.forwarder.bind(),
            (topo.resolver_host.address, 5683),
        )
        clients = [
            DocClient(sim, node.bind(), (topo.forwarder.address, 5683))
            for node in topo.clients
        ]
        ttls = []
        sim.schedule(0.0, clients[0].resolve, "name00.example.org",
                     RecordType.AAAA,
                     lambda r, e: ttls.append(r.response.min_ttl()))
        sim.schedule(15.0, clients[1].resolve, "name00.example.org",
                     RecordType.AAAA,
                     lambda r, e: ttls.append(r.response.min_ttl()))
        sim.run(until=60)
        assert ttls[0] == 40
        assert 23 <= ttls[1] <= 26   # ~15 s older via the proxy cache


class TestFailureInjection:
    def test_server_outage_mid_run(self):
        """Queries during an outage exhaust retransmissions and fail;
        queries after recovery succeed — no stuck exchanges."""
        sim = Simulator(seed=66)
        topo = build_figure2_topology(sim)
        resolver = RecursiveResolver(_zone())
        server = DocServer(sim, topo.resolver_host.bind(5683), resolver)
        client = DocClient(
            sim, topo.clients[0].bind(), (topo.resolver_host.address, 5683)
        )

        # Outage: drop everything arriving at the host between 5 s and 60 s.
        original = topo.resolver_host._receive_packet

        def flaky(packet, metadata):
            if 5.0 <= sim.now <= 60.0:
                return
            original(packet, metadata)

        topo.resolver_host._receive_packet = flaky

        results = []
        sim.schedule(0.0, client.resolve, "name00.example.org",
                     RecordType.AAAA, lambda r, e: results.append(("pre", r, e)))
        sim.schedule(6.0, client.resolve, "name01.example.org",
                     RecordType.AAAA, lambda r, e: results.append(("mid", r, e)))
        sim.schedule(90.0, client.resolve, "name02.example.org",
                     RecordType.AAAA, lambda r, e: results.append(("post", r, e)))
        sim.run(until=200)
        phases = {phase: (r, e) for phase, r, e in results}
        assert phases["pre"][1] is None
        assert phases["mid"][0] is None and phases["mid"][1] is not None
        assert phases["post"][1] is None

    def test_corrupted_oscore_response_fails_cleanly(self):
        sim = Simulator(seed=67)
        topo = build_figure2_topology(sim)
        resolver = RecursiveResolver(_zone())
        client_ctx, server_ctx = SecurityContext.pair(b"m", b"s")
        DocServer(sim, topo.resolver_host.bind(5683), resolver,
                  oscore_context=server_ctx)
        client = DocClient(
            sim, topo.clients[0].bind(), (topo.resolver_host.address, 5683),
            oscore_context=client_ctx,
        )

        # Flip a ciphertext bit in responses crossing the border router.
        original = topo.border_router._receive_packet

        def corrupt(packet, metadata):
            if metadata.get("kind") == "response" and packet.payload:
                from dataclasses import replace

                tampered = bytes(packet.payload[:-1]) + bytes(
                    [packet.payload[-1] ^ 0x01]
                )
                packet = replace(packet, payload=tampered)
            original(packet, metadata)

        topo.border_router._receive_packet = corrupt

        results = []
        client.resolve("name00.example.org", RecordType.AAAA,
                       lambda r, e: results.append((r, e)))
        sim.run(until=120)
        result, error = results[0]
        assert result is None
        assert error is not None

    def test_resolver_ttl_churn_stresses_etags(self):
        """Under per-renewal TTL draws the DoH-like scheme's ETags keep
        changing while EOL-TTLs ETags stay fixed per record set."""
        from repro.doc.caching import prepare_response

        zone = _zone(names=1)
        resolver = RecursiveResolver(
            zone, upstream_ttl_range=(2, 60),
        )
        from repro.dns import make_query

        etags_doh = set()
        etags_eol = set()
        for now in range(0, 600, 60):
            response = resolver.resolve(
                make_query("name00.example.org"), now=float(now)
            )
            etags_doh.add(prepare_response(response, CachingScheme.DOH_LIKE).etag)
            etags_eol.add(prepare_response(response, CachingScheme.EOL_TTLS).etag)
        assert len(etags_eol) == 1
        assert len(etags_doh) > 1


class TestMixedContentFormats:
    def test_wire_and_cbor_clients_same_server(self):
        sim = Simulator(seed=68)
        topo = build_figure2_topology(sim)
        resolver = RecursiveResolver(_zone())
        DocServer(sim, topo.resolver_host.bind(5683), resolver)
        wire_client = DocClient(
            sim, topo.clients[0].bind(), (topo.resolver_host.address, 5683),
            content_format=ContentFormat.DNS_MESSAGE,
        )
        cbor_client = DocClient(
            sim, topo.clients[1].bind(), (topo.resolver_host.address, 5683),
            content_format=ContentFormat.DNS_CBOR,
        )
        results = []
        wire_client.resolve("name00.example.org", RecordType.AAAA,
                            lambda r, e: results.append((r, e)))
        cbor_client.resolve("name00.example.org", RecordType.AAAA,
                            lambda r, e: results.append((r, e)))
        sim.run(until=30)
        assert len(results) == 2
        assert all(e is None for _, e in results)
        assert results[0][0].addresses == results[1][0].addresses
