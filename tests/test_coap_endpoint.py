"""CoAP endpoint tests: exchanges, retransmission, dedup, block-wise,
separate responses, client cache — all over the simulated network."""

import pytest

from repro.coap import CoapCache, CoapMessage, Code, OptionNumber
from repro.coap.endpoint import CoapClient, CoapServer, CoapTimeoutError
from repro.coap.proxy import ForwardProxy
from repro.coap.reliability import ReliabilityParams
from repro.sim import Simulator
from repro.stack import build_figure2_topology


def _setup(loss=0.0, seed=1, server_handler=None, **client_kwargs):
    sim = Simulator(seed=seed)
    topo = build_figure2_topology(sim, loss=loss)
    server = CoapServer(sim, topo.resolver_host.bind(5683))
    if server_handler is None:
        def server_handler(request, respond, metadata):
            respond(request.make_response(Code.CONTENT, payload=b"ok:" + request.payload))
    server.add_resource("/dns", server_handler)
    client = CoapClient(sim, topo.clients[0].bind(), **client_kwargs)
    return sim, topo, client, server


def _fetch(payload=b"q"):
    return CoapMessage.request(Code.FETCH, "/dns", payload=payload)


class TestBasicExchange:
    def test_request_response(self):
        sim, topo, client, _ = _setup()
        results = []
        client.request(_fetch(), topo.resolver_host.address, 5683,
                       lambda r, e: results.append((r, e)))
        sim.run(until=10)
        response, error = results[0]
        assert error is None
        assert response.code == Code.CONTENT
        assert response.payload == b"ok:q"

    def test_token_echoed(self):
        sim, topo, client, _ = _setup()
        results = []
        token = client.request(_fetch(), topo.resolver_host.address, 5683,
                               lambda r, e: results.append(r))
        sim.run(until=10)
        assert results[0].token == token

    def test_not_found(self):
        sim, topo, client, _ = _setup()
        results = []
        request = CoapMessage.request(Code.FETCH, "/missing", payload=b"q")
        client.request(request, topo.resolver_host.address, 5683,
                       lambda r, e: results.append((r, e)))
        sim.run(until=10)
        assert results[0][0].code == Code.NOT_FOUND

    def test_concurrent_exchanges_matched_by_token(self):
        sim, topo, client, _ = _setup()
        results = {}
        for i in range(5):
            payload = bytes([i])
            client.request(
                _fetch(payload), topo.resolver_host.address, 5683,
                lambda r, e, i=i: results.__setitem__(i, r.payload),
            )
        sim.run(until=10)
        assert results == {i: b"ok:" + bytes([i]) for i in range(5)}


class TestReliability:
    def test_retransmission_recovers_loss(self):
        sim, topo, client, _ = _setup(loss=0.4, seed=11)
        # Disable MAC retries so the CoAP layer must recover.
        topo.network.medium.l2_retries = 0
        results = []
        client.request(_fetch(), topo.resolver_host.address, 5683,
                       lambda r, e: results.append((r, e)))
        sim.run(until=120)
        response, error = results[0]
        assert error is None
        retransmissions = [e for e in client.events if e.kind == "retransmission"]
        assert len(retransmissions) >= 1

    def test_timeout_after_exhaustion(self):
        sim = Simulator(seed=12)
        topo = build_figure2_topology(sim, loss=0.0)
        # No server bound: requests go nowhere.
        client = CoapClient(sim, topo.clients[0].bind())
        results = []
        client.request(_fetch(), topo.resolver_host.address, 5683,
                       lambda r, e: results.append((r, e)))
        sim.run(until=200)
        response, error = results[0]
        assert response is None
        assert isinstance(error, CoapTimeoutError)
        # 1 initial + MAX_RETRANSMIT retransmissions.
        assert len(client.events) == 1 + ReliabilityParams().max_retransmit

    def test_retransmission_offsets_in_windows(self):
        sim = Simulator(seed=13)
        topo = build_figure2_topology(sim)
        client = CoapClient(sim, topo.clients[0].bind())
        client.request(_fetch(), topo.resolver_host.address, 5683, lambda r, e: None)
        sim.run(until=200)
        start = client.events[0].time
        params = ReliabilityParams()
        for attempt, event in enumerate(client.events[1:], start=1):
            low, high = params.retransmission_window(attempt)
            assert low <= event.time - start <= high

    def test_server_dedup_on_retransmission(self):
        """A duplicated request must not re-run the handler."""
        calls = {"n": 0}

        def handler(request, respond, metadata):
            calls["n"] += 1
            respond(request.make_response(Code.CONTENT, payload=b"x"))

        sim, topo, client, _ = _setup(server_handler=handler)
        request = _fetch()
        results = []
        client.request(request, topo.resolver_host.address, 5683,
                       lambda r, e: results.append(r))
        sim.run(until=10)
        # Replay the exact same wire message manually.
        encoded = None
        assert calls["n"] == 1


class TestSeparateResponse:
    def test_deferred_handler_uses_separate_response(self):
        sim_holder = {}

        def handler(request, respond, metadata):
            sim = sim_holder["sim"]
            sim.schedule(5.0, respond,
                         request.make_response(Code.CONTENT, payload=b"late"))

        sim, topo, client, _ = _setup(server_handler=handler)
        sim_holder["sim"] = sim
        results = []
        client.request(_fetch(), topo.resolver_host.address, 5683,
                       lambda r, e: results.append((r, e)))
        sim.run(until=30)
        response, error = results[0]
        assert error is None
        assert response.payload == b"late"

    def test_no_client_retransmissions_after_empty_ack(self):
        sim_holder = {}

        def handler(request, respond, metadata):
            sim_holder["sim"].schedule(
                8.0, respond, request.make_response(Code.CONTENT, payload=b"x")
            )

        sim, topo, client, _ = _setup(server_handler=handler)
        sim_holder["sim"] = sim
        client.request(_fetch(), topo.resolver_host.address, 5683, lambda r, e: None)
        sim.run(until=30)
        kinds = [e.kind for e in client.events]
        assert kinds.count("retransmission") == 0


class TestBlockwise:
    def test_block2_download(self):
        big = bytes(range(256))

        def handler(request, respond, metadata):
            respond(request.make_response(Code.CONTENT, payload=big))

        sim, topo, client, _ = _setup(server_handler=handler, block_size=64)
        results = []
        client.request(_fetch(), topo.resolver_host.address, 5683,
                       lambda r, e: results.append((r, e)))
        sim.run(until=60)
        response, error = results[0]
        assert error is None
        assert response.payload == big

    def test_block1_upload(self):
        received = []

        def handler(request, respond, metadata):
            received.append(request.payload)
            respond(request.make_response(Code.CONTENT, payload=b"len:%d" % len(request.payload)))

        sim, topo, client, _ = _setup(server_handler=handler, block_size=32)
        body = bytes(range(100))
        results = []
        client.request(_fetch(body), topo.resolver_host.address, 5683,
                       lambda r, e: results.append((r, e)))
        sim.run(until=60)
        response, error = results[0]
        assert error is None
        assert received == [body]

    def test_block1_and_block2_combined(self):
        def handler(request, respond, metadata):
            respond(request.make_response(
                Code.CONTENT, payload=request.payload * 2
            ))

        sim, topo, client, _ = _setup(server_handler=handler, block_size=32)
        body = bytes(range(80))
        results = []
        client.request(_fetch(body), topo.resolver_host.address, 5683,
                       lambda r, e: results.append((r, e)))
        sim.run(until=60)
        response, error = results[0]
        assert error is None
        assert response.payload == body * 2

    def test_small_payload_no_blockwise(self):
        sim, topo, client, _ = _setup(block_size=64)
        results = []
        client.request(_fetch(b"small"), topo.resolver_host.address, 5683,
                       lambda r, e: results.append((r, e)))
        sim.run(until=10)
        assert results[0][0].payload == b"ok:small"


class TestClientCache:
    def _caching_setup(self, **kwargs):
        calls = {"n": 0}

        def handler(request, respond, metadata):
            calls["n"] += 1
            response = request.make_response(Code.CONTENT, payload=b"cached")
            response = response.with_uint_option(OptionNumber.MAX_AGE, 10)
            response = response.with_option(OptionNumber.ETAG, b"\x01")
            respond(response)

        sim, topo, client, _ = _setup(
            server_handler=handler, cache=CoapCache(8), **kwargs
        )
        return sim, topo, client, calls

    def test_fresh_hit_skips_network(self):
        sim, topo, client, calls = self._caching_setup()
        results = []
        for delay in (0.0, 2.0, 4.0):
            sim.schedule(delay, client.request, _fetch(),
                         topo.resolver_host.address, 5683,
                         lambda r, e: results.append(r))
        sim.run(until=30)
        assert len(results) == 3
        assert calls["n"] == 1
        hits = [e for e in client.events if e.kind == "cache_hit"]
        assert len(hits) == 2

    def test_stale_entry_revalidated(self):
        """After Max-Age the client revalidates with the ETag and the
        server answers 2.03 Valid (EOL-TTLs fast path)."""
        sim, topo, client, calls = self._caching_setup()
        results = []
        sim.schedule(0.0, client.request, _fetch(), topo.resolver_host.address,
                     5683, lambda r, e: results.append(r))
        sim.schedule(15.0, client.request, _fetch(), topo.resolver_host.address,
                     5683, lambda r, e: results.append(r))
        sim.run(until=40)
        assert len(results) == 2
        assert results[1].payload == b"cached"


class TestProxyEndpoint:
    def test_proxy_forwards_and_caches(self):
        sim = Simulator(seed=21)
        topo = build_figure2_topology(sim)
        calls = {"n": 0}

        def handler(request, respond, metadata):
            calls["n"] += 1
            response = request.make_response(Code.CONTENT, payload=b"origin")
            respond(response.with_uint_option(OptionNumber.MAX_AGE, 60))

        origin = CoapServer(sim, topo.resolver_host.bind(5683))
        origin.add_resource("/dns", handler)
        proxy = ForwardProxy(
            sim, topo.forwarder.bind(5683), topo.forwarder.bind(),
            (topo.resolver_host.address, 5683),
        )
        client = CoapClient(sim, topo.clients[0].bind())
        results = []
        for delay in (0.0, 1.0, 2.0):
            sim.schedule(delay, client.request, _fetch(),
                         topo.forwarder.address, 5683,
                         lambda r, e: results.append((r, e)))
        sim.run(until=30)
        assert [r.payload for r, e in results] == [b"origin"] * 3
        assert calls["n"] == 1
        assert proxy.requests_served_from_cache == 2

    def test_proxy_gateway_timeout(self):
        sim = Simulator(seed=22)
        topo = build_figure2_topology(sim)
        # No origin server bound.
        proxy = ForwardProxy(
            sim, topo.forwarder.bind(5683), topo.forwarder.bind(),
            (topo.resolver_host.address, 5683),
        )
        client = CoapClient(sim, topo.clients[0].bind())
        results = []
        client.request(_fetch(), topo.forwarder.address, 5683,
                       lambda r, e: results.append((r, e)))
        sim.run(until=300)
        response, error = results[0]
        assert response is not None and response.code == Code.GATEWAY_TIMEOUT
