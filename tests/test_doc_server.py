"""Direct unit tests for DocServer request processing."""

import pytest

from repro.coap import CoapMessage, Code, ContentFormat, OptionNumber
from repro.coap.uri import base64url_encode
from repro.dns import (
    Message,
    Question,
    Rcode,
    RecordType,
    RecursiveResolver,
    Zone,
    make_query,
)
from repro.doc import CachingScheme, DocServer, compute_etag
from repro.doc.cbor_format import decode_response, encode_query
from repro.sim import Simulator
from repro.stack import build_figure2_topology


@pytest.fixture()
def server_and_sim():
    sim = Simulator(seed=71)
    topo = build_figure2_topology(sim)
    zone = Zone()
    zone.add_address("a.example.org", "2001:db8::1", ttl=120)
    zone.add_address("a.example.org", "192.0.2.1", ttl=120)
    server = DocServer(
        sim, topo.resolver_host.bind(5683), RecursiveResolver(zone)
    )
    return server, sim


def _fetch(payload, content_format=ContentFormat.DNS_MESSAGE):
    return (
        CoapMessage.request(Code.FETCH, "/dns", payload=payload, token=b"\x01")
        .with_uint_option(OptionNumber.CONTENT_FORMAT, int(content_format))
    )


class TestProcessing:
    def test_fetch_wire_format(self, server_and_sim):
        server, _ = server_and_sim
        query = make_query("a.example.org", RecordType.AAAA, txid=0)
        response = server._process(_fetch(query.encode()))
        assert response.code == Code.CONTENT
        assert response.content_format == int(ContentFormat.DNS_MESSAGE)
        decoded = Message.decode(response.payload)
        assert decoded.answers[0].rdata.address == "2001:db8::1"

    def test_fetch_cbor_format(self, server_and_sim):
        server, _ = server_and_sim
        question = Question("a.example.org", RecordType.AAAA)
        response = server._process(
            _fetch(encode_query(question), ContentFormat.DNS_CBOR)
        )
        assert response.content_format == int(ContentFormat.DNS_CBOR)
        decoded = decode_response(response.payload, question)
        assert decoded.answers[0].rdata.address == "2001:db8::1"

    def test_get_base64url(self, server_and_sim):
        server, _ = server_and_sim
        query = make_query("a.example.org", RecordType.A, txid=0)
        request = CoapMessage.request(Code.GET, "/dns").with_option(
            OptionNumber.URI_QUERY,
            b"dns=" + base64url_encode(query.encode()).encode(),
        )
        response = server._process(request)
        assert response.code == Code.CONTENT
        decoded = Message.decode(response.payload)
        assert decoded.answers[0].rdata.address == "192.0.2.1"

    def test_get_without_dns_variable(self, server_and_sim):
        server, _ = server_and_sim
        request = CoapMessage.request(Code.GET, "/dns")
        assert server._process(request).code == Code.BAD_REQUEST

    def test_malformed_payload(self, server_and_sim):
        server, _ = server_and_sim
        assert server._process(_fetch(b"\x01\x02")).code == Code.BAD_REQUEST

    def test_disallowed_method(self, server_and_sim):
        server, _ = server_and_sim
        request = CoapMessage.request(Code.PUT, "/dns", payload=b"x")
        assert server._process(request).code == Code.METHOD_NOT_ALLOWED

    def test_eol_ttls_rewritten(self, server_and_sim):
        server, _ = server_and_sim
        query = make_query("a.example.org", RecordType.AAAA, txid=0)
        response = server._process(_fetch(query.encode()))
        decoded = Message.decode(response.payload)
        assert all(r.ttl == 0 for r in decoded.answers)
        assert response.max_age == 120

    def test_nxdomain_reported(self, server_and_sim):
        server, _ = server_and_sim
        query = make_query("missing.example.org", RecordType.AAAA, txid=0)
        response = server._process(_fetch(query.encode()))
        assert response.code == Code.CONTENT  # DNS errors are 2.xx DoC responses
        decoded = Message.decode(response.payload)
        assert decoded.flags.rcode == Rcode.NXDOMAIN
        assert response.max_age == 0

    def test_etag_matches_payload_hash(self, server_and_sim):
        server, _ = server_and_sim
        query = make_query("a.example.org", RecordType.AAAA, txid=0)
        response = server._process(_fetch(query.encode()))
        assert response.etag == compute_etag(response.payload)

    def test_validation_with_current_etag(self, server_and_sim):
        server, _ = server_and_sim
        query = make_query("a.example.org", RecordType.AAAA, txid=0)
        first = server._process(_fetch(query.encode()))
        revalidation = _fetch(query.encode()).with_option(
            OptionNumber.ETAG, first.etag
        )
        second = server._process(revalidation)
        assert second.code == Code.VALID
        assert second.payload == b""
        assert second.etag == first.etag
        assert server.validations_sent == 1

    def test_validation_with_stale_etag_sends_full(self, server_and_sim):
        server, _ = server_and_sim
        query = make_query("a.example.org", RecordType.AAAA, txid=0)
        revalidation = _fetch(query.encode()).with_option(
            OptionNumber.ETAG, b"\x00" * 8
        )
        response = server._process(revalidation)
        assert response.code == Code.CONTENT
        assert response.payload

    def test_txid_echoed_in_doh_like(self):
        """Under DoH-like the DNS payload is untouched: the (zeroed)
        transaction ID and TTLs come back verbatim."""
        sim = Simulator(seed=72)
        topo = build_figure2_topology(sim)
        zone = Zone()
        zone.add_address("a.example.org", "2001:db8::1", ttl=77)
        server = DocServer(
            sim, topo.resolver_host.bind(5683), RecursiveResolver(zone),
            scheme=CachingScheme.DOH_LIKE,
        )
        query = make_query("a.example.org", RecordType.AAAA, txid=0)
        response = server._process(_fetch(query.encode()))
        decoded = Message.decode(response.payload)
        assert decoded.answers[0].ttl == 77
        assert response.max_age == 77

    def test_queries_handled_counter(self, server_and_sim):
        server, _ = server_and_sim
        query = make_query("a.example.org", RecordType.AAAA, txid=0)
        server._process(_fetch(query.encode()))
        server._process(_fetch(query.encode()))
        assert server.queries_handled == 2


class TestFastPath:
    """The opt-in wire-level response cache (fastpath_capacity knob)."""

    @pytest.fixture()
    def server_and_sim(self):
        sim = Simulator(seed=73)
        topo = build_figure2_topology(sim)
        zone = Zone()
        zone.add_address("a.example.org", "2001:db8::1", ttl=120)
        server = DocServer(
            sim, topo.resolver_host.bind(5683), RecursiveResolver(zone),
            fastpath_capacity=64,
        )
        return server, sim

    def test_disabled_by_default(self):
        sim = Simulator(seed=74)
        topo = build_figure2_topology(sim)
        zone = Zone()
        zone.add_address("a.example.org", "2001:db8::1", ttl=120)
        server = DocServer(
            sim, topo.resolver_host.bind(5683), RecursiveResolver(zone)
        )
        query = make_query("a.example.org", RecordType.AAAA, txid=0)
        server._process(_fetch(query.encode()))
        server._process(_fetch(query.encode()))
        assert server.fastpath_hits == 0
        assert server.fastpath_misses == 0

    def test_hit_replays_template(self, server_and_sim):
        server, _ = server_and_sim
        query = make_query("a.example.org", RecordType.AAAA, txid=0)
        first = server._process(_fetch(query.encode()))
        second = server._process(_fetch(query.encode()))
        assert server.fastpath_misses == 1
        assert server.fastpath_hits == 1
        assert server.queries_handled == 2
        assert second.code == first.code
        assert second.payload == first.payload
        assert second.etag == first.etag
        assert second.max_age == first.max_age
        # The resolver was consulted exactly once.
        assert server.resolver.cache.stats.misses == 1

    def test_hit_patches_mid_token_and_max_age(self, server_and_sim):
        server, sim = server_and_sim
        query = make_query("a.example.org", RecordType.AAAA, txid=0)
        first = server._process(_fetch(query.encode()))
        sim.run(until=30.0)
        request = (
            CoapMessage.request(
                Code.FETCH, "/dns", payload=query.encode(), token=b"\x99"
            )
            .with_uint_option(
                OptionNumber.CONTENT_FORMAT, int(ContentFormat.DNS_MESSAGE)
            )
        )
        second = server._process(request)
        assert server.fastpath_hits == 1
        assert second.token == b"\x99"
        assert second.payload == first.payload
        assert second.max_age == first.max_age - 30

    def test_expired_entry_falls_back_to_resolver(self, server_and_sim):
        server, sim = server_and_sim
        query = make_query("a.example.org", RecordType.AAAA, txid=0)
        server._process(_fetch(query.encode()))
        sim.run(until=130.0)  # past the 120 s Max-Age
        server._process(_fetch(query.encode()))
        assert server.fastpath_hits == 0
        assert server.fastpath_misses == 2

    def test_validation_hit_counts(self, server_and_sim):
        server, _ = server_and_sim
        query = make_query("a.example.org", RecordType.AAAA, txid=0)
        first = server._process(_fetch(query.encode()))
        revalidation = _fetch(query.encode()).with_option(
            OptionNumber.ETAG, first.etag
        )
        assert server._process(revalidation).code == Code.VALID
        assert server._process(revalidation).code == Code.VALID
        assert server.validations_sent == 2
        assert server.fastpath_hits == 1

    def test_uncacheable_error_not_stored(self, server_and_sim):
        server, _ = server_and_sim
        request = CoapMessage.request(Code.PUT, "/dns", payload=b"x")
        server._process(request)
        server._process(request)
        assert server.fastpath_hits == 0
        assert server.fastpath_misses == 2
