"""Crypto tests: official vectors plus property-based round trips."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import (
    AEADError,
    AES128,
    AESCCM,
    AES_128_CCM_8,
    AES_CCM_16_64_128,
    hkdf_expand,
    hkdf_extract,
    hkdf_sha256,
    tls12_prf,
)


class TestAes:
    def test_fips197_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert (
            AES128(key).encrypt_block(plaintext).hex()
            == "69c4e0d86a7b0430d8cdb78070b4c55a"
        )

    def test_zero_vector(self):
        assert (
            AES128(bytes(16)).encrypt_block(bytes(16)).hex()
            == "66e94bd4ef8a2c3b884cfa59ca342b2e"
        )

    def test_nist_ecb_vector(self):
        # NIST SP 800-38A F.1.1 ECB-AES128 block #1
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        block = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        assert (
            AES128(key).encrypt_block(block).hex()
            == "3ad77bb40d7a3660a89ecaf32466ef97"
        )

    def test_key_length_validation(self):
        with pytest.raises(ValueError):
            AES128(bytes(15))

    def test_block_length_validation(self):
        with pytest.raises(ValueError):
            AES128(bytes(16)).encrypt_block(bytes(15))

    def test_deterministic(self):
        cipher = AES128(b"0123456789abcdef")
        assert cipher.encrypt_block(bytes(16)) == cipher.encrypt_block(bytes(16))


# RFC 3610 packet vectors (key, nonce, total packet with 8-byte header,
# expected ciphertext) for M=8, L=2.
_RFC3610_KEY = bytes.fromhex("C0C1C2C3C4C5C6C7C8C9CACBCCCDCECF")
_RFC3610_VECTORS = [
    (
        "00000003020100A0A1A2A3A4A5",
        "0001020304050607",
        "08090A0B0C0D0E0F101112131415161718191A1B1C1D1E",
        "588C979A61C663D2F066D0C2C0F989806D5F6B61DAC38417E8D12CFDF926E0",
    ),
    (
        "00000004030201A0A1A2A3A4A5",
        "0001020304050607",
        "08090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F",
        "72C91A36E135F8CF291CA894085C87E3CC15C439C9E43A3BA091D56E10400916",
    ),
    (
        "00000005040302A0A1A2A3A4A5",
        "0001020304050607",
        "08090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F20",
        "51B1E5F44A197D1DA46B0F8E2D282AE871E838BB64DA8596574ADAA76FBD9FB0C5",
    ),
]


class TestCcm:
    # Both the default (possibly accelerated) and the forced pure
    # from-scratch backend must reproduce the RFC vectors.
    @pytest.mark.parametrize("backend", ["auto", "pure"])
    @pytest.mark.parametrize("nonce_hex,aad_hex,pt_hex,ct_hex", _RFC3610_VECTORS)
    def test_rfc3610_vectors(self, backend, nonce_hex, aad_hex, pt_hex, ct_hex):
        ccm = AESCCM(_RFC3610_KEY, tag_length=8, nonce_length=13, backend=backend)
        nonce = bytes.fromhex(nonce_hex)
        aad = bytes.fromhex(aad_hex)
        plaintext = bytes.fromhex(pt_hex)
        ciphertext = ccm.encrypt(nonce, plaintext, aad)
        assert ciphertext.hex().upper() == ct_hex
        assert ccm.decrypt(nonce, ciphertext, aad) == plaintext

    def test_pure_backend_matches_default(self):
        key = bytes(range(16))
        nonce = bytes(range(13))
        default = AESCCM(key)
        pure = AESCCM(key, backend="pure")
        for plaintext, aad in [
            (b"", b""),
            (b"x", b"aad"),
            (bytes(range(100)), b"\x83\x00\x41\x01"),
        ]:
            sealed = default.encrypt(nonce, plaintext, aad)
            assert pure.encrypt(nonce, plaintext, aad) == sealed
            assert pure.decrypt(nonce, sealed, aad) == plaintext
            assert default.decrypt(nonce, sealed, aad) == plaintext

    def test_pure_backend_tamper_detection(self):
        ccm = AESCCM(bytes(16), backend="pure")
        nonce = bytes(13)
        ct = bytearray(ccm.encrypt(nonce, b"hello", b"aad"))
        ct[0] ^= 1
        with pytest.raises(AEADError):
            ccm.decrypt(nonce, bytes(ct), b"aad")

    def test_key_schedule_shared_between_instances(self):
        # OSCORE constructs a fresh AEAD per protected exchange from
        # the same derived key; the expanded AES128 must be shared
        # instead of re-expanded.
        key = bytes(range(16))
        first = AESCCM(key, backend="pure")
        second = AESCCM(key, backend="pure")
        assert first._aes is second._aes
        other = AESCCM(bytes(16), backend="pure")
        assert other._aes is not first._aes

    def test_tamper_detection_ciphertext(self):
        ccm = AES_CCM_16_64_128(bytes(16))
        nonce = bytes(13)
        ct = bytearray(ccm.encrypt(nonce, b"hello", b"aad"))
        ct[0] ^= 1
        with pytest.raises(AEADError):
            ccm.decrypt(nonce, bytes(ct), b"aad")

    def test_tamper_detection_aad(self):
        ccm = AES_CCM_16_64_128(bytes(16))
        nonce = bytes(13)
        ct = ccm.encrypt(nonce, b"hello", b"aad")
        with pytest.raises(AEADError):
            ccm.decrypt(nonce, ct, b"AAD")

    def test_wrong_nonce_fails(self):
        ccm = AES_CCM_16_64_128(bytes(16))
        ct = ccm.encrypt(bytes(13), b"hello")
        with pytest.raises(AEADError):
            ccm.decrypt(b"\x01" + bytes(12), ct)

    def test_short_ciphertext_rejected(self):
        ccm = AES_CCM_16_64_128(bytes(16))
        with pytest.raises(AEADError):
            ccm.decrypt(bytes(13), b"\x00" * 7)

    def test_dtls_suite_parameters(self):
        ccm = AES_128_CCM_8(bytes(16))
        assert ccm.nonce_length == 12
        assert ccm.tag_length == 8
        assert ccm.overhead == 8

    def test_oscore_suite_parameters(self):
        ccm = AES_CCM_16_64_128(bytes(16))
        assert ccm.nonce_length == 13
        assert ccm.tag_length == 8

    def test_nonce_length_validated(self):
        ccm = AES_128_CCM_8(bytes(16))
        with pytest.raises(ValueError):
            ccm.encrypt(bytes(13), b"x")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AESCCM(bytes(16), tag_length=7)
        with pytest.raises(ValueError):
            AESCCM(bytes(16), nonce_length=6)

    def test_empty_plaintext(self):
        ccm = AES_CCM_16_64_128(bytes(16))
        ct = ccm.encrypt(bytes(13), b"", b"only-aad")
        assert len(ct) == 8
        assert ccm.decrypt(bytes(13), ct, b"only-aad") == b""

    @given(
        st.binary(min_size=16, max_size=16),
        st.binary(min_size=13, max_size=13),
        st.binary(max_size=128),
        st.binary(max_size=64),
    )
    def test_round_trip_property(self, key, nonce, plaintext, aad):
        ccm = AES_CCM_16_64_128(key)
        assert ccm.decrypt(nonce, ccm.encrypt(nonce, plaintext, aad), aad) == plaintext


class TestKdf:
    def test_rfc5869_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        okm = hkdf_sha256(salt, ikm, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_rfc5869_case_3_empty_salt_info(self):
        ikm = bytes.fromhex("0b" * 22)
        okm = hkdf_sha256(b"", ikm, b"", 42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_extract_empty_salt_uses_zero_key(self):
        assert hkdf_extract(b"", b"ikm") == hkdf_extract(bytes(32), b"ikm")

    def test_expand_length_cap(self):
        with pytest.raises(ValueError):
            hkdf_expand(bytes(32), b"", 255 * 32 + 1)

    @given(st.integers(min_value=1, max_value=200))
    def test_expand_lengths(self, length):
        assert len(hkdf_expand(bytes(32), b"info", length)) == length

    def test_prf_deterministic_and_length(self):
        out = tls12_prf(b"secret", b"master secret", b"seed", 48)
        assert len(out) == 48
        assert out == tls12_prf(b"secret", b"master secret", b"seed", 48)

    def test_prf_label_separation(self):
        a = tls12_prf(b"secret", b"client finished", b"seed", 12)
        b = tls12_prf(b"secret", b"server finished", b"seed", 12)
        assert a != b

    def test_prf_known_answer(self):
        # Published P_SHA256 test vector (TLS 1.2 PRF, 100-byte output).
        secret = bytes.fromhex("9bbe436ba940f017b17652849a71db35")
        seed = bytes.fromhex("a0ba9f936cda311827a6f796ffd5198c")
        out = tls12_prf(secret, b"test label", seed, 100)
        assert out.hex().startswith("e3f229ba727be17b8d122620557cd453")
