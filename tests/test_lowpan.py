"""6LoWPAN tests: MAC frames, IPHC modes, fragmentation/reassembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lowpan import (
    FragmentationError,
    Fragmenter,
    LowpanAdaptation,
    MacFrame,
    Reassembler,
    compress,
    decompress,
    mac_header_length,
)
from repro.lowpan.ieee802154 import FRAME_MAX_PDU
from repro.lowpan.iphc import IphcError, header_extents
from repro.net import Ipv6Packet, UdpDatagram, global_address, link_local

MAC_A = 0x0200_0000_0000_1001
MAC_B = 0x0200_0000_0000_1002


def _packet(payload=b"x" * 20, src=None, dst=None, **kwargs):
    src = src or global_address(1)
    dst = dst or global_address(2)
    datagram = UdpDatagram(5683, 5683, payload)
    return Ipv6Packet(src, dst, datagram.encode(src, dst), **kwargs)


class TestMacFrames:
    def test_header_length_21(self):
        assert mac_header_length() == 21

    def test_max_payload_104(self):
        assert MacFrame.max_payload() == 127 - 21 - 2

    def test_round_trip(self):
        frame = MacFrame(src=MAC_A, dst=MAC_B, seq=7, payload=b"data")
        decoded = MacFrame.decode(frame.encode())
        assert decoded.src == MAC_A and decoded.dst == MAC_B
        assert decoded.seq == 7 and decoded.payload == b"data"

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            MacFrame(src=MAC_A, dst=MAC_B, seq=0, payload=bytes(105))

    def test_pdu_limit(self):
        frame = MacFrame(src=MAC_A, dst=MAC_B, seq=0, payload=bytes(104))
        assert len(frame.encode()) == FRAME_MAX_PDU


class TestIphc:
    def test_udp_round_trip_global(self):
        packet = _packet()
        compressed = compress(packet, MAC_A, MAC_B)
        restored = decompress(compressed, MAC_A, MAC_B)
        assert restored.src == packet.src and restored.dst == packet.dst
        assert UdpDatagram.decode(restored.payload).payload == b"x" * 20
        assert restored.hop_limit == 64

    def test_global_addresses_fully_inline(self):
        """Stateless IPHC cannot compress global addresses: 32 bytes
        inline (the Section 5.1 configuration)."""
        packet = _packet()
        compressed = compress(packet, MAC_A, MAC_B)
        # 2 IPHC + 32 address + 1 NHC + 4 ports + 2 checksum + payload
        assert len(compressed) == 2 + 32 + 7 + 20

    def test_link_local_iid_inline(self):
        packet = _packet(src=link_local(0xAA), dst=link_local(0xBB))
        compressed = compress(packet, MAC_A, MAC_B)
        assert len(compressed) == 2 + 16 + 7 + 20

    def test_mac_derived_iid_fully_elided(self):
        src = link_local(MAC_A ^ (1 << 57))
        dst = link_local(MAC_B ^ (1 << 57))
        packet = _packet(src=src, dst=dst)
        compressed = compress(packet, MAC_A, MAC_B)
        assert len(compressed) == 2 + 0 + 7 + 20
        restored = decompress(compressed, MAC_A, MAC_B)
        assert restored.src == src and restored.dst == dst

    def test_16bit_iid_mode(self):
        src = link_local(0x000000FFFE001234)
        packet = _packet(src=src)
        compressed = compress(packet, MAC_A, MAC_B)
        restored = decompress(compressed, MAC_A, MAC_B)
        assert restored.src == src

    def test_multicast_8bit(self):
        packet = _packet(dst="ff02::1")
        restored = decompress(compress(packet, MAC_A, MAC_B), MAC_A, MAC_B)
        assert restored.dst == "ff02::1"

    def test_multicast_32bit(self):
        packet = _packet(dst="ff05::fb")  # mDNS-style scope-5
        restored = decompress(compress(packet, MAC_A, MAC_B), MAC_A, MAC_B)
        assert restored.dst == "ff05::fb"

    def test_hop_limit_compressed_values(self):
        for hlim in (1, 64, 255):
            packet = _packet(hop_limit=hlim)
            restored = decompress(compress(packet, MAC_A, MAC_B), MAC_A, MAC_B)
            assert restored.hop_limit == hlim

    def test_hop_limit_inline(self):
        packet = _packet(hop_limit=63)  # after one forwarding hop
        restored = decompress(compress(packet, MAC_A, MAC_B), MAC_A, MAC_B)
        assert restored.hop_limit == 63

    def test_traffic_class_inline_when_nonzero(self):
        packet = _packet(traffic_class=0x20)
        compressed = compress(packet, MAC_A, MAC_B)
        restored = decompress(compressed, MAC_A, MAC_B)
        assert restored.traffic_class == 0x20

    def test_udp_checksum_preserved(self):
        packet = _packet(payload=b"checksum-test")
        restored = decompress(compress(packet, MAC_A, MAC_B), MAC_A, MAC_B)
        assert restored.payload == packet.payload

    def test_non_iphc_rejected(self):
        with pytest.raises(IphcError):
            decompress(b"\x41\x00", MAC_A, MAC_B)

    def test_header_extents_match_compression(self):
        packet = _packet(payload=b"")
        compressed = compress(packet, MAC_A, MAC_B)
        compressed_hdr, uncompressed_hdr = header_extents(compressed)
        assert compressed_hdr == len(compressed)
        assert uncompressed_hdr == 48

    @given(st.binary(max_size=120))
    def test_round_trip_property(self, payload):
        packet = _packet(payload=payload)
        restored = decompress(compress(packet, MAC_A, MAC_B), MAC_A, MAC_B)
        assert UdpDatagram.decode(restored.payload).payload == payload


class TestFragmentation:
    def test_no_fragmentation_small(self):
        fragmenter = Fragmenter(MacFrame.max_payload())
        assert len(fragmenter.fragment(bytes(50), 90)) == 1

    def test_fragment_count_and_sizes(self):
        fragmenter = Fragmenter(MacFrame.max_payload())
        packet = _packet(payload=bytes(200))
        compressed = compress(packet, MAC_A, MAC_B)
        fragments = fragmenter.fragment(compressed, packet.total_length)
        assert len(fragments) > 1
        for fragment in fragments:
            assert len(fragment) <= MacFrame.max_payload()

    def test_reassembly_in_order(self):
        adaptation_a, adaptation_b = LowpanAdaptation(MAC_A), LowpanAdaptation(MAC_B)
        packet = _packet(payload=bytes(range(250)))
        frames = adaptation_a.packet_to_frames(packet, MAC_B)
        assert len(frames) >= 3
        result = None
        for frame in frames:
            result = adaptation_b.frame_to_packet(frame, now=0.0)
        assert result is not None
        assert UdpDatagram.decode(result.payload).payload == bytes(range(250))

    def test_reassembly_out_of_order(self):
        adaptation_a, adaptation_b = LowpanAdaptation(MAC_A), LowpanAdaptation(MAC_B)
        packet = _packet(payload=bytes(range(250)))
        frames = adaptation_a.packet_to_frames(packet, MAC_B)
        reordered = [frames[1], frames[0]] + list(frames[2:])
        result = None
        for frame in reordered:
            result = adaptation_b.frame_to_packet(frame, now=0.0)
        assert result is not None

    def test_missing_middle_fragment_no_delivery(self):
        """A hole must never produce a (corrupt) packet — the bug class
        behind DNS RdataErrors in early caching runs."""
        adaptation_a, adaptation_b = LowpanAdaptation(MAC_A), LowpanAdaptation(MAC_B)
        packet = _packet(payload=bytes(300))
        frames = adaptation_a.packet_to_frames(packet, MAC_B)
        assert len(frames) >= 3
        result = None
        for frame in frames[:1] + frames[2:]:  # drop the middle one
            result = adaptation_b.frame_to_packet(frame, now=0.0)
        assert result is None

    def test_interleaved_datagrams(self):
        adaptation_a, adaptation_b = LowpanAdaptation(MAC_A), LowpanAdaptation(MAC_B)
        packet1 = _packet(payload=b"\x01" * 200)
        packet2 = _packet(payload=b"\x02" * 200)
        frames1 = adaptation_a.packet_to_frames(packet1, MAC_B)
        frames2 = adaptation_a.packet_to_frames(packet2, MAC_B)
        results = []
        for f1, f2 in zip(frames1, frames2):
            for frame in (f1, f2):
                result = adaptation_b.frame_to_packet(frame, now=0.0)
                if result is not None:
                    results.append(UdpDatagram.decode(result.payload).payload)
        assert sorted(results) == [b"\x01" * 200, b"\x02" * 200]

    def test_reassembly_timeout(self):
        adaptation_a, adaptation_b = LowpanAdaptation(MAC_A), LowpanAdaptation(MAC_B)
        packet = _packet(payload=bytes(250))
        frames = adaptation_a.packet_to_frames(packet, MAC_B)
        adaptation_b.frame_to_packet(frames[0], now=0.0)
        # After the 60 s timeout the partial state is discarded, so
        # feeding the remaining fragments cannot complete the datagram.
        result = None
        for frame in frames[1:]:
            result = adaptation_b.frame_to_packet(frame, now=120.0)
        assert result is None

    def test_datagram_size_cap(self):
        fragmenter = Fragmenter(MacFrame.max_payload())
        with pytest.raises(FragmentationError):
            fragmenter.fragment(bytes(2100), 2100)

    def test_distinct_tags_per_datagram(self):
        fragmenter = Fragmenter(MacFrame.max_payload())
        f1 = fragmenter.fragment(bytes(150), 190)
        f2 = fragmenter.fragment(bytes(150), 190)
        tag1 = f1[0][2:4]
        tag2 = f2[0][2:4]
        assert tag1 != tag2

    def test_empty_payload_rejected(self):
        with pytest.raises(FragmentationError):
            Reassembler().push(1, b"", now=0.0)

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=800), st.integers(0, 2**16 - 1))
    def test_fragment_reassemble_property(self, size, seed):
        import random as _random

        rng = _random.Random(seed)
        payload = bytes(rng.randrange(256) for _ in range(size))
        adaptation_a = LowpanAdaptation(MAC_A)
        adaptation_b = LowpanAdaptation(MAC_B)
        packet = _packet(payload=payload)
        frames = adaptation_a.packet_to_frames(packet, MAC_B)
        result = None
        for frame in frames:
            result = adaptation_b.frame_to_packet(frame, now=0.0)
        assert result is not None
        assert UdpDatagram.decode(result.payload).payload == payload
