"""Group OSCORE tests (the simplified group mode)."""

import pytest
from hypothesis import given, strategies as st

from repro.coap import CoapMessage, Code
from repro.oscore import OscoreError
from repro.oscore.group import (
    GroupContext,
    protect_group_request,
    protect_group_response,
    unprotect_group_request,
    unprotect_group_response,
)


def _members(*ids):
    return [
        GroupContext(b"grp", member, b"group-master", b"gsalt")
        for member in ids
    ]


def _request(payload=b"query"):
    return CoapMessage.request(Code.FETCH, "/dns", payload=payload,
                               token=b"\x01", mid=3)


class TestGroupContext:
    def test_members_derive_same_keys(self):
        a, b = _members(b"\x0A", b"\x0B")
        assert a.key_for(b"\x0A") == b.key_for(b"\x0A")
        assert a.key_for(b"\x0B") == b.key_for(b"\x0B")
        assert a.key_for(b"\x0A") != a.key_for(b"\x0B")

    def test_common_iv_shared(self):
        a, b = _members(b"\x0A", b"\x0B")
        assert a.common_iv == b.common_iv

    def test_group_separation(self):
        a = GroupContext(b"grp1", b"\x0A", b"group-master")
        b = GroupContext(b"grp2", b"\x0A", b"group-master")
        assert a.key_for(b"\x0A") != b.key_for(b"\x0A")

    def test_replay_windows_per_sender(self):
        (a,) = _members(b"\x0A")
        assert a.replay_window(b"\x0B") is not a.replay_window(b"\x0C")
        assert a.replay_window(b"\x0B") is a.replay_window(b"\x0B")


class TestGroupMessages:
    def test_request_round_trip(self):
        sender, receiver = _members(b"\x0A", b"\x0B")
        outer, binding = protect_group_request(sender, _request())
        inner, recv_binding = unprotect_group_request(receiver, outer)
        assert inner.code == Code.FETCH
        assert inner.payload == b"query"
        assert recv_binding.kid == b"\x0A"

    def test_all_members_can_read(self):
        sender, member_b, member_c = _members(b"\x0A", b"\x0B", b"\x0C")
        outer, _ = protect_group_request(sender, _request())
        for member in (member_b, member_c):
            inner, _ = unprotect_group_request(member, outer)
            assert inner.payload == b"query"

    def test_replay_rejected_per_member(self):
        sender, receiver = _members(b"\x0A", b"\x0B")
        outer, _ = protect_group_request(sender, _request())
        unprotect_group_request(receiver, outer)
        with pytest.raises(OscoreError):
            unprotect_group_request(receiver, outer)

    def test_wrong_group_rejected(self):
        sender = GroupContext(b"grp1", b"\x0A", b"group-master")
        other = GroupContext(b"grp2", b"\x0B", b"group-master")
        outer, _ = protect_group_request(sender, _request())
        with pytest.raises(OscoreError):
            unprotect_group_request(other, outer)

    def test_outsider_cannot_forge(self):
        sender, receiver = _members(b"\x0A", b"\x0B")
        outsider = GroupContext(b"grp", b"\x0A", b"WRONG-master", b"gsalt")
        outer, _ = protect_group_request(outsider, _request())
        with pytest.raises(OscoreError):
            unprotect_group_request(receiver, outer)

    def test_multi_responder_responses(self):
        """Several members answer one request; the client attributes
        each response to its responder and nonces never collide."""
        client, server_b, server_c = _members(b"\x0A", b"\x0B", b"\x0C")
        outer, client_binding = protect_group_request(client, _request())

        responses = []
        for server, payload in ((server_b, b"from-b"), (server_c, b"from-c")):
            inner, binding = unprotect_group_request(server, outer)
            reply = inner.make_response(Code.CONTENT, payload=payload)
            responses.append(protect_group_response(server, reply, binding))

        seen = {}
        for protected in responses:
            plain, responder = unprotect_group_response(
                client, protected, client_binding
            )
            seen[responder] = plain.payload
        assert seen == {b"\x0B": b"from-b", b"\x0C": b"from-c"}

    def test_response_tamper_rejected(self):
        client, server = _members(b"\x0A", b"\x0B")
        outer, client_binding = protect_group_request(client, _request())
        inner, binding = unprotect_group_request(server, outer)
        protected = protect_group_response(
            server, inner.make_response(Code.CONTENT, payload=b"x"), binding
        )
        from dataclasses import replace

        bad = replace(
            protected,
            payload=bytes([protected.payload[0] ^ 1]) + protected.payload[1:],
        )
        with pytest.raises(OscoreError):
            unprotect_group_response(client, bad, client_binding)

    def test_semantics_hidden_on_wire(self):
        sender, _ = _members(b"\x0A", b"\x0B")
        outer, _ = protect_group_request(sender, _request(b"secret-payload"))
        assert outer.code == Code.POST
        assert b"secret-payload" not in outer.encode()
        assert outer.option(11) is None  # Uri-Path encrypted

    @given(st.binary(max_size=80))
    def test_round_trip_property(self, payload):
        sender, receiver = _members(b"\x0A", b"\x0B")
        outer, _ = protect_group_request(sender, _request(payload))
        inner, _ = unprotect_group_request(receiver, outer)
        assert inner.payload == payload
