"""DTLS tests: record layer, handshake, sessions, attack resistance."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.dtls import (
    ContentType,
    DtlsError,
    DtlsSession,
    RecordLayer,
    establish_pair,
)
from repro.dtls.handshake import (
    HandshakeMessage,
    HandshakeType,
    derive_keys,
    derive_master_secret,
    encode_client_hello,
    decode_client_hello,
    make_premaster_secret,
)
from repro.dtls.record import split_records


class TestRecordLayer:
    def test_plaintext_epoch0(self):
        layer = RecordLayer()
        record = layer.seal(ContentType.HANDSHAKE, b"hello")
        assert len(record) == 13 + 5
        plain = RecordLayer().open(record)
        assert plain.fragment == b"hello"
        assert plain.epoch == 0

    def test_header_fields(self):
        layer = RecordLayer()
        record = layer.seal(ContentType.APPLICATION_DATA, b"x")
        assert record[0] == 23
        assert record[1:3] == bytes([254, 253])
        assert int.from_bytes(record[3:5], "big") == 0  # epoch

    def test_sequence_increments(self):
        layer = RecordLayer()
        r1 = layer.seal(ContentType.HANDSHAKE, b"a")
        r2 = layer.seal(ContentType.HANDSHAKE, b"b")
        assert int.from_bytes(r1[5:11], "big") == 0
        assert int.from_bytes(r2[5:11], "big") == 1

    def test_protected_overhead_is_29_bytes(self):
        """13-byte header + 8-byte explicit nonce + 8-byte CCM-8 tag."""
        sender, receiver = RecordLayer(), RecordLayer()
        sender.set_write_keys(bytes(16), bytes(4))
        receiver.set_read_keys(bytes(16), bytes(4))
        record = sender.seal(ContentType.APPLICATION_DATA, b"0123456789")
        assert len(record) == 10 + 29
        assert receiver.open(record).fragment == b"0123456789"

    def test_tampered_record_rejected(self):
        sender, receiver = RecordLayer(), RecordLayer()
        sender.set_write_keys(bytes(16), bytes(4))
        receiver.set_read_keys(bytes(16), bytes(4))
        record = bytearray(sender.seal(ContentType.APPLICATION_DATA, b"data"))
        record[-1] ^= 1
        with pytest.raises(DtlsError):
            receiver.open(bytes(record))

    def test_replay_rejected(self):
        sender, receiver = RecordLayer(), RecordLayer()
        sender.set_write_keys(bytes(16), bytes(4))
        receiver.set_read_keys(bytes(16), bytes(4))
        record = sender.seal(ContentType.APPLICATION_DATA, b"data")
        receiver.open(record)
        with pytest.raises(DtlsError):
            receiver.open(record)

    def test_unknown_epoch_rejected(self):
        sender = RecordLayer()
        sender.set_write_keys(bytes(16), bytes(4))
        record = sender.seal(ContentType.APPLICATION_DATA, b"data")
        with pytest.raises(DtlsError):
            RecordLayer().open(record)

    def test_wrong_version_rejected(self):
        record = bytearray(RecordLayer().seal(ContentType.ALERT, b"x"))
        record[1] = 0xFE
        record[2] = 0xFF  # DTLS 1.0
        with pytest.raises(DtlsError):
            RecordLayer().open(bytes(record))

    def test_split_records(self):
        layer = RecordLayer()
        a = layer.seal(ContentType.HANDSHAKE, b"aaa")
        b = layer.seal(ContentType.HANDSHAKE, b"bbbb")
        assert split_records(a + b) == [a, b]

    def test_split_records_trailing_junk(self):
        layer = RecordLayer()
        record = layer.seal(ContentType.HANDSHAKE, b"aaa")
        with pytest.raises(DtlsError):
            split_records(record + b"\x01")


class TestHandshakeMessages:
    def test_handshake_header_is_12_bytes(self):
        message = HandshakeMessage(HandshakeType.CLIENT_HELLO, 0, b"body")
        assert len(message.encode()) == 12 + 4

    def test_decode_round_trip(self):
        message = HandshakeMessage(HandshakeType.FINISHED, 3, bytes(12))
        decoded, consumed = HandshakeMessage.decode(message.encode())
        assert decoded == message
        assert consumed == len(message.encode())

    def test_client_hello_cookie_round_trip(self):
        body = encode_client_hello(bytes(32), b"COOKIE16bytes!!!")
        client_random, cookie = decode_client_hello(body)
        assert client_random == bytes(32)
        assert cookie == b"COOKIE16bytes!!!"

    def test_premaster_structure(self):
        premaster = make_premaster_secret(b"123456789")
        assert len(premaster) == 2 + 9 + 2 + 9
        assert premaster[:2] == (9).to_bytes(2, "big")

    def test_key_derivation_deterministic(self):
        master = derive_master_secret(make_premaster_secret(b"psk"), bytes(32), bytes(32))
        assert len(master) == 48
        keys = derive_keys(master, bytes(32), bytes(32))
        assert len(keys.client_write_key) == 16
        assert len(keys.client_write_iv) == 4
        assert keys.client_write_key != keys.server_write_key


class TestSessions:
    def test_full_handshake_establishes(self):
        client, server, flights = establish_pair()
        assert client.established and server.established
        names = [name for _, name, _ in flights]
        assert names == [
            "Client Hello",
            "Hello Verify Request",
            "ClientHello[Cookie]",
            "Server Hello",
            "Server Hello Done",
            "ClientKeyExchange",
            "ChangeCipherSpec",
            "Finished",
            "ChangeCipherSpec",
            "Finished",
        ]

    def test_application_data_both_directions(self):
        client, server, _ = establish_pair()
        event = server.handle_datagram(client.protect(b"ping"))
        assert event.app_data == [b"ping"]
        event = client.handle_datagram(server.protect(b"pong"))
        assert event.app_data == [b"pong"]

    def test_protect_before_established_rejected(self):
        session = DtlsSession("client", psk=b"k")
        with pytest.raises(DtlsError):
            session.protect(b"x")

    def test_wrong_psk_fails_handshake(self):
        rng = random.Random(0)
        client = DtlsSession("client", psk=b"correct", rng=rng)
        server = DtlsSession(
            "server", psk_store={b"Client_identity": b"wrong!"}, rng=rng
        )
        pending = [("C->S", client.start_handshake())]
        with pytest.raises(DtlsError):
            index = 0
            while index < len(pending):
                direction, datagram = pending[index]
                index += 1
                receiver = server if direction == "C->S" else client
                back = "S->C" if direction == "C->S" else "C->S"
                events = receiver.handle_datagram(datagram)
                for _, out in events.outgoing:
                    pending.append((back, out))

    def test_unknown_identity_rejected(self):
        rng = random.Random(0)
        client = DtlsSession("client", psk=b"k", psk_identity=b"who?", rng=rng)
        server = DtlsSession("server", psk_store={b"other": b"k"}, rng=rng)
        pending = [("C->S", client.start_handshake())]
        with pytest.raises(DtlsError):
            index = 0
            while index < len(pending):
                direction, datagram = pending[index]
                index += 1
                receiver = server if direction == "C->S" else client
                back = "S->C" if direction == "C->S" else "C->S"
                events = receiver.handle_datagram(datagram)
                for _, out in events.outgoing:
                    pending.append((back, out))

    def test_cookie_exchange_is_stateless_round(self):
        """The first flight must be answered by HelloVerifyRequest,
        mirroring Figure 6's session-setup sequence."""
        rng = random.Random(1)
        client = DtlsSession("client", psk=b"k", rng=rng)
        server = DtlsSession("server", psk_store={b"Client_identity": b"k"}, rng=rng)
        events = server.handle_datagram(client.start_handshake())
        assert [name for name, _ in events.outgoing] == ["Hello Verify Request"]

    def test_invalid_role(self):
        with pytest.raises(ValueError):
            DtlsSession("observer")

    def test_deterministic_with_seeded_rng(self):
        _, _, flights_a = establish_pair(rng=random.Random(7))
        _, _, flights_b = establish_pair(rng=random.Random(7))
        assert [f[2] for f in flights_a] == [f[2] for f in flights_b]

    @given(st.binary(min_size=1, max_size=200))
    def test_app_data_round_trip_property(self, payload):
        client, server, _ = establish_pair(rng=random.Random(3))
        event = server.handle_datagram(client.protect(payload))
        assert event.app_data == [payload]
