"""IPv6/UDP reference encoding tests."""

import pytest
from hypothesis import given, strategies as st

from repro.net import (
    Ipv6Packet,
    UdpDatagram,
    global_address,
    interface_id,
    is_link_local,
    link_local,
    udp_checksum,
)


class TestAddresses:
    def test_link_local_format(self):
        assert link_local(1) == "fe80::1"
        assert is_link_local(link_local(0xABCD))

    def test_global_format(self):
        assert global_address(1) == "2001:db8::1"
        assert not is_link_local(global_address(1))

    def test_interface_id(self):
        assert interface_id(link_local(0x1234)) == 0x1234
        assert interface_id(global_address(0x99)) == 0x99

    def test_iid_range_validation(self):
        with pytest.raises(ValueError):
            link_local(1 << 64)
        with pytest.raises(ValueError):
            global_address(-1)


class TestIpv6:
    def test_encode_header_fields(self):
        packet = Ipv6Packet(global_address(1), global_address(2), b"payload")
        wire = packet.encode()
        assert len(wire) == 40 + 7
        assert wire[0] >> 4 == 6
        assert int.from_bytes(wire[4:6], "big") == 7
        assert wire[6] == 17   # UDP
        assert wire[7] == 64   # hop limit

    def test_decode_round_trip(self):
        packet = Ipv6Packet(
            global_address(1), global_address(2), b"data",
            hop_limit=33, traffic_class=8, flow_label=0x12345,
        )
        decoded = Ipv6Packet.decode(packet.encode())
        assert decoded == packet

    def test_total_length(self):
        packet = Ipv6Packet(global_address(1), global_address(2), bytes(10))
        assert packet.total_length == 50

    def test_hop_decrement(self):
        packet = Ipv6Packet(global_address(1), global_address(2), b"", hop_limit=2)
        assert packet.hop_decremented().hop_limit == 1
        with pytest.raises(ValueError):
            packet.hop_decremented().hop_decremented()

    def test_version_check_on_decode(self):
        data = bytearray(Ipv6Packet(global_address(1), global_address(2), b"").encode())
        data[0] = 0x40
        with pytest.raises(ValueError):
            Ipv6Packet.decode(bytes(data))

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            Ipv6Packet.decode(bytes(39))


class TestUdp:
    def test_encode_fields(self):
        datagram = UdpDatagram(5683, 53, b"query")
        wire = datagram.encode(global_address(1), global_address(2))
        assert int.from_bytes(wire[0:2], "big") == 5683
        assert int.from_bytes(wire[2:4], "big") == 53
        assert int.from_bytes(wire[4:6], "big") == 13

    def test_decode_round_trip(self):
        datagram = UdpDatagram(1000, 2000, b"abc")
        wire = datagram.encode(global_address(1), global_address(2))
        assert UdpDatagram.decode(wire) == datagram

    def test_checksum_nonzero(self):
        datagram = UdpDatagram(5683, 53, b"query")
        wire = datagram.encode(global_address(1), global_address(2))
        assert wire[6:8] != b"\x00\x00"

    def test_checksum_depends_on_addresses(self):
        datagram = UdpDatagram(5683, 53, b"query")
        wire1 = datagram.encode(global_address(1), global_address(2))
        wire2 = datagram.encode(global_address(1), global_address(3))
        assert wire1[6:8] != wire2[6:8]

    def test_port_validation(self):
        with pytest.raises(ValueError):
            UdpDatagram(70000, 53, b"")

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            UdpDatagram.decode(bytes(7))

    def test_checksum_ones_complement_rules(self):
        assert udp_checksum(global_address(1), global_address(2), b"") != 0

    @given(st.binary(max_size=200), st.integers(0, 65535), st.integers(0, 65535))
    def test_round_trip_property(self, payload, src_port, dst_port):
        datagram = UdpDatagram(src_port, dst_port, payload)
        wire = datagram.encode(global_address(1), global_address(2))
        assert UdpDatagram.decode(wire) == datagram
