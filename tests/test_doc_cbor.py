"""Tests for the Section 7 compressed CBOR DNS format."""

import pytest
from hypothesis import given, strategies as st

from repro.dns import (
    AData,
    AAAAData,
    DNSClass,
    Flags,
    Message,
    Question,
    RecordType,
    ResourceRecord,
)
from repro.doc.cbor_format import (
    CborFormatError,
    compression_ratio,
    decode_query,
    decode_response,
    encode_query,
    encode_response,
)
from repro.experiments.packet_sizes import MEDIAN_NAME, canonical_messages


class TestQueryEncoding:
    def test_default_type_class_elided(self):
        data = encode_query(Question("example.org", RecordType.AAAA, DNSClass.IN))
        question = decode_query(data)
        assert question.name == "example.org"
        assert question.rtype == RecordType.AAAA
        assert question.rclass == DNSClass.IN
        # Array of one text string only.
        assert data[0] == 0x81

    def test_non_default_type_included(self):
        data = encode_query(Question("example.org", RecordType.A))
        assert decode_query(data).rtype == RecordType.A
        assert data[0] == 0x82

    def test_non_default_class_includes_type_too(self):
        question = Question("example.org", RecordType.AAAA, DNSClass.CH)
        decoded = decode_query(encode_query(question))
        assert decoded.rclass == DNSClass.CH
        assert decoded.rtype == RecordType.AAAA

    def test_query_much_smaller_than_wire(self):
        from repro.dns import make_query

        wire = make_query(MEDIAN_NAME, RecordType.AAAA, txid=0).encode()
        cbor = encode_query(Question(MEDIAN_NAME, RecordType.AAAA))
        assert len(cbor) < len(wire) * 0.7

    def test_malformed_rejected(self):
        with pytest.raises(CborFormatError):
            decode_query(b"\x00")  # uint, not array
        with pytest.raises(CborFormatError):
            decode_query(b"\x81\x01")  # name not a string

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz.-0123456789", min_size=1, max_size=60))
    def test_query_round_trip_property(self, name):
        question = Question(name, RecordType.AAAA)
        assert decode_query(encode_query(question)).name == name


class TestResponseEncoding:
    def _question(self):
        return Question(MEDIAN_NAME, RecordType.AAAA)

    def _response(self):
        return Message(
            flags=Flags(qr=True),
            questions=(self._question(),),
            answers=(
                ResourceRecord(MEDIAN_NAME, RecordType.AAAA, DNSClass.IN, 300,
                               AAAAData("2001:db8::1")),
            ),
        )

    def test_round_trip(self):
        data = encode_response(self._response())
        decoded = decode_response(data, self._question())
        assert decoded.answers[0].rdata.address == "2001:db8::1"
        assert decoded.answers[0].ttl == 300
        assert decoded.answers[0].name == MEDIAN_NAME

    def test_paper_compression_claim(self):
        """Section 7: the 70-byte AAAA wire response compresses to
        ~24 bytes, a reduction around 66%."""
        response = canonical_messages()["response_aaaa"]
        wire = response.encode()
        assert len(wire) == 70
        cbor = encode_response(response)
        assert len(cbor) <= 26
        assert compression_ratio(wire, cbor) >= 0.6

    def test_mixed_type_answer_keeps_type(self):
        response = Message(
            flags=Flags(qr=True),
            questions=(Question("example.org", RecordType.ANY),),
            answers=(
                ResourceRecord("example.org", RecordType.A, DNSClass.IN, 60,
                               AData("192.0.2.1")),
                ResourceRecord("example.org", RecordType.AAAA, DNSClass.IN, 60,
                               AAAAData("2001:db8::1")),
            ),
        )
        decoded = decode_response(
            encode_response(response), Question("example.org", RecordType.ANY)
        )
        assert decoded.answers[0].rtype == RecordType.A
        assert decoded.answers[1].rtype == RecordType.AAAA

    def test_foreign_name_answer_explicit(self):
        response = Message(
            flags=Flags(qr=True),
            questions=(Question("alias.example.org", RecordType.AAAA),),
            answers=(
                ResourceRecord("canonical.example.org", RecordType.AAAA,
                               DNSClass.IN, 60, AAAAData("2001:db8::1")),
            ),
        )
        decoded = decode_response(
            encode_response(response), response.questions[0]
        )
        assert decoded.answers[0].name == "canonical.example.org"

    def test_self_contained_two_array_form(self):
        data = encode_response(self._response(), include_question=True)
        decoded = decode_response(data)   # no external question needed
        assert decoded.questions[0].name == MEDIAN_NAME
        assert decoded.answers[0].rdata.address == "2001:db8::1"

    def test_question_required_without_context(self):
        data = encode_response(self._response())
        with pytest.raises(CborFormatError):
            decode_response(data)

    def test_empty_answer_section(self):
        response = Message(flags=Flags(qr=True), questions=(self._question(),))
        decoded = decode_response(encode_response(response), self._question())
        assert decoded.answers == ()

    def test_no_question_to_elide_against(self):
        with pytest.raises(CborFormatError):
            encode_response(Message(flags=Flags(qr=True)))

    def test_compression_ratio_validation(self):
        with pytest.raises(ValueError):
            compression_ratio(b"", b"x")

    def test_multi_record_response_compresses(self):
        response = Message(
            flags=Flags(qr=True),
            questions=(self._question(),),
            answers=tuple(
                ResourceRecord(MEDIAN_NAME, RecordType.AAAA, DNSClass.IN, 300,
                               AAAAData(f"2001:db8::{i}"))
                for i in range(1, 5)
            ),
        )
        wire = response.encode()
        cbor = encode_response(response)
        assert compression_ratio(wire, cbor) > 0.4
        decoded = decode_response(cbor, self._question())
        assert len(decoded.answers) == 4
