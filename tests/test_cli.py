"""CLI smoke tests: every subcommand runs and prints sensible output."""

import pytest

from repro.cli import main


def test_dissect(capsys):
    assert main(["dissect", "--transport", "oscore"]) == 0
    out = capsys.readouterr().out
    assert "response_aaaa" in out
    assert "FRAGMENTED" in out


def test_dissect_get_method(capsys):
    assert main(["dissect", "--transport", "coap", "--method", "get"]) == 0
    assert "query" in capsys.readouterr().out


def test_resolve(capsys):
    assert main(["resolve", "--names", "2", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert out.count("ms") == 2
    assert "FAILED" not in out


def test_experiment(capsys):
    assert main([
        "experiment", "--transport", "udp", "--queries", "10",
        "--loss", "0.05",
    ]) == 0
    out = capsys.readouterr().out
    assert "success rate:     100.00%" in out
    assert "median" in out


def test_memory(capsys):
    assert main(["memory"]) == 0
    out = capsys.readouterr().out
    assert "OSCORE" in out and "QUIC" in out


def test_compress(capsys):
    assert main(["compress", "--name", "name0000.example-iot.org"]) == 0
    out = capsys.readouterr().out
    assert "wire  70 B" in out


def test_experiment_scenario_flag(capsys):
    assert main([
        "experiment", "--scenario", "one-hop,queries=8,loss=0.0",
    ]) == 0
    out = capsys.readouterr().out
    assert "success rate:     100.00%" in out


def test_experiment_sweep(capsys):
    assert main([
        "experiment", "--sweep", "--transports", "udp,coap",
        "--topologies", "one-hop", "--losses", "0.0", "--queries", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert out.count("one-hop") == 2
    assert "udp" in out and "coap" in out


def test_experiment_sweep_workers(capsys):
    assert main([
        "experiment", "--sweep", "--transports", "udp,coap",
        "--topologies", "one-hop", "--losses", "0.0", "--queries", "4",
        "--workers", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert out.count("one-hop") == 2


def test_workers_requires_sweep(capsys):
    assert main(["experiment", "--workers", "4"]) == 2
    assert "--workers requires --sweep" in capsys.readouterr().err


def test_sweep_rejects_single_loss_flag(capsys):
    assert main(["experiment", "--sweep", "--loss", "0.1"]) == 2
    assert "--losses" in capsys.readouterr().err


def test_sweep_rejects_single_transport_flag(capsys):
    assert main(["experiment", "--sweep", "--transport", "oscore"]) == 2
    assert "--transports" in capsys.readouterr().err


def test_sweep_flags_require_sweep(capsys):
    assert main(["experiment", "--transports", "udp,oscore"]) == 2
    assert "--transports requires --sweep" in capsys.readouterr().err
    assert main(["experiment", "--losses", "0.1"]) == 2
    assert "--losses requires --sweep" in capsys.readouterr().err


def test_scenario_errors_are_clean(capsys):
    assert main(["experiment", "--scenario", "transport=tcp"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "udp" in err  # lists the known transports


def test_dissect_sweep_covers_quic(capsys):
    assert main(["dissect", "--sweep"]) == 0
    out = capsys.readouterr().out
    assert "QUIC (model)" in out
    assert "OSCORE" in out


def test_resolve_scenario_flag(capsys):
    assert main(["resolve", "--scenario", "three-hop,loss=0.0",
                 "--names", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("ms") == 2
    assert "FAILED" not in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_serve_bounded_duration(capsys):
    assert main([
        "serve", "--transport", "udp", "--port", "0", "--duration", "0.2",
    ]) == 0
    out = capsys.readouterr().out
    assert "serving DNS over udp" in out
    assert "served 0 queries" in out


def test_loadtest_against_inline_server(capsys):
    # Serve and load in one process: the server runs in a background
    # thread with its own event loop, the loadtest CLI in this one.
    import asyncio
    import json
    import threading

    from repro.live import DocLiveServer

    endpoint = {}
    ready = threading.Event()
    done = threading.Event()

    def serve() -> None:
        async def run() -> None:
            server = DocLiveServer(transport="coap", port=0, num_names=8)
            async with server:
                endpoint["port"] = server.endpoint[1]
                ready.set()
                while not done.is_set():
                    await asyncio.sleep(0.02)

        asyncio.run(run())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(timeout=10)
    try:
        assert main([
            "loadtest", "--transport", "coap",
            "--port", str(endpoint["port"]),
            "--names", "8", "--rate", "80", "--duration", "0.4",
            "--timeout", "5", "--json",
        ]) == 0
    finally:
        done.set()
        thread.join(timeout=10)
    report = json.loads(capsys.readouterr().out)
    # --json now emits the unified Report document.
    assert report["substrate"] == "live"
    assert report["metrics"]["queries.success_rate"] >= 0.95
    assert report["metrics"]["latency.p50_ms"] is not None
    assert report["spec"]["transport"] == "coap"


def test_run_sim_human_summary(capsys):
    assert main(["run", "one-hop,transport=coap,queries=6,loss=0.0"]) == 0
    out = capsys.readouterr().out
    assert "substrate:        sim" in out
    assert "latency p50:" in out


def test_run_emits_report_json(capsys):
    import json

    assert main([
        "run", "one-hop,transport=udp,queries=6,loss=0.0", "--json",
    ]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["substrate"] == "sim"
    assert report["metrics"]["queries.issued"] == 6
    assert report["spec"]["topology"]["name"] == "one-hop"


def test_run_live_substrate_self_serves(capsys):
    import json

    assert main([
        "run",
        "transport=udp,queries=6,loss=0.0,rate=100,substrate=live,timeout=5",
        "--json",
    ]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["substrate"] == "live"
    assert report["metrics"]["queries.succeeded"] > 0


def test_run_bad_spec_is_cli_error(capsys):
    assert main(["run", "substrate=quantum"]) == 2
    assert "substrate" in capsys.readouterr().err


def test_experiment_json_emits_report(capsys):
    import json

    assert main([
        "experiment", "--transport", "udp", "--queries", "6",
        "--loss", "0.0", "--json",
    ]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["substrate"] == "sim"
    assert report["metrics"]["queries.issued"] == 6


def test_experiment_sweep_json_uses_string_grid_keys(capsys):
    import json

    assert main([
        "experiment", "--sweep", "--transports", "udp,coap",
        "--topologies", "one-hop", "--losses", "0.0", "--queries", "4",
        "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "sweep"
    assert sorted(payload["cells"]) == ["coap/one-hop/0", "udp/one-hop/0"]
    cell = payload["cells"]["udp/one-hop/0"]
    assert cell["metrics"]["queries.issued"] == 4


def test_loadtest_unknown_scheme_is_cli_error(capsys):
    with pytest.raises(SystemExit):
        main([
            "loadtest", "--cache-scheme", "bogus", "--duration", "0.1",
        ])


def test_workers_below_one_is_cli_error(capsys):
    assert main(["serve", "--workers", "0", "--duration", "0.1"]) == 2
    assert "--workers must be >= 1" in capsys.readouterr().err
    assert main(["loadtest", "--workers", "-1", "--duration", "0.1"]) == 2
    assert "--workers must be >= 1" in capsys.readouterr().err
