"""CLI smoke tests: every subcommand runs and prints sensible output."""

import pytest

from repro.cli import main


def test_dissect(capsys):
    assert main(["dissect", "--transport", "oscore"]) == 0
    out = capsys.readouterr().out
    assert "response_aaaa" in out
    assert "FRAGMENTED" in out


def test_dissect_get_method(capsys):
    assert main(["dissect", "--transport", "coap", "--method", "get"]) == 0
    assert "query" in capsys.readouterr().out


def test_resolve(capsys):
    assert main(["resolve", "--names", "2", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert out.count("ms") == 2
    assert "FAILED" not in out


def test_experiment(capsys):
    assert main([
        "experiment", "--transport", "udp", "--queries", "10",
        "--loss", "0.05",
    ]) == 0
    out = capsys.readouterr().out
    assert "success rate:     100.00%" in out
    assert "median" in out


def test_memory(capsys):
    assert main(["memory"]) == 0
    out = capsys.readouterr().out
    assert "OSCORE" in out and "QUIC" in out


def test_compress(capsys):
    assert main(["compress", "--name", "name0000.example-iot.org"]) == 0
    out = capsys.readouterr().out
    assert "wire  70 B" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])
