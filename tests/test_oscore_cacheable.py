"""Cacheable (deterministic) OSCORE tests."""

import pytest

from repro.coap import CoapMessage, Code, cache_key_for
from repro.oscore import OscoreError, SecurityContext, unprotect_response
from repro.oscore.cacheable import (
    DETERMINISTIC_CLIENT_ID,
    derive_deterministic_context,
    protect_cacheable_request,
    protect_cacheable_response,
    protect_deterministic_request,
    unprotect_deterministic_request,
)


def _contexts():
    client_a = derive_deterministic_context(b"group", b"salt", role="client")
    client_b = derive_deterministic_context(b"group", b"salt", role="client")
    server = derive_deterministic_context(b"group", b"salt", role="server")
    return client_a, client_b, server


def _request(payload=b"\x00" * 20, token=b"\x01", mid=1):
    return CoapMessage.request(
        Code.FETCH, "/dns", payload=payload, token=token, mid=mid
    )


class TestDeterminism:
    def test_equal_requests_equal_ciphertext(self):
        client_a, client_b, _ = _contexts()
        outer_a, _ = protect_deterministic_request(client_a, _request())
        outer_b, _ = protect_deterministic_request(client_b, _request(token=b"\x09", mid=99))
        assert outer_a.payload == outer_b.payload

    def test_different_payloads_different_ciphertext(self):
        client_a, _, _ = _contexts()
        outer_a, _ = protect_deterministic_request(client_a, _request(b"\x01" * 20))
        outer_b, _ = protect_deterministic_request(client_a, _request(b"\x02" * 20))
        assert outer_a.payload != outer_b.payload

    def test_sequence_counter_untouched(self):
        client_a, _, _ = _contexts()
        before = client_a.sender_sequence
        protect_deterministic_request(client_a, _request())
        assert client_a.sender_sequence == before

    def test_requires_deterministic_context(self):
        normal, _ = SecurityContext.pair(b"m", b"s")
        with pytest.raises(OscoreError):
            protect_deterministic_request(normal, _request())

    def test_deterministic_id_reserved(self):
        client_a, _, _ = _contexts()
        assert client_a.sender_id == DETERMINISTIC_CLIENT_ID


class TestServerVerification:
    def test_round_trip(self):
        client_a, _, server = _contexts()
        outer, _ = protect_deterministic_request(client_a, _request())
        inner, binding = unprotect_deterministic_request(server, outer)
        assert inner.payload == b"\x00" * 20
        assert binding.kid == DETERMINISTIC_CLIENT_ID

    def test_replay_allowed(self):
        """Equal deterministic requests are the whole point."""
        client_a, _, server = _contexts()
        outer, _ = protect_deterministic_request(client_a, _request())
        unprotect_deterministic_request(server, outer)
        unprotect_deterministic_request(server, outer)  # no error

    def test_forged_piv_rejected(self):
        """A valid ciphertext under a wrong PIV must not pass (the PIV
        is recomputed from the decrypted plaintext)."""
        client_a, _, server = _contexts()
        request_a = _request(b"\x01" * 20)
        request_b = _request(b"\x02" * 20)
        outer_a, _ = protect_deterministic_request(client_a, request_a)
        outer_b, _ = protect_deterministic_request(client_a, request_b)
        # Swap the OSCORE options (carrying the PIVs) between messages.
        from dataclasses import replace
        from repro.coap.options import OptionNumber

        option_b = outer_b.option(OptionNumber.OSCORE)
        forged = outer_a.without_option(OptionNumber.OSCORE).with_option(
            OptionNumber.OSCORE, option_b
        )
        with pytest.raises(OscoreError):
            unprotect_deterministic_request(server, forged)

    def test_tampered_ciphertext_rejected(self):
        client_a, _, server = _contexts()
        outer, _ = protect_deterministic_request(client_a, _request())
        from dataclasses import replace

        bad = replace(
            outer, payload=bytes([outer.payload[0] ^ 1]) + outer.payload[1:]
        )
        with pytest.raises(OscoreError):
            unprotect_deterministic_request(server, bad)


class TestCacheability:
    def test_outer_fetch_is_proxy_cacheable(self):
        client_a, client_b, _ = _contexts()
        outer_a, _ = protect_cacheable_request(client_a, _request())
        outer_b, _ = protect_cacheable_request(client_b, _request(token=b"\x05", mid=7))
        assert outer_a.code == Code.FETCH
        assert cache_key_for(outer_a) is not None
        assert cache_key_for(outer_a) == cache_key_for(outer_b)

    def test_regular_oscore_not_proxy_cacheable(self):
        client, _ = SecurityContext.pair(b"m", b"s")
        from repro.oscore import protect_request

        outer, _ = protect_request(client, _request())
        assert outer.code == Code.POST
        assert cache_key_for(outer) is None

    def test_any_member_decrypts_response(self):
        client_a, client_b, server = _contexts()
        outer, binding_a = protect_cacheable_request(client_a, _request())
        inner, server_binding = unprotect_deterministic_request(server, outer)
        response = inner.make_response(Code.CONTENT, payload=b"answer")
        protected = protect_cacheable_response(
            server, response, server_binding, outer_max_age=60
        )
        # Client B never sent the request but shares the deterministic
        # context; a cached copy works for it too.
        _, binding_b = protect_cacheable_request(client_b, _request(token=b"\x05"))
        plain = unprotect_response(client_b, protected, binding_b)
        assert plain.payload == b"answer"

    def test_outer_max_age_exposed(self):
        client_a, _, server = _contexts()
        outer, _ = protect_cacheable_request(client_a, _request())
        inner, binding = unprotect_deterministic_request(server, outer)
        response = inner.make_response(Code.CONTENT, payload=b"x")
        protected = protect_cacheable_response(server, response, binding, outer_max_age=42)
        assert protected.code == Code.CONTENT
        assert protected.max_age == 42

    def test_eavesdropper_learns_nothing(self):
        from repro.dns import make_query

        client_a, _, _ = _contexts()
        wire = make_query("very-secret-device.example.org", txid=0).encode()
        outer, _ = protect_cacheable_request(client_a, _request(payload=wire))
        assert b"secret" not in outer.encode()


class TestEndToEndViaProxy:
    def test_proxy_caches_protected_exchange(self):
        from repro.coap.proxy import ForwardProxy
        from repro.dns import RecordType, RecursiveResolver, Zone
        from repro.doc import DocClient, DocServer
        from repro.sim import Simulator
        from repro.stack import build_figure2_topology

        sim = Simulator(seed=41)
        topo = build_figure2_topology(sim)
        zone = Zone()
        zone.add_address("svc.example.org", "2001:db8::7", ttl=120)
        server = DocServer(
            sim, topo.resolver_host.bind(5683), RecursiveResolver(zone),
            deterministic_context=derive_deterministic_context(
                b"group", b"salt", role="server"
            ),
        )
        proxy = ForwardProxy(
            sim, topo.forwarder.bind(5683), topo.forwarder.bind(),
            (topo.resolver_host.address, 5683),
        )
        clients = [
            DocClient(
                sim, node.bind(), (topo.forwarder.address, 5683),
                oscore_context=derive_deterministic_context(
                    b"group", b"salt", role="client"
                ),
                cacheable_oscore=True,
            )
            for node in topo.clients
        ]
        results = []
        sim.schedule(0.0, clients[0].resolve, "svc.example.org",
                     RecordType.AAAA, lambda r, e: results.append((r, e)))
        sim.schedule(2.0, clients[1].resolve, "svc.example.org",
                     RecordType.AAAA, lambda r, e: results.append((r, e)))
        sim.run(until=30)
        assert len(results) == 2
        assert all(e is None and r.addresses == ["2001:db8::7"] for r, e in results)
        assert server.queries_handled == 1
        assert proxy.requests_served_from_cache == 1

    def test_proxy_aged_max_age_restores_remaining_ttl(self):
        from repro.coap.proxy import ForwardProxy
        from repro.dns import RecordType, RecursiveResolver, Zone
        from repro.doc import DocClient, DocServer
        from repro.sim import Simulator
        from repro.stack import build_figure2_topology

        sim = Simulator(seed=43)
        topo = build_figure2_topology(sim)
        zone = Zone()
        zone.add_address("svc.example.org", "2001:db8::7", ttl=60)
        DocServer(
            sim, topo.resolver_host.bind(5683), RecursiveResolver(zone),
            deterministic_context=derive_deterministic_context(
                b"group", b"salt", role="server"
            ),
        )
        ForwardProxy(
            sim, topo.forwarder.bind(5683), topo.forwarder.bind(),
            (topo.resolver_host.address, 5683),
        )
        clients = [
            DocClient(
                sim, node.bind(), (topo.forwarder.address, 5683),
                oscore_context=derive_deterministic_context(
                    b"group", b"salt", role="client"
                ),
                cacheable_oscore=True,
            )
            for node in topo.clients
        ]
        results = []
        sim.schedule(0.0, clients[0].resolve, "svc.example.org",
                     RecordType.AAAA, lambda r, e: results.append(r))
        sim.schedule(10.0, clients[1].resolve, "svc.example.org",
                     RecordType.AAAA, lambda r, e: results.append(r))
        sim.run(until=30)
        assert results[0].response.min_ttl() == 60
        # Served from the proxy cache ~10 s later: TTL aged via the
        # outer Max-Age that the proxy decremented.
        assert 48 <= results[1].response.min_ttl() <= 51
