"""OSCORE tests: context derivation, option codec, protection, replay."""

import pytest
from hypothesis import given, strategies as st

from repro.coap import CoapMessage, Code, ContentFormat, OptionNumber
from repro.oscore import (
    OscoreError,
    OscoreOptionValue,
    ReplayError,
    ReplayWindow,
    SecurityContext,
    protect_request,
    protect_response,
    unprotect_request,
    unprotect_response,
)
from repro.oscore.context import decode_partial_iv, encode_partial_iv


def _pair(**kwargs):
    return SecurityContext.pair(b"master-secret", b"salt", **kwargs)


def _request(payload=b"\x00" * 20):
    return (
        CoapMessage.request(Code.FETCH, "/dns", mid=1, token=b"\xAA", payload=payload)
        .with_uint_option(OptionNumber.CONTENT_FORMAT, int(ContentFormat.DNS_MESSAGE))
    )


class TestContext:
    def test_rfc8613_c1_key_derivation(self):
        """RFC 8613 Appendix C.1.1 test vector."""
        master_secret = bytes(range(1, 17))
        master_salt = bytes.fromhex("9e7ca92223786340")
        ctx = SecurityContext.derive(master_secret, master_salt, b"", b"\x01")
        assert ctx.sender_key.hex() == "f0910ed7295e6ad4b54fc793154302ff"
        assert ctx.recipient_key.hex() == "ffb14e093c94c9cac9471648b4f98710"
        assert ctx.common_iv.hex() == "4622d4dd6d944168eefb54987c"

    def test_pair_keys_mirrored(self):
        client, server = _pair()
        assert client.sender_key == server.recipient_key
        assert client.recipient_key == server.sender_key
        assert client.common_iv == server.common_iv

    def test_same_ids_rejected(self):
        with pytest.raises(OscoreError):
            SecurityContext.derive(b"s", b"", b"\x01", b"\x01")

    def test_nonce_construction_rfc8613_c1(self):
        """Nonce for sender ID '' and PIV 0 per Appendix C.1.1."""
        master_secret = bytes(range(1, 17))
        master_salt = bytes.fromhex("9e7ca92223786340")
        ctx = SecurityContext.derive(master_secret, master_salt, b"", b"\x01")
        nonce = ctx.nonce(b"", b"\x00")
        assert nonce.hex() == "4622d4dd6d944168eefb54987c"

    def test_sequence_numbers_monotonic(self):
        client, _ = _pair()
        assert [client.next_sequence() for _ in range(3)] == [0, 1, 2]

    def test_partial_iv_encoding(self):
        assert encode_partial_iv(0) == b"\x00"
        assert encode_partial_iv(255) == b"\xff"
        assert encode_partial_iv(256) == b"\x01\x00"
        assert decode_partial_iv(b"\x01\x00") == 256

    def test_id_too_long_for_nonce(self):
        client, _ = _pair()
        with pytest.raises(OscoreError):
            client.nonce(bytes(8), b"\x00")


class TestReplayWindow:
    def test_in_order(self):
        window = ReplayWindow()
        for seq in range(10):
            window.accept(seq)
        assert window.highest_seen == 9

    def test_replay_rejected(self):
        window = ReplayWindow()
        window.accept(5)
        with pytest.raises(ReplayError):
            window.accept(5)

    def test_out_of_order_within_window(self):
        window = ReplayWindow(size=8)
        window.accept(10)
        window.accept(7)
        with pytest.raises(ReplayError):
            window.accept(7)

    def test_too_old_rejected(self):
        window = ReplayWindow(size=8)
        window.accept(100)
        assert not window.check(92)
        assert window.check(93)

    def test_negative_rejected(self):
        assert not ReplayWindow().check(-1)

    @given(st.lists(st.integers(0, 200), max_size=60, unique=True))
    def test_unique_sequences_accepted_in_window(self, sequences):
        window = ReplayWindow(size=256)
        for seq in sequences:
            window.accept(seq)


class TestOptionCodec:
    def test_empty_for_defaults(self):
        assert OscoreOptionValue().encode() == b""
        assert OscoreOptionValue.decode(b"") == OscoreOptionValue()

    def test_request_form(self):
        value = OscoreOptionValue(partial_iv=b"\x05", kid=b"\x01")
        encoded = value.encode()
        assert encoded == bytes([0x09, 0x05, 0x01])
        assert OscoreOptionValue.decode(encoded) == value

    def test_kid_context(self):
        value = OscoreOptionValue(
            partial_iv=b"\x01", kid=b"\x02", kid_context=b"ctx"
        )
        assert OscoreOptionValue.decode(value.encode()) == value

    def test_response_piv_only(self):
        value = OscoreOptionValue(partial_iv=b"\x07")
        assert OscoreOptionValue.decode(value.encode()) == value

    def test_reserved_bits_rejected(self):
        with pytest.raises(OscoreError):
            OscoreOptionValue.decode(bytes([0xE0]))

    def test_piv_too_long(self):
        with pytest.raises(OscoreError):
            OscoreOptionValue(partial_iv=bytes(6)).encode()

    def test_trailing_without_kid_flag_rejected(self):
        with pytest.raises(OscoreError):
            OscoreOptionValue.decode(bytes([0x01, 0x00, 0xFF]))


class TestProtection:
    def test_request_round_trip(self):
        client, server = _pair()
        request = _request()
        outer, binding = protect_request(client, request)
        assert outer.code == Code.POST           # semantics hidden
        assert outer.option(OptionNumber.URI_PATH) is None  # Class E hidden
        assert outer.payload != request.payload
        inner, server_binding = unprotect_request(server, outer)
        assert inner.code == Code.FETCH
        assert inner.uri_path == "/dns"
        assert inner.payload == request.payload
        assert server_binding.kid == binding.kid

    def test_response_round_trip(self):
        client, server = _pair()
        outer, binding = protect_request(client, _request())
        inner, server_binding = unprotect_request(server, outer)
        response = inner.make_response(Code.CONTENT, payload=b"answer")
        response = response.with_uint_option(OptionNumber.MAX_AGE, 60)
        protected = protect_response(server, response, server_binding)
        assert protected.code == Code.CHANGED     # outer 2.04
        plain = unprotect_response(client, protected, binding)
        assert plain.code == Code.CONTENT
        assert plain.payload == b"answer"
        assert plain.max_age == 60

    def test_response_with_new_piv(self):
        client, server = _pair()
        outer, binding = protect_request(client, _request())
        inner, server_binding = unprotect_request(server, outer)
        response = inner.make_response(Code.CONTENT, payload=b"x")
        protected = protect_response(
            server, response, server_binding, use_new_piv=True
        )
        value = OscoreOptionValue.decode(protected.option(OptionNumber.OSCORE))
        assert value.partial_iv != b""
        plain = unprotect_response(client, protected, binding)
        assert plain.payload == b"x"

    def test_replay_rejected(self):
        client, server = _pair()
        outer, _ = protect_request(client, _request())
        unprotect_request(server, outer)
        with pytest.raises(OscoreError):
            unprotect_request(server, outer)

    def test_replay_check_can_be_disabled(self):
        client, server = _pair()
        outer, _ = protect_request(client, _request())
        unprotect_request(server, outer, enforce_replay=False)
        unprotect_request(server, outer, enforce_replay=False)

    def test_tampered_payload_rejected(self):
        client, server = _pair()
        outer, _ = protect_request(client, _request())
        from dataclasses import replace

        bad = replace(outer, payload=bytes([outer.payload[0] ^ 1]) + outer.payload[1:])
        with pytest.raises(OscoreError):
            unprotect_request(server, bad)

    def test_wrong_kid_rejected(self):
        client, _ = _pair()
        _, other_server = SecurityContext.pair(
            b"master-secret", b"salt", client_id=b"\x09", server_id=b"\x0A"
        )
        outer, _ = protect_request(client, _request())
        with pytest.raises(OscoreError):
            unprotect_request(other_server, outer)

    def test_missing_option_rejected(self):
        _, server = _pair()
        plain = CoapMessage.request(Code.POST, "/x", payload=b"junk")
        with pytest.raises(OscoreError):
            unprotect_request(server, plain)

    def test_proxy_options_stay_outer(self):
        client, server = _pair()
        request = _request().with_option(OptionNumber.URI_HOST, b"origin.example")
        outer, _ = protect_request(client, request)
        assert outer.option(OptionNumber.URI_HOST) == b"origin.example"
        inner, _ = unprotect_request(server, outer)
        assert inner.option(OptionNumber.URI_HOST) == b"origin.example"

    def test_wrong_direction_calls_rejected(self):
        client, _ = _pair()
        with pytest.raises(OscoreError):
            protect_request(client, _request().make_response(Code.CONTENT))

    def test_distinct_requests_distinct_ciphertexts(self):
        """Fresh PIVs make equal queries non-identical on the wire —
        the reason plain OSCORE defeats proxy caching (Table 1)."""
        client, _ = _pair()
        outer1, _ = protect_request(client, _request())
        outer2, _ = protect_request(client, _request())
        assert outer1.payload != outer2.payload

    def test_overhead_is_small(self):
        """OSCORE per-message overhead ≈ 11-14 bytes (Figure 6)."""
        client, _ = _pair()
        request = _request()
        outer, _ = protect_request(client, request)
        overhead = len(outer.encode()) - len(request.encode())
        assert 8 <= overhead <= 16

    @given(st.binary(max_size=100))
    def test_round_trip_property(self, payload):
        client, server = _pair()
        request = _request(payload=payload)
        outer, binding = protect_request(client, request)
        inner, server_binding = unprotect_request(server, outer)
        assert inner.payload == payload
        response = inner.make_response(Code.CONTENT, payload=payload[::-1])
        protected = protect_response(server, response, server_binding)
        plain = unprotect_response(client, protected, binding)
        assert plain.payload == payload[::-1]
