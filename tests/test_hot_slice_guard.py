"""The codec hot-slice ratchet (tools/check_hot_slices.py) stays green.

The guard counts ``data[a:b]`` slice subscripts per function across the
codec hot modules and compares them with the checked-in allowlist; CI
runs the script directly, this test keeps it honest under pytest too.
"""

import importlib.util
import sys
from pathlib import Path

_TOOLS = Path(__file__).resolve().parent.parent / "tools"


def _load_guard():
    spec = importlib.util.spec_from_file_location(
        "check_hot_slices", _TOOLS / "check_hot_slices.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_guard_passes(capsys):
    guard = _load_guard()
    assert guard.main([]) == 0
    assert "passed" in capsys.readouterr().out


def test_guard_trips_on_new_slice(monkeypatch, capsys):
    guard = _load_guard()
    bloated = guard.inventory()
    module = next(iter(bloated))
    scopes = bloated[module]
    scopes["freshly_written_decode"] = scopes.get(
        "freshly_written_decode", 0
    ) + 1
    monkeypatch.setattr(guard, "inventory", lambda: bloated)
    assert guard.main([]) == 1
    assert "freshly_written_decode" in capsys.readouterr().err


def test_guard_reports_ratchet_opportunity(monkeypatch, capsys):
    guard = _load_guard()
    shrunk = guard.inventory()
    for module, scopes in shrunk.items():
        for scope in list(scopes):
            del scopes[scope]
            break
        else:
            continue
        break
    monkeypatch.setattr(guard, "inventory", lambda: shrunk)
    assert guard.main([]) == 0
    assert "ratchet" in capsys.readouterr().out


def test_allowlist_covers_all_hot_modules():
    guard = _load_guard()
    import json

    allowed = json.loads(guard.ALLOWLIST.read_text())
    assert set(allowed) == {
        m for m in guard.HOT_MODULES if (guard.SRC / m).exists()
    }
