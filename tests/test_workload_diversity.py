"""Unit tests for the arrival/popularity workload vocabulary."""

from __future__ import annotations

import random

import pytest

from repro.scenarios import Scenario, ScenarioError, WorkloadSpec, scenario_from_spec
from repro.sim.workload import (
    bursty_arrival_times,
    poisson_arrival_times,
    sample_zipf,
    zipf_weights,
)


# -- bursty arrivals -----------------------------------------------------


def test_bursty_arrivals_respect_off_windows():
    rng = random.Random(1)
    times = bursty_arrival_times(
        rng, rate=10.0, count=200, on_duration=1.0, off_duration=4.0
    )
    assert times == sorted(times)
    assert len(times) == 200
    for t in times:
        assert (t % 5.0) < 1.0  # every arrival inside an ON window


def test_bursty_average_rate_is_preserved():
    rng = random.Random(7)
    rate, count = 20.0, 4000
    times = bursty_arrival_times(
        rng, rate=rate, count=count, on_duration=0.5, off_duration=1.5
    )
    # The span of N arrivals at average rate λ is ≈ N/λ; allow wide
    # slack since the last window may be partially used.
    span = times[-1]
    assert span == pytest.approx(count / rate, rel=0.15)


def test_bursty_zero_off_degenerates_to_poisson_support():
    rng = random.Random(3)
    times = bursty_arrival_times(
        rng, rate=5.0, count=50, on_duration=1.0, off_duration=0.0
    )
    assert len(times) == 50


def test_bursty_validation():
    rng = random.Random(1)
    with pytest.raises(ValueError):
        bursty_arrival_times(rng, rate=0, count=1, on_duration=1, off_duration=1)
    with pytest.raises(ValueError):
        bursty_arrival_times(rng, rate=1, count=1, on_duration=0, off_duration=1)
    with pytest.raises(ValueError):
        bursty_arrival_times(rng, rate=1, count=1, on_duration=1, off_duration=-1)


# -- Zipf popularity -----------------------------------------------------


def test_zipf_weights_shape():
    weights = zipf_weights(4, 1.0)
    assert weights == [1.0, 0.5, pytest.approx(1 / 3), 0.25]
    assert zipf_weights(3, 0.0) == [1.0, 1.0, 1.0]
    with pytest.raises(ValueError):
        zipf_weights(0, 1.0)
    with pytest.raises(ValueError):
        zipf_weights(4, -0.5)


def test_zipf_sampling_is_skewed():
    rng = random.Random(5)
    weights = zipf_weights(20, 1.2)
    draws = [sample_zipf(rng, weights) for _ in range(3000)]
    rank0 = draws.count(0)
    rank19 = draws.count(19)
    assert rank0 > 5 * max(rank19, 1)
    assert all(0 <= d < 20 for d in draws)


# -- WorkloadSpec integration -------------------------------------------


def test_workload_spec_defaults_unchanged():
    spec = WorkloadSpec()
    assert spec.arrival == "poisson"
    assert spec.zipf_alpha is None
    rng_a, rng_b = random.Random(9), random.Random(9)
    # Default spec arrivals are bit-identical to the raw Poisson call.
    assert spec.arrival_times(rng_a) == poisson_arrival_times(
        rng_b, spec.query_rate, spec.num_queries, start=spec.start
    )


def test_workload_spec_round_robin_names_without_zipf():
    spec = WorkloadSpec(num_names=5)
    rng = random.Random(1)
    assert [spec.draw_name_index(rng, i) for i in range(7)] == [
        0, 1, 2, 3, 4, 0, 1
    ]
    # No RNG draws were consumed on the legacy path.
    assert random.Random(1).random() == rng.random()


def test_workload_spec_zipf_names():
    spec = WorkloadSpec(num_names=10, zipf_alpha=1.5)
    rng = random.Random(2)
    draws = [spec.draw_name_index(rng, i) for i in range(500)]
    assert draws.count(0) > draws.count(9)
    assert all(0 <= d < 10 for d in draws)


def test_workload_spec_bursty_arrivals():
    spec = WorkloadSpec(
        arrival="bursty", burst_on=0.5, burst_off=2.0, num_queries=100,
        query_rate=20.0, start=0.0,
    )
    times = spec.arrival_times(random.Random(4))
    assert len(times) == 100
    for t in times:
        assert (t % 2.5) < 0.5


def test_workload_spec_validation():
    with pytest.raises(ScenarioError):
        WorkloadSpec(arrival="lumpy")
    with pytest.raises(ScenarioError):
        WorkloadSpec(burst_on=0.0)
    with pytest.raises(ScenarioError):
        WorkloadSpec(burst_off=-1.0)
    with pytest.raises(ScenarioError):
        WorkloadSpec(zipf_alpha=-0.1)


def test_scenario_spec_keys_for_diversity():
    scenario = scenario_from_spec(
        "figure2,arrival=bursty,burst-on=0.5,burst-off=2,zipf=1.1"
    )
    workload = scenario.workload
    assert workload.arrival == "bursty"
    assert workload.burst_on == 0.5
    assert workload.burst_off == 2.0
    assert workload.zipf_alpha == 1.1


def test_presets_for_diversity():
    from repro.scenarios.presets import get_scenario

    assert get_scenario("bursty").workload.arrival == "bursty"
    assert get_scenario("zipf").workload.zipf_alpha == 1.0


def test_simulated_run_with_zipf_and_bursty():
    from repro.scenarios import ScenarioRunner

    scenario = Scenario(
        transport="coap",
        workload=WorkloadSpec(
            num_queries=12, query_rate=10.0, arrival="bursty",
            burst_on=0.5, burst_off=1.0, zipf_alpha=1.0,
        ),
    )
    result = ScenarioRunner().run(scenario)
    assert len(result.outcomes) == 12
    assert result.success_rate > 0


# -- bulk Zipf sampling (the vectorized fleet path) ----------------------


def test_zipf_cumulative_is_cached_and_consistent():
    from itertools import accumulate

    from repro.sim import zipf_cumulative

    cumulative = zipf_cumulative(12, 1.1)
    assert cumulative == tuple(accumulate(zipf_weights(12, 1.1)))
    # lru_cache: the same (count, alpha) returns the same tuple object.
    assert zipf_cumulative(12, 1.1) is cumulative


def test_sample_zipf_many_stream_identical_to_singles():
    from repro.sim import sample_zipf_many, zipf_cumulative

    weights = zipf_weights(12, 1.1)
    cumulative = zipf_cumulative(12, 1.1)
    bulk = sample_zipf_many(random.Random(9), cumulative, 200)
    singles_rng = random.Random(9)
    singles = [sample_zipf(singles_rng, weights) for _ in range(200)]
    assert bulk == singles
    # ...and to the stdlib's own cumulative-weights sampling: exactly
    # one rng.random() per draw, same bisect, same stream.
    choices_rng = random.Random(9)
    choices = [
        choices_rng.choices(range(12), cum_weights=list(cumulative))[0]
        for _ in range(200)
    ]
    assert bulk == choices


def test_draw_name_indices_matches_repeated_single_draws():
    bulk_rng = random.Random(21)
    single_rng = random.Random(21)
    spec = WorkloadSpec(num_names=10, zipf_alpha=1.5)
    bulk = spec.draw_name_indices(bulk_rng, 50)
    singles = [spec.draw_name_index(single_rng, i) for i in range(50)]
    assert bulk == singles
    # Round-robin (no zipf) bulk draws consume no randomness and honour
    # the start index.
    plain = WorkloadSpec(num_names=4, zipf_alpha=None)
    assert plain.draw_name_indices(bulk_rng, 6, start_index=2) == [
        2, 3, 0, 1, 2, 3
    ]


def test_sample_zipf_many_validation():
    from repro.sim import sample_zipf_many, zipf_cumulative

    with pytest.raises(ValueError):
        sample_zipf_many(random.Random(1), zipf_cumulative(4, 1.0), -1)
    assert sample_zipf_many(random.Random(1), zipf_cumulative(4, 1.0), 0) == []
