"""Direct unit tests for the packet-size dissection module."""

import pytest

from repro.coap.codes import Code
from repro.experiments.packet_sizes import (
    MEDIAN_NAME,
    PacketDissection,
    canonical_messages,
    dissect_blockwise,
    dissect_transport,
    dtls_handshake_dissections,
)


class TestCanonicalMessages:
    def test_custom_name_lengths(self):
        short = canonical_messages("ab.org")
        long_ = canonical_messages("a" * 60 + ".example.org")
        assert len(short["query"].encode()) < len(long_["query"].encode())

    def test_response_sizes_scale_with_rdata(self):
        messages = canonical_messages()
        a = len(messages["response_a"].encode())
        aaaa = len(messages["response_aaaa"].encode())
        assert aaaa - a == 12  # 16-byte vs 4-byte address


class TestDissectionInvariants:
    @pytest.mark.parametrize("transport", ["udp", "dtls", "coap", "coaps", "oscore"])
    def test_layers_sum_to_udp_payload(self, transport):
        for d in dissect_transport(transport):
            assert d.dns_bytes + d.security_bytes + d.coap_bytes == d.udp_payload

    def test_total_link_bytes_exceed_payload(self):
        for d in dissect_transport("udp"):
            assert d.total_link_bytes > d.udp_payload
            assert d.framing_bytes == d.total_link_bytes - d.udp_payload

    def test_fragment_count_consistency(self):
        for transport in ("udp", "coap", "oscore"):
            for d in dissect_transport(transport):
                assert d.fragments == len(d.frame_sizes)
                assert d.fragmented == (d.fragments > 1)

    def test_shorter_names_fewer_fragments(self):
        long_ = {d.message: d for d in dissect_transport("oscore")}
        short = {
            d.message: d
            for d in dissect_transport("oscore", name="a.org")
        }
        assert short["query"].fragments <= long_["query"].fragments
        assert short["query"].udp_payload < long_["query"].udp_payload

    def test_post_same_size_as_fetch(self):
        fetch = {d.message: d for d in dissect_transport("coap", Code.FETCH)}
        post = {d.message: d for d in dissect_transport("coap", Code.POST)}
        assert fetch["query"].udp_payload == post["query"].udp_payload

    def test_handshake_dissection_transport_label(self):
        flights = dtls_handshake_dissections("CoAPSv1.2")
        assert all(d.transport == "CoAPSv1.2" for d in flights)
        assert all(d.dns_bytes == 0 for d in flights)


class TestBlockwiseDissection:
    def test_block_sizes_respected(self):
        for size in (16, 32, 64):
            for d in dissect_blockwise(size):
                if d.message.startswith("query [F/P]") or d.message.startswith("Response"):
                    assert d.dns_bytes <= size

    def test_continue_is_tiny(self):
        dissections = {d.message: d for d in dissect_blockwise(16)}
        assert dissections["2.31 Continue"].udp_payload < 16

    def test_get_immune_to_block_size(self):
        sizes = {
            size: {d.message: d for d in dissect_blockwise(size)}["query [G]"].udp_payload
            for size in (16, 32, 64)
        }
        assert len(set(sizes.values())) == 1

    def test_invalid_block_size_rejected(self):
        with pytest.raises(Exception):
            dissect_blockwise(48)

    def test_coaps_variant_carries_dtls_overhead(self):
        plain = {d.message: d for d in dissect_blockwise(32, transport="coap")}
        secured = {d.message: d for d in dissect_blockwise(32, transport="coaps")}
        for message in plain:
            assert secured[message].udp_payload == plain[message].udp_payload + 29

    def test_only_coaps_gets_dtls_record_overhead(self):
        """OSCORE's security overhead is COSE inside the message, not a
        DTLS record wrapper — block sizes must not inflate for it."""
        for dissection in dissect_blockwise(32, transport="oscore"):
            assert dissection.security_bytes == 0
