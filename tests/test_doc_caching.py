"""Tests for the DoH-like vs EOL-TTLs schemes (Section 4.2)."""

import pytest

from repro.dns import (
    AAAAData,
    DNSClass,
    Flags,
    Message,
    Question,
    RecordType,
    ResourceRecord,
)
from repro.doc.caching import (
    CachingScheme,
    compute_etag,
    prepare_response,
    restore_ttls,
)


def _response(ttls=(60, 30)):
    return Message(
        flags=Flags(qr=True),
        questions=(Question("example.org", RecordType.AAAA),),
        answers=tuple(
            ResourceRecord("example.org", RecordType.AAAA, DNSClass.IN, ttl,
                           AAAAData(f"2001:db8::{i + 1}"))
            for i, ttl in enumerate(ttls)
        ),
    )


class TestPrepareResponse:
    def test_max_age_is_min_ttl_both_schemes(self):
        for scheme in CachingScheme:
            prepared = prepare_response(_response((60, 30)), scheme)
            assert prepared.max_age == 30

    def test_eol_zeroes_ttls(self):
        prepared = prepare_response(_response(), CachingScheme.EOL_TTLS)
        decoded = Message.decode(prepared.payload)
        assert all(r.ttl == 0 for r in decoded.answers)

    def test_doh_like_keeps_ttls(self):
        prepared = prepare_response(_response((60, 30)), CachingScheme.DOH_LIKE)
        decoded = Message.decode(prepared.payload)
        assert [r.ttl for r in decoded.answers] == [60, 30]

    def test_eol_etag_stable_under_ttl_change(self):
        """The core EOL-TTLs property: TTL churn does not change the
        representation, so revalidation keeps working (Figure 3)."""
        a = prepare_response(_response((60, 30)), CachingScheme.EOL_TTLS)
        b = prepare_response(_response((17, 5)), CachingScheme.EOL_TTLS)
        assert a.etag == b.etag
        assert a.payload == b.payload
        assert a.max_age != b.max_age

    def test_doh_like_etag_changes_with_ttl(self):
        """...and the DoH-like failure mode: aged TTLs change the ETag."""
        a = prepare_response(_response((60, 30)), CachingScheme.DOH_LIKE)
        b = prepare_response(_response((17, 5)), CachingScheme.DOH_LIKE)
        assert a.etag != b.etag

    def test_etag_differs_for_different_rdata(self):
        other = Message(
            flags=Flags(qr=True),
            questions=(Question("example.org", RecordType.AAAA),),
            answers=(
                ResourceRecord("example.org", RecordType.AAAA, DNSClass.IN, 60,
                               AAAAData("2001:db8::99")),
            ),
        )
        a = prepare_response(_response(), CachingScheme.EOL_TTLS)
        b = prepare_response(other, CachingScheme.EOL_TTLS)
        assert a.etag != b.etag

    def test_negative_response_max_age_zero(self):
        empty = Message(flags=Flags(qr=True),
                        questions=(Question("nx.example.org"),))
        prepared = prepare_response(empty, CachingScheme.EOL_TTLS)
        assert prepared.max_age == 0

    def test_etag_length(self):
        assert len(compute_etag(b"payload")) == 8
        assert len(compute_etag(b"payload", length=4)) == 4


class TestRestoreTtls:
    def test_eol_restores_from_max_age(self):
        wire = prepare_response(_response((60, 30)), CachingScheme.EOL_TTLS)
        decoded = Message.decode(wire.payload)
        restored = restore_ttls(decoded, 25, CachingScheme.EOL_TTLS)
        assert all(r.ttl == 25 for r in restored.answers)

    def test_doh_like_caps_at_max_age(self):
        decoded = _response((60, 30))
        restored = restore_ttls(decoded, 12, CachingScheme.DOH_LIKE)
        # min TTL was 30; aged Max-Age 12 → all TTLs reduced by 18.
        assert [r.ttl for r in restored.answers] == [42, 12]

    def test_doh_like_no_change_when_max_age_not_lower(self):
        decoded = _response((60, 30))
        restored = restore_ttls(decoded, 30, CachingScheme.DOH_LIKE)
        assert [r.ttl for r in restored.answers] == [60, 30]

    def test_none_max_age_is_noop(self):
        decoded = _response()
        assert restore_ttls(decoded, None, CachingScheme.EOL_TTLS) == decoded

    def test_round_trip_preserves_relative_ttls(self):
        """EOL: server min-TTL → Max-Age → client TTL; the client sees
        the remaining lifetime, never more than the original."""
        original = _response((60, 30))
        prepared = prepare_response(original, CachingScheme.EOL_TTLS)
        aged_max_age = prepared.max_age - 10   # 10 s on a cache
        decoded = Message.decode(prepared.payload)
        restored = restore_ttls(decoded, aged_max_age, CachingScheme.EOL_TTLS)
        assert all(r.ttl == 20 for r in restored.answers)
