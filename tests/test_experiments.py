"""Experiment harness tests: dissections, metrics, resolution runs."""

import pytest

from repro.coap.codes import Code
from repro.experiments import (
    ExperimentConfig,
    FRAGMENTATION_LIMIT,
    canonical_messages,
    cdf,
    dissect_all,
    dissect_transport,
    percentile,
    quantiles,
    run_resolution_experiment,
    summary_stats,
)
from repro.experiments.metrics import fraction_below
from repro.experiments.packet_sizes import MEDIAN_NAME, dtls_handshake_dissections


class TestMetrics:
    def test_percentile_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_median_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_quantiles(self):
        q1, q2, q3 = quantiles(list(map(float, range(1, 101))))
        assert q1 == pytest.approx(25.75)
        assert q2 == pytest.approx(50.5)
        assert q3 == pytest.approx(75.25)

    def test_summary_stats_fields(self):
        stats = summary_stats([1.0, 2.0, 2.0, 3.0])
        assert stats["mode"] == 2.0
        assert stats["mean"] == 2.0
        assert stats["min"] == 1.0 and stats["max"] == 3.0

    def test_cdf_monotonic(self):
        points = cdf([3.0, 1.0, 2.0])
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_fraction_below(self):
        assert fraction_below([0.1, 0.2, 0.3, 5.0], 0.25) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            summary_stats([])


class TestCanonicalMessages:
    def test_median_name_is_24_chars(self):
        assert len(MEDIAN_NAME) == 24

    def test_dns_wire_sizes(self):
        """Query 42 B; A response 58 B; AAAA response 70 B — the sizes
        behind Figure 6 and the Section 7 compression claim."""
        messages = canonical_messages()
        assert len(messages["query"].encode()) == 42
        assert len(messages["response_a"].encode()) == 58
        assert len(messages["response_aaaa"].encode()) == 70

    def test_query_id_zero(self):
        assert canonical_messages()["query"].id == 0


class TestDissections:
    def test_fragmentation_pattern_matches_paper(self):
        """Section 5.4's grouping: (i) UDP A-record exchange entirely
        unfragmented; (ii) UDP AAAA / CoAP FETCH: query fits, response
        fragments; (iii) DTLS, CoAPS, OSCORE, GET: everything fragments."""
        udp = {d.message: d for d in dissect_transport("udp")}
        assert not udp["query"].fragmented
        assert not udp["response_a"].fragmented
        assert udp["response_aaaa"].fragmented

        coap = {d.message: d for d in dissect_transport("coap", Code.FETCH)}
        assert not coap["query"].fragmented
        assert coap["response_a"].fragmented

        for transport in ("dtls", "coaps", "oscore"):
            dissections = {d.message: d for d in dissect_transport(transport)}
            assert dissections["query"].fragmented, transport
            assert dissections["response_aaaa"].fragmented, transport

        get = {d.message: d for d in dissect_transport("coap", Code.GET)}
        assert get["query"].fragmented

    def test_get_base64_inflation(self):
        """GET inflates the query ≈1.5× over FETCH/POST (Section 5.3)."""
        fetch = {d.message: d for d in dissect_transport("coap", Code.FETCH)}
        get = {d.message: d for d in dissect_transport("coap", Code.GET)}
        ratio = get["query"].dns_bytes / fetch["query"].dns_bytes
        assert 1.3 <= ratio <= 1.6

    def test_oscore_overhead_below_dtls(self):
        """OSCORE's per-message security bytes < DTLS's 29-byte record
        overhead — why OSCORE wins Figure 6."""
        oscore = {d.message: d for d in dissect_transport("oscore")}
        coaps = {d.message: d for d in dissect_transport("coaps")}
        assert oscore["query"].security_bytes < coaps["query"].security_bytes
        assert (
            oscore["query"].udp_payload < coaps["query"].udp_payload
        )

    def test_echo_enlarges_oscore_query(self):
        plain = dissect_transport("oscore")[0]
        echo = dissect_transport("oscore", with_echo=True)[0]
        assert echo.udp_payload > plain.udp_payload

    def test_handshake_flight_count(self):
        flights = dtls_handshake_dissections()
        assert len(flights) == 10  # incl. both CCS and Finished pairs

    def test_frames_respect_pdu_limit(self):
        for transport, dissections in dissect_all().items():
            for dissection in dissections:
                for frame in dissection.frame_sizes:
                    assert frame <= FRAGMENTATION_LIMIT, (transport, dissection)

    def test_framing_bytes_positive(self):
        for dissection in dissect_transport("udp"):
            assert dissection.framing_bytes > 0

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            dissect_transport("tcp")


class TestResolutionHarness:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(transport="smtp")
        with pytest.raises(ValueError):
            ExperimentConfig(transport="udp", use_proxy=True)

    @pytest.mark.parametrize("transport", ["udp", "dtls", "coap", "coaps", "oscore"])
    def test_all_transports_resolve(self, transport):
        config = ExperimentConfig(
            transport=transport, num_queries=10, loss=0.05, seed=2
        )
        result = run_resolution_experiment(config)
        assert result.success_rate == 1.0
        assert len(result.resolution_times) == 10

    def test_queries_split_across_clients(self):
        config = ExperimentConfig(transport="coap", num_queries=10, seed=3)
        result = run_resolution_experiment(config)
        clients = {outcome.client for outcome in result.outcomes}
        assert clients == {"c1", "c2"}

    def test_proxy_reduces_bottleneck_frames(self):
        base = ExperimentConfig(
            transport="coap", num_queries=40, num_names=8,
            records_per_name=4, ttl=(2, 8), seed=4,
        )
        without = run_resolution_experiment(base)
        from dataclasses import replace

        with_proxy = run_resolution_experiment(replace(base, use_proxy=True))
        assert with_proxy.link.frames_1hop < without.link.frames_1hop

    def test_client_events_collected(self):
        config = ExperimentConfig(transport="coap", num_queries=5, seed=5)
        result = run_resolution_experiment(config)
        transmissions = [e for e in result.client_events if e.kind == "transmission"]
        assert len(transmissions) == 5

    def test_deterministic_runs(self):
        config = ExperimentConfig(transport="coap", num_queries=8, loss=0.1, seed=6)
        a = run_resolution_experiment(config)
        b = run_resolution_experiment(config)
        assert a.resolution_times == b.resolution_times
        assert a.link.bytes_1hop == b.link.bytes_1hop

    def test_losses_produce_retransmissions(self):
        config = ExperimentConfig(
            transport="coap", num_queries=30, loss=0.35, l2_retries=0, seed=7,
        )
        result = run_resolution_experiment(config)
        retransmissions = [
            e for e in result.client_events if e.kind == "retransmission"
        ]
        assert retransmissions
