"""End-to-end cache hierarchy and cache-placement sweep tests.

The Section 6.1 caching study in miniature: queries traverse
client DNS cache → client CoAP cache → forward-proxy cache → resolver,
and every location reports the unified per-location counters the
Figure 11 event analysis needs.
"""

import pytest

from repro.doc import CachingScheme
from repro.scenarios import (
    CachingSpec,
    Scenario,
    ScenarioError,
    ScenarioRunner,
    TopologySpec,
    WorkloadSpec,
)

#: Canonical label the "all" placement alias normalises to.
ALL = "client-dns+client-coap+proxy"


def _hierarchy_scenario(scheme, **overrides):
    """Two clients behind a caching proxy, short churning TTLs."""
    fields = dict(
        name="hierarchy",
        transport="coap",
        topology=TopologySpec(name="figure2", hops=2, clients=2, loss=0.0),
        workload=WorkloadSpec(
            num_queries=40, num_names=3, query_rate=4.0, ttl=(2, 8)
        ),
        scheme=scheme,
        use_proxy=True,
        caching=CachingSpec(client_dns=True, client_coap=True, proxy=True),
        seed=11,
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestCacheHierarchy:
    @pytest.fixture(scope="class")
    def results(self):
        runner = ScenarioRunner()
        return {
            scheme: runner.run(_hierarchy_scenario(scheme))
            for scheme in (CachingScheme.EOL_TTLS, CachingScheme.DOH_LIKE)
        }

    def test_all_locations_report(self, results):
        for result in results.values():
            assert set(result.cache_stats) == {
                "client-dns", "client-coap", "proxy", "resolver"
            }

    def test_lossless_run_resolves_everything(self, results):
        for result in results.values():
            assert result.success_rate == 1.0

    def test_client_dns_cache_absorbs_repeats(self, results):
        for result in results.values():
            dns = result.cache_stats["client-dns"]
            # 40 queries over 3 names: the vast majority are DNS hits.
            assert dns.hits > 20
            assert dns.hits + dns.misses == 40

    def test_proxy_shares_entries_across_clients(self, results):
        for result in results.values():
            assert result.cache_stats["proxy"].hits > 0

    def test_hierarchy_shields_the_resolver(self, results):
        for result in results.values():
            resolver = result.cache_stats["resolver"]
            # Only a handful of lookups survive three cache levels.
            assert resolver.lookups < 10

    def test_eol_ttls_revalidation_succeeds(self, results):
        stats = results[CachingScheme.EOL_TTLS].cache_stats
        # Stable representations: stale entries revive via 2.03 Valid
        # at both CoAP cache locations (Figure 3, step 4, EOL branch).
        assert stats["client-coap"].validations > 0
        assert stats["proxy"].validations > 0
        assert stats["client-coap"].validation_failures == 0
        assert stats["proxy"].validation_failures == 0

    def test_doh_like_revalidation_fails(self, results):
        stats = results[CachingScheme.DOH_LIKE].cache_stats
        # TTL churn changes the payload hash, so the origin never
        # confirms an ETag: stale hits happen, validations do not.
        assert stats["client-coap"].stale_hits > 0
        assert stats["client-coap"].validations == 0
        assert stats["proxy"].validations == 0

    def test_cache_ratios_shape(self, results):
        ratios = results[CachingScheme.EOL_TTLS].cache_ratios()
        assert set(ratios) == {
            "client-dns", "client-coap", "proxy", "resolver"
        }
        for location in ratios.values():
            assert 0.0 <= location["hit_ratio"] <= 1.0


class TestPlacementOff:
    def test_placement_none_disables_every_cache(self):
        scenario = _hierarchy_scenario(
            CachingScheme.EOL_TTLS,
            caching=CachingSpec.from_placement("none"),
        )
        result = ScenarioRunner().run(scenario)
        # Only the resolver cache remains (it is part of the resolver).
        assert set(result.cache_stats) == {"resolver"}
        assert result.proxy_cache_hits == 0

    def test_opaque_forwarder_still_forwards(self):
        scenario = _hierarchy_scenario(
            CachingScheme.EOL_TTLS,
            caching=CachingSpec.from_placement("none"),
        )
        result = ScenarioRunner().run(scenario)
        assert result.success_rate == 1.0

    def test_legacy_flags_still_place_caches(self):
        scenario = _hierarchy_scenario(
            CachingScheme.EOL_TTLS,
            caching=None,
            client_dns_cache=True,
            client_coap_cache=False,
        )
        result = ScenarioRunner().run(scenario)
        assert "client-dns" in result.cache_stats
        assert "client-coap" not in result.cache_stats
        assert "proxy" in result.cache_stats   # use_proxy implies caching


class TestCachingSpec:
    def test_placement_round_trip(self):
        for placement in ("none", "client-dns", "client-coap+proxy",
                          "client-dns+client-coap+proxy"):
            spec = CachingSpec.from_placement(placement)
            assert spec.placement_label() == placement

    def test_all_alias(self):
        spec = CachingSpec.from_placement("all")
        assert spec.placement_label() == "client-dns+client-coap+proxy"

    def test_unknown_token_rejected(self):
        with pytest.raises(ScenarioError):
            CachingSpec.from_placement("client-quic")

    def test_capacity_validation(self):
        with pytest.raises(ScenarioError):
            CachingSpec(proxy_capacity=0)

    def test_scheme_defers_to_scenario(self):
        scenario = Scenario(
            scheme=CachingScheme.DOH_LIKE,
            caching=CachingSpec(client_coap=True),
        )
        assert scenario.caching_spec.scheme is CachingScheme.DOH_LIKE

    def test_explicit_spec_scheme_wins(self):
        scenario = Scenario(
            scheme=CachingScheme.DOH_LIKE,
            caching=CachingSpec(scheme=CachingScheme.EOL_TTLS),
        )
        assert scenario.caching_spec.scheme is CachingScheme.EOL_TTLS

    def test_capacities_reach_the_caches(self):
        scenario = _hierarchy_scenario(
            CachingScheme.EOL_TTLS,
            caching=CachingSpec(
                client_dns=True, client_coap=True, proxy=True,
                client_dns_capacity=2, client_coap_capacity=2,
                proxy_capacity=2,
            ),
            workload=WorkloadSpec(
                num_queries=30, num_names=6, query_rate=4.0, ttl=(300, 300)
            ),
        )
        result = ScenarioRunner().run(scenario)
        # Six names through capacity-2 caches must displace entries.
        stats = result.cache_stats
        assert (
            stats["client-dns"].evictions
            + stats["client-coap"].evictions
            + stats["proxy"].evictions
        ) > 0


class TestCachePlacementSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        base = _hierarchy_scenario(CachingScheme.EOL_TTLS, use_proxy=False,
                                   caching=None)
        return ScenarioRunner().sweep(
            base=base,
            transports=("coap",),
            topologies=("figure2",),
            losses=(0.0,),
            cache_placements=("none", "client-coap", "all"),
            schemes=("doh-like", "eol-ttls"),
        )

    def test_full_grid(self, sweep):
        assert len(sweep) == 6

    def test_cell_addressing_includes_cache_axes(self, sweep):
        cell = sweep.cell("coap", "figure2", 0.0, ALL, "eol-ttls")
        assert cell.placement == ALL
        assert cell.scheme == "eol-ttls"
        assert cell.scenario.use_proxy   # placement turned the proxy on

    def test_metrics_carry_per_location_ratios(self, sweep):
        metrics = sweep.cell("coap", "figure2", 0.0, ALL, "eol-ttls").metrics()
        for key in ("client_dns_hit_ratio", "client_coap_validations",
                    "proxy_hits", "resolver_hits"):
            assert key in metrics
        none_metrics = sweep.cell(
            "coap", "figure2", 0.0, "none", "eol-ttls"
        ).metrics()
        assert "client_dns_hit_ratio" not in none_metrics

    def test_caching_reduces_bottleneck_traffic(self, sweep):
        cached = sweep.cell("coap", "figure2", 0.0, ALL, "eol-ttls")
        uncached = sweep.cell("coap", "figure2", 0.0, "none", "eol-ttls")
        assert (
            cached.metrics()["frames_1hop"]
            < uncached.metrics()["frames_1hop"]
        )

    def test_scheme_axis_changes_validation_behaviour(self, sweep):
        eol = sweep.cell("coap", "figure2", 0.0, ALL, "eol-ttls").metrics()
        doh = sweep.cell("coap", "figure2", 0.0, ALL, "doh-like").metrics()
        assert eol["client_coap_validations"] > doh["client_coap_validations"]

    def test_scheme_axis_overrides_explicit_spec_scheme(self):
        """A base whose CachingSpec pins a scheme must not shadow the
        swept scheme axis — each cell runs the scheme it is labeled
        with."""
        base = _hierarchy_scenario(
            CachingScheme.EOL_TTLS,
            caching=CachingSpec(
                client_coap=True, proxy=True, scheme=CachingScheme.EOL_TTLS
            ),
            use_proxy=False,
        )
        sweep = ScenarioRunner().sweep(
            base=base,
            transports=("coap",),
            topologies=("one-hop",),
            losses=(0.0,),
            cache_placements=("client-coap+proxy",),
            schemes=("doh-like", "eol-ttls"),
        )
        for cell in sweep:
            assert cell.scenario.caching_spec.scheme.value == cell.scheme

    def test_spec_parser_scheme_overrides_explicit_spec_scheme(self):
        from repro.scenarios import scenario_from_spec

        base = Scenario(caching=CachingSpec(scheme=CachingScheme.EOL_TTLS))
        scenario = scenario_from_spec("scheme=doh-like", base=base)
        assert scenario.caching_spec.scheme is CachingScheme.DOH_LIKE

    def test_proxy_placement_requires_coap_transport(self):
        with pytest.raises(ScenarioError):
            ScenarioRunner().sweep(
                transports=("udp",),
                topologies=("figure2",),
                losses=(0.0,),
                cache_placements=("proxy",),
            )

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioRunner().sweep(
                transports=("coap",),
                topologies=("figure2",),
                losses=(0.0,),
                schemes=("quic-like",),
            )

    def test_legacy_sweep_keys_unchanged(self):
        base = Scenario(workload=WorkloadSpec(num_queries=4, num_names=2))
        sweep = ScenarioRunner().sweep(
            base=base,
            transports=("coap",),
            topologies=("one-hop",),
            losses=(0.0,),
        )
        cell = sweep.cell("coap", "one-hop", 0.0)
        assert cell.key == ("coap", "one-hop", 0.0)
        assert cell.placement is None and cell.scheme is None


class TestSpecParser:
    def test_cache_key_places_and_enables_proxy(self):
        from repro.scenarios import scenario_from_spec

        scenario = scenario_from_spec("cache=client-coap+proxy")
        assert scenario.use_proxy
        spec = scenario.caching_spec
        assert spec.client_coap and spec.proxy and not spec.client_dns

    def test_cache_none_keeps_existing_proxy(self):
        from repro.scenarios import scenario_from_spec

        base = Scenario(use_proxy=True)
        scenario = scenario_from_spec("cache=none", base=base)
        assert scenario.use_proxy
        assert not scenario.caching_spec.proxy

    def test_scheme_key(self):
        from repro.scenarios import scenario_from_spec

        scenario = scenario_from_spec("scheme=doh-like")
        assert scenario.scheme is CachingScheme.DOH_LIKE
        assert scenario.caching_spec.scheme is CachingScheme.DOH_LIKE

    def test_bad_scheme_rejected(self):
        from repro.scenarios import scenario_from_spec

        with pytest.raises(ScenarioError):
            scenario_from_spec("scheme=quic-like")


class TestCliCacheFlags:
    def test_single_run_with_cache_flags(self, capsys):
        from repro.cli import main

        code = main([
            "experiment", "--scenario",
            "one-hop,queries=6,names=2,loss=0",
            "--cache-placement", "client-dns",
            "--cache-scheme", "doh-like",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "cache client-dns" in out

    def test_sweep_with_cache_axes(self, capsys):
        from repro.cli import main

        code = main([
            "experiment", "--sweep", "--transports", "coap",
            "--topologies", "one-hop", "--losses", "0",
            "--cache-placement", "none,client-coap",
            "--cache-scheme", "eol-ttls",
            "--queries", "6",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "client-coap" in out
        assert "scheme" in out

    def test_comma_list_requires_sweep(self, capsys):
        from repro.cli import main

        code = main([
            "experiment", "--cache-placement", "none,all",
        ])
        assert code == 2
        assert "--sweep" in capsys.readouterr().err

    def test_bad_placement_is_cli_error(self, capsys):
        from repro.cli import main

        code = main([
            "experiment", "--cache-placement", "client-quic",
        ])
        assert code == 2
