"""Tests for sharded multi-worker serving and distributed load.

Covers the pure pieces in-process (seed derivation, the latency
reservoir, stats merging, the burst-drain error path) and the process
machinery against real forked workers on loopback (SO_REUSEPORT
sharding, the single-worker fallback, worker-crash handling, the
sharded ``repro.api`` path). Worker-pool tests bind ephemeral ports
only and always drain or terminate their pools.
"""

from __future__ import annotations

import os
import random
import signal
import time

import pytest

from repro.experiments.metrics import percentile
from repro.live.reservoir import DEFAULT_RESERVOIR_CAPACITY, LatencyReservoir
from repro.live.transport import LiveUdpTransport
from repro.live.workers import (
    REUSEPORT_WARNING,
    ServePool,
    WorkerPoolError,
    derive_worker_seed,
    maybe_install_uvloop,
    merge_loadgen_reports,
    merge_server_stats,
    reuseport_supported,
    run_distributed_load,
    uvloop_available,
)

#: Hard wall-clock deadline for pool start/drain operations (seconds).
POOL_DEADLINE = 30.0


# -- deterministic per-worker seeds ----------------------------------------


def test_worker_seed_is_deterministic():
    assert derive_worker_seed(1, 0) == derive_worker_seed(1, 0)
    assert derive_worker_seed(42, 3) == derive_worker_seed(42, 3)


def test_worker_seeds_are_distinct_across_workers_and_bases():
    seeds = {
        derive_worker_seed(base, index)
        for base in (1, 2, 1001, 2001)
        for index in range(8)
    }
    assert len(seeds) == 4 * 8


def test_worker_seeds_do_not_collide_with_repeat_spacing():
    # RunSpec.repeat_seeds spaces repetitions 1000 apart; a derived
    # worker seed landing on another repeat's base would correlate two
    # supposedly independent streams.
    bases = {1 + repetition * 1000 for repetition in range(100)}
    derived = {
        derive_worker_seed(base, index)
        for base in bases
        for index in range(4)
    }
    assert not derived & bases


def test_worker_seed_is_64_bit():
    for index in range(16):
        assert 0 <= derive_worker_seed(7, index) < (1 << 64)


# -- the latency reservoir -------------------------------------------------


def test_reservoir_below_capacity_keeps_every_sample_in_order():
    reservoir = LatencyReservoir(capacity=100, seed=1)
    values = [random.Random(3).uniform(0.001, 0.2) for _ in range(50)]
    for value in values:
        reservoir.add(value)
    assert reservoir.samples == values
    assert not reservoir.saturated
    assert reservoir.count == 50


def test_reservoir_summary_matches_full_sort_below_capacity():
    rng = random.Random(11)
    values = [rng.expovariate(50.0) for _ in range(400)]
    reservoir = LatencyReservoir(capacity=DEFAULT_RESERVOIR_CAPACITY, seed=0)
    for value in values:
        reservoir.add(value)
    summary = reservoir.summary_ms()
    assert summary["p50"] == round(percentile(values, 50) * 1000, 3)
    assert summary["p95"] == round(percentile(values, 95) * 1000, 3)
    assert summary["p99"] == round(percentile(values, 99) * 1000, 3)
    assert summary["mean"] == round(sum(values) / len(values) * 1000, 3)
    assert summary["min"] == round(min(values) * 1000, 3)
    assert summary["max"] == round(max(values) * 1000, 3)


def test_reservoir_percentiles_track_exact_quantiles_when_saturated():
    # 20k exponential draws through a 2k reservoir: the estimates must
    # stay within a few percent of the exact sample quantiles (p99 gets
    # a wider band — the tail holds the fewest samples).
    rng = random.Random(1234)
    values = [rng.expovariate(10.0) for _ in range(20_000)]
    reservoir = LatencyReservoir(capacity=2048, seed=7)
    for value in values:
        reservoir.add(value)
    assert reservoir.saturated
    assert len(reservoir.samples) == 2048
    for q, tolerance in ((50, 0.10), (95, 0.10), (99, 0.15)):
        exact = percentile(values, q)
        estimate = reservoir.percentile(q)
        assert abs(estimate - exact) / exact < tolerance, (
            f"p{q}: estimate {estimate} vs exact {exact}"
        )
    # Mean/min/max stay exact regardless of saturation.
    assert reservoir.mean == pytest.approx(sum(values) / len(values))
    assert reservoir.minimum == min(values)
    assert reservoir.maximum == max(values)


def test_reservoir_memory_stays_bounded():
    reservoir = LatencyReservoir(capacity=64, seed=0)
    for index in range(10_000):
        reservoir.add(index * 1e-6)
        assert len(reservoir.samples) <= 64
    assert reservoir.count == 10_000


def test_reservoir_rejects_non_positive_capacity():
    with pytest.raises(ValueError):
        LatencyReservoir(capacity=0)


def test_reservoir_empty_summary_is_all_null():
    assert all(
        value is None
        for value in LatencyReservoir(capacity=8).summary_ms().values()
    )


# -- burst-drain error handling (satellite bugfix) -------------------------


class _ScriptedSocket:
    """A socket stub whose recvfrom plays back a scripted sequence."""

    def __init__(self, script):
        self._script = list(script)

    def recvfrom(self, _size):
        item = self._script.pop(0)
        if isinstance(item, Exception):
            raise item
        return item

    def fileno(self):
        return 99


def test_drain_ready_continues_past_connection_reset():
    transport = LiveUdpTransport()
    transport._batch_size = 8
    # An ICMP port-unreachable error queued from an earlier send lands
    # mid-batch; the datagrams behind it must still be drained.
    transport._sock = _ScriptedSocket([
        (b"one", ("127.0.0.1", 1111)),
        ConnectionResetError(111, "refused"),
        (b"two", ("127.0.0.1", 2222)),
        OSError(101, "unreachable"),
        (b"three", ("127.0.0.1", 3333)),
        BlockingIOError(),
    ])
    seen = []
    transport.on_datagram = lambda host, port, data, meta: seen.append(data)
    transport._drain_ready()
    assert seen == [b"one", b"two", b"three"]
    assert transport.datagrams_received == 3
    assert transport.recv_errors == 2
    assert transport.recv_bursts == 1
    assert transport.largest_burst == 3


def test_drain_ready_stops_when_socket_closed_mid_batch():
    transport = LiveUdpTransport()
    transport._batch_size = 8

    class _ClosingSocket(_ScriptedSocket):
        def fileno(self):
            return -1  # closed under the callback

    transport._sock = _ClosingSocket([
        (b"one", ("127.0.0.1", 1111)),
        OSError(9, "bad fd"),
        (b"never", ("127.0.0.1", 2222)),
    ])
    seen = []
    transport.on_datagram = lambda host, port, data, meta: seen.append(data)
    transport._drain_ready()
    assert seen == [b"one"]
    assert transport.recv_errors == 1


# -- capability detection --------------------------------------------------


def test_reuseport_probe_reports_a_bool():
    assert reuseport_supported() in (True, False)


def test_uvloop_detection_respects_opt_out(monkeypatch):
    monkeypatch.setenv("REPRO_NO_UVLOOP", "1")
    assert uvloop_available() is False
    assert maybe_install_uvloop() is False


def test_uvloop_absent_is_graceful(monkeypatch):
    # The container has no uvloop; without the opt-out the probe must
    # still answer False instead of raising.
    monkeypatch.delenv("REPRO_NO_UVLOOP", raising=False)
    assert maybe_install_uvloop() in (True, False)


def test_forced_unsupported_reuseport_falls_back_to_single_worker(
    monkeypatch,
):
    monkeypatch.setattr(
        "repro.live.workers.reuseport_supported", lambda host=None: False
    )
    pool = ServePool(workers=4, transport="udp", port=0, num_names=8)
    assert pool.workers == 1
    assert pool.requested_workers == 4
    assert pool.warning == REUSEPORT_WARNING
    pool.start()
    try:
        stats = pool.drain()
    finally:
        pool.terminate()
    assert stats["runtime"]["serve_workers"] == 1
    assert stats["runtime"]["warning"] == REUSEPORT_WARNING
    assert stats["workers_requested"] == 4
    assert pool.exit_code == 0


# -- stats merging (pure) --------------------------------------------------


def _fake_server_stats(worker, handled):
    return {
        "worker": worker,
        "transport": "udp",
        "endpoint": ["127.0.0.1", 5853],
        "names": 8,
        "queries_handled": handled,
        "datagrams_received": handled,
        "datagrams_sent": handled,
        "io": {
            "batched": True, "recv_bursts": handled, "largest_burst": 4,
            "recv_errors": 0, "send_buffer_drops": 0, "reuse_port": True,
            "mmsg": {"recvmmsg": False, "sendmmsg": False},
        },
        "resolver_cache": {"hits": handled - 1, "misses": 1,
                           "hit_ratio": 0.0},
    }


def test_merge_server_stats_sums_counters_and_keeps_workers():
    merged = merge_server_stats(
        [_fake_server_stats(0, 10), _fake_server_stats(1, 30)],
        requested=2,
    )
    assert merged["queries_handled"] == 40
    assert merged["datagrams_received"] == 40
    assert merged["io"]["recv_bursts"] == 40
    assert merged["io"]["largest_burst"] == 4
    assert merged["io"]["reuse_port"] is True
    assert merged["resolver_cache"]["hits"] == 38
    assert merged["resolver_cache"]["misses"] == 2
    assert merged["resolver_cache"]["hit_ratio"] == pytest.approx(38 / 40)
    assert [w["worker"] for w in merged["workers"]] == [0, 1]
    assert merged["runtime"]["serve_workers"] == 2
    assert merged["runtime"]["warning"] is None


def _fake_loadgen_report(worker, seed, queries, rtt_ms):
    return {
        "report_version": 2,
        "provenance": {},
        "mode": "open",
        "transport": "udp",
        "offered_rate_qps": 100.0,
        "concurrency": None,
        "duration_s": 1.0,
        "elapsed_s": 1.0,
        "queries": queries,
        "succeeded": queries,
        "failed": 0,
        "timeouts": 0,
        "rcode_failures": 0,
        "success_rate": 1.0,
        "achieved_qps": float(queries),
        "latency_ms": {
            "p50": rtt_ms, "p95": rtt_ms, "p99": rtt_ms,
            "mean": rtt_ms, "min": rtt_ms, "max": rtt_ms,
        },
        "cache": {},
        "workload": {"names": 8, "arrival": "poisson", "burst_on": 1.0,
                     "burst_off": 4.0, "zipf_alpha": None},
        "seed": seed,
        "latencies_ms": [rtt_ms] * queries,
        "worker": worker,
    }


def test_merge_loadgen_reports_sums_counters_and_throughput():
    merged = merge_loadgen_reports(
        [
            _fake_loadgen_report(0, 111, 40, 2.0),
            _fake_loadgen_report(1, 222, 60, 4.0),
        ],
        rate=100.0,
        seed=1,
    )
    assert merged["queries"] == 100
    assert merged["succeeded"] == 100
    # Aggregate throughput is the sum (workers ran concurrently)...
    assert merged["achieved_qps"] == pytest.approx(100.0)
    # ...and the mean pools exactly by success weight.
    assert merged["latency_ms"]["mean"] == pytest.approx(
        (40 * 2.0 + 60 * 4.0) / 100
    )
    assert merged["latency_ms"]["min"] == 2.0
    assert merged["latency_ms"]["max"] == 4.0
    assert merged["seed"] == 1
    assert len(merged["latencies_ms"]) == 100
    workers = merged["workers"]["load"]
    assert [w["worker"] for w in workers] == [0, 1]
    assert sum(w["queries"] for w in workers) == merged["queries"]


def test_merge_loadgen_reports_rejects_empty():
    with pytest.raises(WorkerPoolError):
        merge_loadgen_reports([])


# -- forked pools on loopback ----------------------------------------------


needs_reuseport = pytest.mark.skipif(
    not reuseport_supported(), reason="SO_REUSEPORT unavailable"
)


@needs_reuseport
def test_sharded_serve_and_distributed_load_counters_balance():
    pool = ServePool(workers=2, transport="udp", port=0, num_names=16)
    endpoint = pool.start()
    try:
        report = run_distributed_load(
            endpoint,
            transport="udp",
            rate=300.0,
            duration=0.5,
            workers=2,
            num_names=16,
            seed=5,
            timeout=5.0,
        )
        stats = pool.drain()
    finally:
        pool.terminate()
    assert report["failed"] == 0
    assert report["queries"] > 0
    # Per-worker load counters sum to the merged totals...
    load_workers = report["workers"]["load"]
    assert len(load_workers) == 2
    assert sum(w["queries"] for w in load_workers) == report["queries"]
    assert sum(w["succeeded"] for w in load_workers) == report["succeeded"]
    # ...and the serve side handled exactly what the load side issued.
    assert stats["queries_handled"] == report["succeeded"]
    assert sum(
        w.get("queries_handled", 0) for w in stats["workers"]
    ) == stats["queries_handled"]
    assert stats["runtime"]["reuseport"] is True
    assert pool.exit_code == 0


@needs_reuseport
def test_distributed_load_worker_seeds_derive_from_base():
    pool = ServePool(workers=1, transport="udp", port=0, num_names=8)
    endpoint = pool.start()
    try:
        report = run_distributed_load(
            endpoint, transport="udp", rate=120.0, duration=0.3,
            workers=2, num_names=8, seed=9, timeout=5.0,
        )
    finally:
        pool.drain()
        pool.terminate()
    seeds = [w["seed"] for w in report["workers"]["load"]]
    assert seeds == [derive_worker_seed(9, 0), derive_worker_seed(9, 1)]
    assert report["seed"] == 9


@needs_reuseport
def test_worker_crash_surfaces_in_exit_code_and_partial_stats():
    pool = ServePool(workers=2, transport="udp", port=0, num_names=8)
    pool.start()
    try:
        victim = pool.processes[1]
        os.kill(victim.pid, signal.SIGKILL)
        deadline = time.monotonic() + POOL_DEADLINE
        while victim.is_alive() and time.monotonic() < deadline:
            time.sleep(0.02)
        stats = pool.drain()
    finally:
        pool.terminate()
    assert pool.exit_code == 1
    assert pool.failed_workers == [1]
    assert stats["workers_failed"] == 1
    # The surviving worker's stats still merged (partial-stats contract).
    assert len(stats["workers"]) == 1
    assert stats["workers"][0]["worker"] == 0


def test_serve_pool_rejects_zero_workers():
    with pytest.raises(WorkerPoolError):
        ServePool(workers=0, transport="udp", port=0)


# -- the repro.api façade --------------------------------------------------


def test_runspec_parses_worker_keys():
    from repro.api import RunSpec

    spec = RunSpec.from_spec(
        "substrate=live,transport=udp,serve_workers=3,load_workers=2"
    )
    assert spec.live.serve_workers == 3
    assert spec.live.load_workers == 2
    assert spec.to_dict()["live"]["serve_workers"] == 3
    assert spec.to_dict()["live"]["load_workers"] == 2


def test_runspec_worker_defaults_stay_single():
    from repro.api import RunSpec

    spec = RunSpec.from_spec("substrate=live,transport=udp")
    assert spec.live.serve_workers == 1
    assert spec.live.load_workers == 1


def test_runspec_rejects_bad_worker_counts():
    from repro.api import ApiError, RunSpec

    with pytest.raises(ApiError):
        RunSpec.from_spec("substrate=live,transport=udp,serve_workers=0")
    with pytest.raises(ApiError):
        RunSpec.from_spec("substrate=live,transport=udp,load_workers=0")
    with pytest.raises(ApiError):
        # Sharding applies to the self-served pairing only.
        RunSpec.from_spec(
            "substrate=live,transport=udp,serve_workers=2,"
            "live-host=192.0.2.1"
        )


@needs_reuseport
def test_sharded_api_run_emits_worker_metrics_that_sum():
    from repro.api import run

    report = run(
        "substrate=live,transport=udp,serve_workers=2,load_workers=2,"
        "queries=60,rate=240,names=16"
    )
    metrics = report.metrics
    assert metrics["live.workers.load.count"] == 2
    assert metrics["live.workers.serve.count"] == 2
    assert metrics["live.workers.reuseport"] is True
    assert metrics["live.workers.warning"] is None
    load_sum = sum(
        value for key, value in metrics.items()
        if key.startswith("live.workers.load.") and key.endswith(".queries")
    )
    assert load_sum == metrics["queries.issued"]
    serve_sum = sum(
        value for key, value in metrics.items()
        if key.startswith("live.workers.serve.")
        and key.endswith(".queries_handled")
    )
    assert serve_sum == metrics["live.server.queries_handled"]


def test_single_worker_api_run_has_no_worker_metrics():
    from repro.api import run

    report = run(
        "substrate=live,transport=udp,queries=20,rate=200,names=8"
    )
    assert not any(
        key.startswith("live.workers.") for key in report.metrics
    )
