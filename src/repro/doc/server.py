"""The DoC server: DNS over CoAP resource endpoint (Section 4).

Maps CoAP requests to DNS resolution:

* FETCH/POST carry the DNS query (wire format or CBOR, per
  Content-Format) in the request body;
* GET carries it base64url-encoded in the ``dns`` URI query variable;
* responses carry the DNS response with Max-Age set to the minimum
  record TTL, an ETag over the payload, and — under the EOL-TTLs
  scheme — all TTLs rewritten to 0;
* a request bearing a still-valid ETag is answered with 2.03 Valid
  (cache revalidation), encoding the fresh TTL in Max-Age only.

With an OSCORE context the server answers protected requests
end-to-end, including the Echo round that initialises replay windows
(Figure 6 "session setup").
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cache import EvictionPolicy, KeyedCache, LookupState
from repro.coap.codes import Code
from repro.coap.endpoint import CoapServer
from repro.coap.message import CoapMessage
from repro.coap.options import ContentFormat, OptionNumber, encode_uint
from repro.coap.reliability import ReliabilityParams
from repro.coap.uri import base64url_decode
from repro.dns import Message, Question, RecursiveResolver
from repro.oscore import (
    OscoreError,
    SecurityContext,
    protect_response,
    unprotect_request,
)
from repro.oscore.cacheable import (
    protect_cacheable_response,
    unprotect_deterministic_request,
)
from repro.sim.clock import Clock

from . import cbor_format
from .caching import CachingScheme, prepare_response

DOC_RESOURCE = "/dns"


class DocServer:
    """A DNS-over-CoAP server bound to a CoAP server endpoint."""

    def __init__(
        self,
        sim: Clock,
        socket,
        resolver: RecursiveResolver,
        scheme: CachingScheme = CachingScheme.EOL_TTLS,
        resource: str = DOC_RESOURCE,
        oscore_context: Optional[SecurityContext] = None,
        deterministic_context: Optional[SecurityContext] = None,
        params: ReliabilityParams = ReliabilityParams(),
        upstream_delay: float = 0.0,
        sort_records: bool = False,
        fastpath_capacity: int = 0,
    ) -> None:
        self.sim = sim
        self.resolver = resolver
        self.scheme = scheme
        self.oscore_context = oscore_context
        self.deterministic_context = deterministic_context
        self.upstream_delay = upstream_delay
        self.sort_records = sort_records
        self.coap = CoapServer(sim, socket, params)
        self.coap.add_resource(resource, self._handle_plain)
        if oscore_context is not None or deterministic_context is not None:
            self.coap.default_handler = self._handle_oscore
        #: kids that have completed the Echo exchange.
        self._echo_done: Dict[bytes, bool] = {}
        self._echo_values: Dict[bytes, bytes] = {}
        self.queries_handled = 0
        self.validations_sent = 0
        # Fast-path response cache: canonical request identity →
        # prebuilt response template; only MID/token/Max-Age differ
        # between hits. Opt-in (capacity 0 disables) so simulation
        # results — which observe resolver-cache statistics — stay
        # bit-identical unless a scenario asks for it.
        self._fastpath: Optional[KeyedCache] = (
            KeyedCache(fastpath_capacity, policy=EvictionPolicy.LRU)
            if fastpath_capacity > 0
            else None
        )
        self.fastpath_hits = 0
        self.fastpath_misses = 0

    # -- plain CoAP -------------------------------------------------------------

    def _handle_plain(self, request: CoapMessage, respond, metadata: dict) -> None:
        response = self._process(request)
        metadata["response_kind"] = "response"
        if self.upstream_delay > 0:
            self.sim.schedule(self.upstream_delay, respond, response)
        else:
            respond(response)

    # -- OSCORE -----------------------------------------------------------------

    def _handle_oscore(self, outer: CoapMessage, respond, metadata: dict) -> None:
        # Cacheable OSCORE (deterministic) requests arrive with an
        # outer FETCH; regular OSCORE requests with an outer POST.
        if outer.code == Code.FETCH and self.deterministic_context is not None:
            self._handle_deterministic(outer, respond, metadata)
            return
        context = self.oscore_context
        if context is None:
            respond(outer.make_response(Code.BAD_REQUEST))
            return
        try:
            inner, binding = unprotect_request(context, outer)
        except OscoreError:
            respond(outer.make_response(Code.BAD_REQUEST))
            return

        if context.echo_required and not self._echo_done.get(binding.kid):
            echo_value = inner.option(OptionNumber.ECHO)
            expected = self._echo_values.get(binding.kid)
            if echo_value is not None and echo_value == expected:
                self._echo_done[binding.kid] = True
            else:
                challenge = bytes(
                    self.sim.rng.randrange(256) for _ in range(8)
                )
                self._echo_values[binding.kid] = challenge
                reject = inner.make_response(Code.UNAUTHORIZED).with_option(
                    OptionNumber.ECHO, challenge
                )
                respond(protect_response(context, reject, binding))
                return

        inner_response = self._process(inner)
        protected = protect_response(context, inner_response, binding)
        metadata["response_kind"] = "response"
        if self.upstream_delay > 0:
            self.sim.schedule(self.upstream_delay, respond, protected)
        else:
            respond(protected)

    def _handle_deterministic(
        self, outer: CoapMessage, respond, metadata: dict
    ) -> None:
        """Serve a cacheable-OSCORE request (no Echo: deterministic
        requests carry no replay window to initialise)."""
        context = self.deterministic_context
        assert context is not None
        try:
            inner, binding = unprotect_deterministic_request(context, outer)
        except OscoreError:
            respond(outer.make_response(Code.BAD_REQUEST))
            return
        inner_response = self._process(inner)
        protected = protect_cacheable_response(
            context, inner_response, binding,
            outer_max_age=inner_response.max_age,
        )
        metadata["response_kind"] = "response"
        if self.upstream_delay > 0:
            self.sim.schedule(self.upstream_delay, respond, protected)
        else:
            respond(protected)

    # -- common processing ---------------------------------------------------------

    def _extract_query(self, request: CoapMessage) -> Tuple[Message, int]:
        """Returns (dns_query, response_content_format)."""
        if request.code == Code.GET:
            for query_item in request.uri_queries:
                key, _, value = query_item.partition("=")
                if key == "dns":
                    wire = base64url_decode(value)
                    return Message.decode(wire), int(ContentFormat.DNS_MESSAGE)
            raise ValueError("GET without dns query variable")
        content_format = request.content_format
        if content_format == ContentFormat.DNS_CBOR:
            question = cbor_format.decode_query(request.payload)
            from repro.dns.message import Flags

            query = Message(
                id=0, flags=Flags(rd=True), questions=(question,)
            )
            return query, int(ContentFormat.DNS_CBOR)
        return Message.decode(request.payload), int(ContentFormat.DNS_MESSAGE)

    def _process(self, request: CoapMessage) -> CoapMessage:
        """Resolve one request, via the fast path when it is cache-hot.

        The fast path keys on the canonical request identity — method,
        options (including any validation ETags), and payload — and
        replays a prebuilt response template with only MID, token, and
        Max-Age patched in: a hot query never touches the resolver and
        never re-prepares its payload.
        """
        cache = self._fastpath
        if cache is None:
            return self._resolve(request)
        now = self.sim.now
        key = (int(request.code), request.options, request.payload)
        entry, state = cache.lookup(key, now)
        if state is LookupState.HIT:
            self.fastpath_hits += 1
            self.queries_handled += 1
            code, options, payload = entry.value
            if code is Code.VALID:
                self.validations_sent += 1
            base = request.make_response(code, payload=payload)
            remaining = encode_uint(entry.remaining(now))
            max_age_number = int(OptionNumber.MAX_AGE)
            patched = tuple(
                (number, remaining if number == max_age_number else value)
                for number, value in options
            )
            return CoapMessage(
                base.mtype, code, base.mid, base.token, patched, payload
            )
        self.fastpath_misses += 1
        response = self._resolve(request)
        max_age = response.max_age
        if response.code in (Code.CONTENT, Code.VALID) and max_age:
            cache.store(
                key,
                (response.code, response.options, response.payload),
                float(max_age),
                now,
            )
        return response

    def _resolve(self, request: CoapMessage) -> CoapMessage:
        if request.code not in (Code.FETCH, Code.GET, Code.POST):
            return request.make_response(Code.METHOD_NOT_ALLOWED)
        try:
            query, response_format = self._extract_query(request)
        except ValueError:
            return request.make_response(Code.BAD_REQUEST)

        self.queries_handled += 1
        dns_response = self.resolver.resolve(query, self.sim.now)
        if self.sort_records:
            from .loadbalance import sort_answers

            dns_response = sort_answers(dns_response)

        if response_format == int(ContentFormat.DNS_CBOR):
            payload = cbor_format.encode_response(dns_response)
            from .caching import compute_etag

            min_ttl = dns_response.min_ttl()
            max_age = min_ttl if min_ttl is not None else 0
            if self.scheme is CachingScheme.EOL_TTLS:
                payload = cbor_format.encode_response(dns_response.with_ttls(0))
            etag = compute_etag(payload)
            prepared_payload, prepared_max_age, prepared_etag = payload, max_age, etag
        else:
            prepared = prepare_response(dns_response, self.scheme)
            prepared_payload = prepared.payload
            prepared_max_age = prepared.max_age
            prepared_etag = prepared.etag

        # Cache validation: if the client (or proxy) presented the ETag
        # of the current representation, confirm with 2.03 Valid.
        if prepared_etag in request.etags:
            self.validations_sent += 1
            return (
                request.make_response(Code.VALID)
                .with_option(OptionNumber.ETAG, prepared_etag)
                .with_uint_option(OptionNumber.MAX_AGE, prepared_max_age)
            )

        return (
            request.make_response(Code.CONTENT, payload=prepared_payload)
            .with_uint_option(OptionNumber.CONTENT_FORMAT, response_format)
            .with_option(OptionNumber.ETAG, prepared_etag)
            .with_uint_option(OptionNumber.MAX_AGE, prepared_max_age)
        )
