"""DNS-SD service discovery over multicast DoC with Group OSCORE.

The paper's outlook (Section 8): "We will also focus on a DoC
integration for mDNS protected by Group OSCORE to enable service
discovery." This module builds that integration on the substrates of
this repository:

* a :class:`DnsSdResponder` on each service-hosting node joins the
  mDNS-style link-local multicast group and answers PTR/SRV/TXT/ANY
  queries for its registered services, after the randomised answer
  delay mDNS uses to desynchronise responders;
* a :class:`DnsSdClient` multicasts one DoC query (a DNS question in a
  CoAP NON request, protected with Group OSCORE) and aggregates the
  unicast responses arriving within a timeout window;
* all messages are encrypted and authenticated for the group — an
  eavesdropper on the radio learns neither the service names sought
  nor the instances offered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.coap.codes import Code
from repro.coap.message import CoapMessage, CoapMessageError, MessageType
from repro.coap.options import ContentFormat, OptionNumber
from repro.dns import Message, Question, RecordType, Zone, make_query
from repro.dns.message import Flags, ResourceRecord
from repro.oscore.group import (
    GroupContext,
    protect_group_request,
    protect_group_response,
    unprotect_group_request,
    unprotect_group_response,
)
from repro.oscore import OscoreError
from repro.sim.clock import Clock

#: Link-local "all DoC-SD nodes" group (mirrors mDNS's ff02::fb).
DNSSD_GROUP = "ff02::fb"
DNSSD_PORT = 5688

#: mDNS-style response jitter (RFC 6762 §6: 20-120 ms).
RESPONSE_DELAY_RANGE = (0.020, 0.120)


@dataclass
class ServiceInstance:
    """One advertised service instance (DNS-SD naming, RFC 6763)."""

    service: str          # e.g. "_coap._udp.local"
    instance: str         # e.g. "Kitchen Light._coap._udp.local"
    target: str           # host name, e.g. "light-1.local"
    port: int
    txt: Tuple[bytes, ...] = (b"",)

    def records(self, ttl: int = 120) -> List[ResourceRecord]:
        from repro.dns.rdata import PTRData, SRVData, TXTData

        return [
            ResourceRecord(
                self.service, RecordType.PTR, 1, ttl, PTRData(self.instance)
            ),
            ResourceRecord(
                self.instance, RecordType.SRV, 1, ttl,
                SRVData(0, 0, self.port, self.target),
            ),
            ResourceRecord(
                self.instance, RecordType.TXT, 1, ttl, TXTData(self.txt)
            ),
        ]


class DnsSdResponder:
    """A multicast DoC responder for locally registered services."""

    def __init__(
        self,
        sim: Clock,
        node,
        group_context: GroupContext,
        port: int = DNSSD_PORT,
    ) -> None:
        self.sim = sim
        self.node = node
        self.context = group_context
        self.services: List[ServiceInstance] = []
        node.join_group(DNSSD_GROUP)
        self.socket = node.bind(port)
        self.socket.on_datagram = self._on_datagram
        self.queries_answered = 0

    def register(self, instance: ServiceInstance) -> None:
        self.services.append(instance)

    def _matching_records(self, question: Question) -> List[ResourceRecord]:
        matches: List[ResourceRecord] = []
        for instance in self.services:
            for record in instance.records():
                name_matches = record.name.lower() == question.name.lower()
                type_matches = question.rtype in (RecordType.ANY, record.rtype)
                if name_matches and type_matches:
                    matches.append(record)
        return matches

    def _on_datagram(self, src_addr: str, src_port: int, data: bytes, metadata: dict) -> None:
        try:
            outer = CoapMessage.decode(data)
            inner, binding = unprotect_group_request(self.context, outer)
        except (CoapMessageError, OscoreError):
            return
        if inner.code != Code.FETCH:
            return
        try:
            query = Message.decode(inner.payload)
        except ValueError:
            return
        if not query.questions:
            return
        question = query.questions[0]
        answers = self._matching_records(question)
        if not answers:
            return  # mDNS-style: silence when there is nothing to say
        self.queries_answered += 1
        response = Message(
            id=0,
            flags=Flags(qr=True, aa=True),
            questions=(question,),
            answers=tuple(answers),
        )
        inner_response = inner.make_response(
            Code.CONTENT, payload=response.encode(), piggybacked=False
        ).with_uint_option(OptionNumber.CONTENT_FORMAT, int(ContentFormat.DNS_MESSAGE))
        protected = protect_group_response(self.context, inner_response, binding)
        delay = self.sim.rng.uniform(*RESPONSE_DELAY_RANGE)
        self.sim.schedule(
            delay,
            self.socket.sendto,
            protected.encode(),
            src_addr,
            src_port,
            {"kind": "dnssd-response"},
        )


@dataclass
class DiscoveryResult:
    """Aggregated outcome of one browse operation."""

    question: Question
    #: responder member ID -> answer records.
    answers: Dict[bytes, Tuple[ResourceRecord, ...]] = field(default_factory=dict)

    @property
    def instances(self) -> List[str]:
        """All discovered PTR targets (service instance names)."""
        from repro.dns.rdata import PTRData

        names = []
        for records in self.answers.values():
            for record in records:
                if isinstance(record.rdata, PTRData):
                    names.append(record.rdata.target)
        return sorted(set(names))


class DnsSdClient:
    """Browse services via one multicast query and a collect window."""

    def __init__(
        self,
        sim: Clock,
        node,
        group_context: GroupContext,
        port: int = DNSSD_PORT,
    ) -> None:
        self.sim = sim
        self.node = node
        self.context = group_context
        self.socket = node.bind(0)
        self.socket.on_datagram = self._on_datagram
        self._pending: Dict[bytes, Tuple[object, DiscoveryResult]] = {}
        self._next_token = sim.rng.randrange(1 << 32)

    def browse(
        self,
        service: str,
        on_done: Callable[[DiscoveryResult], None],
        rtype: int = RecordType.PTR,
        window: float = 0.5,
    ) -> None:
        """Multicast a query for *service*; *on_done* fires after the
        collect window with everything received."""
        question = Question(service, rtype)
        query = make_query(service, rtype, txid=0)
        token = self._next_token.to_bytes(4, "big")
        self._next_token = (self._next_token + 1) & 0xFFFFFFFF
        request = CoapMessage.request(
            Code.FETCH,
            "/dns",
            mtype=MessageType.NON,   # multicast must be non-confirmable
            mid=self.sim.rng.randrange(0x10000),
            token=token,
            payload=query.encode(),
            confirmable=False,
        ).with_uint_option(OptionNumber.CONTENT_FORMAT, int(ContentFormat.DNS_MESSAGE))
        protected, binding = protect_group_request(self.context, request)
        result = DiscoveryResult(question)
        self._pending[token] = (binding, result)
        self.socket.sendto(
            protected.encode(), DNSSD_GROUP, DNSSD_PORT,
            {"kind": "dnssd-query"},
        )
        self.sim.schedule(window, self._finish, token, on_done)

    def _finish(self, token: bytes, on_done) -> None:
        entry = self._pending.pop(token, None)
        if entry is not None:
            on_done(entry[1])

    def _on_datagram(self, src_addr: str, src_port: int, data: bytes, metadata: dict) -> None:
        try:
            outer = CoapMessage.decode(data)
        except CoapMessageError:
            return
        entry = self._pending.get(outer.token)
        if entry is None:
            return
        binding, result = entry
        try:
            inner, responder = unprotect_group_response(
                self.context, outer, binding
            )
        except OscoreError:
            return
        if not inner.code.is_success:
            return
        try:
            response = Message.decode(inner.payload)
        except ValueError:
            return
        result.answers[responder] = response.answers
