"""Feature registries behind the paper's Table 1 and Table 5.

These are not mere literals: the method properties of Table 5 are
asserted against the actual CoAP implementation in the test suite
(e.g. POST really is uncacheable in :mod:`repro.coap.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.coap.codes import BODY_METHODS, CACHEABLE_METHODS, Code


@dataclass(frozen=True)
class TransportFeatures:
    """One row group of Table 1 (a DNS transport's feature vector)."""

    name: str
    message_segmentation: bool
    message_authentication: bool
    message_encryption: bool
    format_multiplexing: bool
    shares_protocol_with_application: bool
    constrained_iot_suitable: bool
    secure_enroute_caching: bool


#: Table 1, column by column. The three CoAP-based columns are the
#: paper's contribution.
TABLE1: List[TransportFeatures] = [
    TransportFeatures("UDP", False, True, False, False, False, True, False),
    TransportFeatures("TCP", True, True, False, False, False, False, False),
    TransportFeatures("DTLS", False, True, True, False, False, True, False),
    TransportFeatures("TLS", True, True, True, False, False, False, False),
    TransportFeatures("QUIC", True, True, True, False, False, False, False),
    TransportFeatures("HTTPS", True, True, True, True, True, False, False),
    TransportFeatures("CoAP", True, True, False, True, True, True, False),
    TransportFeatures("CoAPS", True, True, True, True, True, True, False),
    TransportFeatures("OSCORE", True, True, True, True, True, True, True),
]


@dataclass(frozen=True)
class MethodFeatures:
    """One column of Table 5 (DoC request-method properties)."""

    method: Code
    cacheable: bool
    body_carried: bool
    blockwise_query: bool


def method_features(method: Code) -> MethodFeatures:
    """Derive the Table 5 feature row for *method* from the CoAP stack.

    GET carries the query in the URI (no body → no Block1); POST has a
    body but is not cacheable; FETCH has both properties.
    """
    body = method in BODY_METHODS
    return MethodFeatures(
        method=method,
        cacheable=method in CACHEABLE_METHODS,
        body_carried=body,
        blockwise_query=body,
    )


TABLE5: Dict[str, MethodFeatures] = {
    code.name: method_features(code)
    for code in (Code.GET, Code.POST, Code.FETCH)
}
