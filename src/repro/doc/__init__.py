"""DNS over CoAP (DoC) — the paper's primary contribution.

The protocol maps each DNS query/response pair onto a CoAP exchange
(Section 4): queries travel in FETCH/POST bodies or base64url-encoded
GET URIs; responses are CoAP payloads whose freshness is coupled to DNS
TTLs via the Max-Age option, with ETag-based revalidation. Security is
either transport-level (CoAPS/DTLS) or object-level (OSCORE), the
latter preserving end-to-end protection across proxies.

Public entry points:

* :class:`repro.doc.client.DocClient` / :class:`repro.doc.server.DocServer`;
* :mod:`repro.doc.caching` — the DoH-like and EOL-TTLs schemes;
* :mod:`repro.doc.cbor_format` — the Section 7 compressed format;
* :mod:`repro.doc.features` — the Table 1 / Table 5 registries.
"""

from .caching import CachingScheme, PreparedResponse, compute_etag, prepare_response, restore_ttls
from .integrity import MaxAgeIntegrityError, check_max_age_consistency
from .loadbalance import shuffle_answers, sort_answers, stable_representation
from .client import DocClient, DocError, DocResult
from .features import TABLE1, TABLE5, MethodFeatures, TransportFeatures, method_features
from .server import DocServer, DOC_RESOURCE

__all__ = [
    "CachingScheme",
    "MaxAgeIntegrityError",
    "check_max_age_consistency",
    "shuffle_answers",
    "sort_answers",
    "stable_representation",
    "DOC_RESOURCE",
    "DocClient",
    "DocError",
    "DocResult",
    "DocServer",
    "MethodFeatures",
    "PreparedResponse",
    "TABLE1",
    "TABLE5",
    "TransportFeatures",
    "compute_etag",
    "method_features",
    "prepare_response",
    "restore_ttls",
]
