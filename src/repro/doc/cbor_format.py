"""The compressed CBOR DNS message format of Section 7
(draft-lenders-dns-cbor).

Queries become a CBOR array of up to three entries::

    [name]                       — type defaults to AAAA, class to IN
    [name, type]                 — class defaults to IN
    [name, type, class]

Responses exploit the transactional context of CoAP: the question is
implied by the request, so a response is just the answer section — an
array of answer arrays. Each answer is::

    [ttl, rdata]                 — name and type inherited from the question
    [ttl, rdata, type]           — name inherited
    [name, ttl, rdata, type]     — fully explicit

where rdata is a byte string (the record's wire rdata). A response
that must carry its question (e.g. out-of-transaction use) is encoded
as a two-array wrapper ``[question, answers]``.

Section 7 reports the 70-byte wire-format AAAA response compressing to
24 bytes (−66%); ``benchmarks/test_sec7_cbor_compression.py`` checks
this against these codecs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.cborlib import dumps, loads
from repro.dns.enums import DNSClass, RecordType
from repro.dns.message import Flags, Message, Question, ResourceRecord
from repro.dns.rdata import decode_rdata


class CborFormatError(ValueError):
    """Raised on malformed CBOR DNS messages."""


def encode_query(question: Question) -> bytes:
    """Encode *question* as a CBOR query array with elision."""
    items: List[object] = [question.name]
    include_class = question.rclass != DNSClass.IN
    if include_class:
        items += [int(question.rtype), int(question.rclass)]
    elif question.rtype != RecordType.AAAA:
        items.append(int(question.rtype))
    return dumps(items)


def decode_query(data: bytes) -> Question:
    """Decode a CBOR query array back into a :class:`Question`."""
    items = loads(data)
    if not isinstance(items, list) or not 1 <= len(items) <= 3:
        raise CborFormatError("query must be an array of 1..3 items")
    if not isinstance(items[0], str):
        raise CborFormatError("query name must be a text string")
    name = items[0]
    rtype = items[1] if len(items) > 1 else int(RecordType.AAAA)
    rclass = items[2] if len(items) > 2 else int(DNSClass.IN)
    if not isinstance(rtype, int) or not isinstance(rclass, int):
        raise CborFormatError("type/class must be unsigned integers")
    return Question(name, RecordType.from_value(rtype), rclass)


def _encode_answer(record: ResourceRecord, question: Question) -> list:
    rdata = record.rdata.encode(None, 0)
    same_name = record.name.lower() == question.name.lower()
    same_type = int(record.rtype) == int(question.rtype)
    if same_name and same_type:
        return [record.ttl, rdata]
    if same_name:
        return [record.ttl, rdata, int(record.rtype)]
    return [record.name, record.ttl, rdata, int(record.rtype)]


def encode_response(
    response: Message,
    question: Optional[Question] = None,
    include_question: bool = False,
) -> bytes:
    """Encode the answer section of *response* as CBOR.

    The question defaults to the response's own question section; pass
    ``include_question=True`` for the self-contained two-array form.
    """
    if question is None:
        if not response.questions:
            raise CborFormatError("no question to elide against")
        question = response.questions[0]
    answers = [_encode_answer(record, question) for record in response.answers]
    if include_question:
        query_items = loads(encode_query(question))
        return dumps([query_items, answers])
    return dumps(answers)


def _decode_answer(item: list, question: Question) -> ResourceRecord:
    if not isinstance(item, list) or not 2 <= len(item) <= 4:
        raise CborFormatError("answer must be an array of 2..4 items")
    if isinstance(item[0], str):
        if len(item) != 4:
            raise CborFormatError("named answer must have 4 items")
        name, ttl, rdata, rtype = item
    elif len(item) == 2:
        name, (ttl, rdata), rtype = question.name, item, int(question.rtype)
    else:
        name, (ttl, rdata, rtype) = question.name, item
    if not isinstance(ttl, int) or not isinstance(rdata, bytes):
        raise CborFormatError("ttl must be uint, rdata must be bytes")
    decoded = decode_rdata(int(rtype), rdata, 0, len(rdata))
    return ResourceRecord(
        name, RecordType.from_value(int(rtype)), int(DNSClass.IN), ttl, decoded
    )


def decode_response(data: bytes, question: Optional[Question] = None) -> Message:
    """Decode a CBOR response; *question* supplies the elided context."""
    items = loads(data)
    if not isinstance(items, list):
        raise CborFormatError("response must be an array")
    if (
        len(items) == 2
        and isinstance(items[0], list)
        and items[0]
        and isinstance(items[0][0], str)
        and isinstance(items[1], list)
        and (not items[1] or isinstance(items[1][0], list))
    ):
        question = decode_query(dumps(items[0]))
        answers_items = items[1]
    else:
        answers_items = items
    if question is None:
        raise CborFormatError("question context required to decode response")
    answers = tuple(_decode_answer(item, question) for item in answers_items)
    return Message(
        id=0,
        flags=Flags(qr=True, ra=True),
        questions=(question,),
        answers=answers,
    )


def compression_ratio(wire: bytes, cbor: bytes) -> float:
    """Fractional size reduction of *cbor* relative to *wire*."""
    if not wire:
        raise ValueError("empty wire message")
    return 1.0 - len(cbor) / len(wire)
