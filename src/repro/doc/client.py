"""The DoC client: resolve names over CoAP (Section 4).

Supports the full design space the paper evaluates:

* methods FETCH (preferred), GET (base64url in the URI), POST;
* plain CoAP, CoAP over DTLS (pass a DTLS adapter as the socket), and
  OSCORE object security (pass an ``oscore_context``);
* an optional client-side CoAP cache with ETag revalidation and an
  optional client-side DNS cache (the caching levels of Section 6.1);
* TTL restoration from Max-Age per the configured caching scheme;
* block-wise transfer with a fixed block size (Appendix D);
* the OSCORE Echo round-trip on first contact with a guarded server;
* optionally the compressed CBOR format of Section 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.coap.cache import CoapCache
from repro.coap.codes import Code
from repro.coap.endpoint import CoapClient
from repro.coap.message import CoapMessage
from repro.coap.options import ContentFormat, OptionNumber
from repro.coap.reliability import ReliabilityParams
from repro.coap.uri import UriTemplate, base64url_encode
from repro.dns import DNSCache, Message, Question, RecordType, make_query
from repro.dns.resolver import ResolutionResult, StubResolver
from repro.oscore import (
    OscoreError,
    SecurityContext,
    protect_request,
    unprotect_response,
)
from repro.oscore.cacheable import protect_cacheable_request
from repro.sim.clock import Clock

from . import cbor_format
from .caching import CachingScheme, restore_ttls

DEFAULT_TEMPLATE = "/dns{?dns}"


class DocError(Exception):
    """Raised for DoC protocol failures."""


@dataclass
class DocResult:
    """Outcome of one DoC resolution."""

    question: Question
    addresses: List[str]
    response: Message
    resolution_time: float
    from_cache: bool = False


class DocClient:
    """A DNS-over-CoAP stub resolver."""

    def __init__(
        self,
        sim: Clock,
        socket,
        server: Tuple[str, int],
        method: Code = Code.FETCH,
        scheme: CachingScheme = CachingScheme.EOL_TTLS,
        content_format: ContentFormat = ContentFormat.DNS_MESSAGE,
        coap_cache: Optional[CoapCache] = None,
        dns_cache: Optional[DNSCache] = None,
        block_size: Optional[int] = None,
        oscore_context: Optional[SecurityContext] = None,
        cacheable_oscore: bool = False,
        verify_max_age: bool = False,
        shuffle_records: bool = False,
        uri_template: str = DEFAULT_TEMPLATE,
        params: ReliabilityParams = ReliabilityParams(),
    ) -> None:
        if method not in (Code.FETCH, Code.GET, Code.POST):
            raise DocError(f"unsupported DoC method {method!r}")
        if method == Code.GET and oscore_context is not None:
            # Matches the paper's implementation: "for OSCORE we use only
            # FETCH since our implementation does not support GET due to
            # its complexity" (Section 5.1).
            raise DocError("GET is not supported with OSCORE")
        self.sim = sim
        self.server = server
        self.method = method
        self.scheme = scheme
        self.content_format = content_format
        self.oscore_context = oscore_context
        self.cacheable_oscore = cacheable_oscore
        self.verify_max_age = verify_max_age
        self.shuffle_records = shuffle_records
        if cacheable_oscore and oscore_context is None:
            raise DocError("cacheable_oscore requires an OSCORE context")
        self.template = UriTemplate(uri_template)
        self.stub = StubResolver(dns_cache)
        self.coap = CoapClient(
            sim, socket, params=params, cache=coap_cache, block_size=block_size
        )
        self.resolutions_started = 0
        self.resolutions_completed = 0
        self.resolutions_failed = 0

    # -- public API ---------------------------------------------------------------

    def resolve(
        self,
        name: str,
        rtype: int = RecordType.AAAA,
        on_result: Callable[[Optional[DocResult], Optional[Exception]], None] = lambda *_: None,
    ) -> None:
        """Resolve *name*; ``on_result(result, error)`` fires exactly once."""
        self.resolutions_started += 1
        question = Question(name, rtype)
        started = self.sim.now

        cached = self.stub.cached_response(question, self.sim.now)
        if cached is not None:
            result = self._build_result(question, cached, started, from_cache=True)
            self.resolutions_completed += 1
            self.sim.schedule(0.0, on_result, result, None)
            return

        request = self._build_request(question)
        self._send(request, question, started, on_result, echo_retry_left=1)

    # -- request construction --------------------------------------------------------

    def _encode_query(self, question: Question) -> bytes:
        if self.content_format == ContentFormat.DNS_CBOR:
            return cbor_format.encode_query(question)
        # DNS ID 0 for a deterministic cache key (Section 4.2).
        return make_query(question.name, question.rtype, txid=0).encode()

    def _build_request(self, question: Question) -> CoapMessage:
        if self.method == Code.GET:
            wire = self._encode_query(question)
            segments, queries = self.template.split_expanded(
                dns=base64url_encode(wire)
            )
            message = CoapMessage.request(Code.GET)
            for segment in segments:
                message = message.with_option(
                    OptionNumber.URI_PATH, segment.encode()
                )
            for query_item in queries:
                message = message.with_option(
                    OptionNumber.URI_QUERY, query_item.encode()
                )
            return message

        payload = self._encode_query(question)
        message = CoapMessage.request(self.method, payload=payload)
        for segment in self.template.template.partition("{")[0].strip("/").split("/"):
            if segment:
                message = message.with_option(
                    OptionNumber.URI_PATH, segment.encode()
                )
        message = message.with_uint_option(
            OptionNumber.CONTENT_FORMAT, int(self.content_format)
        )
        message = message.with_uint_option(
            OptionNumber.ACCEPT, int(self.content_format)
        )
        return message

    # -- exchange ------------------------------------------------------------------

    def _send(
        self,
        request: CoapMessage,
        question: Question,
        started: float,
        on_result,
        echo_retry_left: int,
        echo_value: Optional[bytes] = None,
    ) -> None:
        binding = None
        outgoing = request
        if echo_value is not None:
            outgoing = outgoing.with_option(OptionNumber.ECHO, echo_value)
        if self.oscore_context is not None:
            if self.cacheable_oscore:
                outgoing, binding = protect_cacheable_request(
                    self.oscore_context, outgoing
                )
            else:
                outgoing, binding = protect_request(
                    self.oscore_context, outgoing
                )

        def on_response(coap_response: Optional[CoapMessage], error) -> None:
            if error is not None:
                self.resolutions_failed += 1
                on_result(None, error)
                return
            assert coap_response is not None
            outer_max_age = coap_response.max_age
            if binding is not None:
                try:
                    coap_response = unprotect_response(
                        self.oscore_context, coap_response, binding
                    )
                except OscoreError as exc:
                    self.resolutions_failed += 1
                    on_result(None, exc)
                    return
                # 4.01 + Echo: repeat the request with the Echo value.
                if coap_response.code == Code.UNAUTHORIZED and echo_retry_left > 0:
                    challenge = coap_response.option(OptionNumber.ECHO)
                    if challenge is not None:
                        self._send(
                            request, question, started, on_result,
                            echo_retry_left - 1, echo_value=challenge,
                        )
                        return
            if not coap_response.code.is_success:
                self.resolutions_failed += 1
                on_result(
                    None,
                    DocError(f"DoC error response {coap_response.code.dotted}"),
                )
                return
            max_age = coap_response.max_age
            if max_age is None:
                max_age = outer_max_age
            elif self.cacheable_oscore and outer_max_age is not None:
                # Cacheable OSCORE: proxies legitimately age the outer
                # Max-Age; the inner one is the (protected) original.
                # Never trust the outer value to *extend* lifetimes.
                max_age = min(outer_max_age, max_age)
            if self.verify_max_age and binding is not None:
                from .integrity import MaxAgeIntegrityError, check_max_age_consistency

                inner_max_age = coap_response.max_age
                try:
                    if self.scheme is CachingScheme.EOL_TTLS:
                        max_age = check_max_age_consistency(
                            self.scheme, outer_max_age, inner_max_age
                        ) if outer_max_age is not None else inner_max_age
                    else:
                        decoded = self._decode_response(
                            coap_response.payload, question, None
                        )
                        max_age = check_max_age_consistency(
                            self.scheme, outer_max_age or inner_max_age,
                            inner_max_age, decoded,
                        )
                except MaxAgeIntegrityError as exc:
                    self.resolutions_failed += 1
                    on_result(None, exc)
                    return
            try:
                dns_response = self._decode_response(
                    coap_response.payload, question, max_age
                )
            except ValueError as exc:
                self.resolutions_failed += 1
                on_result(None, exc)
                return
            if self.shuffle_records:
                from .loadbalance import shuffle_answers

                dns_response = shuffle_answers(dns_response, self.sim.rng)
            result = self._build_result(question, dns_response, started)
            self.resolutions_completed += 1
            on_result(result, None)

        self.coap.request(
            outgoing, self.server[0], self.server[1], on_response,
            metadata={"kind": "query", "response_kind": "response"},
        )

    def _decode_response(
        self, payload: bytes, question: Question, max_age: Optional[int]
    ) -> Message:
        if self.content_format == ContentFormat.DNS_CBOR:
            response = cbor_format.decode_response(payload, question)
        else:
            response = Message.decode(payload)
        return restore_ttls(response, max_age, self.scheme)

    def _build_result(
        self,
        question: Question,
        response: Message,
        started: float,
        from_cache: bool = False,
    ) -> DocResult:
        resolution: ResolutionResult = self.stub.handle_response(
            question, response, self.sim.now
        )
        return DocResult(
            question=question,
            addresses=resolution.addresses,
            response=response,
            resolution_time=self.sim.now - started,
            from_cache=from_cache,
        )
