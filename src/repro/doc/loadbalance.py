"""DNS load balancing vs. cache revalidation (Section 7, "How to
support DNS load balancing and cache re-validation?").

Resolvers rotate resource records for load balancing, which changes the
binary representation and therefore the naïve content-hash ETag. The
paper's remedy: **sort incoming records at the DoC server** (stable
representation → stable ETag) and **randomise records at the DoC
client** (restoring the load-balancing effect locally).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Tuple

from repro.dns.message import Message, ResourceRecord


def _record_sort_key(record: ResourceRecord) -> Tuple:
    return (
        record.name.lower(),
        int(record.rtype),
        int(record.rclass),
        record.rdata.encode(None, 0),
    )


def sort_answers(response: Message) -> Message:
    """Canonically order the answer section (DoC server side).

    TTLs are intentionally not part of the sort key so the ordering is
    stable under TTL churn, composing with the EOL-TTLs scheme.
    """
    return replace(
        response, answers=tuple(sorted(response.answers, key=_record_sort_key))
    )


def shuffle_answers(response: Message, rng: random.Random) -> Message:
    """Randomise the answer order (DoC client side).

    Applied after TTL restoration, this re-introduces the rotation the
    resolver would have performed, so applications that pick the first
    address still spread load.
    """
    answers = list(response.answers)
    rng.shuffle(answers)
    return replace(response, answers=tuple(answers))


def stable_representation(response: Message) -> bytes:
    """The bytes an ETag should be computed over: sorted answers."""
    return sort_answers(response).encode()
