"""TTL/Max-Age integrity protection (Section 7, "How to protect the
integrity of the DNS TTLs?").

The CoAP Max-Age option is rewritten by (potentially untrusted)
intermediaries, so a malicious proxy could *extend* record lifetimes by
inflating it. The paper proposes:

* **EOL TTLs** — the server additionally includes a second Max-Age
  value protected by OSCORE (here: the inner, encrypted Max-Age
  option); the client compares the unprotected outer value against the
  protected one and discards responses whose outer value exceeds it.
* **DoH-like** — the payload still carries the original TTLs, which
  bound the legitimate Max-Age; no extra option is needed.

Either way, an attacker can still *shorten* lifetimes (a pure
availability degradation the paper accepts).
"""

from __future__ import annotations

from typing import Optional

from repro.dns.message import Message

from .caching import CachingScheme


class MaxAgeIntegrityError(Exception):
    """Raised when the unprotected Max-Age fails the consistency check."""


def check_max_age_consistency(
    scheme: CachingScheme,
    outer_max_age: Optional[int],
    inner_max_age: Optional[int] = None,
    response: Optional[Message] = None,
) -> int:
    """Validate the unprotected Max-Age and return the value to trust.

    Parameters
    ----------
    scheme:
        The caching scheme in use.
    outer_max_age:
        The Max-Age as seen on the (unprotected) outer message, after
        any en-route aging.
    inner_max_age:
        The OSCORE-protected Max-Age (EOL TTLs mitigation).
    response:
        The decoded DNS response (DoH-like mitigation: its TTLs bound
        the legitimate value).

    Returns
    -------
    int
        The Max-Age to apply when restoring TTLs.

    Raises
    ------
    MaxAgeIntegrityError
        If the outer value would *extend* record lifetimes beyond what
        the protected information allows.
    """
    if outer_max_age is None:
        # Nothing unprotected to distrust; use the protected value.
        if inner_max_age is not None:
            return inner_max_age
        raise MaxAgeIntegrityError("no Max-Age available")

    if scheme is CachingScheme.EOL_TTLS:
        if inner_max_age is None:
            raise MaxAgeIntegrityError(
                "EOL TTLs requires a protected Max-Age for the check"
            )
        if outer_max_age > inner_max_age:
            raise MaxAgeIntegrityError(
                f"outer Max-Age {outer_max_age} exceeds protected "
                f"{inner_max_age} — lifetime extension attack"
            )
        return outer_max_age

    # DoH-like: the protected payload carries the original TTLs.
    if response is None:
        raise MaxAgeIntegrityError(
            "DoH-like check requires the decoded response"
        )
    min_ttl = response.min_ttl()
    if min_ttl is not None and outer_max_age > min_ttl:
        raise MaxAgeIntegrityError(
            f"outer Max-Age {outer_max_age} exceeds original TTL {min_ttl}"
        )
    return outer_max_age
