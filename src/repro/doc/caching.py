"""The two TTL↔Max-Age alignment schemes of Section 4.2.

* **DoH-like** (RFC 8484 §5.1 transplanted to CoAP): the server sets
  Max-Age to the minimum record TTL and leaves the DNS payload as-is.
  Because DNS caches age TTLs, the payload — and hence the ETag — keeps
  changing, so CoAP cache revalidation usually fails (Figure 3 step 4).
* **EOL TTLs** (the paper's improvement): the server additionally
  rewrites every TTL to 0, making equal record sets byte-identical.
  Clients restore TTLs from the (aged) Max-Age option; revalidation
  succeeds whenever only TTLs changed.

Both sides of the scheme live here: ``prepare_response`` (server) and
``restore_ttls`` (client).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dns.message import Message

#: Max-Age used for empty/negative responses (no TTLs to derive from).
NEGATIVE_MAX_AGE = 0


class CachingScheme(enum.Enum):
    """Server-side TTL handling (Section 4.2)."""

    DOH_LIKE = "doh-like"
    EOL_TTLS = "eol-ttls"


def compute_etag(payload: bytes, length: int = 8) -> bytes:
    """An entity-tag over the response payload (truncated SHA-256).

    A content hash is the "naïve ETag generation" Section 7 discusses;
    it is exactly what makes DoH-like revalidation fragile, since TTL
    churn changes the hash.
    """
    return hashlib.sha256(payload).digest()[:length]


@dataclass(frozen=True)
class PreparedResponse:
    """Server-side result: wire payload, Max-Age value, and ETag."""

    payload: bytes
    max_age: int
    etag: bytes


def prepare_response(
    response: Message, scheme: CachingScheme
) -> PreparedResponse:
    """Apply *scheme* to a resolver response (DoC server side)."""
    min_ttl = response.min_ttl()
    max_age = min_ttl if min_ttl is not None else NEGATIVE_MAX_AGE
    if scheme is CachingScheme.EOL_TTLS:
        response = response.with_ttls(0)
    payload = response.encode()
    return PreparedResponse(payload, max_age, compute_etag(payload))


def restore_ttls(
    response: Message, max_age: Optional[int], scheme: CachingScheme
) -> Message:
    """Recover record TTLs on the client from the CoAP Max-Age option."""
    if max_age is None:
        return response
    if scheme is CachingScheme.EOL_TTLS:
        # TTLs arrived as 0; Max-Age carries the remaining lifetime.
        return response.with_ttls(max_age)
    # DoH-like: cap TTLs at the aged Max-Age (RFC 8484 §5.1 behaviour).
    min_ttl = response.min_ttl()
    if min_ttl is None or min_ttl <= max_age:
        return response
    return response.adjust_ttls(max_age - min_ttl)
