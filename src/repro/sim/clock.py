"""The Clock/Scheduler protocol the protocol stack is written against.

Every layer of the sans-IO stack — CoAP endpoints, the DoC client and
server, the DTLS adapters, the DNS-over-UDP baseline — needs exactly
three things from its runtime: the current time, one-shot timers, and
a seeded random source. :class:`Clock` names that contract so the same
protocol code runs on two interchangeable substrates:

* :class:`repro.sim.core.Simulator` — virtual time, deterministic
  discrete-event execution (the reproduction's measurement harness);
* :class:`repro.live.clock.AsyncioClock` — wall-clock time on the
  asyncio event loop, driving real UDP sockets (:mod:`repro.live`).

The protocol is structural (:func:`typing.runtime_checkable`): the
``Simulator`` predates it and implements it bit-identically without
inheriting from anything here.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Protocol, runtime_checkable


@runtime_checkable
class Timer(Protocol):
    """A scheduled one-shot callback that can be revoked.

    :meth:`cancel` must be idempotent and must tolerate being called
    after the callback has fired (both :class:`repro.sim.core.Event`
    and :class:`asyncio.TimerHandle` already behave this way).
    """

    def cancel(self) -> None: ...


@runtime_checkable
class Clock(Protocol):
    """Time, timers, and randomness — the stack's runtime contract.

    Attributes
    ----------
    rng:
        The run-wide seeded :class:`random.Random`. All stochastic
        protocol behaviour (message IDs, tokens, back-off jitter, DTLS
        randoms) must draw from it so runs are replayable from the
        seed alone on either substrate.
    """

    rng: random.Random

    @property
    def now(self) -> float:
        """Current time in seconds (simulated or monotonic wall-clock)."""
        ...

    def schedule(self, delay: float, callback: Callable, *args: Any) -> Timer:
        """Run ``callback(*args)`` after *delay* seconds; returns a
        cancellable timer. Negative delays raise :class:`ValueError`."""
        ...

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> Timer:
        """Run ``callback(*args)`` at absolute *time* on this clock's
        axis; times in the past raise :class:`ValueError`."""
        ...
