"""Deterministic discrete-event loop.

A minimal scheduler in the style of SimPy's core but callback-based:
events are ``(time, sequence, callback)`` triples on a heap; equal
times fire in scheduling order, which keeps runs reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Iterable, List, Optional, Tuple


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "callback", "args", "cancelled", "fired", "_sim")

    def __init__(
        self, time: float, callback: Callable, args: tuple,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent; cancelling an
        already-fired event is a no-op)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._on_cancel()


class Simulator:
    """The event loop.

    Implements the :class:`repro.sim.clock.Clock` protocol (``now`` /
    ``schedule`` / ``schedule_at`` / ``rng``) on virtual time; the
    protocol stack built against it also runs unchanged on the
    wall-clock :class:`repro.live.clock.AsyncioClock`.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide RNG (`self.rng`); all stochastic
        behaviour (loss, back-off jitter, Poisson arrivals) must draw
        from it so runs are reproducible.
    """

    #: Compaction threshold: once the heap holds this many entries and
    #: more than half of them are cancelled, dead entries are purged so
    #: long parameter sweeps don't accumulate them.
    COMPACT_MIN_SIZE = 64

    def __init__(self, seed: int = 1) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._live = 0
        self._cancelled_in_heap = 0
        self.rng = random.Random(seed)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable, *args: Any) -> Event:
        """Run ``callback(*args)`` after *delay* seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Event(self._now + delay, callback, args, sim=self)
        heapq.heappush(self._heap, (event.time, next(self._sequence), event))
        self._live += 1
        return event

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute simulated *time*.

        Raises
        ------
        ValueError
            If *time* lies in the simulated past — mirroring
            :meth:`schedule`'s negative-delay error instead of silently
            clamping to "now", which used to mask scheduling bugs.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}: simulated time is already "
                f"{self._now}"
            )
        return self.schedule(time - self._now, callback, *args)

    def schedule_many(
        self, entries: Iterable[Tuple[float, Callable, tuple]]
    ) -> List[Event]:
        """Schedule a batch of ``(time, callback, args)`` absolute-time events.

        Appends every entry and restores the heap invariant with a
        single :func:`heapq.heapify` — O(n + m) instead of m pushes at
        O(log n) each, which is what large-fleet arrival schedules pay
        per run. Pop order is identical to the equivalent sequence of
        :meth:`schedule_at` calls: entries receive consecutive sequence
        numbers in iteration order and ``(time, sequence)`` keys are
        unique, so the heap's total order does not depend on how the
        entries were inserted.

        Raises
        ------
        ValueError
            If any entry's time lies in the simulated past (matching
            :meth:`schedule_at`); no event is scheduled in that case.
        """
        staged: List[Tuple[float, Callable, tuple]] = []
        for time, callback, args in entries:
            if time < self._now:
                raise ValueError(
                    f"cannot schedule at {time}: simulated time is already "
                    f"{self._now}"
                )
            staged.append((time, callback, args))
        events: List[Event] = []
        for time, callback, args in staged:
            event = Event(time, callback, args, sim=self)
            self._heap.append((time, next(self._sequence), event))
            events.append(event)
        self._live += len(events)
        heapq.heapify(self._heap)
        return events

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Process events until the heap is empty or *until* is reached."""
        processed = 0
        while self._heap:
            time = self._heap[0][0]
            if until is not None and time > until:
                self._now = until
                return
            self._now = time
            # Coalesce same-timestamp pops: drain every entry stamped
            # with this time in one inner loop, skipping the until
            # check and clock update the outer loop repeats per event.
            # Callbacks may push new events (or trigger compaction via
            # cancel), so the heap must be re-read through self._heap.
            while self._heap and self._heap[0][0] == time:
                _, _, event = heapq.heappop(self._heap)
                if event.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                self._live -= 1
                event.fired = True
                event.callback(*event.args)
                processed += 1
                if processed >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events — "
                        f"likely a loop"
                    )
        if until is not None:
            self._now = until

    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled events (O(1))."""
        return self._live

    def _on_cancel(self) -> None:
        self._live -= 1
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_SIZE
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._heap = [
                entry for entry in self._heap if not entry[2].cancelled
            ]
            heapq.heapify(self._heap)
            self._cancelled_in_heap = 0
