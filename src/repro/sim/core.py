"""Deterministic discrete-event loop.

A minimal scheduler in the style of SimPy's core but callback-based:
events are ``(time, sequence, callback)`` triples on a heap; equal
times fire in scheduling order, which keeps runs reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time: float, callback: Callable, args: tuple) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True


class Simulator:
    """The event loop.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide RNG (`self.rng`); all stochastic
        behaviour (loss, back-off jitter, Poisson arrivals) must draw
        from it so runs are reproducible.
    """

    def __init__(self, seed: int = 1) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self.rng = random.Random(seed)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable, *args: Any) -> Event:
        """Run ``callback(*args)`` after *delay* seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Event(self._now + delay, callback, args)
        heapq.heappush(self._heap, (event.time, next(self._sequence), event))
        return event

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute simulated *time*."""
        return self.schedule(max(0.0, time - self._now), callback, *args)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Process events until the heap is empty or *until* is reached."""
        processed = 0
        while self._heap:
            time, _, event = self._heap[0]
            if until is not None and time > until:
                self._now = until
                return
            heapq.heappop(self._heap)
            self._now = time
            if event.cancelled:
                continue
            event.callback(*event.args)
            processed += 1
            if processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events — likely a loop"
                )
        if until is not None:
            self._now = until

    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled events."""
        return sum(1 for _, _, e in self._heap if not e.cancelled)
