"""Discrete-event simulation substrate.

Replaces the paper's FIT IoT-LAB testbed: a deterministic event loop
(:mod:`repro.sim.core`), a shared-medium radio model with airtime,
loss, and link-layer retransmissions (:mod:`repro.sim.medium`), a
frame sniffer standing in for the testbed's ``sniffer_aggregator``
(:mod:`repro.sim.trace`), and a Poisson workload generator
(:mod:`repro.sim.workload`).
"""

from .clock import Clock, Timer
from .core import Event, Simulator
from .medium import RadioLink, RadioMedium
from .trace import FrameRecord, FrameTally, Sniffer
from .workload import (
    bursty_arrival_times,
    poisson_arrival_times,
    sample_zipf,
    sample_zipf_many,
    zipf_cumulative,
    zipf_weights,
)

__all__ = [
    "Clock",
    "Event",
    "FrameRecord",
    "FrameTally",
    "RadioLink",
    "RadioMedium",
    "Simulator",
    "Sniffer",
    "Timer",
    "bursty_arrival_times",
    "poisson_arrival_times",
    "sample_zipf",
    "sample_zipf_many",
    "zipf_cumulative",
    "zipf_weights",
]
