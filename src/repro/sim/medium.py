"""Radio medium model: airtime, shared channel, loss, L2 retransmissions.

IEEE 802.15.4 at 2.4 GHz transmits 250 kbit/s; a frame's airtime is its
PHY-level size (SHR+PHR preamble of 6 bytes plus the PDU) over that
rate. All nodes of one network share a channel: concurrent transmissions
are serialised (an idealised CSMA without collisions but with queueing
delay, which is what produces the congestion effects the paper sees with
small block sizes, Figure 15).

Per-hop delivery applies an i.i.d. loss probability; the MAC performs
automatic acknowledgments and up to ``l2_retries`` retransmissions
(Section 5.1: "the radio is configured to automatically handle link
layer retransmissions and acknowledgments").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .core import Simulator

#: 802.15.4 PHY: 4-byte preamble + 1-byte SFD + 1-byte PHR before the PDU.
PHY_OVERHEAD_BYTES = 6
#: 2.4 GHz O-QPSK data rate.
DEFAULT_BITRATE = 250_000
#: macAckWaitDuration-ish gap before a retry (seconds).
ACK_WAIT = 0.002
#: 802.15.4 immediate ACK frame: 5-byte PDU (+PHY overhead).
ACK_FRAME_BYTES = 5 + PHY_OVERHEAD_BYTES


@dataclass
class RadioLink:
    """Directed adjacency between two radio interfaces."""

    src: str
    dst: str
    loss: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0,1), got {self.loss}")


@dataclass
class _Transmission:
    src: str
    dst: str
    frame: bytes
    metadata: dict
    attempts_left: int


class RadioMedium:
    """A single shared radio channel connecting named interfaces.

    Interfaces register a receive callback; ``transmit`` queues a frame
    for serialised, lossy delivery to a neighbour. Frame events are
    reported to an optional observer (the sniffer).
    """

    def __init__(
        self,
        sim: Simulator,
        bitrate: int = DEFAULT_BITRATE,
        l2_retries: int = 3,
    ) -> None:
        self.sim = sim
        self.bitrate = bitrate
        self.l2_retries = l2_retries
        self._links: Dict[Tuple[str, str], RadioLink] = {}
        self._receivers: Dict[str, Callable[[str, bytes, dict], None]] = {}
        self._busy_until = 0.0
        self._observers: List[Callable] = []
        self.frames_sent = 0
        self.frames_lost = 0
        self.frames_dropped = 0

    # -- observers ------------------------------------------------------------

    def add_observer(self, observer: Callable) -> None:
        """Attach a frame observer; any number can coexist.

        Each observer is called as ``observer(time, src, dst, frame,
        metadata, lost)`` for every completed transmission. Attaching
        the same callable twice raises — it would double-count frames.
        """
        if observer in self._observers:
            raise ValueError("observer already attached")
        self._observers.append(observer)

    def remove_observer(self, observer: Callable) -> None:
        self._observers.remove(observer)

    @property
    def observer(self) -> Optional[Callable]:
        """Legacy single-observer view: the first attached observer."""
        return self._observers[0] if self._observers else None

    @observer.setter
    def observer(self, value: Optional[Callable]) -> None:
        # Legacy assignment semantics: replace whatever is attached
        # (``None`` detaches). New code should use add_observer so a
        # sniffer and another observer can coexist.
        self._observers = [] if value is None else [value]

    def _notify(
        self, src: str, dst: str, frame: bytes, metadata: dict, lost: bool
    ) -> None:
        for observer in self._observers:
            observer(self.sim.now, src, dst, frame, metadata, lost)

    # -- topology -------------------------------------------------------------

    def register(self, name: str, receive: Callable[[str, bytes, dict], None]) -> None:
        """Attach interface *name* with its frame-receive callback."""
        if name in self._receivers:
            raise ValueError(f"interface {name!r} already registered")
        self._receivers[name] = receive

    def connect(self, a: str, b: str, loss: float = 0.0) -> None:
        """Create a symmetric radio adjacency between *a* and *b*."""
        self._links[(a, b)] = RadioLink(a, b, loss)
        self._links[(b, a)] = RadioLink(b, a, loss)

    def neighbours(self, name: str) -> List[str]:
        return [dst for (src, dst) in self._links if src == name]

    # -- transmission ---------------------------------------------------------

    def airtime(self, frame_length: int) -> float:
        """Seconds the channel is occupied by one frame (+MAC ACK)."""
        data_bits = (frame_length + PHY_OVERHEAD_BYTES) * 8
        ack_bits = ACK_FRAME_BYTES * 8
        return (data_bits + ack_bits) / self.bitrate

    def broadcast(self, src: str, frame: bytes, metadata: dict) -> None:
        """One transmission heard by every neighbour of *src*.

        Broadcast frames are not acknowledged (IEEE 802.15.4 has no
        ACKs for broadcast), so there are no retries; each neighbour
        draws loss independently against its link.
        """
        neighbours = self.neighbours(src)
        if not neighbours:
            return
        start = max(self.sim.now, self._busy_until)
        duration = self.airtime(len(frame))
        self._busy_until = start + duration
        self.sim.schedule_at(
            self._busy_until, self._complete_broadcast, src, neighbours,
            frame, metadata,
        )

    def _complete_broadcast(
        self, src: str, neighbours, frame: bytes, metadata: dict
    ) -> None:
        self.frames_sent += 1
        any_lost = False
        for dst in neighbours:
            link = self._links[(src, dst)]
            lost = self.sim.rng.random() < link.loss
            if lost:
                any_lost = True
                continue
            receiver = self._receivers.get(dst)
            if receiver is not None:
                receiver(src, frame, metadata)
        self._notify(src, "*", frame, metadata, any_lost)
        if any_lost:
            self.frames_lost += 1

    def transmit(self, src: str, dst: str, frame: bytes, metadata: dict) -> None:
        """Queue *frame* from *src* to its neighbour *dst*."""
        link = self._links.get((src, dst))
        if link is None:
            raise ValueError(f"no radio link {src!r} -> {dst!r}")
        transmission = _Transmission(
            src, dst, frame, metadata, attempts_left=self.l2_retries + 1
        )
        self._schedule_attempt(transmission, link)

    def _schedule_attempt(self, transmission: _Transmission, link: RadioLink) -> None:
        start = max(self.sim.now, self._busy_until)
        duration = self.airtime(len(transmission.frame))
        self._busy_until = start + duration
        self.sim.schedule_at(
            self._busy_until, self._complete_attempt, transmission, link
        )

    def _complete_attempt(self, transmission: _Transmission, link: RadioLink) -> None:
        self.frames_sent += 1
        lost = self.sim.rng.random() < link.loss
        self._notify(
            transmission.src,
            transmission.dst,
            transmission.frame,
            transmission.metadata,
            lost,
        )
        if not lost:
            receiver = self._receivers.get(transmission.dst)
            if receiver is not None:
                receiver(transmission.src, transmission.frame, transmission.metadata)
            return
        self.frames_lost += 1
        transmission.attempts_left -= 1
        if transmission.attempts_left > 0:
            self.sim.schedule(
                ACK_WAIT, self._schedule_attempt, transmission, link
            )
        else:
            self.frames_dropped += 1
