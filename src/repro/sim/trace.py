"""Frame capture, the stand-in for IoT-LAB's ``sniffer_aggregator``.

Every 802.15.4 frame on the medium is recorded with its timestamp,
link endpoints, length, and the layer annotations attached by the
sending stack. Figure 10's link-utilisation bars and Figure 6/14's
dissections are computed from these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .medium import RadioMedium


@dataclass(frozen=True)
class FrameRecord:
    """One captured frame."""

    time: float
    src: str
    dst: str
    length: int
    #: Sender-attached annotations, e.g. {"kind": "query", "layers": {...}}.
    metadata: dict
    lost: bool

    @property
    def kind(self) -> str:
        return self.metadata.get("kind", "unknown")


class Sniffer:
    """Attaches to a :class:`RadioMedium` and records every frame.

    Registers via :meth:`RadioMedium.add_observer`, so a sniffer and
    any other observer (a spy, a second sniffer) coexist instead of
    silently clobbering each other.
    """

    def __init__(self, medium: RadioMedium) -> None:
        self.records: List[FrameRecord] = []
        medium.add_observer(self._observe)

    def _observe(
        self, time: float, src: str, dst: str, frame: bytes, metadata: dict, lost: bool
    ) -> None:
        self.records.append(
            FrameRecord(time, src, dst, len(frame), dict(metadata), lost)
        )

    # -- aggregations ----------------------------------------------------------

    def frames_on_link(self, a: str, b: str) -> List[FrameRecord]:
        """Frames in either direction between *a* and *b*."""
        return [
            r
            for r in self.records
            if (r.src == a and r.dst == b) or (r.src == b and r.dst == a)
        ]

    def bytes_on_link(self, a: str, b: str) -> int:
        return sum(r.length for r in self.frames_on_link(a, b))

    def frame_count(self, a: str, b: str) -> int:
        return len(self.frames_on_link(a, b))

    def by_kind(self) -> Dict[str, int]:
        """Frame counts per annotated kind (query/response/...)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def max_frame(self, kind: Optional[str] = None) -> int:
        """Largest frame length, optionally filtered by kind."""
        lengths = [
            r.length for r in self.records if kind is None or r.kind == kind
        ]
        return max(lengths) if lengths else 0

    def clear(self) -> None:
        self.records.clear()


class FrameTally:
    """Aggregated frame counters without per-frame records.

    A drop-in for :class:`Sniffer` wherever only aggregate views are
    read (per-link frame/byte counts, per-kind totals, maximum frame
    size). It allocates nothing per frame — no :class:`FrameRecord`,
    no metadata copy — which is why scenario sweeps attach it instead
    of a full sniffer: sweep metrics never read individual records.
    """

    __slots__ = ("_links", "_kinds", "_max_by_kind")

    def __init__(self, medium: RadioMedium) -> None:
        #: (src, dst) -> [frames, bytes]
        self._links: Dict[tuple, list] = {}
        #: kind -> frame count
        self._kinds: Dict[str, int] = {}
        #: kind -> largest frame length
        self._max_by_kind: Dict[str, int] = {}
        medium.add_observer(self._observe)

    def _observe(
        self, time: float, src: str, dst: str, frame: bytes, metadata: dict, lost: bool
    ) -> None:
        length = len(frame)
        entry = self._links.get((src, dst))
        if entry is None:
            entry = self._links[(src, dst)] = [0, 0]
        entry[0] += 1
        entry[1] += length
        kind = metadata.get("kind", "unknown")
        self._kinds[kind] = self._kinds.get(kind, 0) + 1
        if length > self._max_by_kind.get(kind, 0):
            self._max_by_kind[kind] = length

    # -- aggregations (the Sniffer views that need no records) -------------

    def frame_count(self, a: str, b: str) -> int:
        """Frames in either direction between *a* and *b*."""
        return (
            self._links.get((a, b), (0, 0))[0]
            + self._links.get((b, a), (0, 0))[0]
        )

    def bytes_on_link(self, a: str, b: str) -> int:
        return (
            self._links.get((a, b), (0, 0))[1]
            + self._links.get((b, a), (0, 0))[1]
        )

    def by_kind(self) -> Dict[str, int]:
        """Frame counts per annotated kind (query/response/...)."""
        return dict(self._kinds)

    def max_frame(self, kind: Optional[str] = None) -> int:
        """Largest frame length, optionally filtered by kind."""
        if kind is not None:
            return self._max_by_kind.get(kind, 0)
        return max(self._max_by_kind.values(), default=0)

    def clear(self) -> None:
        self._links.clear()
        self._kinds.clear()
        self._max_by_kind.clear()
