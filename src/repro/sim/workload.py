"""Workload generation: the paper's Poisson query process.

Section 5.1: "The query rate is Poisson-distributed with λ = 5
queries/s" across the clients, for 50 names per run.
"""

from __future__ import annotations

import random
from typing import List


def poisson_arrival_times(
    rng: random.Random, rate: float, count: int, start: float = 0.0
) -> List[float]:
    """*count* arrival times of a Poisson process with *rate* events/s.

    Inter-arrival gaps are exponential with mean ``1/rate``.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    times = []
    current = start
    for _ in range(count):
        current += rng.expovariate(rate)
        times.append(current)
    return times
