"""Workload generation: arrival processes and name popularity.

Section 5.1: "The query rate is Poisson-distributed with λ = 5
queries/s" across the clients, for 50 names per run. Beyond that
baseline this module provides the scenario-diversity knobs shared by
the simulated sweeps and the live load generator
(:mod:`repro.live.loadgen`):

* :func:`bursty_arrival_times` — an on/off modulated Poisson process
  (exponential arrivals during ON periods, silence during OFF), the
  classic model for duty-cycled sensor traffic;
* :func:`zipf_weights` / :func:`sample_zipf` — Zipf(α) name
  popularity, the standard skew of real DNS workloads (a few hot
  names, a long cold tail).
"""

from __future__ import annotations

import random
from bisect import bisect
from functools import lru_cache
from itertools import accumulate
from typing import List, Sequence, Tuple


def poisson_arrival_times(
    rng: random.Random, rate: float, count: int, start: float = 0.0
) -> List[float]:
    """*count* arrival times of a Poisson process with *rate* events/s.

    Inter-arrival gaps are exponential with mean ``1/rate``.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    times = []
    current = start
    for _ in range(count):
        current += rng.expovariate(rate)
        times.append(current)
    return times


def bursty_arrival_times(
    rng: random.Random,
    rate: float,
    count: int,
    on_duration: float,
    off_duration: float,
    start: float = 0.0,
) -> List[float]:
    """*count* arrivals of an on/off modulated Poisson process.

    Time alternates between ON windows of *on_duration* seconds and
    OFF windows of *off_duration* seconds (the first window starts ON
    at *start*). During ON windows arrivals are Poisson with an
    elevated rate of ``rate * (on + off) / on`` so the long-run average
    rate stays *rate* — the same offered load as the steady process,
    concentrated into bursts. OFF windows produce no arrivals.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    if on_duration <= 0:
        raise ValueError("on_duration must be positive")
    if off_duration < 0:
        raise ValueError("off_duration must be non-negative")
    period = on_duration + off_duration
    on_rate = rate * period / on_duration
    times: List[float] = []
    current = start
    while len(times) < count:
        current += rng.expovariate(on_rate)
        # Fold the candidate into the ON portion of its period: any
        # arrival landing inside an OFF window is deferred past it.
        offset = (current - start) % period
        if offset >= on_duration:
            current += period - offset
            continue
        times.append(current)
    return times


def zipf_weights(count: int, alpha: float) -> List[float]:
    """Unnormalised Zipf(α) weights for ranks ``1..count``.

    Rank *k* gets weight ``k ** -alpha``; ``alpha = 0`` degenerates to
    the uniform distribution. Typical DNS popularity skews sit around
    ``alpha ≈ 0.9–1.1``.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if alpha < 0:
        raise ValueError("alpha must be >= 0")
    return [(k + 1) ** -alpha for k in range(count)]


def sample_zipf(rng: random.Random, weights: Sequence[float]) -> int:
    """One rank index (0-based) drawn from precomputed Zipf weights."""
    return rng.choices(range(len(weights)), weights=weights, k=1)[0]


@lru_cache(maxsize=256)
def zipf_cumulative(count: int, alpha: float) -> Tuple[float, ...]:
    """Cached cumulative Zipf(α) weights for ranks ``1..count``.

    The shared inversion table behind every Zipf draw in the repo:
    :meth:`repro.scenarios.WorkloadSpec.draw_name_index` (sim and live
    loadgen) and the fleet engine's bulk draws all bisect this array,
    so the popularity stream is identical across substrates. Cached on
    ``(count, alpha)`` because sweeps re-derive it per cell.
    """
    return tuple(accumulate(zipf_weights(count, alpha)))


def sample_zipf_many(
    rng: random.Random, cumulative: Sequence[float], n: int
) -> List[int]:
    """*n* rank indices (0-based) drawn from a cumulative-weight table.

    *cumulative* is a :func:`zipf_cumulative` table (any non-decreasing
    positive cumulative weights work). Consumes exactly one
    ``rng.random()`` per draw via the same scaled-uniform bisection as
    ``random.Random.choices`` — the stream contract: a bulk call of
    size *n* advances the RNG identically to *n* single draws through
    :func:`sample_zipf` or ``draw_name_index``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    total = cumulative[-1] + 0.0
    hi = len(cumulative) - 1
    random_ = rng.random
    return [bisect(cumulative, random_() * total, 0, hi) for _ in range(n)]
