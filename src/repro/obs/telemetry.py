"""Per-second telemetry: registry snapshots diffed into a time series.

A :class:`TelemetrySampler` polls a :class:`~repro.obs.metrics.
MetricsRegistry` (or any callable returning a snapshot dict — how the
pool parent feeds merged worker snapshots) once per interval and
diffs consecutive snapshots into compact NDJSON-ready records::

    {"t": 3.0, "interval_s": 1.0, "queries": 512, "succeeded": 508,
     "failed": 4, "timeouts": 1, "qps": 508.0,
     "latency_ms": {"p50": 0.4, "p99": 2.1, "mean": 0.6}}

``t`` is seconds since the sampler started; counts are *deltas over
the interval*, not cumulative totals, so a snapshot line reads as
"what happened in the last second". Interval quantiles come from the
shared log-spaced histogram buckets (linear interpolation within the
winning bucket) — estimates, but consistent between live scrapes,
streamed lines, and the Report's ``telemetry`` block.

The same vocabulary covers simulation: :func:`timeline_from_outcomes`
buckets a finished sim run's per-query outcomes by completion second,
so ``repro run`` reports carry the identical block either substrate.
"""

from __future__ import annotations

import asyncio
import time
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Union,
)

from .metrics import MetricsRegistry

__all__ = [
    "SNAPSHOT_SCHEMA",
    "QUERIES_TOTAL",
    "RESPONSES_TOTAL",
    "LATENCY_SECONDS",
    "TelemetrySampler",
    "run_sampler",
    "merge_timelines",
    "timeline_from_outcomes",
    "format_snapshot",
    "validate_snapshot",
]

#: Canonical instrument names the sampler reads. Loadgen, server, and
#: sim all publish through these so one sampler serves every layer.
QUERIES_TOTAL = "repro_queries_total"
RESPONSES_TOTAL = "repro_responses_total"
LATENCY_SECONDS = "repro_latency_seconds"

#: Maximum timeline length carried inside a Report — long runs keep
#: the first N intervals rather than ballooning the artifact.
MAX_TIMELINE_SNAPSHOTS = 600

#: JSON-Schema (the :mod:`repro.api.schema` subset) for one snapshot
#: line. ``tests/report_schema.json`` embeds the same definition as
#: ``$defs/telemetry_snapshot``; a test asserts the two stay in sync.
SNAPSHOT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "t", "interval_s", "queries", "succeeded", "failed",
        "timeouts", "qps", "latency_ms",
    ],
    "additionalProperties": False,
    "properties": {
        "t": {"type": "number", "minimum": 0},
        "interval_s": {"type": "number", "minimum": 0},
        "queries": {"type": "integer", "minimum": 0},
        "succeeded": {"type": "integer", "minimum": 0},
        "failed": {"type": "integer", "minimum": 0},
        "timeouts": {"type": "integer", "minimum": 0},
        "qps": {"type": "number", "minimum": 0},
        "latency_ms": {
            "type": "object",
            "required": ["p50", "p99", "mean"],
            "additionalProperties": False,
            "properties": {
                "p50": {"type": ["number", "null"]},
                "p99": {"type": ["number", "null"]},
                "mean": {"type": ["number", "null"]},
            },
        },
    },
}

SnapshotSource = Union[MetricsRegistry, Callable[[], Dict[str, object]]]


def _series_total(
    snapshot: Dict[str, object], family: str, **want: str
) -> int:
    """Sum a counter family's samples matching the *want* labels."""
    entry = snapshot.get(family)
    if entry is None:
        return 0
    total = 0
    for labels, value in entry["samples"]:
        if all(labels.get(k) == v for k, v in want.items()):
            total += value
    return int(total)


def _histogram_state(
    snapshot: Dict[str, object], family: str
) -> Optional[Dict[str, object]]:
    """Collapse a histogram family's samples into one (counts, sum)."""
    entry = snapshot.get(family)
    if entry is None or entry.get("kind") != "histogram":
        return None
    bounds = entry.get("buckets", [])
    counts: Optional[List[int]] = None
    total = 0.0
    count = 0
    for _labels, (sample_counts, sample_count, sample_sum) in entry["samples"]:
        if counts is None:
            counts = list(sample_counts)
        else:
            for i, c in enumerate(sample_counts):
                counts[i] += c
        count += sample_count
        total += sample_sum
    if counts is None:
        counts = [0] * (len(bounds) + 1)
    return {"bounds": bounds, "counts": counts, "count": count, "sum": total}


def quantile_from_buckets(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> Optional[float]:
    """Estimate the q-quantile (seconds) from non-cumulative buckets.

    Linear interpolation within the winning bucket; the overflow
    bucket reports its lower bound (the estimate cannot exceed what
    the buckets resolve). Returns ``None`` with no observations.
    """
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        if cumulative + c >= rank:
            lower = bounds[i - 1] if 0 < i <= len(bounds) else 0.0
            if i >= len(bounds):
                return float(bounds[-1]) if bounds else None
            upper = bounds[i]
            fraction = (rank - cumulative) / c
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        cumulative += c
    return float(bounds[-1]) if bounds else None


def _diff_snapshot(
    prev: Dict[str, object],
    curr: Dict[str, object],
    t: float,
    interval: float,
) -> Dict[str, Any]:
    """One telemetry record from two consecutive registry snapshots."""
    queries = _series_total(curr, QUERIES_TOTAL) - _series_total(
        prev, QUERIES_TOTAL
    )
    succeeded = _series_total(
        curr, RESPONSES_TOTAL, result="ok"
    ) - _series_total(prev, RESPONSES_TOTAL, result="ok")
    timeouts = _series_total(
        curr, RESPONSES_TOTAL, result="timeout"
    ) - _series_total(prev, RESPONSES_TOTAL, result="timeout")
    failed = 0
    for result in ("timeout", "error", "rcode"):
        failed += _series_total(
            curr, RESPONSES_TOTAL, result=result
        ) - _series_total(prev, RESPONSES_TOTAL, result=result)

    latency: Dict[str, Optional[float]] = {"p50": None, "p99": None,
                                           "mean": None}
    curr_hist = _histogram_state(curr, LATENCY_SECONDS)
    if curr_hist is not None:
        prev_hist = _histogram_state(prev, LATENCY_SECONDS)
        if prev_hist is not None and len(prev_hist["counts"]) == len(
            curr_hist["counts"]
        ):
            delta_counts = [
                c - p
                for c, p in zip(curr_hist["counts"], prev_hist["counts"])
            ]
            delta_sum = curr_hist["sum"] - prev_hist["sum"]
        else:
            delta_counts = list(curr_hist["counts"])
            delta_sum = curr_hist["sum"]
        observed = sum(delta_counts)
        if observed > 0:
            bounds = curr_hist["bounds"]
            p50 = quantile_from_buckets(bounds, delta_counts, 0.50)
            p99 = quantile_from_buckets(bounds, delta_counts, 0.99)
            latency = {
                "p50": round(p50 * 1000, 3) if p50 is not None else None,
                "p99": round(p99 * 1000, 3) if p99 is not None else None,
                "mean": round(delta_sum / observed * 1000, 3),
            }

    span = interval if interval > 0 else 1.0
    return {
        "t": round(t, 3),
        "interval_s": round(interval, 3),
        "queries": max(queries, 0),
        "succeeded": max(succeeded, 0),
        "failed": max(failed, 0),
        "timeouts": max(timeouts, 0),
        "qps": round(max(succeeded, 0) / span, 3),
        "latency_ms": latency,
    }


class TelemetrySampler:
    """Diffs successive snapshots of a source into telemetry records.

    *source* is a registry or a zero-argument callable returning a
    snapshot dict. ``tick()`` takes one sample and returns the record
    for the elapsed interval (or ``None`` on the priming call when no
    time has passed); ``timeline`` accumulates every record. *sinks*
    are callables invoked with each record as it is produced — the
    streaming/progress hook.
    """

    def __init__(
        self,
        source: SnapshotSource,
        interval: float = 1.0,
        time_fn: Callable[[], float] = time.monotonic,
        sinks: Sequence[Callable[[Dict[str, Any]], None]] = (),
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.timeline: List[Dict[str, Any]] = []
        self._time_fn = time_fn
        self._sinks = list(sinks)
        if isinstance(source, MetricsRegistry):
            self._snap: Callable[[], Dict[str, object]] = source.snapshot
        else:
            self._snap = source
        self._started: Optional[float] = None
        self._prev: Optional[Dict[str, object]] = None
        self._prev_at = 0.0

    def add_sink(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        self._sinks.append(sink)

    def tick(self) -> Optional[Dict[str, Any]]:
        """Sample now; return the interval record (None on priming)."""
        now = self._time_fn()
        snap = self._snap()
        if self._started is None:
            self._started = now
        if self._prev is None:
            # Prime against an empty baseline so the first tick after
            # interval elapses reports the opening interval's counts.
            self._prev = {}
            self._prev_at = now
            if now == self._started:
                return None
        elapsed = now - self._prev_at
        record = _diff_snapshot(
            self._prev, snap, t=now - self._started, interval=elapsed
        )
        self._prev = snap
        self._prev_at = now
        self.timeline.append(record)
        if len(self.timeline) > MAX_TIMELINE_SNAPSHOTS:
            del self.timeline[0 : len(self.timeline) - MAX_TIMELINE_SNAPSHOTS]
        for sink in self._sinks:
            try:
                sink(record)
            except (ValueError, OSError):
                # A broken stream sink must not end the run.
                pass
        return record


async def run_sampler(
    sampler: TelemetrySampler,
    stop: "asyncio.Event",
) -> List[Dict[str, Any]]:
    """Drive *sampler* every ``sampler.interval`` seconds until *stop*.

    Takes one final sample after the stop event fires so the tail of
    the run (the partial last interval) lands in the timeline.
    """
    sampler.tick()  # prime
    while not stop.is_set():
        try:
            await asyncio.wait_for(stop.wait(), timeout=sampler.interval)
        except asyncio.TimeoutError:
            sampler.tick()
    sampler.tick()
    return sampler.timeline


def merge_timelines(
    timelines: Sequence[List[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Merge per-worker timelines by interval index.

    Counts and qps sum; interval quantiles/means combine weighted by
    each worker's success count in that interval (an approximation —
    exact pooling would need the raw samples, which the snapshots
    deliberately do not carry). ``t``/``interval_s`` take the
    max/mean of the contributing records.
    """
    live = [t for t in timelines if t]
    if not live:
        return []
    merged: List[Dict[str, Any]] = []
    for i in range(max(len(t) for t in live)):
        rows = [t[i] for t in live if i < len(t)]
        queries = sum(r["queries"] for r in rows)
        succeeded = sum(r["succeeded"] for r in rows)
        failed = sum(r["failed"] for r in rows)
        timeouts = sum(r["timeouts"] for r in rows)
        qps = round(sum(r["qps"] for r in rows), 3)
        latency: Dict[str, Optional[float]] = {}
        for key in ("p50", "p99", "mean"):
            weighted = [
                (r["latency_ms"][key], r["succeeded"])
                for r in rows
                if r["latency_ms"].get(key) is not None and r["succeeded"] > 0
            ]
            weight = sum(w for _v, w in weighted)
            latency[key] = (
                round(sum(v * w for v, w in weighted) / weight, 3)
                if weight else None
            )
        merged.append({
            "t": round(max(r["t"] for r in rows), 3),
            "interval_s": round(
                sum(r["interval_s"] for r in rows) / len(rows), 3
            ),
            "queries": queries,
            "succeeded": succeeded,
            "failed": failed,
            "timeouts": timeouts,
            "qps": qps,
            "latency_ms": latency,
        })
    return merged


def timeline_from_outcomes(
    outcomes: Iterable[object], interval: float = 1.0
) -> List[Dict[str, Any]]:
    """Build the telemetry timeline for a finished simulation run.

    *outcomes* are :class:`repro.experiments.resolution.QueryOutcome`
    rows (anything with ``issued_at``/``resolution_time``/``error``).
    Queries bucket by issue time; a bucket's latency stats are exact
    percentiles over the successes completing there — the sim has the
    full sample set, so no histogram estimation is needed.
    """
    buckets: Dict[int, Dict[str, Any]] = {}
    for outcome in outcomes:
        issued = getattr(outcome, "issued_at", 0.0) or 0.0
        index = int(issued / interval)
        bucket = buckets.get(index)
        if bucket is None:
            bucket = buckets[index] = {
                "queries": 0, "succeeded": 0, "failed": 0, "timeouts": 0,
                "latencies": [],
            }
        bucket["queries"] += 1
        rtime = getattr(outcome, "resolution_time", None)
        if rtime is not None:
            bucket["succeeded"] += 1
            bucket["latencies"].append(rtime)
        else:
            bucket["failed"] += 1
            error = (getattr(outcome, "error", "") or "").lower()
            if "timeout" in error:
                bucket["timeouts"] += 1
    timeline: List[Dict[str, Any]] = []
    if not buckets:
        return timeline
    for index in range(min(buckets), max(buckets) + 1):
        bucket = buckets.get(
            index,
            {"queries": 0, "succeeded": 0, "failed": 0, "timeouts": 0,
             "latencies": []},
        )
        samples = sorted(bucket["latencies"])
        latency: Dict[str, Optional[float]] = {
            "p50": None, "p99": None, "mean": None,
        }
        if samples:
            latency = {
                "p50": round(_exact_quantile(samples, 0.50) * 1000, 3),
                "p99": round(_exact_quantile(samples, 0.99) * 1000, 3),
                "mean": round(sum(samples) / len(samples) * 1000, 3),
            }
        timeline.append({
            "t": round((index + 1) * interval, 3),
            "interval_s": interval,
            "queries": bucket["queries"],
            "succeeded": bucket["succeeded"],
            "failed": bucket["failed"],
            "timeouts": bucket["timeouts"],
            "qps": round(bucket["succeeded"] / interval, 3),
            "latency_ms": latency,
        })
        if len(timeline) >= MAX_TIMELINE_SNAPSHOTS:
            break
    return timeline


def _exact_quantile(sorted_samples: Sequence[float], q: float) -> float:
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    position = q * (len(sorted_samples) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_samples) - 1)
    fraction = position - low
    return (
        sorted_samples[low] * (1 - fraction) + sorted_samples[high] * fraction
    )


def format_snapshot(record: Dict[str, Any]) -> str:
    """One human-readable progress line for a telemetry record."""
    latency = record.get("latency_ms", {})
    p99 = latency.get("p99")
    p99_text = f"{p99:.1f}ms" if p99 is not None else "-"
    return (
        f"t={record['t']:>6.1f}s sent={record['queries']:>6} "
        f"ok={record['succeeded']:>6} fail={record['failed']:>4} "
        f"qps={record['qps']:>8.1f} p99={p99_text}"
    )


def validate_snapshot(record: Dict[str, Any]) -> None:
    """Raise :class:`repro.api.schema.ValidationError` on a bad record."""
    from repro.api.schema import validate

    validate(record, SNAPSHOT_SCHEMA)
