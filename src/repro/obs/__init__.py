"""Observability: metrics, structured logs, telemetry, /metrics HTTP.

Dependency-free instrumentation shared by every serving layer:

* :mod:`repro.obs.metrics` — label-aware :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` families in a
  :class:`MetricsRegistry`, Prometheus text exposition, and plain-dict
  snapshots that merge across worker processes;
* :mod:`repro.obs.log` — structured JSON logging with bound
  run/worker/request context (``repro.obs.get_logger``);
* :mod:`repro.obs.telemetry` — per-second :class:`TelemetrySampler`
  diffing registry snapshots into the NDJSON time series streamed by
  ``loadtest --stream``, rendered by ``repro watch``, and embedded in
  Reports as the ``telemetry`` block;
* :mod:`repro.obs.http` — the minimal asyncio listener behind
  ``--metrics-port`` serving ``/metrics`` and ``/healthz``.

Attribute access is lazy (PEP 562), matching :mod:`repro.live`.
"""

from __future__ import annotations

from importlib import import_module

#: Public name -> defining submodule (resolved on first access).
_EXPORTS = {
    "Counter": ".metrics",
    "Gauge": ".metrics",
    "Histogram": ".metrics",
    "MetricsRegistry": ".metrics",
    "DEFAULT_LATENCY_BUCKETS": ".metrics",
    "merge_snapshots": ".metrics",
    "label_snapshot": ".metrics",
    "render_snapshot": ".metrics",
    "parse_exposition": ".metrics",
    "JsonLogger": ".log",
    "configure": ".log",
    "get_logger": ".log",
    "SNAPSHOT_SCHEMA": ".telemetry",
    "QUERIES_TOTAL": ".telemetry",
    "RESPONSES_TOTAL": ".telemetry",
    "LATENCY_SECONDS": ".telemetry",
    "TelemetrySampler": ".telemetry",
    "run_sampler": ".telemetry",
    "merge_timelines": ".telemetry",
    "timeline_from_outcomes": ".telemetry",
    "format_snapshot": ".telemetry",
    "validate_snapshot": ".telemetry",
    "ObsHttpServer": ".http",
    "ObsHttpThread": ".http",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module_name, __name__), name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
