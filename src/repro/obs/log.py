"""Structured JSON logging: one object per line, bound context fields.

The stdlib :mod:`logging` module is deliberately bypassed — its
global handler state leaks across the forked worker processes in
:mod:`repro.live.workers`, and the toolkit's contract is machine
readable stderr: every record is a single JSON object with ``ts``,
``level``, ``logger``, ``msg`` plus whatever context fields the
logger was bound with (``run``, ``worker``, ``role``, ...).

Default level is ``warning`` so routine runs stay quiet while worker
crash records always surface; ``REPRO_LOG_LEVEL=debug|info|warning|
error`` (or :func:`configure`) widens it.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, IO, Optional

__all__ = ["JsonLogger", "configure", "get_logger", "LEVELS"]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_state: Dict[str, Any] = {"stream": None, "level": None}


def _threshold() -> int:
    if _state["level"] is not None:
        return _state["level"]
    env = os.environ.get("REPRO_LOG_LEVEL", "").strip().lower()
    return LEVELS.get(env, LEVELS["warning"])


def configure(
    stream: Optional[IO[str]] = None, level: Optional[str] = None
) -> None:
    """Set the process-wide log sink and threshold.

    *stream* defaults to stderr (resolved at emit time so pytest's
    capsys and pipe redirections keep working); *level* is one of
    ``debug``/``info``/``warning``/``error`` and overrides the
    ``REPRO_LOG_LEVEL`` environment variable.
    """
    if stream is not None:
        _state["stream"] = stream
    if level is not None:
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        _state["level"] = LEVELS[level]


class JsonLogger:
    """A named logger carrying bound context fields.

    ``bind(**fields)`` returns a child logger whose records include
    the parent's fields plus the new ones — how run/worker/request
    context threads through the serving layers without global state.
    """

    __slots__ = ("name", "_context")

    def __init__(self, name: str, context: Optional[Dict[str, Any]] = None):
        self.name = name
        self._context = dict(context or {})

    def bind(self, **fields: Any) -> "JsonLogger":
        merged = dict(self._context)
        merged.update(fields)
        return JsonLogger(self.name, merged)

    def _emit(self, level: str, msg: str, fields: Dict[str, Any]) -> None:
        if LEVELS[level] < _threshold():
            return
        record: Dict[str, Any] = {
            "ts": round(time.time(), 3),
            "level": level,
            "logger": self.name,
            "msg": msg,
        }
        record.update(self._context)
        record.update(fields)
        stream = _state["stream"] or sys.stderr
        try:
            stream.write(json.dumps(record, default=str) + "\n")
            stream.flush()
        except (ValueError, OSError):
            # A closed stderr (interpreter teardown, broken pipe) must
            # never take the serving path down with it.
            pass

    def debug(self, msg: str, **fields: Any) -> None:
        self._emit("debug", msg, fields)

    def info(self, msg: str, **fields: Any) -> None:
        self._emit("info", msg, fields)

    def warning(self, msg: str, **fields: Any) -> None:
        self._emit("warning", msg, fields)

    def error(self, msg: str, **fields: Any) -> None:
        self._emit("error", msg, fields)


def get_logger(name: str, **context: Any) -> JsonLogger:
    """Return a :class:`JsonLogger` bound with *context* fields."""
    return JsonLogger(name, context)
