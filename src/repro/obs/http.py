"""Minimal asyncio HTTP listener for /metrics and /healthz.

Just enough HTTP/1.0 for a Prometheus scrape or a ``curl`` during a
run — GET only, ``Connection: close``, no keep-alive, no TLS, no
dependency beyond asyncio. Two mounting modes:

* :class:`ObsHttpServer` — lives on the caller's running event loop
  (the single-process ``DocLiveServer`` path);
* :class:`ObsHttpThread` — a daemon thread with its own loop, for
  the synchronous pool parent that otherwise has no loop at all.

Handlers are plain callables so the pool parent can serve *merged*
worker metrics through the same two routes.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable, Dict, Optional, Tuple

from .log import get_logger

__all__ = ["ObsHttpServer", "ObsHttpThread"]

_MAX_REQUEST_BYTES = 8192

#: ``health_fn`` returns (healthy, detail_dict).
HealthFn = Callable[[], Tuple[bool, Dict[str, object]]]


class ObsHttpServer:
    """Serve ``/metrics`` (text exposition) and ``/healthz`` (JSON).

    *metrics_fn* returns the exposition text; *health_fn* returns
    ``(healthy, details)`` — healthy maps to 200, otherwise 503 with
    the details in the JSON body either way.
    """

    def __init__(
        self,
        metrics_fn: Callable[[], str],
        health_fn: HealthFn,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.metrics_fn = metrics_fn
        self.health_fn = health_fn
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._log = get_logger("repro.obs.http")

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._log.info("metrics listener up", host=self.host, port=self.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def endpoint(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if len(request_line) > _MAX_REQUEST_BYTES:
                writer.close()
                return
            # Drain headers up to a sane cap; we never use them.
            read = len(request_line)
            while read < _MAX_REQUEST_BYTES:
                line = await reader.readline()
                read += len(line)
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                await self._respond(writer, 400, "text/plain",
                                    "bad request\n")
                return
            method, path = parts[0], parts[1]
            if method != "GET":
                await self._respond(writer, 405, "text/plain",
                                    "method not allowed\n")
                return
            path = path.split("?", 1)[0]
            if path == "/metrics":
                body = self.metrics_fn()
                await self._respond(
                    writer, 200, "text/plain; version=0.0.4", body
                )
            elif path == "/healthz":
                healthy, details = self.health_fn()
                import json

                payload = dict(details)
                payload.setdefault("status", "ok" if healthy else "unhealthy")
                await self._respond(
                    writer,
                    200 if healthy else 503,
                    "application/json",
                    json.dumps(payload) + "\n",
                )
            else:
                await self._respond(writer, 404, "text/plain",
                                    "not found\n")
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # scrape bugs must not kill the server
            self._log.warning("request handling failed", error=repr(exc))
            try:
                await self._respond(writer, 500, "text/plain",
                                    "internal error\n")
            except Exception:
                pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: str,
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 500: "Internal Server Error",
                   503: "Service Unavailable"}
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.0 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()


class ObsHttpThread:
    """Run an :class:`ObsHttpServer` on a dedicated daemon thread.

    The multi-worker pool parent is synchronous (it sleeps in a
    ``time.sleep`` watch loop), so the scrape endpoint gets its own
    event loop on a background thread. ``start()`` blocks until the
    listener is bound and returns the resolved port; handler
    callables run on the thread's loop, so anything they touch must
    be guarded by the caller (the pools guard their pipes with a
    lock).
    """

    def __init__(
        self,
        metrics_fn: Callable[[], str],
        health_fn: HealthFn,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.server = ObsHttpServer(metrics_fn, health_fn, host, port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def endpoint(self) -> str:
        return self.server.endpoint

    def start(self, timeout: float = 5.0) -> int:
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("metrics listener failed to start in time")
        if self._error is not None:
            raise RuntimeError(
                f"metrics listener failed to bind: {self._error!r}"
            )
        return self.server.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    def stop(self, timeout: float = 5.0) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)
        self._loop = None
        self._thread = None
