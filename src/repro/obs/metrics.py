"""Label-aware metrics registry with Prometheus text exposition.

Dependency-free observability core for the toolkit: three instrument
kinds (:class:`Counter`, :class:`Gauge`, :class:`Histogram`) grouped
into families by a :class:`MetricsRegistry`, rendered in the
Prometheus text exposition format and snapshot into plain dicts that
pickle across the :mod:`repro.live.workers` stats pipes.

Design constraints, in order:

* **Lock-free single-threaded fast path.** A child instrument is a
  ``__slots__`` object whose ``inc``/``observe`` touch plain Python
  ints — no locks, no string formatting, no dict lookups beyond what
  the caller chose to hoist. Hot loops resolve their child once
  (``c = family.labels(result="ok")``) and call ``c.inc()`` per event.
* **Mergeable.** ``snapshot()`` produces a plain-data form; module
  level :func:`merge_snapshots` sums any number of them by
  ``(name, labels)`` so per-worker registries fold into pool-level
  exposition without the workers sharing memory.
* **Scrape-time collectors.** Existing sans-IO counters (server
  stack, UDP transport) stay plain attributes; a registry collector
  callback mirrors them into gauges/counters only when someone looks.
  Zero cost on the datagram path.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "merge_snapshots",
    "label_snapshot",
    "render_snapshot",
    "parse_exposition",
]

#: Fixed log-spaced latency bounds (seconds): four buckets per decade
#: from 100 µs to 10 s. Every histogram in the toolkit shares these so
#: per-worker bucket counts merge by position and quantile estimates
#: stay comparable across sim, live, and pool scrapes.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(1e-4 * 10 ** (i / 4), 10) for i in range(21)
)

_LabelKV = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKV:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(label_kv: _LabelKV) -> str:
    if not label_kv:
        return ""
    parts = []
    for key, value in label_kv:
        escaped = (
            value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _CounterChild:
    """One labelled counter series. ``inc`` is the hot path."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class _GaugeChild:
    """One labelled gauge series: a settable instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class _HistogramChild:
    """One labelled histogram series with fixed bucket bounds.

    ``counts[i]`` holds the *non-cumulative* number of observations in
    ``(bounds[i-1], bounds[i]]``; ``counts[-1]`` is the overflow
    (> last bound). Rendering applies the cumulative ``le`` semantics
    Prometheus expects; keeping the internal form non-cumulative makes
    per-interval deltas and merges plain element-wise sums.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        # bisect_left gives the first bound >= value, matching the
        # Prometheus contract that a bucket counts values <= le.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value


class _Family:
    """A named metric family holding children keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...]):
        self.name = name
        self.help = help
        self.label_names = label_names
        self._children: Dict[_LabelKV, object] = {}

    def _make_child(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def labels(self, **labels: str):
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def child_items(self) -> Iterable[Tuple[_LabelKV, object]]:
        return self._children.items()


class Counter(_Family):
    """A monotonically increasing count of events."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: int = 1) -> None:
        """Unlabelled shorthand (only valid when the family is bare)."""
        self.labels().inc(amount)

    @property
    def value(self) -> int:
        return sum(c.value for c in self._children.values())


class Gauge(_Family):
    """An instantaneous value (queue depth, worker liveness, ...)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self.labels().set(value)

    @property
    def value(self) -> float:
        return sum(c.value for c in self._children.values())


class Histogram(_Family):
    """A distribution over fixed log-spaced buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Tuple[str, ...],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, label_names)
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted ascending")

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self.labels().observe(value)


class MetricsRegistry:
    """A process-local set of metric families plus scrape collectors.

    ``collect(fn)`` registers a callback run before every
    ``snapshot``/``render`` — the hook that mirrors sans-IO stack
    counters into the registry at scrape time instead of taxing the
    datagram path.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[[], None]] = []

    def _register(self, family: _Family) -> _Family:
        existing = self._families.get(family.name)
        if existing is not None:
            if type(existing) is not type(family):
                raise ValueError(
                    f"metric {family.name!r} re-registered as a different kind"
                )
            return existing
        self._families[family.name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help, tuple(labels)))

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help, tuple(labels)))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, tuple(labels), buckets))

    def collect(self, fn: Callable[[], None]) -> Callable[[], None]:
        """Register *fn* to run before each snapshot/render; returns it."""
        self._collectors.append(fn)
        return fn

    def _run_collectors(self) -> None:
        for fn in self._collectors:
            fn()

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of every series, pickle- and merge-safe.

        Shape::

            {family_name: {"kind": ..., "help": ...,
                           "buckets": [...],          # histograms only
                           "samples": [[labels_dict, value], ...]}}

        Histogram sample values are ``[counts, count, sum]`` with
        non-cumulative per-bucket counts.
        """
        self._run_collectors()
        out: Dict[str, object] = {}
        for name, family in self._families.items():
            samples = []
            for label_kv, child in family.child_items():
                labels = {k: v for k, v in label_kv}
                if family.kind == "histogram":
                    samples.append(
                        [labels, [list(child.counts), child.count, child.sum]]
                    )
                else:
                    samples.append([labels, child.value])
            entry: Dict[str, object] = {
                "kind": family.kind,
                "help": family.help,
                "samples": samples,
            }
            if family.kind == "histogram":
                entry["buckets"] = list(family.buckets)
            out[name] = entry
        return out

    def render(self) -> str:
        """Prometheus text exposition of the registry's current state."""
        return render_snapshot(self.snapshot())


def merge_snapshots(
    snapshots: Iterable[Dict[str, object]],
) -> Dict[str, object]:
    """Sum any number of :meth:`MetricsRegistry.snapshot` dicts.

    Series are merged by ``(family, labels)``: counters and histogram
    bucket counts add; gauges add too (pool queue depth is the sum of
    worker queue depths — callers wanting last-write-wins should label
    per worker instead). Input snapshots are not mutated.
    """
    merged: Dict[str, Dict[str, object]] = {}
    for snap in snapshots:
        for name, entry in snap.items():
            target = merged.get(name)
            if target is None:
                target = merged[name] = {
                    "kind": entry["kind"],
                    "help": entry.get("help", ""),
                    "samples": [],
                    "_index": {},
                }
                if "buckets" in entry:
                    target["buckets"] = list(entry["buckets"])
            elif target["kind"] != entry["kind"]:
                raise ValueError(
                    f"cannot merge {name!r}: kind {entry['kind']!r} vs "
                    f"{target['kind']!r}"
                )
            index: Dict[_LabelKV, int] = target["_index"]
            for labels, value in entry["samples"]:
                key = _label_key(labels)
                at = index.get(key)
                if at is None:
                    index[key] = len(target["samples"])
                    if entry["kind"] == "histogram":
                        counts, count, total = value
                        target["samples"].append(
                            [dict(labels), [list(counts), count, total]]
                        )
                    else:
                        target["samples"].append([dict(labels), value])
                else:
                    slot = target["samples"][at]
                    if entry["kind"] == "histogram":
                        counts, count, total = value
                        merged_counts = slot[1][0]
                        for i, c in enumerate(counts):
                            merged_counts[i] += c
                        slot[1][1] += count
                        slot[1][2] += total
                    else:
                        slot[1] += value
    for entry in merged.values():
        del entry["_index"]
    return merged


def label_snapshot(
    snapshot: Dict[str, object], **labels: str
) -> Dict[str, object]:
    """Copy *snapshot* with extra labels injected into every series.

    The pool parent stamps ``worker="0"`` etc. on each worker snapshot
    before merging, so the combined exposition keeps per-worker series
    distinguishable while :func:`merge_snapshots` of the *unstamped*
    snapshots yields the pool totals.
    """
    out: Dict[str, object] = {}
    for name, entry in snapshot.items():
        samples = []
        for sample_labels, value in entry["samples"]:
            stamped = dict(sample_labels)
            stamped.update({k: str(v) for k, v in labels.items()})
            if entry["kind"] == "histogram":
                counts, count, total = value
                samples.append([stamped, [list(counts), count, total]])
            else:
                samples.append([stamped, value])
        new_entry = {k: v for k, v in entry.items() if k != "samples"}
        new_entry["samples"] = samples
        out[name] = new_entry
    return out


def render_snapshot(snapshot: Dict[str, object]) -> str:
    """Render a snapshot dict in Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["kind"]
        help_text = entry.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        samples = sorted(
            entry["samples"], key=lambda s: _label_key(s[0])
        )
        if kind == "histogram":
            bounds = entry.get("buckets", [])
            for labels, (counts, count, total) in samples:
                cumulative = 0
                for bound, bucket_count in zip(bounds, counts):
                    cumulative += bucket_count
                    le_labels = dict(labels)
                    le_labels["le"] = _format_value(float(bound))
                    lines.append(
                        f"{name}_bucket{_format_labels(_label_key(le_labels))}"
                        f" {cumulative}"
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(
                    f"{name}_bucket{_format_labels(_label_key(inf_labels))}"
                    f" {count}"
                )
                label_text = _format_labels(_label_key(labels))
                lines.append(f"{name}_count{label_text} {count}")
                lines.append(f"{name}_sum{label_text} {_format_value(total)}")
        else:
            for labels, value in samples:
                label_text = _format_labels(_label_key(labels))
                lines.append(f"{name}{label_text} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_exposition(
    text: str,
) -> Dict[str, Dict[_LabelKV, float]]:
    """Parse Prometheus text exposition back into ``{series: {labels: v}}``.

    Supports the subset :func:`render_snapshot` emits (no escaped
    ``}``/``,`` inside label values beyond the escapes we produce).
    Used by tests and CI to assert per-worker series sum to pool
    totals without a Prometheus client dependency.
    """
    out: Dict[str, Dict[_LabelKV, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed exposition line: {line!r}")
        if "{" in name_part:
            series, _, label_blob = name_part.partition("{")
            label_blob = label_blob.rstrip("}")
            labels: Dict[str, str] = {}
            for item in _split_labels(label_blob):
                key, _, raw = item.partition("=")
                raw = raw.strip()
                if not (raw.startswith('"') and raw.endswith('"')):
                    raise ValueError(f"malformed label in line: {line!r}")
                value = (
                    raw[1:-1]
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                labels[key.strip()] = value
            key_kv = _label_key(labels)
        else:
            series = name_part
            key_kv = ()
        out.setdefault(series, {})[key_kv] = (
            float("inf") if value_part == "+Inf" else float(value_part)
        )
    return out


def _split_labels(blob: str) -> List[str]:
    items: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in blob:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        items.append("".join(current))
    return [i for i in items if i.strip()]
