"""Event timelines: the actual data series behind Figure 11.

Figure 11 scatters, per DNS query, the time offset of every client-side
CoAP event (initial transmission, retransmissions, cache hits and
validations) against the query's issue time, with the §4.2 back-off
windows shaded. This module turns an :class:`ExperimentResult` into
exactly those series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.coap.reliability import ReliabilityParams

from .resolution import ExperimentResult


@dataclass(frozen=True)
class TimelinePoint:
    """One Figure 11 marker."""

    query_time: float      # x: when the DNS query was issued
    offset: float          # y: event time minus query time
    kind: str              # transmission | retransmission | cache_hit | validation


def event_timeline(result: ExperimentResult) -> List[TimelinePoint]:
    """Flatten a run into Figure 11 points.

    Events are matched to queries by their (token, mid) exchange start:
    the first ``transmission`` of an exchange anchors the offsets of the
    exchange's retransmissions; cache events are anchored to themselves
    (offset ≈ 0, the paper's "negligible time offset").
    """
    anchors: Dict[Tuple[bytes, int], float] = {}
    points: List[TimelinePoint] = []
    for event in result.client_events:
        key = (event.token, event.mid)
        if event.kind == "transmission":
            anchors[key] = event.time
            points.append(TimelinePoint(event.time, 0.0, event.kind))
        elif event.kind == "retransmission":
            start = anchors.get(key, event.time)
            points.append(
                TimelinePoint(start, event.time - start, event.kind)
            )
        else:  # cache_hit / validation happen at request time
            points.append(TimelinePoint(event.time, 0.0, event.kind))
    return points


def retransmission_window_bands(
    params: ReliabilityParams = ReliabilityParams(),
) -> List[Tuple[float, float]]:
    """The gray bands of Figure 11 for the configured parameters."""
    return [
        params.retransmission_window(attempt)
        for attempt in range(1, params.max_retransmit + 1)
    ]


def offsets_in_windows(
    points: List[TimelinePoint],
    params: ReliabilityParams = ReliabilityParams(),
    tolerance: float = 0.10,
) -> float:
    """Fraction of retransmission offsets inside the §4.2 bands.

    Should be ≈ 1.0 for a correct message layer (events can lag the
    band edges slightly by queueing/airtime, hence the tolerance).
    """
    bands = retransmission_window_bands(params)
    retransmissions = [p for p in points if p.kind == "retransmission"]
    if not retransmissions:
        return 1.0
    inside = 0
    for point in retransmissions:
        for low, high in bands:
            if low * (1 - tolerance) <= point.offset <= high * (1 + tolerance):
                inside += 1
                break
    return inside / len(retransmissions)
