"""Small statistics helpers for the evaluation harness."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


def quantiles(values: Sequence[float]) -> Tuple[float, float, float]:
    """(Q1, median, Q3), the quartiles of Table 3."""
    return (
        percentile(values, 25),
        percentile(values, 50),
        percentile(values, 75),
    )


def summary_stats(values: Sequence[float]) -> Dict[str, float]:
    """The Table 3 statistics row: min/max/mode/mean/std/quartiles."""
    if not values:
        raise ValueError("empty sequence")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    counts: Dict[float, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    mode = max(counts.items(), key=lambda item: (item[1], -item[0]))[0]
    q1, q2, q3 = quantiles(values)
    return {
        "count": float(n),
        "min": float(min(values)),
        "max": float(max(values)),
        "mode": float(mode),
        "mean": mean,
        "std": variance ** 0.5,
        "q1": q1,
        "q2": q2,
        "q3": q3,
    }


def cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF points ``(value, fraction ≤ value)``."""
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of *values* strictly below *threshold* (CDF read-off)."""
    if not values:
        raise ValueError("empty sequence")
    return sum(1 for v in values if v < threshold) / len(values)
