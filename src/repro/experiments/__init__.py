"""Shared experiment harness.

* :mod:`repro.experiments.packet_sizes` — byte-exact construction and
  per-layer dissection of the canonical messages (Figures 6, 14);
* :mod:`repro.experiments.resolution` — the Figure 2 testbed runs
  behind Figures 7, 10, 11, 15;
* :mod:`repro.experiments.metrics` — CDFs, quartiles, histograms.
"""

from .packet_sizes import (
    PacketDissection,
    canonical_messages,
    dissect_transport,
    dissect_all,
    FRAGMENTATION_LIMIT,
)
from .metrics import cdf, percentile, quantiles, summary_stats
from .resolution import (
    ExperimentConfig,
    ExperimentResult,
    LinkUtilization,
    QueryOutcome,
    pooled_resolution_times,
    run_repeated,
    run_resolution_experiment,
)
from .timelines import TimelinePoint, event_timeline, offsets_in_windows

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "FRAGMENTATION_LIMIT",
    "LinkUtilization",
    "PacketDissection",
    "QueryOutcome",
    "canonical_messages",
    "cdf",
    "dissect_all",
    "dissect_transport",
    "percentile",
    "quantiles",
    "run_repeated",
    "pooled_resolution_times",
    "run_resolution_experiment",
    "TimelinePoint",
    "event_timeline",
    "offsets_in_windows",
    "summary_stats",
]
