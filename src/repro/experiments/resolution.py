"""The Figure 2 testbed harness (Figures 7, 10, 11, 15).

``run_resolution_experiment`` builds the two-wireless-hop topology,
installs a DNS transport stack on the clients and the resolver host,
drives a Poisson query workload, and collects:

* per-query resolution times (the CDFs of Figures 7/15),
* per-link frame and byte counts from the sniffer (Figure 10),
* client transmission/retransmission/cache events (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.coap.cache import CoapCache
from repro.coap.codes import Code
from repro.coap.endpoint import ClientEvent
from repro.coap.proxy import ForwardProxy
from repro.dns import DNSCache, RecordType, RecursiveResolver, Zone
from repro.dns.enums import DNSClass
from repro.dns.rdata import AAAAData, AData
from repro.dns.zone import ZoneRecord
from repro.doc import CachingScheme, DocClient, DocServer
from repro.oscore import SecurityContext
from repro.sim import Simulator, poisson_arrival_times
from repro.stack import Figure2Topology, build_figure2_topology
from repro.transports import (
    DnsOverDtlsClient,
    DnsOverDtlsServer,
    DnsOverUdpClient,
    DnsOverUdpServer,
    DtlsClientAdapter,
    DtlsServerAdapter,
    preestablish,
)

COAP_PORT = 5683
COAPS_PORT = 5684
DNS_PORT = 53
DODTLS_PORT = 853

#: Name template producing the paper's median 24-character names.
NAME_TEMPLATE = "name{index:04d}.example-iot.org"


@dataclass
class ExperimentConfig:
    """Parameters of one testbed run."""

    transport: str = "coap"          # udp | dtls | coap | coaps | oscore
    method: Code = Code.FETCH
    rtype: int = RecordType.AAAA
    num_queries: int = 50
    num_names: int = 50
    records_per_name: int = 1
    ttl: Tuple[int, int] = (300, 300)
    query_rate: float = 5.0
    clients: int = 2
    loss: float = 0.05
    seed: int = 1
    use_proxy: bool = False
    client_coap_cache: bool = False
    client_dns_cache: bool = False
    scheme: CachingScheme = CachingScheme.EOL_TTLS
    block_size: Optional[int] = None
    run_duration: float = 300.0
    #: MAC retransmissions; lower values expose CoAP-layer corrective
    #: actions (the paper's lossy testbed regime).
    l2_retries: int = 3

    def __post_init__(self) -> None:
        if self.transport not in ("udp", "dtls", "coap", "coaps", "oscore"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.use_proxy and self.transport in ("udp", "dtls"):
            raise ValueError("the CoAP proxy requires a CoAP transport")


@dataclass
class QueryOutcome:
    """One query's fate."""

    name: str
    client: str
    issued_at: float
    resolution_time: Optional[float]   # None on failure
    error: Optional[str] = None


@dataclass
class LinkUtilization:
    """Frames/bytes split by link distance to the sink (Figure 10)."""

    frames_1hop: int
    frames_2hop: int
    bytes_1hop: int
    bytes_2hop: int
    queries_frames: int
    responses_frames: int


@dataclass
class ExperimentResult:
    """Everything one run produced."""

    config: ExperimentConfig
    outcomes: List[QueryOutcome]
    link: LinkUtilization
    client_events: List[ClientEvent]
    #: (event time offset vs query issue) per cache/validation event.
    proxy_cache_hits: int = 0
    proxy_revalidations: int = 0

    @property
    def resolution_times(self) -> List[float]:
        return [
            outcome.resolution_time
            for outcome in self.outcomes
            if outcome.resolution_time is not None
        ]

    @property
    def success_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return len(self.resolution_times) / len(self.outcomes)


def build_zone(config: ExperimentConfig, rng) -> Zone:
    """Authoritative data: ``num_names`` names of 24 characters, each
    with ``records_per_name`` records of the requested type."""
    zone = Zone()
    for index in range(config.num_names):
        name = NAME_TEMPLATE.format(index=index)
        ttl = rng.randint(*config.ttl)
        for record_index in range(config.records_per_name):
            if config.rtype == RecordType.A:
                rdata = AData(f"192.0.2.{record_index + 1}")
                rtype = RecordType.A
            else:
                rdata = AAAAData(f"2001:db8::{index:x}:{record_index + 1:x}")
                rtype = RecordType.AAAA
            zone.add(ZoneRecord(name, rtype, ttl, rdata, DNSClass.IN))
    return zone


def _install_server(
    sim: Simulator,
    topo: Figure2Topology,
    config: ExperimentConfig,
    resolver: RecursiveResolver,
    oscore_contexts: List[Tuple[SecurityContext, SecurityContext]],
):
    """Start the resolver-side stack; returns hooks for client setup."""
    host = topo.resolver_host
    if config.transport == "udp":
        DnsOverUdpServer(sim, host.bind(DNS_PORT), resolver)
        return {"port": DNS_PORT}
    if config.transport == "dtls":
        server = DnsOverDtlsServer(sim, host.bind(DODTLS_PORT), resolver)
        return {"port": DODTLS_PORT, "adapter": server.adapter}
    if config.transport == "coaps":
        adapter = DtlsServerAdapter(sim, host.bind(COAPS_PORT))
        DocServer(sim, adapter, resolver, scheme=config.scheme)
        return {"port": COAPS_PORT, "adapter": adapter}
    # plain CoAP and OSCORE share the CoAP port.
    oscore_server_context = None
    if config.transport == "oscore":
        # One shared context pair per client is cleaner; the server
        # here handles a single client context at a time, so derive a
        # context per client and multiplex by kid below if needed.
        oscore_server_context = oscore_contexts[0][1] if oscore_contexts else None
    DocServer(
        sim, host.bind(COAP_PORT), resolver, scheme=config.scheme,
        oscore_context=oscore_server_context,
    )
    return {"port": COAP_PORT}


def run_resolution_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Execute one run and gather its measurements."""
    sim = Simulator(seed=config.seed)
    topo = build_figure2_topology(
        sim, clients=config.clients, loss=config.loss,
        l2_retries=config.l2_retries,
    )
    zone = build_zone(config, sim.rng)
    # A TTL *range* reproduces the paper's mocked-resolver behaviour:
    # every cache renewal at the resolver draws a fresh TTL, the churn
    # that distinguishes DoH-like from EOL-TTLs revalidation.
    ttl_range = config.ttl if config.ttl[0] != config.ttl[1] else None
    resolver = RecursiveResolver(
        zone, upstream_ttl_range=ttl_range, rng=sim.rng
    )

    oscore_contexts: List[Tuple[SecurityContext, SecurityContext]] = []
    if config.transport == "oscore":
        # Pre-initialised replay windows (Section 5.1): no Echo round.
        oscore_contexts.append(
            SecurityContext.pair(b"experiment-master-secret", b"salt")
        )

    server_info = _install_server(sim, topo, config, resolver, oscore_contexts)
    server_endpoint = (topo.resolver_host.address, server_info["port"])

    proxy = None
    if config.use_proxy:
        proxy = ForwardProxy(
            sim,
            topo.forwarder.bind(COAP_PORT),
            topo.forwarder.bind(),
            server_endpoint,
            cache_entries=50,
        )
        target = (topo.forwarder.address, COAP_PORT)
    else:
        target = server_endpoint

    # -- client stacks ------------------------------------------------------
    clients = []
    for index, node in enumerate(topo.clients):
        if config.transport == "udp":
            client = DnsOverUdpClient(
                sim, node.bind(), server_endpoint,
                dns_cache=DNSCache(8) if config.client_dns_cache else None,
            )
        elif config.transport == "dtls":
            client = DnsOverDtlsClient(
                sim, node.bind(6000), server_endpoint,
                dns_cache=DNSCache(8) if config.client_dns_cache else None,
            )
            preestablish(
                client.adapter, server_info["adapter"], (node.address, 6000)
            )
        else:
            socket = node.bind(6000)
            if config.transport == "coaps":
                socket = DtlsClientAdapter(sim, socket, server_endpoint)
                preestablish(
                    socket, server_info["adapter"], (node.address, 6000)
                )
            oscore_context = (
                oscore_contexts[0][0] if config.transport == "oscore" else None
            )
            client = DocClient(
                sim,
                socket,
                target,
                method=config.method,
                scheme=config.scheme,
                coap_cache=CoapCache(8) if config.client_coap_cache else None,
                dns_cache=DNSCache(8) if config.client_dns_cache else None,
                block_size=config.block_size,
                oscore_context=oscore_context,
            )
        clients.append(client)

    # -- workload -------------------------------------------------------------
    outcomes: List[QueryOutcome] = []
    arrivals = poisson_arrival_times(
        sim.rng, config.query_rate, config.num_queries, start=0.1
    )

    def issue(index: int, at: float) -> None:
        client_index = index % len(clients)
        client = clients[client_index]
        name = NAME_TEMPLATE.format(index=index % config.num_names)
        outcome = QueryOutcome(
            name=name,
            client=topo.clients[client_index].name,
            issued_at=sim.now,
            resolution_time=None,
        )
        outcomes.append(outcome)

        def on_done(result, error) -> None:
            if error is not None:
                outcome.error = type(error).__name__
                return
            outcome.resolution_time = sim.now - outcome.issued_at

        if config.transport in ("udp", "dtls"):
            client.resolve(name, config.rtype, on_done)
        else:
            client.resolve(name, config.rtype, on_done)

    for index, at in enumerate(arrivals):
        sim.schedule_at(at, issue, index, at)

    sim.run(until=config.run_duration)

    # -- collect -----------------------------------------------------------------
    sniffer = topo.sniffer
    queries = sum(
        1 for r in sniffer.records if r.metadata.get("kind") == "query"
    )
    responses = sum(
        1 for r in sniffer.records if r.metadata.get("kind") == "response"
    )
    link = LinkUtilization(
        frames_1hop=topo.proxy_sink_frames(),
        frames_2hop=topo.client_proxy_frames(),
        bytes_1hop=topo.proxy_sink_bytes(),
        bytes_2hop=topo.client_proxy_bytes(),
        queries_frames=queries,
        responses_frames=responses,
    )
    client_events: List[ClientEvent] = []
    for client in clients:
        coap = getattr(client, "coap", None)
        if coap is not None:
            client_events.extend(coap.events)

    return ExperimentResult(
        config=config,
        outcomes=outcomes,
        link=link,
        client_events=client_events,
        proxy_cache_hits=(
            proxy.requests_served_from_cache if proxy is not None else 0
        ),
        proxy_revalidations=(
            proxy.requests_revalidated if proxy is not None else 0
        ),
    )


def run_repeated(
    config: ExperimentConfig, runs: int = 10
) -> List[ExperimentResult]:
    """Repeat a run with different seeds (the paper repeats all runs
    10 times, Section 5.1); results aggregate across repetitions."""
    results = []
    for repetition in range(runs):
        from dataclasses import replace

        seeded = replace(config, seed=config.seed + repetition * 1000)
        results.append(run_resolution_experiment(seeded))
    return results


def pooled_resolution_times(results: List[ExperimentResult]) -> List[float]:
    """All successful resolution times across repetitions."""
    times: List[float] = []
    for result in results:
        times.extend(result.resolution_times)
    return times
