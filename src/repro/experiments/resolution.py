"""The testbed harness behind Figures 7, 10, 11, and 15.

:class:`ExperimentConfig` is the paper-shaped façade: one transport on
the Figure 2 two-hop topology. Since the scenario engine landed it is a
thin layer — :func:`run_resolution_experiment` converts the config into
a :class:`~repro.scenarios.Scenario` and hands it to
:class:`~repro.scenarios.ScenarioRunner`, which dispatches all
transport specifics through the plugin registry. The metrics structs
(:class:`ExperimentResult`, :class:`LinkUtilization`,
:class:`QueryOutcome`) stay here; both the legacy entry point and
scenario-native runs emit them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache import CacheStats
from repro.coap.codes import Code
from repro.coap.endpoint import ClientEvent
from repro.dns import RecordType, Zone
from repro.doc import CachingScheme
from repro.scenarios.runner import NAME_TEMPLATE, build_workload_zone

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "LinkUtilization",
    "NAME_TEMPLATE",
    "QueryOutcome",
    "build_zone",
    "pooled_resolution_times",
    "run_repeated",
    "run_resolution_experiment",
]


@dataclass
class ExperimentConfig:
    """Parameters of one testbed run (the paper's Figure 2 setup).

    .. deprecated::
        Kept as a paper-shaped adapter; prefer describing runs with a
        :class:`repro.api.RunSpec` (see :meth:`to_run_spec`) and
        consuming the unified :class:`repro.api.Report`.
    """

    transport: str = "coap"          # any simulatable registry profile
    method: Code = Code.FETCH
    rtype: int = RecordType.AAAA
    num_queries: int = 50
    num_names: int = 50
    records_per_name: int = 1
    ttl: Tuple[int, int] = (300, 300)
    query_rate: float = 5.0
    clients: int = 2
    loss: float = 0.05
    seed: int = 1
    use_proxy: bool = False
    client_coap_cache: bool = False
    client_dns_cache: bool = False
    scheme: CachingScheme = CachingScheme.EOL_TTLS
    block_size: Optional[int] = None
    run_duration: float = 300.0
    #: MAC retransmissions; lower values expose CoAP-layer corrective
    #: actions (the paper's lossy testbed regime).
    l2_retries: int = 3

    def __post_init__(self) -> None:
        from repro.transports.registry import registry

        profile = registry.get(self.transport)
        if not profile.simulatable:
            raise ValueError(
                f"transport {self.transport!r} is model-only and cannot run"
            )
        if self.use_proxy and not profile.coap_based:
            raise ValueError("the CoAP proxy requires a CoAP transport")

    def to_scenario(self) -> "Scenario":
        """The equivalent declarative scenario (Figure 2 topology)."""
        from repro.scenarios import Scenario, TopologySpec, WorkloadSpec

        return Scenario(
            name=f"experiment/{self.transport}",
            transport=self.transport,
            topology=TopologySpec(
                name="figure2",
                hops=2,
                clients=self.clients,
                loss=self.loss,
                l2_retries=self.l2_retries,
            ),
            workload=WorkloadSpec(
                num_queries=self.num_queries,
                num_names=self.num_names,
                records_per_name=self.records_per_name,
                query_rate=self.query_rate,
                rtype_mix=((int(self.rtype), 1.0),),
                ttl=self.ttl,
            ),
            method=self.method,
            scheme=self.scheme,
            use_proxy=self.use_proxy,
            client_coap_cache=self.client_coap_cache,
            client_dns_cache=self.client_dns_cache,
            block_size=self.block_size,
            seed=self.seed,
            run_duration=self.run_duration,
        )

    def to_run_spec(self) -> "RunSpec":
        """The equivalent :class:`repro.api.RunSpec` (sim substrate).

        The migration hook of the deprecated paper-shaped config:
        ``repro.api.run(config.to_run_spec())`` returns the unified
        Report whose ``raw`` field is the classic
        :class:`ExperimentResult`.
        """
        from repro.api import RunSpec

        return RunSpec.from_scenario(self.to_scenario())


@dataclass
class QueryOutcome:
    """One query's fate."""

    name: str
    client: str
    issued_at: float
    resolution_time: Optional[float]   # None on failure
    error: Optional[str] = None
    rtype: Optional[int] = None


@dataclass
class LinkUtilization:
    """Frames/bytes split by link distance to the sink (Figure 10).

    ``frames_1hop``/``bytes_1hop`` cover the bottleneck link into the
    border router; ``frames_2hop``/``bytes_2hop`` the outermost client
    links. For topologies deeper than two hops, ``per_hop_frames`` maps
    every hop distance to its frame count.
    """

    frames_1hop: int
    frames_2hop: int
    bytes_1hop: int
    bytes_2hop: int
    queries_frames: int
    responses_frames: int
    per_hop_frames: Dict[int, int] = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """Everything one run produced."""

    config: object
    outcomes: List[QueryOutcome]
    link: LinkUtilization
    client_events: List[ClientEvent]
    #: (event time offset vs query issue) per cache/validation event.
    proxy_cache_hits: int = 0
    proxy_revalidations: int = 0
    #: The declarative scenario the run executed (always set).
    scenario: Optional[object] = None
    #: Aggregated :class:`repro.cache.CacheStats` per cache location
    #: ("client-dns", "client-coap", "proxy", "resolver") — client
    #: caches pooled across all clients. The Figure 11 event counts.
    cache_stats: Dict[str, "CacheStats"] = field(default_factory=dict)

    @property
    def resolution_times(self) -> List[float]:
        return [
            outcome.resolution_time
            for outcome in self.outcomes
            if outcome.resolution_time is not None
        ]

    @property
    def success_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return len(self.resolution_times) / len(self.outcomes)

    def cache_ratios(self) -> Dict[str, Dict[str, float]]:
        """Per-location hit/stale/validation ratios (Figure 11 shape)."""
        return {
            location: {
                "hit_ratio": stats.hit_ratio,
                "stale_ratio": stats.stale_ratio,
                "validation_ratio": stats.validation_ratio,
            }
            for location, stats in sorted(self.cache_stats.items())
        }


def build_zone(config: ExperimentConfig, rng) -> Zone:
    """Authoritative data: ``num_names`` names of 24 characters, each
    with ``records_per_name`` records of the requested type."""
    return build_workload_zone(config.to_scenario().workload, rng)


def run_resolution_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Execute one run and gather its measurements.

    .. deprecated::
        This is now a thin adapter over the :mod:`repro.api` façade —
        it builds a sim-substrate :class:`~repro.api.RunSpec` from the
        config and unwraps the unified Report's raw result, which stays
        bit-identical to the historical output. New code should call
        :func:`repro.api.run` and consume the
        :class:`~repro.api.Report` directly.
    """
    from repro.api import run

    report = run(config.to_run_spec(), _config=config)
    return report.raw


def run_repeated(
    config: ExperimentConfig, runs: int = 10, workers: Optional[int] = None
) -> List[ExperimentResult]:
    """Repeat a run with different seeds (the paper repeats all runs
    10 times, Section 5.1); results aggregate across repetitions.

    Repetitions are independent simulations; *workers* > 1 fans them
    out over a process pool (same executor machinery as
    :meth:`~repro.scenarios.ScenarioRunner.sweep`) with results in
    seed order either way.
    """
    from dataclasses import replace

    from repro.scenarios.executors import get_executor

    seeded = [
        replace(config, seed=config.seed + repetition * 1000)
        for repetition in range(runs)
    ]
    return get_executor(None, workers).map(run_resolution_experiment, seeded)


def pooled_resolution_times(results: List[ExperimentResult]) -> List[float]:
    """All successful resolution times across repetitions."""
    times: List[float] = []
    for result in results:
        times.extend(result.resolution_times)
    return times
