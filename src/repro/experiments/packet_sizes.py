"""Byte-exact packet construction and dissection (Figures 6 and 14).

For a name of the empirical median length (24 characters, Section 3)
this module builds the actual bytes every transport would put on the
wire for a query and for A/AAAA responses, then dissects each packet
into the layer segments of Figure 6: 802.15.4+6LoWPAN framing, DTLS,
CoAP, OSCORE, and DNS.

All sizes come from the real encoders in this repository — the DNS
wire format, CoAP options, OSCORE COSE objects, DTLS records, IPHC
compression, and RFC 4944 fragmentation — not from constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.coap.blockwise import Block
from repro.coap.codes import Code
from repro.coap.message import CoapMessage
from repro.coap.options import ContentFormat, OptionNumber
from repro.coap.uri import base64url_encode
from repro.dns import Flags, Message, Question, RecordType, ResourceRecord, make_query
from repro.dns.enums import DNSClass
from repro.dns.rdata import AData, AAAAData
from repro.dtls import establish_pair
from repro.lowpan import LowpanAdaptation
from repro.lowpan.ieee802154 import FRAME_MAX_PDU
from repro.net.ipv6 import Ipv6Packet
from repro.net.udp import UdpDatagram
from repro.net import global_address
from repro.oscore import SecurityContext, protect_request, protect_response, unprotect_request

#: The paper's red dashed line: the maximum 802.15.4 PDU.
FRAGMENTATION_LIMIT = FRAME_MAX_PDU

#: The median name length of the IoT datasets (Table 3).
MEDIAN_NAME = "name0000.example-iot.org"
assert len(MEDIAN_NAME) == 24


@dataclass(frozen=True)
class PacketDissection:
    """One packet's layer breakdown and resulting link-layer frames."""

    transport: str
    message: str                 # "query" | "response_a" | "response_aaaa" | handshake name
    dns_bytes: int
    security_bytes: int          # DTLS record or OSCORE overhead
    coap_bytes: int
    udp_payload: int             # total bytes handed to UDP
    frame_sizes: Tuple[int, ...] # per-frame PDU sizes incl. MAC + FCS
    fragments: int

    @property
    def total_link_bytes(self) -> int:
        return sum(self.frame_sizes)

    @property
    def fragmented(self) -> bool:
        return self.fragments > 1

    @property
    def framing_bytes(self) -> int:
        """802.15.4 + 6LoWPAN overhead across all fragments."""
        return self.total_link_bytes - self.udp_payload


def canonical_messages(
    name: str = MEDIAN_NAME,
) -> Dict[str, Message]:
    """The three DNS messages of Figure 6 for *name*."""
    query = make_query(name, RecordType.AAAA, txid=0)
    base = make_query(name, RecordType.A, txid=0)
    response_a = Message(
        id=0,
        flags=Flags(qr=True, rd=True, ra=True),
        questions=base.questions,
        answers=(
            ResourceRecord(
                name, RecordType.A, DNSClass.IN, 300, AData("192.0.2.1")
            ),
        ),
    )
    response_aaaa = Message(
        id=0,
        flags=Flags(qr=True, rd=True, ra=True),
        questions=query.questions,
        answers=(
            ResourceRecord(
                name, RecordType.AAAA, DNSClass.IN, 300, AAAAData("2001:db8::1")
            ),
        ),
    )
    return {
        "query": query,
        "response_a": response_a,
        "response_aaaa": response_aaaa,
    }


def _frame_sizes_for_udp_payload(payload_length: int) -> Tuple[int, ...]:
    """Link-layer frames for a UDP payload of *payload_length* bytes.

    Uses the testbed's global (RPL) addressing — fully inline under
    stateless IPHC, as the paper configures — and real fragmentation.
    """
    src, dst = global_address(1), global_address(2)
    adaptation = LowpanAdaptation(mac=0x0200_0000_0000_1001)
    datagram = UdpDatagram(5683, 5683, bytes(payload_length))
    packet = Ipv6Packet(src, dst, datagram.encode(src, dst))
    return tuple(adaptation.frame_sizes(packet, 0x0200_0000_0000_1002))


# -- CoAP message construction ---------------------------------------------------


def _doc_request(
    method: Code, dns_wire: bytes, block_size: Optional[int] = None
) -> CoapMessage:
    if method == Code.GET:
        message = CoapMessage.request(Code.GET, token=b"\x01\x02")
        message = message.with_option(OptionNumber.URI_PATH, b"dns")
        message = message.with_option(
            OptionNumber.URI_QUERY,
            b"dns=" + base64url_encode(dns_wire).encode(),
        )
        return message
    message = CoapMessage.request(method, token=b"\x01\x02", payload=dns_wire)
    message = message.with_option(OptionNumber.URI_PATH, b"dns")
    message = message.with_uint_option(
        OptionNumber.CONTENT_FORMAT, int(ContentFormat.DNS_MESSAGE)
    )
    message = message.with_uint_option(
        OptionNumber.ACCEPT, int(ContentFormat.DNS_MESSAGE)
    )
    if block_size is not None and len(dns_wire) > block_size:
        block, chunk = Block(0, True, block_size), dns_wire[:block_size]
        message = CoapMessage(
            mtype=message.mtype, code=message.code, mid=message.mid,
            token=message.token,
            options=message.options + ((int(OptionNumber.BLOCK1), block.encode()),),
            payload=chunk,
        )
    return message


def _doc_response(request: CoapMessage, dns_wire: bytes) -> CoapMessage:
    response = request.make_response(Code.CONTENT, payload=dns_wire)
    response = response.with_uint_option(
        OptionNumber.CONTENT_FORMAT, int(ContentFormat.DNS_MESSAGE)
    )
    response = response.with_option(OptionNumber.ETAG, b"\x01\x02\x03\x04\x05\x06\x07\x08")
    response = response.with_uint_option(OptionNumber.MAX_AGE, 300)
    return response


_DTLS_APP_OVERHEAD = 13 + 8 + 8  # record header + explicit nonce + CCM-8 tag


class _DissectionBuilder:
    """Accumulates :class:`PacketDissection` rows for one transport."""

    def __init__(self, transport: str) -> None:
        self.transport = transport
        self.dissections: List[PacketDissection] = []

    def add(
        self, kind: str, dns_len: int, security: int, coap: int, udp_payload: int
    ) -> None:
        frames = _frame_sizes_for_udp_payload(udp_payload)
        self.dissections.append(
            PacketDissection(
                transport=self.transport,
                message=kind,
                dns_bytes=dns_len,
                security_bytes=security,
                coap_bytes=coap,
                udp_payload=udp_payload,
                frame_sizes=frames,
                fragments=len(frames),
            )
        )


def dissect_plain_dns(profile, name: Optional[str] = None) -> List[PacketDissection]:
    """Raw DNS messages over UDP, optionally inside DTLS records.

    The dissection hook behind the ``udp`` and ``dtls`` profiles:
    ``profile.secure`` selects the DTLS application-record overhead.
    """
    name = name or MEDIAN_NAME
    security = _DTLS_APP_OVERHEAD if profile.secure else 0
    builder = _DissectionBuilder(profile.name)
    for kind, message in canonical_messages(name).items():
        wire = message.encode()
        builder.add(kind, len(wire), security, 0, len(wire) + security)
    return builder.dissections


def dissect_doc(
    profile, method: Optional[Code] = None, name: Optional[str] = None
) -> List[PacketDissection]:
    """DNS over CoAP, plain or DTLS-secured (``profile.secure``)."""
    name = name or MEDIAN_NAME
    method = method or Code.FETCH
    messages = canonical_messages(name)
    security = _DTLS_APP_OVERHEAD if profile.secure else 0
    builder = _DissectionBuilder(profile.name)
    query_wire = messages["query"].encode()
    request = _doc_request(method, query_wire)
    encoded_request = request.encode()
    dns_in_request = len(query_wire) if method != Code.GET else len(
        base64url_encode(query_wire)
    ) + 4  # "dns=" prefix
    builder.add(
        "query", dns_in_request, security,
        len(encoded_request) - dns_in_request,
        len(encoded_request) + security,
    )
    for kind in ("response_a", "response_aaaa"):
        wire = messages[kind].encode()
        response = _doc_response(request, wire)
        encoded = response.encode()
        builder.add(
            kind, len(wire), security, len(encoded) - len(wire),
            len(encoded) + security,
        )
    return builder.dissections


def dissect_oscore(
    profile, name: Optional[str] = None, with_echo: bool = False
) -> List[PacketDissection]:
    """DNS over CoAP protected end-to-end with OSCORE.

    ``with_echo`` adds the Echo option carried during replay-window
    initialisation (Figure 6's largest request).
    """
    name = name or MEDIAN_NAME
    messages = canonical_messages(name)
    builder = _DissectionBuilder(profile.name)
    client, server = SecurityContext.pair(b"master-secret", b"salt")
    request = _doc_request(Code.FETCH, messages["query"].encode())
    if with_echo:
        request = request.with_option(OptionNumber.ECHO, bytes(8))
    outer_request, binding = protect_request(client, request)
    encoded_outer = outer_request.encode()
    inner_encoded = request.encode()
    query_wire_len = len(messages["query"].encode())
    builder.add(
        "query" if not with_echo else "query_echo",
        query_wire_len,
        len(encoded_outer) - len(inner_encoded),
        len(inner_encoded) - query_wire_len,
        len(encoded_outer),
    )
    _, server_binding = unprotect_request(server, outer_request)
    for kind in ("response_a", "response_aaaa"):
        wire = messages[kind].encode()
        response = _doc_response(request, wire)
        protected = protect_response(server, response, server_binding)
        encoded = protected.encode()
        plain_encoded = response.encode()
        builder.add(
            kind, len(wire),
            len(encoded) - len(plain_encoded),
            len(plain_encoded) - len(wire),
            len(encoded),
        )
    return builder.dissections


def dissect_transport(
    transport: str,
    method: Code = Code.FETCH,
    name: str = MEDIAN_NAME,
    with_echo: bool = False,
) -> List[PacketDissection]:
    """Dissect query/response packets for one registered transport.

    Dispatches through the transport registry, so plugin transports
    dissect exactly like the built-in ``udp``, ``dtls``, ``coap``,
    ``coaps``, and ``oscore`` profiles.
    """
    from repro.transports.registry import registry

    profile = registry.get(transport)
    return profile.dissect(method=method, name=name, with_echo=with_echo)


def dtls_handshake_dissections(transport: str = "dtls") -> List[PacketDissection]:
    """Link-layer dissection of every DTLS handshake flight (Figure 6)."""
    _, _, flights = establish_pair()
    dissections = []
    for _direction, flight_name, datagram in flights:
        frames = _frame_sizes_for_udp_payload(len(datagram))
        dissections.append(
            PacketDissection(
                transport=transport,
                message=flight_name,
                dns_bytes=0,
                security_bytes=len(datagram),
                coap_bytes=0,
                udp_payload=len(datagram),
                frame_sizes=frames,
                fragments=len(frames),
            )
        )
    return dissections


def dissect_all(
    name: str = MEDIAN_NAME,
) -> Dict[str, List[PacketDissection]]:
    """Figure 6's full grid: every transport's query/response packets.

    Built from the transport registry: every profile flagged
    ``in_figure6`` contributes its dissections, prefixed with the DTLS
    handshake flights where the profile carries a handshake and
    suffixed with the Echo variant where it supports one.
    """
    from repro.transports.registry import registry

    result: Dict[str, List[PacketDissection]] = {}
    for profile in registry:
        if not profile.in_figure6:
            continue
        dissections: List[PacketDissection] = []
        if profile.has_handshake:
            dissections.extend(dtls_handshake_dissections(profile.display_name))
        dissections.extend(profile.dissect(method=Code.FETCH, name=name))
        if profile.echo_variant:
            dissections.extend(profile.dissect(name=name, with_echo=True)[:1])
        result[profile.display_name] = dissections
    return result


def dissect_blockwise(
    block_size: int, name: str = MEDIAN_NAME, transport: str = "coap"
) -> List[PacketDissection]:
    """Figure 14: packet sizes under block-wise transfer.

    Builds the actual block messages: the Block1 query blocks (full and
    last), the 2.31 Continue acknowledgments, and the Block2 response
    blocks (full and last) for A and AAAA responses.
    """
    from repro.transports.registry import registry

    # DTLS record overhead applies only to CoAP carried inside DTLS
    # (CoAPS); OSCORE's overhead is COSE and already part of the
    # protected message, not a record wrapper.
    profile = registry.get(transport)
    security = (
        _DTLS_APP_OVERHEAD if profile.coap_based and profile.has_handshake else 0
    )
    messages = canonical_messages(name)
    query_wire = messages["query"].encode()
    dissections: List[PacketDissection] = []

    def add(kind: str, coap_message: CoapMessage, dns_len: int) -> None:
        encoded = coap_message.encode()
        frames = _frame_sizes_for_udp_payload(len(encoded) + security)
        dissections.append(
            PacketDissection(
                transport=f"{transport}-bs{block_size}",
                message=kind,
                dns_bytes=dns_len,
                security_bytes=security,
                coap_bytes=len(encoded) - dns_len,
                udp_payload=len(encoded) + security,
                frame_sizes=frames,
                fragments=len(frames),
            )
        )

    from repro.coap.blockwise import block_for, split_body

    # Query via Block1 (FETCH/POST only; GET cannot block-wise).
    query_blocks = split_body(query_wire, block_size)
    if len(query_blocks) > 1:
        request = _doc_request(Code.FETCH, query_wire, block_size=block_size)
        add("query [F/P]", request, len(query_blocks[0]))
        last_number = len(query_blocks) - 1
        block, chunk = block_for(query_wire, last_number, block_size)
        from dataclasses import replace

        last = replace(request, payload=chunk).without_option(
            OptionNumber.BLOCK1
        ).with_option(OptionNumber.BLOCK1, block.encode())
        add("query [F/P] (Last)", last, len(chunk))
        continue_reply = request.make_response(Code.CONTINUE).with_option(
            OptionNumber.BLOCK1, Block(0, True, block_size).encode()
        )
        add("2.31 Continue", continue_reply, 0)
    else:
        add("query [F/P]", _doc_request(Code.FETCH, query_wire), len(query_wire))
    add("query [G]", _doc_request(Code.GET, query_wire), 0)

    request = _doc_request(Code.FETCH, query_wire)
    for kind, label in (("response_a", "Response (A)"), ("response_aaaa", "Response (AAAA)")):
        wire = messages[kind].encode()
        blocks = split_body(wire, block_size)
        full_response = _doc_response(request, wire)
        if len(blocks) == 1:
            add(label, full_response, len(wire))
            continue
        from dataclasses import replace

        block, chunk = block_for(wire, 0, block_size)
        first = replace(full_response, payload=chunk).with_option(
            OptionNumber.BLOCK2, block.encode()
        )
        add(label, first, len(chunk))
        block, chunk = block_for(wire, len(blocks) - 1, block_size)
        last = replace(full_response, payload=chunk).with_option(
            OptionNumber.BLOCK2, block.encode()
        )
        add(f"{label[:-1]}, Last)", last, len(chunk))
    return dissections
