"""Unified caching subsystem.

One keyed store (:class:`KeyedCache`) backs every cache location the
paper evaluates — client DNS cache, client CoAP cache, forward-proxy
cache, resolver cache, and the cacheable-OSCORE ciphertext cache
(Sections 4.2 and 6.1). Domain modules contribute only key computation
and TTL/Max-Age semantics; storage, aging, eviction, the O(log n)
expiry index, and the unified :class:`CacheStats` live here.
"""

from .expiry import ExpiryIndex
from .stats import CacheStats
from .store import CacheEntry, EvictionPolicy, KeyedCache, LookupState

__all__ = [
    "CacheEntry",
    "CacheStats",
    "EvictionPolicy",
    "ExpiryIndex",
    "KeyedCache",
    "LookupState",
]
