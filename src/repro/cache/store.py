"""The generic keyed store every cache location shares.

:class:`KeyedCache` owns storage, aging, eviction, and statistics; the
domain modules keep what is genuinely theirs — cache-*key* computation
and TTL/Max-Age semantics (:mod:`repro.dns.cache`,
:mod:`repro.coap.cache`, :mod:`repro.oscore.cacheable` are thin
adapters). Two behaviours distinguish cache locations in the paper:

* **keep_stale** — CoAP caches retain expired entries so their ETag can
  revalidate upstream (RFC 7252 §5.6, the Figure 3 mechanism); DNS
  caches drop entries at TTL expiry (no revalidation in DNS).
* **eviction policy** — LRU, FIFO, or expired-first (prefer an already
  expired victim, found in O(log n) via the expiry heap, before
  displacing a live LRU entry).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Hashable, Iterator, Optional, Tuple

from .expiry import ExpiryIndex
from .stats import CacheStats


class EvictionPolicy(enum.Enum):
    """Victim selection when a full cache stores a new key.

    * ``LRU`` — evict the least recently used entry (lookup hits
      refresh recency);
    * ``FIFO`` — evict in insertion order (hits do not reorder);
    * ``EXPIRED_FIRST`` — evict an already-expired entry when one
      exists (O(log n) via the expiry index), falling back to LRU.
      This is what every deployed location wants: a dead entry never
      costs a live one its slot.
    """

    LRU = "lru"
    FIFO = "fifo"
    EXPIRED_FIRST = "expired-first"


class LookupState(enum.Enum):
    """What a lookup found."""

    HIT = "hit"          # fresh entry
    STALE = "stale"      # expired entry retained for revalidation
    MISS = "miss"        # nothing usable


class CacheEntry:
    """One stored value with its freshness bookkeeping.

    ``lifetime`` is the freshness duration in seconds (a DNS TTL or a
    CoAP Max-Age); the entry is fresh strictly before
    ``stored_at + lifetime``.
    """

    __slots__ = ("value", "stored_at", "lifetime")

    def __init__(self, value, stored_at: float, lifetime: float) -> None:
        self.value = value
        self.stored_at = stored_at
        self.lifetime = lifetime

    @property
    def expires_at(self) -> float:
        return self.stored_at + self.lifetime

    def age(self, now: float) -> float:
        return now - self.stored_at

    def is_fresh(self, now: float) -> bool:
        return now < self.expires_at

    def remaining(self, now: float) -> int:
        """Whole seconds of freshness left (0 when stale)."""
        return max(0, int(self.lifetime - self.age(now)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheEntry(value={self.value!r}, stored_at={self.stored_at}, "
            f"lifetime={self.lifetime})"
        )


class KeyedCache:
    """Bounded keyed store with TTL aging and pluggable eviction.

    Parameters
    ----------
    capacity:
        Maximum number of entries (>= 1).
    policy:
        Victim selection when full (default expired-first).
    keep_stale:
        When true, expired entries survive lookup as ``STALE`` results
        for upstream revalidation; when false they are dropped and the
        lookup is a ``MISS`` (DNS semantics).
    stats:
        Optionally share a :class:`CacheStats` instance (e.g. to pool
        several shards into one counter set).
    entry_factory:
        :class:`CacheEntry` subclass to instantiate on ``store`` —
        domain adapters use this to expose domain-named views
        (``response``/``ttl``/``max_age``) over the shared fields.
    """

    def __init__(
        self,
        capacity: int,
        policy: EvictionPolicy = EvictionPolicy.EXPIRED_FIRST,
        keep_stale: bool = False,
        stats: Optional[CacheStats] = None,
        entry_factory: type = CacheEntry,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._policy = policy
        self._keep_stale = keep_stale
        self._entry_factory = entry_factory
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._expiry = ExpiryIndex(self._current_expiry)
        # Decided once: only FIFO leaves recency untouched on hits.
        self._refresh_recency = policy is not EvictionPolicy.FIFO
        self.stats = stats if stats is not None else CacheStats()

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def policy(self) -> EvictionPolicy:
        return self._policy

    def peek(self, key: Hashable) -> Optional[CacheEntry]:
        """The raw entry for *key* — no stats, no recency update."""
        return self._entries.get(key)

    def entries(self) -> Iterator[Tuple[Hashable, CacheEntry]]:
        return iter(self._entries.items())

    def _current_expiry(self, key: Hashable) -> Optional[float]:
        entry = self._entries.get(key)
        return None if entry is None else entry.expires_at

    # -- lookups ----------------------------------------------------------

    def lookup(
        self, key: Hashable, now: float
    ) -> Tuple[Optional[CacheEntry], LookupState]:
        """Return ``(entry, state)`` for *key* at time *now*.

        ``HIT`` returns the fresh entry; ``STALE`` (only with
        ``keep_stale``) returns the expired entry for revalidation;
        ``MISS`` returns ``None``.
        """
        entries = self._entries
        entry = entries.get(key)
        if entry is None:
            # Short-circuit: a miss is one dict probe and a counter —
            # no recency churn and no expiry-index work.
            self.stats.misses += 1
            return None, LookupState.MISS
        if now < entry.stored_at + entry.lifetime:
            if self._refresh_recency:
                entries.move_to_end(key)
            self.stats.hits += 1
            return entry, LookupState.HIT
        if self._keep_stale:
            if self._refresh_recency:
                entries.move_to_end(key)
            self.stats.stale_hits += 1
            return entry, LookupState.STALE
        del entries[key]
        self.stats.misses += 1
        return None, LookupState.MISS

    # -- updates ----------------------------------------------------------

    def store(self, key: Hashable, value, lifetime: float, now: float) -> CacheEntry:
        """Insert or overwrite *key*; evicts per policy when full."""
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self._capacity:
            self._evict_one(now)
        entry = self._entry_factory(value, now, lifetime)
        self._entries[key] = entry
        self._expiry.push(entry.expires_at, key)
        self._expiry.compact_if_needed(len(self._entries))
        return entry

    def _evict_one(self, now: float) -> None:
        if self._policy is EvictionPolicy.EXPIRED_FIRST:
            key = self._expiry.pop_expired(now)
            if key is not None:
                # An already-dead entry makes room for free.
                del self._entries[key]
                return
        self._entries.popitem(last=False)
        self.stats.evictions += 1

    def refresh(
        self,
        key: Hashable,
        now: float,
        lifetime: float,
        value=None,
    ) -> Optional[CacheEntry]:
        """Revalidation hook: revive *key* with a new lifetime.

        Counts a successful validation and restamps the entry (and its
        value, when given). Returns ``None`` when *key* is not stored —
        the caller decides whether that is a failure.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        entry.stored_at = now
        entry.lifetime = lifetime
        if value is not None:
            entry.value = value
        self._expiry.push(entry.expires_at, key)
        self._expiry.compact_if_needed(len(self._entries))
        self.stats.validations += 1
        return entry

    def note_validation_failure(self) -> None:
        """Revalidation hook: the upstream validator did not match."""
        self.stats.validation_failures += 1

    def remove(self, key: Hashable) -> bool:
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def expire(self, now: float) -> int:
        """Drop every stale entry in O(k log n); returns the count."""
        removed = 0
        while True:
            key = self._expiry.pop_expired(now)
            if key is None:
                break
            del self._entries[key]
            removed += 1
        return removed

    def clear(self) -> None:
        self._entries.clear()
        self._expiry.clear()
