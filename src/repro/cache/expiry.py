"""Expiry index: find the next entry to die in O(log n).

The seed implementations scanned every entry on ``expire()`` and, when
full, evicted a *live* LRU entry even while expired ones sat in the
table. A lazy min-heap over ``(expires_at, key)`` fixes both: bulk
expiry pops only what is actually stale, and capacity eviction can ask
"is anything already dead?" before touching a live entry.

Laziness: entries are never removed from the heap on overwrite or
delete; a heap record is *current* only if the store still maps the key
to the same expiry time. Stale heap records are skipped on pop and the
heap is compacted once they dominate, keeping amortised costs
logarithmic.
"""

from __future__ import annotations

import heapq
from typing import Callable, Hashable, List, Optional, Tuple

#: Compact when the heap holds this many times more records than the
#: store has entries (bounds memory and amortises the rebuild).
_COMPACT_FACTOR = 4


class ExpiryIndex:
    """A lazy min-heap of ``(expires_at, key)`` records.

    Parameters
    ----------
    current_expiry:
        Callback mapping a key to its live expiry time, or ``None``
        when the key is no longer stored. This is how the heap decides
        whether a record is current without write-through bookkeeping.
    """

    def __init__(
        self, current_expiry: Callable[[Hashable], Optional[float]]
    ) -> None:
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._counter = 0
        self._current_expiry = current_expiry

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, expires_at: float, key: Hashable) -> None:
        """Record that *key* now expires at *expires_at*."""
        self._counter += 1
        heapq.heappush(self._heap, (expires_at, self._counter, key))

    def _skim(self) -> Optional[Tuple[float, Hashable]]:
        """Drop dead records off the top; return the current minimum."""
        while self._heap:
            expires_at, _, key = self._heap[0]
            if self._current_expiry(key) == expires_at:
                return expires_at, key
            heapq.heappop(self._heap)
        return None

    def peek_expired(self, now: float) -> Optional[Hashable]:
        """The key of one expired entry, or ``None`` if all are fresh."""
        top = self._skim()
        if top is not None and top[0] <= now:
            return top[1]
        return None

    def pop_expired(self, now: float) -> Optional[Hashable]:
        """Remove and return one expired key (its heap record only —
        the caller removes it from the store)."""
        top = self._skim()
        if top is None or top[0] > now:
            return None
        heapq.heappop(self._heap)
        return top[1]

    def compact_if_needed(self, live_entries: int) -> None:
        """Rebuild the heap when dead records dominate it."""
        if len(self._heap) <= max(8, live_entries * _COMPACT_FACTOR):
            return
        current = []
        seen = set()
        # Keep the newest record per key (later counter wins).
        for expires_at, counter, key in sorted(
            self._heap, key=lambda rec: -rec[1]
        ):
            if key in seen:
                continue
            if self._current_expiry(key) == expires_at:
                seen.add(key)
                current.append((expires_at, counter, key))
        heapq.heapify(current)
        self._heap = current

    def clear(self) -> None:
        self._heap.clear()
        self._counter = 0
