"""The one stats convention every cache location reports.

Before this module existed the repo counted cache events three
different ways (bare ``hits``/``misses`` ints on the DNS cache, a
five-field struct on the CoAP cache, ad-hoc proxy counters); Figure 11
aggregation had to know all of them. :class:`CacheStats` is the single
vocabulary — every location (client DNS, client CoAP, forward proxy,
resolver, OSCORE ciphertext) exposes exactly these counters, so
per-location ratios fall out of any sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class CacheStats:
    """Unified cache event counters (the events of Figure 11).

    * ``hits`` — fresh entries served without any network traffic;
    * ``misses`` — lookups that found nothing usable;
    * ``stale_hits`` — lookups that found an expired entry kept for
      revalidation (the caller should offer its ETag upstream);
    * ``validations`` — stale entries revived by a 2.03 Valid (the
      EOL-TTLs win in Figure 3, step 4);
    * ``validation_failures`` — revalidation attempts whose validator
      no longer matched (the DoH-like failure mode);
    * ``evictions`` — live entries displaced by capacity pressure
      (expired entries removed to make room are not counted here).
    """

    hits: int = 0
    misses: int = 0
    stale_hits: int = 0
    validations: int = 0
    validation_failures: int = 0
    evictions: int = 0

    def reset(self) -> None:
        for spec in fields(self):
            setattr(self, spec.name, 0)

    # -- derived ratios ---------------------------------------------------

    @property
    def lookups(self) -> int:
        """Total lookups that reached the cache."""
        return self.hits + self.misses + self.stale_hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def stale_ratio(self) -> float:
        return self.stale_hits / self.lookups if self.lookups else 0.0

    @property
    def validation_ratio(self) -> float:
        """Successful revalidations per stale hit."""
        return self.validations / self.stale_hits if self.stale_hits else 0.0

    # -- aggregation ------------------------------------------------------

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Accumulate *other* into self (sums caches across clients)."""
        for spec in fields(self):
            setattr(
                self, spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        return self

    def as_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}
