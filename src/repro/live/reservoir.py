"""Bounded latency sampling for high-qps load generation.

At six-figure aggregate qps a full per-query latency list grows without
bound; :class:`LatencyReservoir` caps the memory at a fixed number of
samples while keeping the quantile estimates honest. It keeps

* **exact** running aggregates — count, sum (mean), minimum, maximum —
  updated on every observation, and
* a **uniform random sample** of at most ``capacity`` observations via
  reservoir sampling (Vitter's Algorithm R): once the reservoir is
  full, the *i*-th observation replaces a random slot with probability
  ``capacity / i``, so every observation seen so far is equally likely
  to be in the sample.

While the observation count stays at or below ``capacity`` the
reservoir simply holds *every* sample in arrival order, so percentile
summaries are bit-identical to the previous full-sample sort — short
runs lose nothing. Beyond the cap, percentiles become estimates whose
error shrinks with ``capacity`` (a 4096-sample reservoir keeps p50/p95
within a few percent and p99 within ~10% on heavy-tailed
distributions).

The replacement draws come from the reservoir's **own** seeded RNG so
sampling never perturbs the load generator's arrival/name streams, and
a given (seed, observation stream) always yields the same sample.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

#: Default sample cap: small enough to bound memory at any qps, large
#: enough that p99 over a multi-second run stays a tight estimate.
DEFAULT_RESERVOIR_CAPACITY = 4096


class LatencyReservoir:
    """A bounded uniform sample with exact count/mean/min/max."""

    __slots__ = ("capacity", "count", "total", "minimum", "maximum",
                 "samples", "_rng")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY,
                 seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.samples: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        """Observe one latency sample (seconds)."""
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self.samples) < self.capacity:
            self.samples.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self.samples[slot] = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    @property
    def saturated(self) -> bool:
        """True once observations were dropped (estimates, not exact)."""
        return self.count > self.capacity

    def percentile(self, q: float) -> Optional[float]:
        """Linear-interpolated percentile over the retained sample."""
        if not self.samples:
            return None
        from repro.experiments.metrics import percentile

        return percentile(self.samples, q)

    def summary_ms(self) -> Dict[str, Optional[float]]:
        """The loadgen report's ``latency_ms`` block (values in ms).

        Percentiles come from the retained sample; mean/min/max are the
        exact running aggregates regardless of saturation.
        """
        if not self.count:
            return {
                "p50": None, "p95": None, "p99": None,
                "mean": None, "min": None, "max": None,
            }
        return {
            "p50": round(self.percentile(50) * 1000, 3),
            "p95": round(self.percentile(95) * 1000, 3),
            "p99": round(self.percentile(99) * 1000, 3),
            "mean": round(self.mean * 1000, 3),
            "min": round(self.minimum * 1000, 3),
            "max": round(self.maximum * 1000, 3),
        }
