"""The live DoC client: an async resolve API over real sockets.

:class:`LiveResolver` wraps the sans-IO client stack —
:class:`~repro.doc.DocClient` for the CoAP-based transports,
:class:`~repro.transports.dns_over_udp.DnsOverUdpClient` for the
datagram baselines — behind ``await resolver.resolve(name)``: the
stack's one-shot callbacks are bridged onto asyncio futures, and the
retransmission/back-off machinery runs on the wall clock exactly as it
runs on simulated time.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.coap.codes import Code
from repro.dns.enums import RecordType
from repro.doc.caching import CachingScheme

from .clock import AsyncioClock
from .transport import LiveUdpTransport
from .wiring import (
    DEFAULT_LIVE_PORT,
    DEFAULT_PSK,
    DEFAULT_PSK_IDENTITY,
    DEFAULT_SECRET,
    LiveWiringError,
    check_live_transport,
    derive_oscore_pair,
)

#: Default per-query deadline: the stack's own retransmission schedule
#: gives up long before this; the asyncio-level timeout is a backstop.
DEFAULT_QUERY_TIMEOUT = 10.0


@dataclass
class LiveResult:
    """Outcome of one live resolution."""

    name: str
    rtype: int
    addresses: List[str]
    rtt: float
    #: DNS response code (0 = NOERROR); a response arriving is not the
    #: same as a name resolving.
    rcode: int = 0
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        """True when the server answered NOERROR."""
        return self.rcode == 0


class LiveResolver:
    """An asyncio-native stub resolver over any live transport.

    Use as an async context manager (or call :meth:`connect` /
    :meth:`close`); resolve with ``await resolver.resolve(name)``.
    Configuration mirrors :class:`~repro.live.server.DocLiveServer`:
    matching ``secret``/``psk`` values are what let the two halves
    establish OSCORE/DTLS security without a side channel.

    OSCORE caveat: the security context's sender sequence lives in the
    resolver, so one *secret* supports one concurrent resolver session
    per server — a second session restarts the sequence at 0 and the
    server's replay window rejects it (as RFC 8613 requires). Run
    long-lived sessions, or distinct secrets per client.
    """

    def __init__(
        self,
        server: Tuple[str, int] = ("127.0.0.1", DEFAULT_LIVE_PORT),
        transport: str = "coap",
        method: Code = Code.FETCH,
        scheme: CachingScheme = CachingScheme.EOL_TTLS,
        cache_placement: str = "none",
        block_size: Optional[int] = None,
        seed: int = 2,
        secret: bytes = DEFAULT_SECRET,
        psk: bytes = DEFAULT_PSK,
        psk_identity: bytes = DEFAULT_PSK_IDENTITY,
        timeout: float = DEFAULT_QUERY_TIMEOUT,
    ) -> None:
        self.transport_name = check_live_transport(transport)
        self.server = server
        self.method = method
        self.scheme = scheme
        self.block_size = block_size
        self.seed = seed
        self.timeout = timeout
        self._secret = secret
        self._psk = psk
        self._psk_identity = psk_identity
        self._placement = self._parse_placement(cache_placement)
        self.clock = AsyncioClock(seed=seed)
        self._socket: Optional[LiveUdpTransport] = None
        self._client = None
        self.timeouts = 0

    @staticmethod
    def _parse_placement(placement: str) -> Dict[str, bool]:
        # One canonical parser for the +-joined placement vocabulary;
        # the live client merely has no proxy to cache at.
        from repro.scenarios.scenario import CachingSpec

        spec = CachingSpec.from_placement(placement)
        if spec.proxy and placement.strip().lower() != "all":
            raise LiveWiringError(
                "the live client has no proxy cache; use client-dns, "
                "client-coap, all, or none"
            )
        return {"client-dns": spec.client_dns, "client-coap": spec.client_coap}

    # -- lifecycle --------------------------------------------------------

    async def connect(self) -> "LiveResolver":
        if self._socket is not None:
            raise LiveWiringError("resolver already connected")
        # Resolve the server to a numeric endpoint first: the stack
        # addresses it datagram by datagram, and the source filter
        # compares numeric addresses (a hostname would never match).
        self.server, family = await self._resolve_server()
        # Bind narrowly (loopback server -> loopback client socket) and
        # accept datagrams from the configured server only; the stack
        # matches responses by txid/token, which off-path hosts could
        # otherwise forge.
        self._socket = await LiveUdpTransport.create(
            self._bind_host(self.server[0], family), 0,
            allowed_peer=self.server,
        )
        self._client = self._build_stack()
        return self

    async def _resolve_server(self):
        import socket as socket_module

        loop = asyncio.get_running_loop()
        try:
            infos = await loop.getaddrinfo(
                self.server[0], self.server[1],
                type=socket_module.SOCK_DGRAM,
            )
        except OSError as exc:
            raise LiveWiringError(
                f"cannot resolve server {self.server[0]!r}: {exc}"
            ) from None
        family, _type, _proto, _canon, sockaddr = infos[0]
        return (sockaddr[0], sockaddr[1]), family

    @staticmethod
    def _bind_host(server_host: str, family) -> str:
        import ipaddress
        import socket as socket_module

        v6 = family == socket_module.AF_INET6
        if ipaddress.ip_address(server_host).is_loopback:
            return "::1" if v6 else "127.0.0.1"
        return "::" if v6 else "0.0.0.0"

    async def close(self) -> None:
        # The client object is kept after close so stats() can still
        # report final counters and cache ratios.
        if self._socket is not None:
            self._cancel_pending_timers()
            self._socket.close()
            self._socket = None

    def _cancel_pending_timers(self) -> None:
        """Best-effort disarm of in-flight retransmission timers so a
        closed resolver stops ticking (late sends on the closed socket
        are dropped anyway, this just quiets the event loop)."""
        client = self._client
        if client is None:
            return
        coap = getattr(client, "coap", client)
        for exchange in getattr(coap, "_exchanges", {}).values():
            timer = getattr(exchange, "timer", None)
            if timer is not None:
                timer.cancel()
        for pending in getattr(client, "_pending", {}).values():
            timer = getattr(pending, "timer", None)
            if timer is not None:
                timer.cancel()

    async def __aenter__(self) -> "LiveResolver":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- wiring -----------------------------------------------------------

    def _dns_cache(self):
        if not self._placement["client-dns"]:
            return None
        from repro.dns import DNSCache

        return DNSCache(64)

    def _build_stack(self):
        name = self.transport_name
        if name == "udp":
            from repro.transports.dns_over_udp import DnsOverUdpClient

            return DnsOverUdpClient(
                self.clock, self._socket, self.server,
                dns_cache=self._dns_cache(),
            )
        if name == "dtls":
            from repro.transports.dns_over_dtls import DnsOverDtlsClient

            return DnsOverDtlsClient(
                self.clock, self._socket, self.server,
                psk=self._psk, psk_identity=self._psk_identity,
                dns_cache=self._dns_cache(),
            )

        from repro.doc import DocClient

        socket = self._socket
        oscore_context = None
        if name == "coaps":
            from repro.transports.dtls_adapter import DtlsClientAdapter

            socket = DtlsClientAdapter(
                self.clock, socket, self.server,
                psk=self._psk, psk_identity=self._psk_identity,
            )
        elif name == "oscore":
            oscore_context = derive_oscore_pair(self._secret)[0]
        coap_cache = None
        if self._placement["client-coap"]:
            from repro.coap.cache import CoapCache

            coap_cache = CoapCache(64)
        return DocClient(
            self.clock, socket, self.server,
            method=self.method, scheme=self.scheme,
            coap_cache=coap_cache, dns_cache=self._dns_cache(),
            block_size=self.block_size, oscore_context=oscore_context,
        )

    # -- resolution -------------------------------------------------------

    async def resolve(
        self,
        name: str,
        rtype: int = int(RecordType.AAAA),
        timeout: Optional[float] = None,
    ) -> LiveResult:
        """Resolve *name*; raises the stack's error (timeout, DoC
        failure, OSCORE rejection) or :class:`asyncio.TimeoutError`
        when the backstop deadline passes first."""
        if self._client is None or self._socket is None:
            raise LiveWiringError("resolver is not connected")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        started = loop.time()

        def on_result(result, error) -> None:
            if future.done():
                return
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)

        self._client.resolve(name, rtype, on_result)
        try:
            result = await asyncio.wait_for(
                future, timeout if timeout is not None else self.timeout
            )
        except asyncio.TimeoutError:
            self.timeouts += 1
            raise
        rtt = loop.time() - started
        addresses = list(getattr(result, "addresses", ()) or ())
        from_cache = bool(getattr(result, "from_cache", False))
        rcode = getattr(result, "rcode", None)
        if rcode is None:
            response = getattr(result, "response", None)
            rcode = int(response.flags.rcode) if response is not None else 0
        return LiveResult(
            name=name, rtype=rtype, addresses=addresses,
            rtt=rtt, rcode=int(rcode), from_cache=from_cache,
        )

    # -- observability ----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Client-side counters and cache ratios (JSON-serialisable)."""
        stats: Dict[str, object] = {
            "transport": self.transport_name,
            "timeouts": self.timeouts,
        }
        client = self._client
        if client is None:
            return stats
        for attr in (
            "resolutions_started", "resolutions_completed",
            "resolutions_failed", "transmissions", "retransmissions",
        ):
            value = getattr(client, attr, None)
            if value is not None:
                stats[attr] = value
        caches: Dict[str, object] = {}

        def pool(location: str, cache) -> None:
            if cache is None:
                return
            # The full per-location vocabulary of repro.cache.CacheStats
            # — the same counters/ratios the simulated runner reports,
            # so sim and live cache metrics diff key-for-key.
            caches[location] = {
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "stale_hits": cache.stats.stale_hits,
                "validations": cache.stats.validations,
                "validation_failures": cache.stats.validation_failures,
                "hit_ratio": cache.stats.hit_ratio,
                "stale_ratio": cache.stats.stale_ratio,
                "validation_ratio": cache.stats.validation_ratio,
            }

        stub = getattr(client, "stub", None)
        pool("client_dns", getattr(stub, "cache", None))
        coap = getattr(client, "coap", None)
        pool("client_coap", getattr(coap, "cache", None))
        stats["caches"] = caches
        return stats
