"""DoC load generation: measure real queries-per-second and latency.

Drives a :class:`~repro.live.client.LiveResolver` against a live
server in one of two disciplines:

* **open loop** — arrivals follow a :class:`~repro.scenarios.WorkloadSpec`
  arrival process (steady Poisson or on/off bursty) at the offered
  rate, independent of response latency: the honest way to measure a
  server under load;
* **closed loop** — ``concurrency`` workers issue back-to-back
  queries, measuring sustainable throughput at a fixed concurrency.

Names are drawn from the workload's popularity model (round-robin or
Zipf(α)) over the same deterministic universe the server built its
zone from. The result is a JSON-ready report: achieved qps, latency
percentiles (p50/p95/p99), timeout and failure counts, and client
cache ratios.
"""

from __future__ import annotations

import asyncio
import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.api.report import REPORT_VERSION, provenance
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    LATENCY_SECONDS,
    QUERIES_TOTAL,
    RESPONSES_TOTAL,
    TelemetrySampler,
    run_sampler,
)
from repro.scenarios.scenario import WorkloadSpec

from .client import LiveResolver
from .reservoir import DEFAULT_RESERVOIR_CAPACITY, LatencyReservoir
from .wiring import LiveWiringError

#: Top-level keys every report carries, in emission order. The version
#: and provenance stamps are the toolkit-wide ones from
#: :mod:`repro.api.report`.
REPORT_FIELDS = (
    "report_version", "provenance", "mode", "transport",
    "offered_rate_qps", "concurrency", "duration_s", "elapsed_s",
    "queries", "succeeded", "failed", "timeouts", "rcode_failures",
    "success_rate", "achieved_qps", "latency_ms", "cache", "workload",
    "seed", "telemetry",
)

__all__ = [
    "LoadGenError",
    "REPORT_FIELDS",
    "REPORT_VERSION",
    "generate_load",
    "generate_report",
]


class LoadGenError(LiveWiringError):
    """An inconsistent load-generation configuration.

    Subclasses :class:`~repro.live.wiring.LiveWiringError` so the CLI
    catches every live misconfiguration through one import-light base.
    """


async def generate_load(
    resolver: LiveResolver,
    names: Sequence[str],
    rate: float = 50.0,
    duration: float = 2.0,
    mode: str = "open",
    concurrency: int = 8,
    timeout: Optional[float] = None,
    seed: int = 1,
    workload: Optional[WorkloadSpec] = None,
    include_latencies: bool = False,
    reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
    registry: Optional[MetricsRegistry] = None,
    telemetry_interval: float = 1.0,
    snapshot_sinks: Sequence[Callable[[Dict[str, object]], None]] = (),
) -> Dict[str, object]:
    """Run one load-generation pass and return the report dict.

    *resolver* must already be connected. *workload* carries the
    arrival/popularity knobs (its ``query_rate``/``num_queries``/
    ``num_names`` are overridden from *rate*, *duration*, and
    *names* so one spec works for both simulated and live runs);
    omitted, a steady-Poisson/round-robin spec is derived.

    *include_latencies* appends the per-query ``latencies_ms`` samples
    to the report (beyond :data:`REPORT_FIELDS`) — what lets
    :mod:`repro.api` pool quantiles across repeated passes and
    distributed workers.

    Latency samples are held in a bounded
    :class:`~repro.live.reservoir.LatencyReservoir` of
    *reservoir_capacity* entries, so memory stays flat at any qps;
    runs shorter than the capacity keep every sample (exact
    percentiles, identical to a full-sample sort), longer runs report
    reservoir estimates while mean/min/max stay exact.

    Query outcomes count through a :class:`repro.obs.metrics.
    MetricsRegistry` (pass *registry* to scrape mid-run, e.g. from a
    paired ``/metrics`` endpoint; omitted, a private one is created).
    A :class:`repro.obs.telemetry.TelemetrySampler` snapshots it every
    *telemetry_interval* seconds into the report's ``telemetry`` time
    series; *snapshot_sinks* receive each per-second record as it is
    produced — the hook behind ``--stream`` and the stderr progress
    line.
    """
    if not names:
        raise LoadGenError("names must not be empty")
    if duration <= 0:
        raise LoadGenError("duration must be positive")
    if mode not in ("open", "closed"):
        raise LoadGenError(f"unknown load mode {mode!r} (open or closed)")
    if mode == "open" and rate <= 0:
        raise LoadGenError("rate must be positive in open-loop mode")
    if mode == "closed" and concurrency < 1:
        raise LoadGenError("concurrency must be >= 1 in closed-loop mode")

    from dataclasses import replace

    num_queries = max(1, round(rate * duration)) if mode == "open" else 1
    base = workload if workload is not None else WorkloadSpec()
    spec = replace(
        base,
        num_queries=num_queries,
        num_names=len(names),
        query_rate=rate if mode == "open" else base.query_rate,
        start=0.0,
    )

    rng = random.Random(seed)
    loop = asyncio.get_running_loop()
    # The reservoir draws from its own RNG so bounding the sample never
    # perturbs the arrival/name streams (seed replayability contract).
    latencies = LatencyReservoir(reservoir_capacity, seed=seed)
    metrics = registry if registry is not None else MetricsRegistry()
    issued_counter = metrics.counter(
        QUERIES_TOTAL, "queries issued by the load generator"
    )
    responses = metrics.counter(
        RESPONSES_TOTAL, "query outcomes by result", labels=("result",)
    )
    latency_hist = metrics.histogram(
        LATENCY_SECONDS, "successful-query round-trip time"
    )
    # Children hoisted out of the hot path: one attribute increment
    # per outcome, no dict/label lookup per query.
    count_issued = metrics.counter(QUERIES_TOTAL).labels()
    count_ok = responses.labels(result="ok")
    count_timeout = responses.labels(result="timeout")
    count_error = responses.labels(result="error")
    count_rcode = responses.labels(result="rcode")
    observe_latency = latency_hist.labels()
    last_success = {"at": None}

    async def one_query(sequence_index: int) -> None:
        count_issued.inc()
        name = names[spec.draw_name_index(rng, sequence_index)]
        rtype = spec.draw_rtype(rng)
        try:
            result = await resolver.resolve(name, rtype, timeout=timeout)
        except asyncio.TimeoutError:
            count_timeout.inc()
        except Exception:
            count_error.inc()
        else:
            if result.ok:
                # A response is only a success when the name resolved:
                # NXDOMAIN against a mismatched zone (e.g. differing
                # --name-seed between serve and loadtest) must not
                # read as a healthy run.
                count_ok.inc()
                latencies.add(result.rtt)
                observe_latency.observe(result.rtt)
                last_success["at"] = loop.time()
            else:
                count_rcode.inc()

    sampler = TelemetrySampler(
        metrics, interval=telemetry_interval,
        time_fn=loop.time, sinks=snapshot_sinks,
    )
    sampler_stop = asyncio.Event()
    sampler_task = asyncio.ensure_future(run_sampler(sampler, sampler_stop))

    started = loop.time()
    if mode == "open":
        arrivals = spec.arrival_times(rng)
        tasks: List[asyncio.Task] = []
        for index, at in enumerate(arrivals):
            if at > duration:
                break
            delay = started + at - loop.time()
            # Always yield, even when behind schedule: otherwise the
            # created tasks never start and a backlog fires as one
            # clump instead of at the offered arrival instants.
            await asyncio.sleep(delay if delay > 0 else 0)
            tasks.append(asyncio.ensure_future(one_query(index)))
        if tasks:
            await asyncio.gather(*tasks)
    else:
        deadline = started + duration
        counter = iter(range(1 << 62))

        async def worker() -> None:
            while loop.time() < deadline:
                await one_query(next(counter))

        await asyncio.gather(*(worker() for _ in range(concurrency)))
    elapsed = loop.time() - started
    sampler_stop.set()
    timeline = await sampler_task

    issued = count_issued.value
    outcomes = {
        "succeeded": count_ok.value,
        "timeouts": count_timeout.value,
        "rcode_failures": count_rcode.value,
        "failed": (
            count_timeout.value + count_error.value + count_rcode.value
        ),
    }
    completed = outcomes["succeeded"] + outcomes["failed"]
    # Throughput over the span in which successes actually landed —
    # waiting out the timeouts of stragglers after the offered window
    # must not dilute the rate the server demonstrably sustained.
    success_span = (
        last_success["at"] - started if last_success["at"] is not None else 0.0
    )
    report: Dict[str, object] = {
        "report_version": REPORT_VERSION,
        "provenance": provenance(),
        "mode": mode,
        "transport": resolver.transport_name,
        "offered_rate_qps": rate if mode == "open" else None,
        "concurrency": concurrency if mode == "closed" else None,
        "duration_s": duration,
        "elapsed_s": round(elapsed, 3),
        "queries": issued,
        "succeeded": outcomes["succeeded"],
        "failed": outcomes["failed"],
        "timeouts": outcomes["timeouts"],
        "rcode_failures": outcomes["rcode_failures"],
        "success_rate": (
            outcomes["succeeded"] / completed if completed else 0.0
        ),
        "achieved_qps": (
            round(outcomes["succeeded"] / success_span, 3)
            if success_span > 0 else 0.0
        ),
        "latency_ms": latencies.summary_ms(),
        "cache": resolver.stats().get("caches", {}),
        "workload": {
            "names": len(names),
            "arrival": spec.arrival,
            "burst_on": spec.burst_on,
            "burst_off": spec.burst_off,
            "zipf_alpha": spec.zipf_alpha,
        },
        "seed": seed,
        "telemetry": timeline,
    }
    if include_latencies:
        report["latencies_ms"] = [
            round(s * 1000, 3) for s in latencies.samples
        ]
    return report


async def generate_report(
    resolver: LiveResolver,
    names: Sequence[str],
    spec: Optional[Dict[str, object]] = None,
    server_stats: Optional[Dict[str, object]] = None,
    **kwargs,
) -> "Report":
    """Run one pass and return the unified :class:`repro.api.Report`
    (the native vocabulary of the façade; :func:`generate_load` keeps
    returning the flat loadgen dict, available as ``report.raw``).

    *spec* stamps the Report's run description (a
    :meth:`repro.api.RunSpec.to_dict` document); *server_stats*
    attaches the paired server's counters under ``live.server.*``.
    Remaining keyword arguments pass through to :func:`generate_load`.
    """
    from repro.api.report import report_from_loadgen

    kwargs.setdefault("include_latencies", True)
    report = await generate_load(resolver, names, **kwargs)
    return report_from_loadgen(report, spec=spec, server_stats=server_stats)
