"""Sharded multi-worker serving and distributed load generation.

One :class:`~repro.live.server.DocLiveServer` is one event loop on one
socket — per-core wins cannot multiply across cores. This module
scales the live runtime the way production DNS resolvers do: **kernel
socket sharding**. A :class:`ServePool` forks N worker processes, each
running its own asyncio loop (optionally `uvloop`, see
:func:`maybe_install_uvloop`) with its own server stack — per-worker
resolver/fastpath/DNS/CoAP caches, per-worker RNG — all bound to the
*same* ``host:port`` through ``SO_REUSEPORT``, so the kernel hashes
inbound flows across the workers with no userspace dispatcher. The
load generator distributes the same way: :func:`run_distributed_load`
forks M generator processes with deterministically derived seeds
(:func:`derive_worker_seed`) and merges their reports — counters sum,
latency reservoirs pool, per-worker stats ride along under
``live.workers.*`` in the unified Report.

Control runs over a per-worker duplex pipe: workers announce
``("ready", endpoint)`` once bound, the parent broadcasts ``"stop"``
to drain gracefully, and each worker answers with its final stats
block before exiting. A worker that crashes mid-run is detected by
process liveness, surfaces in the pool's nonzero :attr:`exit_code`,
and the surviving workers' stats still merge (partial-stats contract).

Platforms without ``SO_REUSEPORT`` (detected by actually double-
binding a probe port, not by attribute sniffing) fall back to a
single worker and surface a warning in the merged stats.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.log import get_logger

from .wiring import DEFAULT_SECRET, LiveWiringError

__all__ = [
    "LoadPool",
    "ServePool",
    "WorkerPool",
    "WorkerPoolError",
    "derive_worker_seed",
    "maybe_install_uvloop",
    "merge_loadgen_reports",
    "merge_server_stats",
    "reuseport_supported",
    "run_distributed_load",
    "run_sharded_spec",
    "uvloop_available",
]

#: How long a mid-run metrics scrape waits per worker snapshot.
SAMPLE_TIMEOUT = 2.0

_pool_log = get_logger("repro.live.workers")

#: How long the parent waits for every worker to report ready.
READY_TIMEOUT = 30.0

#: How long a drain waits for a worker's final stats before declaring
#: the worker failed and terminating it.
DRAIN_TIMEOUT = 15.0

#: How long the parent waits for load workers' reports. Load workers
#: run for the configured duration plus per-query timeouts; ten minutes
#: bounds a wedged worker without cutting off a legitimate long run.
LOAD_COLLECT_TIMEOUT = 600.0

#: The warning surfaced when sharding was requested but the platform
#: cannot do it.
REUSEPORT_WARNING = (
    "SO_REUSEPORT is unavailable on this platform; "
    "falling back to a single worker"
)


class WorkerPoolError(LiveWiringError):
    """A worker pool failed to start, crashed, or was misconfigured."""


# -- capability detection --------------------------------------------------


def reuseport_supported(host: str = "127.0.0.1") -> bool:
    """Whether two sockets can actually share one UDP port on *host*.

    Attribute presence is not enough (macOS exposes ``SO_REUSEPORT``
    with different semantics; some container seccomp profiles reject
    the setsockopt), so this binds a probe socket and then binds a
    second one to the same port — the exact operation a worker pool
    performs.
    """
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = second = None
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        probe.bind((host, 0))
        second = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        second.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        second.bind((host, probe.getsockname()[1]))
    except OSError:
        return False
    finally:
        if second is not None:
            second.close()
        if probe is not None:
            probe.close()
    return True


def uvloop_available() -> bool:
    """Whether the optional `uvloop` accelerator can be used.

    ``REPRO_NO_UVLOOP=1`` opts out even when the package is installed
    (mirrors ``REPRO_PURE_CRYPTO`` for the AES backend).
    """
    if os.environ.get("REPRO_NO_UVLOOP"):
        return False
    try:
        import uvloop  # noqa: F401
    except ImportError:
        return False
    return True


def maybe_install_uvloop() -> bool:
    """Install the uvloop event-loop policy when available; returns
    whether it is active. Safe to call in every worker: a missing
    package or the ``REPRO_NO_UVLOOP`` opt-out leave the stdlib loop
    in place."""
    if not uvloop_available():
        return False
    import uvloop

    uvloop.install()
    return True


def derive_worker_seed(seed: int, index: int) -> int:
    """A deterministic, well-spread seed for worker *index*.

    SplitMix64-style finalizer over ``seed + (index+1) * golden-ratio``:
    distinct workers land far apart in seed space (adjacent base seeds
    or the repeat spacing of ``RunSpec.repeat_seeds`` cannot collide
    with a worker derivation), and the same ``(seed, index)`` always
    yields the same value — distributed runs replay exactly.
    """
    mask = (1 << 64) - 1
    x = (seed + 0x9E3779B97F4A7C15 * (index + 1)) & mask
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & mask
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & mask
    x ^= x >> 31
    return x


# -- the generic pool ------------------------------------------------------


class WorkerPool:
    """N forked worker processes with a pipe control channel each.

    Subclass-agnostic mechanics: fork, collect ready messages,
    broadcast commands, collect final payloads with crash detection,
    join/terminate. *target* is a picklable module-level callable
    invoked as ``target(index, config, connection)`` in the child.
    """

    role = "worker"

    def __init__(self, target, configs: Sequence[dict]) -> None:
        if not configs:
            raise WorkerPoolError("worker pool needs at least one worker")
        self._target = target
        self._configs = list(configs)
        self._procs: List[multiprocessing.Process] = []
        self._conns: List = []
        self._failed: List[int] = []
        self._started = False
        # Serializes pipe use between the owning thread and the
        # metrics HTTP thread's mid-run ``sample()`` scrapes.
        self._pipe_lock = threading.Lock()

    @property
    def workers(self) -> int:
        return len(self._configs)

    @property
    def processes(self) -> List[multiprocessing.Process]:
        return list(self._procs)

    @property
    def failed_workers(self) -> List[int]:
        """Indices of workers that died without delivering a payload."""
        return list(self._failed)

    @property
    def exit_code(self) -> int:
        """0 when every worker exited cleanly, 1 otherwise."""
        if self._failed:
            return 1
        for proc in self._procs:
            if proc.exitcode not in (0, None):
                return 1
        return 0

    def start(self) -> None:
        if self._started:
            raise WorkerPoolError("pool already started")
        self._started = True
        for index, config in enumerate(self._configs):
            self._spawn(index, config)

    def _spawn(self, index: int, config: dict) -> None:
        """Fork one worker with its control pipe.

        Do not hold sockets the children must not inherit across this
        call: the fork start method copies every open FD, and an
        inherited-but-unread member of an SO_REUSEPORT group silently
        blackholes the flows the kernel hashes to it.
        """
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=self._target,
            args=(index, config, child_conn),
            name=f"repro-{self.role}-{index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs.append(proc)
        self._conns.append(parent_conn)

    def _recv(self, index: int, kind: str, timeout: float):
        """One worker's next *kind* message, or ``None`` on crash/timeout."""
        conn, proc = self._conns[index], self._procs[index]
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                if conn.poll(min(remaining, 0.1)):
                    message = conn.recv()
                    if message[0] == kind:
                        return message[1]
                    if message[0] == "error":
                        return None
                    continue  # unrelated message kind: keep waiting
            except (EOFError, OSError):
                return None
            if not proc.is_alive():
                # Drain anything flushed before the exit, then give up.
                try:
                    while conn.poll(0):
                        message = conn.recv()
                        if message[0] == kind:
                            return message[1]
                except (EOFError, OSError):
                    pass
                return None

    def broadcast(self, command: str) -> None:
        for conn in self._conns:
            try:
                conn.send((command,))
            except (BrokenPipeError, OSError):
                pass  # dead worker: picked up by collect()

    def collect(self, kind: str, timeout: float = DRAIN_TIMEOUT) -> List:
        """Every worker's final *kind* payload; crashed or unresponsive
        workers are recorded in :attr:`failed_workers` and skipped
        (the partial-stats contract)."""
        payloads = []
        for index in range(self.workers):
            payload = self._recv(index, kind, timeout)
            if payload is None:
                self._record_failure(index)
            else:
                payloads.append(payload)
        self.join()
        return payloads

    def _record_failure(self, index: int) -> None:
        """Mark worker *index* failed and emit the structured crash
        record (worker index, exit code, decoded signal, and the
        partial-stats flag the merged report carries)."""
        if index in self._failed:
            return
        self._failed.append(index)
        proc = self._procs[index]
        exitcode = proc.exitcode
        signal_name = None
        if exitcode is not None and exitcode < 0:
            try:
                signal_name = signal.Signals(-exitcode).name
            except ValueError:
                signal_name = None
        _pool_log.error(
            "worker died without delivering its payload",
            role=self.role,
            worker=index,
            exitcode=exitcode,
            signal=signal_name,
            alive=proc.is_alive(),
            partial_stats=True,
        )

    def join(self, timeout: float = 5.0) -> None:
        for proc in self._procs:
            proc.join(timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout)

    def terminate(self) -> None:
        """Hard stop (cleanup path — no stats are collected)."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        self.join()


# -- serve pool ------------------------------------------------------------


def _child_setup() -> None:
    # The parent owns Ctrl-C: it drains the pool and collects stats;
    # letting SIGINT reach the children would kill them mid-snapshot.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic runtimes
        pass


async def _await_stop(conn, on_sample=None) -> None:
    """Serve pipe commands until a ``stop`` arrives (or hangup).

    ``("sample",)`` requests — the pool parent's mid-run ``/metrics``
    scrape — answer with ``("sample", on_sample())``; unknown commands
    are ignored so the protocol can grow without breaking old workers.
    """
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()

    def on_pipe() -> None:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            stop.set()
            return
        if not message:
            return
        if message[0] == "stop":
            stop.set()
        elif message[0] == "sample" and on_sample is not None:
            try:
                conn.send(("sample", on_sample()))
            except (BrokenPipeError, OSError):
                pass

    try:
        loop.add_reader(conn.fileno(), on_pipe)
    except (NotImplementedError, OSError):
        # Proactor-style loops: poll the pipe instead.
        while not stop.is_set():
            if conn.poll(0):
                on_pipe()
            else:
                await asyncio.sleep(0.05)
        return
    try:
        await stop.wait()
    finally:
        try:
            loop.remove_reader(conn.fileno())
        except (NotImplementedError, OSError):
            pass


def _serve_worker_main(index: int, config: dict, conn) -> None:
    """One serving worker: bind (SO_REUSEPORT), serve until ``stop``,
    answer with the final stats block."""
    _child_setup()
    uvloop_active = maybe_install_uvloop()
    try:
        asyncio.run(_serve_worker(index, config, conn, uvloop_active))
    except Exception as exc:  # noqa: BLE001 - reported over the pipe
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
        raise SystemExit(1) from exc


async def _serve_worker(
    index: int, config: dict, conn, uvloop_active: bool
) -> None:
    from .server import DocLiveServer

    server = DocLiveServer(
        reuse_port=config["reuse_port"], **config["server"]
    )
    await server.start()
    conn.send(("ready", list(server.endpoint)))
    try:
        await _await_stop(conn, on_sample=server.metrics_snapshot)
    finally:
        await server.stop()
    stats = server.stats()
    stats["worker"] = index
    stats["uvloop"] = uvloop_active
    conn.send(("stats", stats))


class ServePool(WorkerPool):
    """N ``DocLiveServer`` processes sharing one port via SO_REUSEPORT.

    Every worker serves the *same* zone (the name universe and zone
    derivation stay on the shared base seed, so any worker answers any
    query identically) behind its own event loop, caches, and fastpath.
    On platforms without working ``SO_REUSEPORT`` a requested multi-
    worker pool degrades to one worker and records
    :data:`REUSEPORT_WARNING` in :attr:`warning` and the merged stats.

    ``server_kwargs`` is the :class:`~repro.live.server.DocLiveServer`
    keyword set (transport/host/port/num_names/...). ``port=0`` with
    multiple workers is resolved by a two-phase start: worker 0 binds
    the ephemeral port and reports it, then the remaining workers join
    its reuseport group on that concrete port."""

    role = "serve"

    def __init__(self, workers: int = 2, **server_kwargs) -> None:
        if workers < 1:
            raise WorkerPoolError("workers must be >= 1")
        self.requested_workers = workers
        self.warning: Optional[str] = None
        self.uvloop_active = False
        self._server_kwargs = dict(server_kwargs)
        self._endpoint: Optional[Tuple[str, int]] = None
        self._final_stats: Optional[Dict[str, object]] = None
        if workers > 1 and not reuseport_supported(
            self._server_kwargs.get("host", "127.0.0.1")
        ):
            self.warning = REUSEPORT_WARNING
            workers = 1
        configs = [
            {
                "server": dict(self._server_kwargs),
                "reuse_port": workers > 1,
            }
            for _ in range(workers)
        ]
        super().__init__(_serve_worker_main, configs)

    # WorkerPool.start is the fork; this adds the two-phase port
    # election + the ready barrier and returns the shared endpoint.
    def start(self) -> Tuple[str, int]:  # type: ignore[override]
        if self._started:
            raise WorkerPoolError("pool already started")
        self._started = True
        port = self._server_kwargs.get("port", 0)
        two_phase = self.workers > 1 and port == 0
        try:
            # Worker 0 elects the shared port: it binds ``port=0`` with
            # SO_REUSEPORT set and reports the bound endpoint, then the
            # remaining workers join its group on that concrete port.
            # (A parent-held reservation socket would leak into every
            # forked child as an unread reuseport-group member and
            # blackhole the flows hashed to it — the port must be owned
            # by a socket that is actually served.)
            self._spawn(0, self._configs[0])
            first = self._recv(0, "ready", READY_TIMEOUT)
            if first is None:
                raise WorkerPoolError("serve worker 0 failed to start")
            endpoint = tuple(first)
            if two_phase:
                for config in self._configs[1:]:
                    config["server"]["port"] = endpoint[1]
            for index in range(1, self.workers):
                self._spawn(index, self._configs[index])
                ready = self._recv(index, "ready", READY_TIMEOUT)
                if ready is None:
                    raise WorkerPoolError(
                        f"serve worker {index} failed to start"
                    )
        except BaseException:
            self.terminate()
            raise
        self._endpoint = endpoint
        return self._endpoint

    @property
    def endpoint(self) -> Tuple[str, int]:
        if self._endpoint is None:
            raise WorkerPoolError("pool is not started")
        return self._endpoint

    def drain(self) -> Dict[str, object]:
        """Graceful stop: every worker snapshots and returns its stats;
        the merged block (with per-worker detail) is cached so repeated
        calls — or a post-crash inspection — see the same numbers."""
        if self._final_stats is not None:
            return self._final_stats
        with self._pipe_lock:
            self.broadcast("stop")
            stats = self.collect("stats")
        self.uvloop_active = any(s.get("uvloop") for s in stats)
        self._final_stats = merge_server_stats(
            stats,
            requested=self.requested_workers,
            failed_indices=self.failed_workers,
            warning=self.warning,
        )
        return self._final_stats

    # -- mid-run observability (the pool-level /metrics + /healthz) --------

    def sample(
        self, timeout: float = SAMPLE_TIMEOUT
    ) -> List[Tuple[int, Dict[str, object]]]:
        """One registry snapshot per live worker: ``[(index, snap)]``.

        Safe to call from the metrics HTTP thread — pipe use is
        serialized against :meth:`drain` — and tolerant of workers
        dying mid-scrape (they are simply absent from the result).
        """
        with self._pipe_lock:
            if self._final_stats is not None:
                return []
            asked: List[int] = []
            for index, conn in enumerate(self._conns):
                if not self._procs[index].is_alive():
                    continue
                try:
                    conn.send(("sample",))
                except (BrokenPipeError, OSError):
                    continue
                asked.append(index)
            snapshots: List[Tuple[int, Dict[str, object]]] = []
            for index in asked:
                payload = self._recv(index, "sample", timeout)
                if payload is not None:
                    snapshots.append((index, payload))
            return snapshots

    def metrics_snapshot(self) -> Dict[str, object]:
        """Merged pool exposition source: every worker's series with a
        ``worker`` label, plus ``repro_pool_*`` totals summed across
        workers (so per-worker series provably sum to the pool)."""
        from repro.obs.metrics import (
            label_snapshot, merge_snapshots,
        )

        pairs = self.sample()
        merged = merge_snapshots(
            label_snapshot(snap, worker=str(index)) for index, snap in pairs
        )
        totals = merge_snapshots(snap for _index, snap in pairs)
        for name, entry in totals.items():
            pool_name = (
                "repro_pool_" + name[len("repro_"):]
                if name.startswith("repro_") else "repro_pool_" + name
            )
            merged[pool_name] = entry
        return merged

    def render_metrics(self) -> str:
        """Prometheus text exposition of :meth:`metrics_snapshot`."""
        from repro.obs.metrics import render_snapshot

        return render_snapshot(self.metrics_snapshot())

    def health(self) -> Tuple[bool, Dict[str, object]]:
        """Pool liveness for ``/healthz``: healthy while every worker
        process is alive and none has been recorded failed."""
        alive = sum(1 for proc in self._procs if proc.is_alive())
        healthy = alive == self.workers and not self._failed
        return healthy, {
            "role": self.role,
            "workers": self.workers,
            "alive": alive,
            "failed_workers": list(self._failed),
            "endpoint": list(self._endpoint) if self._endpoint else None,
        }


def merge_server_stats(
    per_worker: Sequence[Dict[str, object]],
    requested: int = 1,
    failed: int = 0,
    warning: Optional[str] = None,
    failed_indices: Optional[Sequence[int]] = None,
) -> Dict[str, object]:
    """One stats block from N per-worker server stats blocks.

    Counters sum, ``io.largest_burst`` takes the max, the resolver
    cache pools with recomputed hit ratio, and the full per-worker
    blocks ride along under ``workers`` for drill-down. ``runtime``
    records the sharding facts the Report surfaces as
    ``live.workers.*``: requested vs actual worker count, reuseport
    activity, uvloop, and the fallback warning (or ``None``).

    *failed_indices* names the crashed workers; ``failed_workers``
    always appears in the merged block (empty on a clean run) so
    consumers need no existence check, and ``workers_failed`` stays
    the count for backward compatibility.
    """
    failed_list = (
        [int(i) for i in failed_indices] if failed_indices is not None else []
    )
    merged: Dict[str, object] = {
        "workers_requested": requested,
        "workers_failed": (
            len(failed_list) if failed_indices is not None else failed
        ),
        "failed_workers": failed_list,
    }
    io_merged = {
        "batched": True, "recv_bursts": 0, "largest_burst": 0,
        "recv_errors": 0, "send_buffer_drops": 0, "reuse_port": False,
    }
    cache = {"hits": 0, "misses": 0}
    have_cache = False
    for stats in per_worker:
        for key in ("queries_handled", "validations_sent",
                    "fastpath_hits", "fastpath_misses",
                    "datagrams_received", "datagrams_sent"):
            if key in stats:
                merged[key] = merged.get(key, 0) + stats[key]
        for key in ("transport", "endpoint", "names"):
            if key in stats and key not in merged:
                merged[key] = stats[key]
        io = stats.get("io")
        if isinstance(io, dict):
            io_merged["batched"] = (
                io_merged["batched"] and bool(io.get("batched"))
            )
            for key in ("recv_bursts", "recv_errors", "send_buffer_drops"):
                io_merged[key] += io.get(key, 0)
            io_merged["largest_burst"] = max(
                io_merged["largest_burst"], io.get("largest_burst", 0)
            )
            io_merged["reuse_port"] = (
                io_merged["reuse_port"] or bool(io.get("reuse_port"))
            )
            io_merged.setdefault("mmsg", io.get("mmsg"))
        resolver_cache = stats.get("resolver_cache")
        if isinstance(resolver_cache, dict):
            have_cache = True
            for key in ("hits", "misses"):
                cache[key] += resolver_cache.get(key, 0)
    merged["io"] = io_merged
    if have_cache:
        lookups = cache["hits"] + cache["misses"]
        cache["hit_ratio"] = cache["hits"] / lookups if lookups else 0.0
        merged["resolver_cache"] = cache
    merged["workers"] = [dict(stats) for stats in per_worker]
    merged["runtime"] = {
        "serve_workers": len(per_worker),
        "reuseport": bool(io_merged["reuse_port"]),
        "uvloop": any(s.get("uvloop") for s in per_worker),
        "warning": warning,
    }
    return merged


# -- distributed load generation -------------------------------------------


def _load_worker_main(index: int, config: dict, conn) -> None:
    """One load-generation worker: drive its share of the offered load
    and answer with its loadgen report."""
    _child_setup()
    maybe_install_uvloop()
    try:
        report = asyncio.run(_load_worker(index, config))
    except Exception as exc:  # noqa: BLE001 - reported over the pipe
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
        raise SystemExit(1) from exc
    conn.send(("report", report))


async def _load_worker(index: int, config: dict) -> Dict[str, object]:
    from .client import LiveResolver
    from .loadgen import generate_load
    from .wiring import build_names

    names = build_names(
        config["num_names"],
        dataset=config.get("dataset"),
        name_seed=config.get("name_seed", 7),
    )
    seed = config["seed"]
    resolver = LiveResolver(
        tuple(config["endpoint"]),
        transport=config["transport"],
        scheme=config["scheme"],
        cache_placement=config.get("cache_placement", "none"),
        block_size=config.get("block_size"),
        seed=seed + 1,
        secret=config.get("secret", DEFAULT_SECRET),
        timeout=config["timeout"],
    )
    async with resolver:
        report = await generate_load(
            resolver,
            names,
            rate=config["rate"],
            duration=config["duration"],
            mode=config["mode"],
            concurrency=config["concurrency"],
            timeout=config["timeout"],
            seed=seed,
            workload=config.get("workload"),
            include_latencies=True,
            reservoir_capacity=config.get("reservoir_capacity", 4096),
        )
    report["worker"] = index
    return report


class LoadPool(WorkerPool):
    """M load-generator processes sharing one offered load."""

    role = "load"

    def run(self) -> List[Dict[str, object]]:
        """Fork, wait for every worker's report, join. Raises when *no*
        worker delivered; partial results return with the failures
        recorded in :attr:`failed_workers`."""
        self.start()
        reports = self.collect("report", timeout=LOAD_COLLECT_TIMEOUT)
        if not reports:
            raise WorkerPoolError("every load worker failed")
        return reports


def _split_evenly(total: int, parts: int) -> List[int]:
    """Integer shares summing to *total* (first shares get the rest)."""
    base, rest = divmod(total, parts)
    return [base + (1 if index < rest else 0) for index in range(parts)]


def run_distributed_load(
    endpoint: Tuple[str, int],
    *,
    transport: str = "udp",
    scheme=None,
    cache_placement: str = "none",
    block_size: Optional[int] = None,
    secret: bytes = DEFAULT_SECRET,
    timeout: float = 10.0,
    num_names: int = 50,
    dataset: Optional[str] = None,
    name_seed: int = 7,
    rate: float = 50.0,
    duration: float = 2.0,
    mode: str = "open",
    concurrency: int = 8,
    seed: int = 1,
    workload=None,
    workers: int = 2,
    reservoir_capacity: int = 4096,
) -> Dict[str, object]:
    """Drive *workers* load-generator processes against *endpoint* and
    return one merged loadgen report.

    The offered load splits across workers — open loop divides the
    arrival rate, closed loop divides the concurrency — and every
    worker draws from the same deterministic name universe under its
    own :func:`derive_worker_seed` seed, so the aggregate workload is
    replayable yet decorrelated across processes. The merged report is
    the flat loadgen vocabulary plus a ``workers`` block
    (:func:`merge_loadgen_reports`).
    """
    from .loadgen import LoadGenError

    if workers < 1:
        raise LoadGenError("workers must be >= 1")
    if scheme is None:
        from repro.doc.caching import CachingScheme

        scheme = CachingScheme.EOL_TTLS
    shares = (
        _split_evenly(concurrency, workers) if mode == "closed" else None
    )
    configs = []
    for index in range(workers):
        worker_concurrency = shares[index] if shares else concurrency
        if mode == "closed" and worker_concurrency == 0:
            continue  # more workers than closed-loop slots
        configs.append({
            "endpoint": list(endpoint),
            "transport": transport,
            "scheme": scheme,
            "cache_placement": cache_placement,
            "block_size": block_size,
            "secret": secret,
            "timeout": timeout,
            "num_names": num_names,
            "dataset": dataset,
            "name_seed": name_seed,
            "rate": rate / workers if mode == "open" else rate,
            "duration": duration,
            "mode": mode,
            "concurrency": max(1, worker_concurrency),
            "seed": derive_worker_seed(seed, index),
            "workload": workload,
            "reservoir_capacity": reservoir_capacity,
        })
    pool = LoadPool(_load_worker_main, configs)
    reports = pool.run()
    return merge_loadgen_reports(
        reports,
        rate=rate,
        concurrency=concurrency,
        seed=seed,
        failed=len(pool.failed_workers),
    )


def merge_loadgen_reports(
    reports: Sequence[Dict[str, object]],
    *,
    rate: Optional[float] = None,
    concurrency: Optional[int] = None,
    seed: Optional[int] = None,
    failed: int = 0,
) -> Dict[str, object]:
    """One loadgen report from M per-worker reports.

    Counters sum; ``achieved_qps`` sums (the workers ran concurrently,
    so aggregate throughput is the sum of per-worker throughputs);
    percentiles recompute over the pooled latency samples while the
    mean pools exactly from the per-worker exact means; cache counters
    sum per location with ratios recomputed. The per-worker summaries
    land under ``workers`` — the block
    :func:`repro.api.report.report_from_loadgen` turns into
    ``live.workers.load.*`` metrics.
    """
    from repro.api.report import REPORT_VERSION as _VERSION
    from repro.api.report import provenance as _provenance
    from repro.experiments.metrics import percentile

    if not reports:
        raise WorkerPoolError("cannot merge zero loadgen reports")
    first = reports[0]
    counters = {
        "queries": 0, "succeeded": 0, "failed": 0,
        "timeouts": 0, "rcode_failures": 0,
    }
    samples_ms: List[float] = []
    mean_weighted = 0.0
    minimum = maximum = None
    elapsed = 0.0
    aggregate_qps = 0.0
    cache_pool: Dict[str, Dict[str, float]] = {}
    per_worker: List[Dict[str, object]] = []
    for report in reports:
        for key in counters:
            counters[key] += report[key]
        elapsed = max(elapsed, report["elapsed_s"])
        aggregate_qps += report["achieved_qps"]
        samples_ms.extend(report.get("latencies_ms", ()))
        latency = report["latency_ms"]
        if latency["mean"] is not None:
            mean_weighted += latency["mean"] * report["succeeded"]
            minimum = (
                latency["min"] if minimum is None
                else min(minimum, latency["min"])
            )
            maximum = (
                latency["max"] if maximum is None
                else max(maximum, latency["max"])
            )
        for location, stats in report.get("cache", {}).items():
            pool = cache_pool.setdefault(location, {})
            for key in ("hits", "misses", "stale_hits", "validations",
                        "validation_failures"):
                pool[key] = pool.get(key, 0) + stats.get(key, 0)
        per_worker.append({
            "worker": report.get("worker", len(per_worker)),
            "seed": report["seed"],
            "queries": report["queries"],
            "succeeded": report["succeeded"],
            "failed": report["failed"],
            "timeouts": report["timeouts"],
            "rcode_failures": report["rcode_failures"],
            "achieved_qps": report["achieved_qps"],
            "elapsed_s": report["elapsed_s"],
        })
    for location, pool in cache_pool.items():
        hits, misses = pool.get("hits", 0), pool.get("misses", 0)
        stale = pool.get("stale_hits", 0)
        lookups = hits + misses + stale
        pool["hit_ratio"] = hits / lookups if lookups else 0.0
        pool["stale_ratio"] = stale / lookups if lookups else 0.0
        pool["validation_ratio"] = (
            pool.get("validations", 0) / stale if stale else 0.0
        )
    completed = counters["succeeded"] + counters["failed"]
    if counters["succeeded"]:
        latency_ms = {
            "p50": round(percentile(samples_ms, 50), 3),
            "p95": round(percentile(samples_ms, 95), 3),
            "p99": round(percentile(samples_ms, 99), 3),
            "mean": round(mean_weighted / counters["succeeded"], 3),
            "min": minimum,
            "max": maximum,
        }
    else:
        latency_ms = {
            "p50": None, "p95": None, "p99": None,
            "mean": None, "min": None, "max": None,
        }
    mode = first["mode"]
    merged: Dict[str, object] = {
        "report_version": _VERSION,
        "provenance": _provenance(),
        "mode": mode,
        "transport": first["transport"],
        "offered_rate_qps": (
            (rate if rate is not None else first["offered_rate_qps"])
            if mode == "open" else None
        ),
        "concurrency": (
            (concurrency if concurrency is not None else first["concurrency"])
            if mode == "closed" else None
        ),
        "duration_s": first["duration_s"],
        "elapsed_s": round(elapsed, 3),
        "queries": counters["queries"],
        "succeeded": counters["succeeded"],
        "failed": counters["failed"],
        "timeouts": counters["timeouts"],
        "rcode_failures": counters["rcode_failures"],
        "success_rate": (
            counters["succeeded"] / completed if completed else 0.0
        ),
        "achieved_qps": round(aggregate_qps, 3),
        "latency_ms": latency_ms,
        "cache": cache_pool,
        "workload": dict(first["workload"]),
        "seed": seed if seed is not None else first["seed"],
        "telemetry": _merged_timeline(reports),
        "latencies_ms": samples_ms,
        "workers": {
            "load": per_worker,
            "load_failed": failed,
        },
    }
    return merged


def _merged_timeline(reports: Sequence[Dict[str, object]]):
    from repro.obs.telemetry import merge_timelines

    return merge_timelines(
        [report.get("telemetry") or [] for report in reports]
    )


# -- the sharded serve+loadtest pairing (repro.api façade) -----------------


def run_sharded_spec(spec) -> "Report":
    """Execute a live :class:`~repro.api.RunSpec` with worker pools.

    The sharded counterpart of ``repro.api.runner._run_live``: per
    repeat, a fresh :class:`ServePool` (unless the spec targets an
    external host) and a distributed (or inline, when
    ``load_workers == 1``) load-generation pass; per-repeat reports
    and pool stats merge exactly like the single-worker path, with the
    worker detail riding along into ``live.workers.*``.
    """
    from repro.api.report import report_from_loadgen

    reports = []
    server_stats: Optional[Dict[str, object]] = None
    for seed in spec.repeat_seeds():
        report, stats = _sharded_once(spec, seed)
        reports.append(report)
        server_stats = _merge_repeat_pool_stats(server_stats, stats)
    return report_from_loadgen(
        reports if spec.repeats > 1 else reports[0],
        spec=spec.to_dict(),
        server_stats=server_stats,
    )


def _sharded_once(spec, seed: int):
    scenario = spec.to_scenario(seed)
    workload = scenario.workload
    options = spec.live
    rate = workload.query_rate
    duration = workload.num_queries / rate

    pool: Optional[ServePool] = None
    if options.host is None:
        # The zone derives from the *base* seed on every worker: any
        # worker must answer any query identically, so the per-worker
        # decorrelation lives in the load side only.
        pool = ServePool(
            workers=options.serve_workers,
            transport=scenario.transport,
            host="127.0.0.1",
            port=options.port,
            num_names=workload.num_names,
            dataset=options.dataset,
            name_seed=options.name_seed,
            ttl=workload.ttl,
            scheme=scenario.scheme,
            seed=seed,
        )
        endpoint = pool.start()
    else:
        endpoint = (options.host, options.port)
    try:
        if options.load_workers > 1:
            report = run_distributed_load(
                endpoint,
                transport=scenario.transport,
                scheme=scenario.scheme,
                cache_placement=spec.client_cache_placement(),
                block_size=scenario.block_size,
                timeout=options.timeout,
                num_names=workload.num_names,
                dataset=options.dataset,
                name_seed=options.name_seed,
                rate=rate,
                duration=duration,
                mode=options.mode,
                concurrency=options.concurrency,
                seed=seed,
                workload=workload,
                workers=options.load_workers,
            )
        else:
            report = asyncio.run(_inline_load(
                endpoint, scenario, spec, seed, rate, duration,
                num_names=workload.num_names,
            ))
        stats = pool.drain() if pool is not None else None
    finally:
        if pool is not None:
            if pool._final_stats is None:
                pool.terminate()
    return report, stats


async def _inline_load(
    endpoint, scenario, spec, seed, rate, duration, num_names
):
    from .client import LiveResolver
    from .loadgen import generate_load
    from .wiring import build_names

    options = spec.live
    names = build_names(
        num_names, dataset=options.dataset, name_seed=options.name_seed
    )
    resolver = LiveResolver(
        endpoint,
        transport=scenario.transport,
        scheme=scenario.scheme,
        cache_placement=spec.client_cache_placement(),
        block_size=scenario.block_size,
        seed=seed + 1,
        timeout=options.timeout,
    )
    async with resolver:
        return await generate_load(
            resolver,
            names,
            rate=rate,
            duration=duration,
            mode=options.mode,
            concurrency=options.concurrency,
            timeout=options.timeout,
            seed=seed,
            workload=scenario.workload,
            include_latencies=True,
        )


def _merge_repeat_pool_stats(merged, stats):
    """Accumulate merged pool stats across repeats: scalar counters
    sum, per-worker blocks sum index-by-index, runtime facts keep the
    first repeat's values (they cannot change between repeats)."""
    if stats is None:
        return merged
    if merged is None:
        return dict(stats)
    for key in ("queries_handled", "validations_sent", "fastpath_hits",
                "fastpath_misses", "datagrams_received", "datagrams_sent",
                "workers_failed"):
        if key in stats:
            merged[key] = merged.get(key, 0) + stats[key]
    if "failed_workers" in stats:
        union = set(merged.get("failed_workers", []))
        union.update(stats["failed_workers"])
        merged["failed_workers"] = sorted(union)
    cache = stats.get("resolver_cache")
    if isinstance(cache, dict):
        pooled = merged.setdefault(
            "resolver_cache", {"hits": 0, "misses": 0}
        )
        for key in ("hits", "misses"):
            pooled[key] = pooled.get(key, 0) + cache.get(key, 0)
        lookups = pooled["hits"] + pooled["misses"]
        pooled["hit_ratio"] = pooled["hits"] / lookups if lookups else 0.0
    by_index = {
        entry.get("worker"): entry
        for entry in merged.get("workers", [])
    }
    for entry in stats.get("workers", []):
        target = by_index.get(entry.get("worker"))
        if target is None:
            merged.setdefault("workers", []).append(dict(entry))
            continue
        for key in ("queries_handled", "validations_sent",
                    "fastpath_hits", "fastpath_misses",
                    "datagrams_received", "datagrams_sent"):
            if key in entry:
                target[key] = target.get(key, 0) + entry[key]
    return merged
