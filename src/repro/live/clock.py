"""Wall-clock implementation of the :class:`repro.sim.clock.Clock`
protocol on the asyncio event loop.

Timers map to :meth:`asyncio.loop.call_later`, ``now`` to
:func:`time.monotonic` (rebased so a fresh clock starts at 0, like a
fresh :class:`~repro.sim.core.Simulator`), and ``rng`` is a seeded
:class:`random.Random` — making a live run replayable in its protocol
choices (MIDs, tokens, back-off jitter, DTLS randoms) under the same
seed, even though packet timing is real.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Callable


class AsyncioClock:
    """The :class:`~repro.sim.clock.Clock` of the live runtime.

    ``now`` works anywhere (it reads the monotonic clock directly);
    :meth:`schedule` requires a running event loop, which is always the
    case when the protocol stack arms timers — it only does so from
    within datagram callbacks and coroutines.

    Parameters
    ----------
    seed:
        Seed for ``rng``, the source of all stochastic protocol
        behaviour (mirrors ``Simulator(seed=...)``).
    """

    def __init__(self, seed: int = 1) -> None:
        self._epoch = time.monotonic()
        self.rng = random.Random(seed)

    @property
    def now(self) -> float:
        """Seconds of monotonic wall-clock time since construction."""
        return time.monotonic() - self._epoch

    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> asyncio.TimerHandle:
        """Run ``callback(*args)`` after *delay* wall-clock seconds.

        Returns the :class:`asyncio.TimerHandle`, whose idempotent
        ``cancel()`` satisfies the :class:`~repro.sim.clock.Timer`
        protocol.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        loop = asyncio.get_running_loop()
        return loop.call_later(delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable, *args: Any
    ) -> asyncio.TimerHandle:
        """Run ``callback(*args)`` at absolute *time* on this clock's
        axis (seconds since construction)."""
        now = self.now
        if time < now:
            raise ValueError(
                f"cannot schedule at {time}: clock is already at {now}"
            )
        return self.schedule(time - now, callback, *args)
