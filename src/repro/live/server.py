"""The live DoC server: real sockets under the sans-IO stack.

:class:`DocLiveServer` hosts the reproduction's DNS serving stack on a
wall-clock asyncio runtime. The protocol objects are the *same classes*
the simulator drives — :class:`~repro.doc.DocServer`,
:class:`~repro.transports.dns_over_udp.DnsOverUdpServer`, the DTLS
server adapter — scheduled by an
:class:`~repro.live.clock.AsyncioClock` and bound to a
:class:`~repro.live.transport.LiveUdpTransport` instead of a simulated
socket. Transport profiles map onto the registry's vocabulary:

========== =====================================================
``udp``    plain DNS over UDP (the unencrypted baseline)
``dtls``   DNS over DTLS (in-network PSK handshake per client)
``coap``   DNS over plain CoAP (FETCH/GET/POST on ``/dns``)
``coaps``  DNS over CoAP over DTLS
``oscore`` DNS over CoAP with OSCORE object security
========== =====================================================
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.doc.caching import CachingScheme

from .clock import AsyncioClock
from .transport import LiveUdpTransport, mmsg_support
from .wiring import (
    DEFAULT_LIVE_PORT,
    DEFAULT_PSK,
    DEFAULT_PSK_IDENTITY,
    DEFAULT_SECRET,
    LiveWiringError,
    build_names,
    build_zone,
    check_live_transport,
    derive_oscore_pair,
)


class DocLiveServer:
    """A resolver serving real UDP traffic on localhost or beyond.

    Parameters
    ----------
    transport:
        One of the live-capable registry profiles (``udp``, ``dtls``,
        ``coap``, ``coaps``, ``oscore``).
    host / port:
        Bind address. The default port (5853) is unprivileged and
        shared with the load generator's default.
    num_names / dataset / name_seed / ttl:
        The served zone: both sides of a live run derive the same name
        universe from these (see :mod:`repro.live.wiring`).
    scheme:
        TTL↔Max-Age handling for the CoAP-based transports.
    seed:
        Seeds the runtime clock's RNG (MIDs, DTLS randoms, TTL draws),
        making the server's protocol choices replayable.
    secret / psk / psk_identity:
        Security material; the client derives matching state from the
        same values.
    metrics_port:
        When not ``None``, serve ``/metrics`` (Prometheus text
        exposition) and ``/healthz`` on this TCP port alongside the
        DNS socket (0 picks an ephemeral port; see
        :attr:`metrics_endpoint` after :meth:`start`).
    """

    def __init__(
        self,
        transport: str = "coap",
        host: str = "127.0.0.1",
        port: int = DEFAULT_LIVE_PORT,
        num_names: int = 50,
        dataset: Optional[str] = None,
        name_seed: int = 7,
        ttl: Tuple[int, int] = (300, 300),
        scheme: CachingScheme = CachingScheme.EOL_TTLS,
        seed: int = 1,
        secret: bytes = DEFAULT_SECRET,
        psk: bytes = DEFAULT_PSK,
        psk_identity: bytes = DEFAULT_PSK_IDENTITY,
        cache_capacity: int = 256,
        fastpath_capacity: int = 512,
        reuse_port: bool = False,
        metrics_port: Optional[int] = None,
    ) -> None:
        self.transport_name = check_live_transport(transport)
        self.host = host
        self.port = port
        self.scheme = scheme
        self.seed = seed
        self._secret = secret
        self._psk_store = {psk_identity: psk}
        self._cache_capacity = cache_capacity
        # Wire-level response cache for cache-hot queries; live serving
        # defaults it on (capacity 512), pass 0 to disable.
        self._fastpath_capacity = fastpath_capacity
        # SO_REUSEPORT sharing: one worker of a repro.live.workers pool
        # (every pool member binds the same host:port).
        self._reuse_port = reuse_port
        self.clock = AsyncioClock(seed=seed)
        self.names = build_names(num_names, dataset=dataset, name_seed=name_seed)
        self._zone = build_zone(self.names, ttl=ttl, rng=self.clock.rng)
        self._socket: Optional[LiveUdpTransport] = None
        self._server = None
        self.resolver = None
        self._final_stats: Optional[Dict[str, object]] = None
        self._metrics_port = metrics_port
        self._obs_http = None
        self.registry = self._build_registry()

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the socket and wire the stack; returns ``(host, port)``."""
        from repro.dns import RecursiveResolver

        if self._socket is not None:
            raise LiveWiringError("server already started")
        self.resolver = RecursiveResolver(
            self._zone, cache_capacity=self._cache_capacity,
            rng=self.clock.rng,
        )
        self._socket = await LiveUdpTransport.create(
            self.host, self.port, reuse_port=self._reuse_port
        )
        self.host, self.port = self._socket.local_address
        self._server = self._build_stack()
        if self._metrics_port is not None:
            from repro.obs.http import ObsHttpServer

            self._obs_http = ObsHttpServer(
                self.render_metrics, self.health,
                host=self.host, port=self._metrics_port,
            )
            await self._obs_http.start()
        return (self.host, self.port)

    async def stop(self) -> None:
        if self._obs_http is not None:
            await self._obs_http.stop()
            self._obs_http = None
        if self._socket is not None:
            # Snapshot the counters while the stack is still wired so
            # post-shutdown reports see the final numbers.
            self._final_stats = self.stats()
            self._socket.close()
            self._socket = None
            self._server = None

    async def __aenter__(self) -> "DocLiveServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def endpoint(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def metrics_endpoint(self) -> Optional[str]:
        """``http://host:port`` of the scrape listener (None when off)."""
        return self._obs_http.endpoint if self._obs_http else None

    # -- wiring -----------------------------------------------------------

    def _build_stack(self):
        name = self.transport_name
        if name == "udp":
            from repro.transports.dns_over_udp import DnsOverUdpServer

            return DnsOverUdpServer(self.clock, self._socket, self.resolver)
        if name == "dtls":
            from repro.transports.dns_over_dtls import DnsOverDtlsServer

            return DnsOverDtlsServer(
                self.clock, self._socket, self.resolver,
                psk_store=dict(self._psk_store),
            )

        from repro.doc import DocServer

        socket = self._socket
        oscore_context = None
        if name == "coaps":
            from repro.transports.dtls_adapter import DtlsServerAdapter

            socket = DtlsServerAdapter(
                self.clock, socket, psk_store=dict(self._psk_store)
            )
        elif name == "oscore":
            oscore_context = derive_oscore_pair(self._secret)[1]
        return DocServer(
            self.clock, socket, self.resolver,
            scheme=self.scheme, oscore_context=oscore_context,
            fastpath_capacity=self._fastpath_capacity,
        )

    # -- observability ----------------------------------------------------

    def _build_registry(self):
        """The server's metrics registry: one scrape-time collector
        mirrors the sans-IO stack's plain counters into canonical
        instruments, so the datagram path pays nothing for
        observability until someone actually looks."""
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.telemetry import QUERIES_TOTAL

        registry = MetricsRegistry()
        queries = registry.counter(
            QUERIES_TOTAL, "DNS queries handled by the serving stack"
        ).labels()
        datagrams = registry.counter(
            "repro_datagrams_total", "UDP datagrams by direction",
            labels=("direction",),
        )
        datagrams_in = datagrams.labels(direction="in")
        datagrams_out = datagrams.labels(direction="out")
        fastpath = registry.counter(
            "repro_fastpath_total", "wire-cache fastpath lookups",
            labels=("result",),
        )
        fastpath_hit = fastpath.labels(result="hit")
        fastpath_miss = fastpath.labels(result="miss")
        validations = registry.counter(
            "repro_validations_total", "cache-validation responses sent"
        ).labels()
        resolver_cache = registry.counter(
            "repro_resolver_cache_total", "resolver cache lookups",
            labels=("result",),
        )
        resolver_hit = resolver_cache.labels(result="hit")
        resolver_miss = resolver_cache.labels(result="miss")
        io_events = registry.counter(
            "repro_io_events_total", "transport I/O events",
            labels=("kind",),
        )
        recv_errors = io_events.labels(kind="recv_error")
        send_drops = io_events.labels(kind="send_buffer_drop")
        recv_bursts = io_events.labels(kind="recv_burst")
        largest_burst = registry.gauge(
            "repro_io_largest_burst", "largest batched recv burst"
        ).labels()
        up = registry.gauge(
            "repro_up", "1 while the server socket is open"
        ).labels()

        @registry.collect
        def _mirror() -> None:
            server = self._server
            if server is not None:
                queries.value = getattr(server, "queries_handled", 0) or 0
                validations.value = (
                    getattr(server, "validations_sent", 0) or 0
                )
                fastpath_hit.value = getattr(server, "fastpath_hits", 0) or 0
                fastpath_miss.value = (
                    getattr(server, "fastpath_misses", 0) or 0
                )
            sock = self._socket
            if sock is not None:
                io = sock.io_counters()
                datagrams_in.value = sock.datagrams_received
                datagrams_out.value = sock.datagrams_sent
                recv_errors.value = io["recv_errors"]
                send_drops.value = io["send_buffer_drops"]
                recv_bursts.value = io["recv_bursts"]
                largest_burst.value = io["largest_burst"]
            if self.resolver is not None:
                cache_stats = self.resolver.cache.stats
                resolver_hit.value = cache_stats.hits
                resolver_miss.value = cache_stats.misses
            up.value = 1.0 if self._socket is not None else 0.0

        return registry

    def metrics_snapshot(self) -> Dict[str, object]:
        """Mergeable registry snapshot (what pool workers pipe back)."""
        return self.registry.snapshot()

    def render_metrics(self) -> str:
        """Prometheus text exposition for ``GET /metrics``."""
        return self.registry.render()

    def health(self) -> Tuple[bool, Dict[str, object]]:
        """``/healthz`` payload: healthy while the socket is open."""
        healthy = self._socket is not None
        return healthy, {
            "transport": self.transport_name,
            "endpoint": list(self.endpoint),
            "names": len(self.names),
        }

    def stats(self) -> Dict[str, object]:
        """Counters for the CLI's shutdown report (JSON-serialisable)."""
        if self._socket is None and getattr(self, "_final_stats", None):
            return self._final_stats
        sock = self._socket
        io = sock.io_counters() if sock is not None else {
            "batched": False, "recv_bursts": 0, "largest_burst": 0,
            "recv_errors": 0, "send_buffer_drops": 0,
            "reuse_port": self._reuse_port,
        }
        io["mmsg"] = mmsg_support()
        stats: Dict[str, object] = {
            "transport": self.transport_name,
            "endpoint": list(self.endpoint),
            "names": len(self.names),
            "datagrams_received": sock.datagrams_received if sock else 0,
            "datagrams_sent": sock.datagrams_sent if sock else 0,
            "io": io,
        }
        server = self._server
        if server is not None:
            for attr in (
                "queries_handled",
                "validations_sent",
                "fastpath_hits",
                "fastpath_misses",
            ):
                value = getattr(server, attr, None)
                if value is not None:
                    stats[attr] = value
        if self.resolver is not None:
            cache = self.resolver.cache
            stats["resolver_cache"] = {
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "hit_ratio": cache.stats.hit_ratio,
            }
        return stats
