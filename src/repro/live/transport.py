"""Real UDP sockets with the simulated-socket surface.

:class:`LiveUdpTransport` is the wall-clock counterpart of
:class:`repro.stack.node.UdpSocket`: it exposes the exact
``sendto(payload, dst_addr, dst_port, metadata)`` / ``on_datagram``
contract the sans-IO stack is written against, but backed by a real
socket on the asyncio event loop. CoAP endpoints, DoC clients/servers,
and the DTLS adapters stack on top of it unchanged.

Datagram I/O is batched where the platform allows it. The preferred
path registers the socket directly with the event loop
(``loop.add_reader``) and drains it in bursts: one readiness callback
receives up to ``batch_size`` datagrams before yielding back to the
loop, instead of one callback per datagram as
:class:`asyncio.DatagramProtocol` delivers. ``socket.recvmmsg`` /
``sendmmsg`` are used when the running interpreter exposes them
(CPython does not, as of 3.12 — see :func:`mmsg_support`); otherwise
the burst loop falls back to plain non-blocking ``recvfrom``. Event
loops without ``add_reader`` (e.g. the Windows proactor) fall back to
the per-datagram :class:`asyncio.DatagramProtocol` path.

The *metadata* dictionary is a simulation-side channel (frame tagging
for the sniffer); on a real socket it has no wire representation, so
outbound metadata is dropped and inbound callbacks receive a fresh
empty dict.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Callable, Dict, Optional, Tuple

#: Upper bound on one UDP payload read (larger than any DoC datagram).
_RECV_SIZE = 65535


def mmsg_support() -> Dict[str, bool]:
    """Which multi-message syscalls this interpreter exposes.

    CPython's :mod:`socket` module wraps ``recvmsg``/``sendmsg`` but
    not the Linux batch variants ``recvmmsg``/``sendmmsg``, so both
    flags are ``False`` on stock CPython; the transport then batches at
    the event-loop level (burst draining) instead of the syscall level.
    """
    return {
        "recvmmsg": hasattr(socket.socket, "recvmmsg"),
        "sendmmsg": hasattr(socket.socket, "sendmmsg"),
    }


class LiveTransportError(Exception):
    """Raised on transport misuse (sending before/after the socket is
    open) or socket-level failures reported by the event loop."""


class LiveUdpTransport(asyncio.DatagramProtocol):
    """A bound UDP socket quacking like ``repro.stack.node.UdpSocket``.

    Create with :meth:`create` (binds the socket and waits for it to be
    ready). The socket stays open until :meth:`close`. ``batched``
    reports which I/O path is active.
    """

    def __init__(
        self,
        allowed_peer: Optional[Tuple[str, int]] = None,
        reuse_port: bool = False,
    ) -> None:
        self.on_datagram: Optional[Callable[[str, int, bytes, dict], None]] = None
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._sock: Optional[socket.socket] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._batch_size = 1
        self._allowed_peer = allowed_peer
        self._reuse_port = reuse_port
        self._closed = False
        self.batched = False
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.datagrams_filtered = 0
        self.datagrams_dropped_after_close = 0
        self.send_buffer_drops = 0
        self.recv_bursts = 0
        self.recv_errors = 0
        self.largest_burst = 0
        self.last_error: Optional[Exception] = None

    @classmethod
    async def create(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        allowed_peer: Optional[Tuple[str, int]] = None,
        batch_size: int = 64,
        reuse_port: bool = False,
    ) -> "LiveUdpTransport":
        """Bind a UDP socket on ``host:port`` (port 0 = ephemeral).

        *allowed_peer* restricts the socket to one remote endpoint:
        datagrams from any other source are dropped before they reach
        the stack — client sockets talk to exactly one server, and an
        unfiltered port would let any off-path host inject responses.

        *batch_size* caps how many datagrams one readiness callback
        drains before yielding to the event loop (fairness bound);
        ``batch_size <= 1`` forces the per-datagram protocol path.

        *reuse_port* sets ``SO_REUSEPORT`` before binding so N worker
        processes can share one port and let the kernel shard inbound
        flows across them (see :mod:`repro.live.workers`). Callers
        should gate on :func:`repro.live.workers.reuseport_supported`
        first — an unsupported platform raises here.
        """
        loop = asyncio.get_running_loop()
        protocol = cls(allowed_peer=allowed_peer, reuse_port=reuse_port)
        if batch_size > 1 and protocol._open_batched(loop, host, port, batch_size):
            return protocol
        kwargs = {"reuse_port": True} if reuse_port else {}
        _transport, bound = await loop.create_datagram_endpoint(
            lambda: protocol, local_addr=(host, port), **kwargs
        )
        assert bound is protocol
        return protocol

    # -- batched reader path ----------------------------------------------

    def _open_batched(
        self,
        loop: asyncio.AbstractEventLoop,
        host: str,
        port: int,
        batch_size: int,
    ) -> bool:
        """Bind a non-blocking socket on the loop's reader interface.

        Returns ``False`` (after cleaning up) when the platform cannot
        do it — unresolvable address family or a loop without
        ``add_reader`` — so :meth:`create` can fall back to the
        :class:`asyncio.DatagramProtocol` per-datagram path.
        """
        try:
            family, type_, proto, _, sockaddr = socket.getaddrinfo(
                host, port, type=socket.SOCK_DGRAM, proto=socket.IPPROTO_UDP
            )[0]
            sock = socket.socket(family, type_, proto)
        except OSError:
            return False
        try:
            if self._reuse_port:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                )
            sock.setblocking(False)
            sock.bind(sockaddr)
            loop.add_reader(sock.fileno(), self._drain_ready)
        except (AttributeError, NotImplementedError, OSError):
            sock.close()
            return False
        self._sock = sock
        self._loop = loop
        self._batch_size = batch_size
        self.batched = True
        return True

    def _drain_ready(self) -> None:
        """One readiness tick: drain up to ``batch_size`` datagrams.

        ``add_reader`` is level-triggered, so stopping at the cap is
        safe — leftover datagrams re-arm the callback on the next loop
        iteration, which keeps one chatty peer from starving timers.

        A ``ConnectionResetError``/``OSError`` mid-batch (Linux queues
        ICMP port-unreachable errors from *earlier sends* and delivers
        them on the next ``recvfrom``) consumes one slot of the
        readiness budget but does **not** abort the tick: the datagrams
        queued behind the error are still drained, and the error is
        counted in ``recv_errors`` instead of silently ending the
        burst.
        """
        sock = self._sock
        if sock is None:
            return
        recvfrom = sock.recvfrom
        received = self.datagram_received
        burst = 0
        for _ in range(self._batch_size):
            try:
                data, addr = recvfrom(_RECV_SIZE)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                self.last_error = exc
                self.recv_errors += 1
                if self._sock is None or sock.fileno() < 0:
                    break  # closed under us: nothing left to drain
                continue
            burst += 1
            received(data, addr)
        if burst:
            self.recv_bursts += 1
            if burst > self.largest_burst:
                self.largest_burst = burst

    # -- asyncio.DatagramProtocol ----------------------------------------

    def connection_made(self, transport) -> None:
        self._transport = transport

    def connection_lost(self, exc) -> None:
        self._transport = None
        self._closed = True
        if exc is not None:
            self.last_error = exc

    def datagram_received(self, data: bytes, addr) -> None:
        if self._allowed_peer is not None and (
            (addr[0], addr[1]) != self._allowed_peer
        ):
            self.datagrams_filtered += 1
            return
        self.datagrams_received += 1
        if self.on_datagram is not None:
            self.on_datagram(addr[0], addr[1], data, {})

    def error_received(self, exc) -> None:
        # ICMP errors (e.g. port unreachable) surface here; the stack's
        # own retransmission timers handle the loss, so just record it.
        self.last_error = exc

    def io_counters(self) -> Dict[str, object]:
        """The I/O counter block, one authoritative source for server
        ``stats()`` and the metrics-registry scrape collector."""
        return {
            "batched": self.batched,
            "recv_bursts": self.recv_bursts,
            "largest_burst": self.largest_burst,
            "recv_errors": self.recv_errors,
            "send_buffer_drops": self.send_buffer_drops,
            "reuse_port": self._reuse_port,
        }

    # -- UdpSocket surface ------------------------------------------------

    @property
    def local_address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        if self._sock is not None:
            return self._sock.getsockname()[:2]
        if self._transport is None:
            raise LiveTransportError("socket is not open")
        return self._transport.get_extra_info("sockname")[:2]

    @property
    def port(self) -> int:
        return self.local_address[1]

    def sendto(
        self,
        payload: bytes,
        dst_addr: str,
        dst_port: int,
        metadata: Optional[dict] = None,
    ) -> None:
        """Send *payload* to ``dst_addr:dst_port`` (*metadata* is a
        simulation-only channel and is not transmitted).

        Sends after :meth:`close` are silently dropped (and counted):
        the sans-IO stack's retransmission timers may legitimately
        outlive the socket, and raising from inside a
        ``loop.call_later`` callback would only spam the event loop's
        unhandled-error log.
        """
        sock = self._sock
        if sock is not None:
            try:
                sock.sendto(payload, (dst_addr, dst_port))
            except (BlockingIOError, InterruptedError):
                # Kernel send buffer full: UDP semantics allow the drop;
                # the stack's retransmissions recover what matters.
                self.send_buffer_drops += 1
                return
            except OSError as exc:
                self.last_error = exc
                return
            self.datagrams_sent += 1
            return
        if self._transport is None:
            if self._closed:
                self.datagrams_dropped_after_close += 1
                return
            raise LiveTransportError("socket is not open")
        self._transport.sendto(payload, (dst_addr, dst_port))
        self.datagrams_sent += 1

    def close(self) -> None:
        self._closed = True
        if self._sock is not None:
            if self._loop is not None:
                try:
                    self._loop.remove_reader(self._sock.fileno())
                except (NotImplementedError, OSError):
                    pass
            self._sock.close()
            self._sock = None
            self._loop = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None
