"""Real UDP sockets with the simulated-socket surface.

:class:`LiveUdpTransport` is the wall-clock counterpart of
:class:`repro.stack.node.UdpSocket`: it exposes the exact
``sendto(payload, dst_addr, dst_port, metadata)`` / ``on_datagram``
contract the sans-IO stack is written against, but backed by an
asyncio :class:`~asyncio.DatagramProtocol` on a real socket. CoAP
endpoints, DoC clients/servers, and the DTLS adapters stack on top of
it unchanged.

The *metadata* dictionary is a simulation-side channel (frame tagging
for the sniffer); on a real socket it has no wire representation, so
outbound metadata is dropped and inbound callbacks receive a fresh
empty dict.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional, Tuple


class LiveTransportError(Exception):
    """Raised on transport misuse (sending before/after the socket is
    open) or socket-level failures reported by the event loop."""


class LiveUdpTransport(asyncio.DatagramProtocol):
    """A bound UDP socket quacking like ``repro.stack.node.UdpSocket``.

    Create with :meth:`create` (binds the socket and waits for it to be
    ready). The socket stays open until :meth:`close`.
    """

    def __init__(
        self, allowed_peer: Optional[Tuple[str, int]] = None
    ) -> None:
        self.on_datagram: Optional[Callable[[str, int, bytes, dict], None]] = None
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._allowed_peer = allowed_peer
        self._closed = False
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.datagrams_filtered = 0
        self.datagrams_dropped_after_close = 0
        self.last_error: Optional[Exception] = None

    @classmethod
    async def create(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        allowed_peer: Optional[Tuple[str, int]] = None,
    ) -> "LiveUdpTransport":
        """Bind a UDP socket on ``host:port`` (port 0 = ephemeral).

        *allowed_peer* restricts the socket to one remote endpoint:
        datagrams from any other source are dropped before they reach
        the stack — client sockets talk to exactly one server, and an
        unfiltered port would let any off-path host inject responses.
        """
        loop = asyncio.get_running_loop()
        _transport, protocol = await loop.create_datagram_endpoint(
            lambda: cls(allowed_peer=allowed_peer), local_addr=(host, port)
        )
        return protocol

    # -- asyncio.DatagramProtocol ----------------------------------------

    def connection_made(self, transport) -> None:
        self._transport = transport

    def connection_lost(self, exc) -> None:
        self._transport = None
        self._closed = True
        if exc is not None:
            self.last_error = exc

    def datagram_received(self, data: bytes, addr) -> None:
        if self._allowed_peer is not None and (
            (addr[0], addr[1]) != self._allowed_peer
        ):
            self.datagrams_filtered += 1
            return
        self.datagrams_received += 1
        if self.on_datagram is not None:
            self.on_datagram(addr[0], addr[1], data, {})

    def error_received(self, exc) -> None:
        # ICMP errors (e.g. port unreachable) surface here; the stack's
        # own retransmission timers handle the loss, so just record it.
        self.last_error = exc

    # -- UdpSocket surface ------------------------------------------------

    @property
    def local_address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        if self._transport is None:
            raise LiveTransportError("socket is not open")
        return self._transport.get_extra_info("sockname")[:2]

    @property
    def port(self) -> int:
        return self.local_address[1]

    def sendto(
        self,
        payload: bytes,
        dst_addr: str,
        dst_port: int,
        metadata: Optional[dict] = None,
    ) -> None:
        """Send *payload* to ``dst_addr:dst_port`` (*metadata* is a
        simulation-only channel and is not transmitted).

        Sends after :meth:`close` are silently dropped (and counted):
        the sans-IO stack's retransmission timers may legitimately
        outlive the socket, and raising from inside a
        ``loop.call_later`` callback would only spam the event loop's
        unhandled-error log.
        """
        if self._transport is None:
            if self._closed:
                self.datagrams_dropped_after_close += 1
                return
            raise LiveTransportError("socket is not open")
        self._transport.sendto(payload, (dst_addr, dst_port))
        self.datagrams_sent += 1

    def close(self) -> None:
        self._closed = True
        if self._transport is not None:
            self._transport.close()
            self._transport = None
