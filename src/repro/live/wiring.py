"""Shared live-runtime wiring: names, zones, and security material.

The ``serve`` and ``loadtest`` halves of the live runtime usually run
in *separate processes*, so everything both sides must agree on is
derived deterministically here from CLI-visible inputs:

* the name universe — either the synthetic 24-character template the
  simulated runner uses, or a :mod:`repro.datasets` profile sampled
  with a fixed seed (both sides regenerate the identical list);
* the authoritative zone serving those names;
* OSCORE security contexts — both sides derive the same pair from a
  shared master secret;
* the DTLS PSK credentials.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.transports.registry import registry

#: Default UDP port of the live runtime. The registry's canonical
#: ports (53/5683/853) need elevated privileges to bind; the live
#: default stays in userland and is shared by ``serve`` and
#: ``loadtest`` so the two halves meet without flags.
DEFAULT_LIVE_PORT = 5853

#: Transports the live runtime can wire end-to-end.
LIVE_TRANSPORTS = ("udp", "dtls", "coap", "coaps", "oscore")

#: Default shared secret for OSCORE context derivation (override with
#: ``--secret`` for anything beyond loopback experiments).
DEFAULT_SECRET = b"repro-live-master-secret"

#: Default DTLS PSK credentials (matching the simulated adapters).
DEFAULT_PSK = b"secretPSK"
DEFAULT_PSK_IDENTITY = b"Client_identity"


class LiveWiringError(ValueError):
    """An inconsistent live-runtime configuration."""


def check_live_transport(name: str) -> str:
    """Validate *name* against the registry and the live capability."""
    profile = registry.get(name)  # raises UnknownTransportError
    if not profile.simulatable or name not in LIVE_TRANSPORTS:
        raise LiveWiringError(
            f"transport {name!r} cannot be served live "
            f"(supported: {', '.join(LIVE_TRANSPORTS)})"
        )
    return name


def build_names(
    count: int, dataset: Optional[str] = None, name_seed: int = 7
) -> List[str]:
    """The deterministic name universe shared by server and loadgen.

    Without *dataset*, the simulated runner's 24-character template
    (``name0000.example-iot.org``); with one, names sampled from the
    corresponding Section 3 dataset profile under *name_seed* — the
    same list on every call, so the serving and loading processes
    agree without talking to each other.
    """
    if count < 1:
        raise LiveWiringError("count must be >= 1")
    if dataset is None:
        from repro.scenarios.runner import NAME_TEMPLATE

        return [NAME_TEMPLATE.format(index=index) for index in range(count)]
    from repro.datasets import DATASET_PROFILES, generate_names

    try:
        profile = DATASET_PROFILES[dataset]
    except KeyError:
        raise LiveWiringError(
            f"unknown dataset {dataset!r} "
            f"(known: {', '.join(DATASET_PROFILES)})"
        ) from None
    return generate_names(profile, random.Random(name_seed), count)


def build_zone(
    names: Sequence[str],
    ttl: Tuple[int, int] = (300, 300),
    rng: Optional[random.Random] = None,
):
    """An authoritative zone answering A and AAAA for every name.

    Delegates to the scenario runner's zone builder so a live server
    answers exactly what the simulated resolver would for the same
    name index — rehearse a workload in simulation, replay it live,
    compare the answers byte-for-byte.
    """
    from repro.dns.enums import RecordType
    from repro.scenarios.runner import build_workload_zone
    from repro.scenarios.scenario import WorkloadSpec

    spec = WorkloadSpec(
        num_names=len(names),
        ttl=ttl,
        rtype_mix=(
            (int(RecordType.AAAA), 0.5),
            (int(RecordType.A), 0.5),
        ),
    )
    return build_workload_zone(spec, rng or random.Random(0), names=names)


def derive_oscore_pair(secret: bytes = DEFAULT_SECRET):
    """The (client, server) OSCORE contexts both processes derive.

    Replay windows are pre-initialised (no Echo round), matching the
    paper's measurement setup; pass the server context to
    :class:`~repro.doc.DocServer` and the client one to
    :class:`~repro.doc.DocClient`.
    """
    from repro.oscore import SecurityContext

    return SecurityContext.pair(secret, b"repro-live-salt")
