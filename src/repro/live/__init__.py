"""The live serving runtime: the reproduction's stack on real sockets.

Everything under :mod:`repro.live` promotes the sans-IO protocol stack
(CoAP endpoints, the DoC server/client, DTLS/OSCORE security) from the
discrete-event :class:`~repro.sim.core.Simulator` onto a wall-clock
asyncio runtime:

* :class:`~repro.live.clock.AsyncioClock` — the
  :class:`~repro.sim.clock.Clock` protocol on the event loop;
* :class:`~repro.live.transport.LiveUdpTransport` — real UDP sockets
  with the simulated-socket surface;
* :class:`~repro.live.server.DocLiveServer` /
  :class:`~repro.live.client.LiveResolver` — serving and resolving
  over any live transport profile (udp/dtls/coap/coaps/oscore);
* :func:`~repro.live.loadgen.generate_load` — open- and closed-loop
  load generation with latency-percentile reports;
* :class:`~repro.live.workers.ServePool` /
  :func:`~repro.live.workers.run_distributed_load` — SO_REUSEPORT
  sharding across server worker processes and distributed load
  generation with merged reports.

The CLI front-ends are ``python -m repro.cli serve`` and
``python -m repro.cli loadtest``.

Attribute access is lazy (PEP 562): importing :mod:`repro.live` is
nearly free, and each symbol pulls in only its own module — the CLI
builds its parser from the wiring constants without paying for the
server/client/loadgen stack.
"""

from __future__ import annotations

from importlib import import_module

#: Public name -> defining submodule (resolved on first access).
_EXPORTS = {
    "AsyncioClock": ".clock",
    "LiveResolver": ".client",
    "LiveResult": ".client",
    "REPORT_FIELDS": ".loadgen",
    "REPORT_VERSION": ".loadgen",
    "LoadGenError": ".loadgen",
    "generate_load": ".loadgen",
    "generate_report": ".loadgen",
    "DEFAULT_RESERVOIR_CAPACITY": ".reservoir",
    "LatencyReservoir": ".reservoir",
    "DocLiveServer": ".server",
    "LiveTransportError": ".transport",
    "LiveUdpTransport": ".transport",
    "LoadPool": ".workers",
    "ServePool": ".workers",
    "WorkerPool": ".workers",
    "WorkerPoolError": ".workers",
    "derive_worker_seed": ".workers",
    "maybe_install_uvloop": ".workers",
    "reuseport_supported": ".workers",
    "run_distributed_load": ".workers",
    "DEFAULT_LIVE_PORT": ".wiring",
    "LIVE_TRANSPORTS": ".wiring",
    "LiveWiringError": ".wiring",
    "build_names": ".wiring",
    "build_zone": ".wiring",
    "derive_oscore_pair": ".wiring",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module_name, __name__), name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
