"""IEEE 802.15.4 data frames (2015 revision, data frame subset).

The testbed radios use 64-bit extended addresses with PAN-ID
compression; that yields a 21-byte MAC header plus the 2-byte FCS,
leaving 104 bytes of the 127-byte PDU for the 6LoWPAN payload.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import lru_cache

_ADDR_FIELDS = struct.Struct("<HQQ")  # PAN ID, destination, source

#: Maximum PHY payload (PDU) of IEEE 802.15.4 (Table 2b).
FRAME_MAX_PDU = 127
#: Frame check sequence appended to every frame.
FCS_LEN = 2

_FCF_DATA_PANID_COMPRESSED = 0x8841  # data frame, 16-bit... see below


def mac_header_length(extended: bool = True) -> int:
    """MAC header length: FCF(2) + seq(1) + PAN(2) + dst + src.

    With 64-bit extended addresses and PAN-ID compression this is
    2 + 1 + 2 + 8 + 8 = 21 bytes.
    """
    address_len = 8 if extended else 2
    return 2 + 1 + 2 + 2 * address_len


_MAC_HEADER_LEN = 2 + 1 + 2 + 8 + 8
_MAX_PAYLOAD = FRAME_MAX_PDU - _MAC_HEADER_LEN - FCS_LEN

# FCF: frame type data (0b001), PAN ID compression, dst/src addressing
# mode 'extended' (0b11 each), frame version 2006.
_FCF = 0b001 | (1 << 6) | (0b11 << 10) | (0b01 << 12) | (0b11 << 14)
_FCF_BYTES = _FCF.to_bytes(2, "little")


@lru_cache(maxsize=1024)
def _address_fields(pan_id: int, dst: int, src: int) -> bytes:
    """PAN + destination + source header bytes, constant per link."""
    return (
        pan_id.to_bytes(2, "little")
        + dst.to_bytes(8, "little")
        + src.to_bytes(8, "little")
    )


@dataclass(frozen=True, slots=True)
class MacFrame:
    """A data frame with extended (EUI-64) addressing."""

    src: int  # 64-bit extended address
    dst: int
    seq: int
    payload: bytes
    pan_id: int = 0x23

    def __post_init__(self) -> None:
        if len(self.payload) > _MAX_PAYLOAD:
            raise ValueError(
                f"payload {len(self.payload)} exceeds {_MAX_PAYLOAD}"
            )

    @staticmethod
    def max_payload() -> int:
        """Per-frame 6LoWPAN capacity: 127 - header(21) - FCS(2) = 104."""
        return _MAX_PAYLOAD

    def encode_into(self, out: bytearray) -> None:
        """Append the PDU bytes (header, payload, FCS placeholder) to *out*.

        The FCS trailer is a placeholder (computed by hardware); the
        per-link address fields come from a cache — only the sequence
        number changes frame to frame.
        """
        out += _FCF_BYTES
        out.append(self.seq & 0xFF)
        out += _address_fields(self.pan_id, self.dst, self.src)
        out += self.payload
        out += b"\x00\x00"

    def encode(self) -> bytes:
        """Wire format including the FCS placeholder (PDU bytes)."""
        out = bytearray()
        self.encode_into(out)
        return bytes(out)

    @classmethod
    def decode(cls, data) -> "MacFrame":
        """Parse a frame from ``bytes | memoryview`` (input never mutated)."""
        if len(data) < _MAC_HEADER_LEN + FCS_LEN:
            raise ValueError("frame shorter than MAC header")
        pan_id, dst, src = _ADDR_FIELDS.unpack_from(data, 3)
        return cls(
            src=src,
            dst=dst,
            seq=data[2],
            payload=bytes(data[_MAC_HEADER_LEN : len(data) - FCS_LEN]),
            pan_id=pan_id,
        )
