"""IEEE 802.15.4 data frames (2015 revision, data frame subset).

The testbed radios use 64-bit extended addresses with PAN-ID
compression; that yields a 21-byte MAC header plus the 2-byte FCS,
leaving 104 bytes of the 127-byte PDU for the 6LoWPAN payload.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Maximum PHY payload (PDU) of IEEE 802.15.4 (Table 2b).
FRAME_MAX_PDU = 127
#: Frame check sequence appended to every frame.
FCS_LEN = 2

_FCF_DATA_PANID_COMPRESSED = 0x8841  # data frame, 16-bit... see below


def mac_header_length(extended: bool = True) -> int:
    """MAC header length: FCF(2) + seq(1) + PAN(2) + dst + src.

    With 64-bit extended addresses and PAN-ID compression this is
    2 + 1 + 2 + 8 + 8 = 21 bytes.
    """
    address_len = 8 if extended else 2
    return 2 + 1 + 2 + 2 * address_len


@dataclass(frozen=True)
class MacFrame:
    """A data frame with extended (EUI-64) addressing."""

    src: int  # 64-bit extended address
    dst: int
    seq: int
    payload: bytes
    pan_id: int = 0x23

    def __post_init__(self) -> None:
        if len(self.payload) > self.max_payload():
            raise ValueError(
                f"payload {len(self.payload)} exceeds {self.max_payload()}"
            )

    @staticmethod
    def max_payload() -> int:
        """Per-frame 6LoWPAN capacity: 127 - header(21) - FCS(2) = 104."""
        return FRAME_MAX_PDU - mac_header_length() - FCS_LEN

    def encode(self) -> bytes:
        """Wire format including the FCS placeholder (PDU bytes)."""
        # FCF: frame type data (0b001), PAN ID compression, dst/src
        # addressing mode 'extended' (0b11 each), frame version 2006.
        fcf = 0b001 | (1 << 6) | (0b11 << 10) | (0b01 << 12) | (0b11 << 14)
        out = bytearray()
        out += fcf.to_bytes(2, "little")
        out += bytes([self.seq & 0xFF])
        out += self.pan_id.to_bytes(2, "little")
        out += self.dst.to_bytes(8, "little")
        out += self.src.to_bytes(8, "little")
        out += self.payload
        out += b"\x00\x00"  # FCS placeholder (computed by hardware)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "MacFrame":
        header_len = mac_header_length()
        if len(data) < header_len + FCS_LEN:
            raise ValueError("frame shorter than MAC header")
        seq = data[2]
        pan_id = int.from_bytes(data[3:5], "little")
        dst = int.from_bytes(data[5:13], "little")
        src = int.from_bytes(data[13:21], "little")
        payload = bytes(data[header_len:-FCS_LEN])
        return cls(src=src, dst=dst, seq=seq, payload=payload, pan_id=pan_id)
