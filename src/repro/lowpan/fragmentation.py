"""6LoWPAN fragmentation (RFC 4944 §5.3).

When the compressed packet exceeds the MAC payload, it is split into a
FRAG1 fragment (4-byte header, carries the compressed headers) and
FRAGN fragments (5-byte headers). ``datagram_size`` and the offsets
count *uncompressed* IPv6 bytes; offsets are in 8-byte units, so
fragment payloads are sized to multiples of 8.

The paper's Figure 6 represents "each additional fragment with its
headers above the red marker line"; the per-fragment arithmetic here
is what produces those fragment counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

FRAG1_HEADER_LEN = 4
FRAGN_HEADER_LEN = 5
_FRAG1_DISPATCH = 0b11000
_FRAGN_DISPATCH = 0b11100


def _frag1_extent_headers(frag1_chunk: bytes):
    """Compressed/uncompressed header lengths of the FRAG1 contents."""
    from .iphc import header_extents  # deferred: keeps import cycle-free

    return header_extents(frag1_chunk)


class FragmentationError(ValueError):
    """Raised on malformed fragments or failed reassembly."""


def _frag1_header(datagram_size: int, tag: int) -> bytes:
    if datagram_size >= 1 << 11:
        raise FragmentationError("datagram larger than 2047 bytes")
    value = (_FRAG1_DISPATCH << 11) | datagram_size
    return value.to_bytes(2, "big") + tag.to_bytes(2, "big")


def _fragn_header(datagram_size: int, tag: int, offset_units: int) -> bytes:
    value = (_FRAGN_DISPATCH << 11) | datagram_size
    return value.to_bytes(2, "big") + tag.to_bytes(2, "big") + bytes([offset_units])


class Fragmenter:
    """Splits compressed datagrams into per-hop fragment payloads."""

    def __init__(self, max_frame_payload: int) -> None:
        self._max_payload = max_frame_payload
        self._next_tag = 0

    def fragment(
        self, compressed: bytes, uncompressed_size: int
    ) -> List[bytes]:
        """Return the MAC payloads for one datagram (1 entry if no
        fragmentation is needed).

        Parameters
        ----------
        compressed:
            The IPHC-compressed datagram.
        uncompressed_size:
            Size of the original IPv6 packet; fragment offsets are
            expressed in these uncompressed bytes.
        """
        if len(compressed) <= self._max_payload:
            return [compressed]

        tag = self._next_tag & 0xFFFF
        self._next_tag += 1

        # The compression saves (uncompressed - compressed) bytes, all
        # in the first fragment. Offsets count uncompressed bytes.
        savings = uncompressed_size - len(compressed)
        fragments: List[bytes] = []

        # FRAG1: fill to a payload whose *uncompressed* extent is a
        # multiple of 8.
        frag1_capacity = self._max_payload - FRAG1_HEADER_LEN
        # Choose c1 (compressed bytes in FRAG1) so c1 + savings ≡ 0 (mod 8).
        c1 = frag1_capacity - ((frag1_capacity + savings) % 8)
        fragments.append(
            _frag1_header(uncompressed_size, tag) + compressed[:c1]
        )
        consumed_uncompressed = c1 + savings
        position = c1

        fragn_capacity = self._max_payload - FRAGN_HEADER_LEN
        fragn_capacity -= fragn_capacity % 8
        while position < len(compressed):
            chunk = compressed[position : position + fragn_capacity]
            fragments.append(
                _fragn_header(
                    uncompressed_size, tag, consumed_uncompressed // 8
                )
                + chunk
            )
            position += len(chunk)
            consumed_uncompressed += len(chunk)
        return fragments


@dataclass
class _PartialDatagram:
    size: int
    received: Dict[int, bytes]
    first_arrival: float
    #: Uncompressed extent of the FRAG1 chunk, computed once — FRAGN
    #: arrivals re-check completeness but need not re-parse the IPHC
    #: header every time.
    frag1_extent: Optional[int] = None


class Reassembler:
    """Per-link-neighbour reassembly buffers with timeout.

    RFC 4944 recommends discarding partial datagrams after 60 s; the
    timeout is enforced lazily on access.
    """

    def __init__(self, timeout: float = 60.0) -> None:
        self._timeout = timeout
        self._partial: Dict[Tuple[int, int], _PartialDatagram] = {}

    def push(
        self, sender: int, payload: bytes, now: float
    ) -> Optional[bytes]:
        """Feed one MAC payload; returns the complete compressed
        datagram when reassembly finishes, else ``None``.

        Unfragmented payloads are returned immediately.
        """
        if not payload:
            raise FragmentationError("empty MAC payload")
        dispatch5 = payload[0] >> 3
        if dispatch5 == _FRAG1_DISPATCH:
            header_len, offset_units = FRAG1_HEADER_LEN, 0
        elif dispatch5 == _FRAGN_DISPATCH:
            if len(payload) < FRAGN_HEADER_LEN:
                raise FragmentationError("truncated FRAGN header")
            header_len, offset_units = FRAGN_HEADER_LEN, payload[4]
        else:
            return payload  # not fragmented
        if len(payload) < header_len:
            raise FragmentationError("truncated fragment header")

        size = int.from_bytes(payload[0:2], "big") & 0x7FF
        tag = int.from_bytes(payload[2:4], "big")
        chunk = payload[header_len:]
        key = (sender, tag)

        partial = self._partial.get(key)
        if partial is not None and now - partial.first_arrival > self._timeout:
            del self._partial[key]
            partial = None
        if partial is None:
            partial = _PartialDatagram(size, {}, now)
            self._partial[key] = partial
        partial.received[offset_units] = chunk

        # Completeness: the fragments must tile [0, size) exactly in
        # uncompressed bytes. The FRAG1 chunk's uncompressed extent is
        # its length plus the IPHC compression savings, recovered by
        # parsing the compressed header it carries.
        frag1 = partial.received.get(0)
        if frag1 is None:
            return None
        if partial.frag1_extent is None:
            try:
                compressed_hdr, uncompressed_hdr = _frag1_extent_headers(frag1)
            except Exception:
                return None
            partial.frag1_extent = len(frag1) + (uncompressed_hdr - compressed_hdr)
        position = partial.frag1_extent
        for units in sorted(u for u in partial.received if u != 0):
            if units * 8 != position:
                return None  # hole: a fragment is still missing
            position += len(partial.received[units])
        if position != size:
            return None
        ordered = [frag1]
        for units in sorted(u for u in partial.received if u != 0):
            ordered.append(partial.received[units])
        del self._partial[key]
        return b"".join(ordered)

    def pending(self) -> int:
        return len(self._partial)
