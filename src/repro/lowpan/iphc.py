"""LOWPAN_IPHC header compression (RFC 6282) with UDP NHC.

Configured as the paper does for comparable RIOT/Linux behaviour
(Section 5.1): stateless address compression only (no context IDs),
and traffic class / flow label zeroed so they can be elided.

Compression modes implemented:

* TF: elided when TC and flow label are 0, else 4 bytes inline;
* NH: UDP next-header compression (LOWPAN_NHC, §4.3) with the 4/8/16
  bit port compression cases; checksum always inline;
* HLIM: 1/64/255 compressed into the header, else 1 byte inline;
* SAM/DAM (stateless): fully elided when the IID is derived from the
  link-layer address, 16-bit when the IID matches ``::ff:fe00:xxxx``,
  64-bit for other link-local, full 128-bit otherwise; multicast
  destinations use the 8/32/48-bit ff00::/8 encodings.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.ipv6 import (
    NEXT_HEADER_UDP,
    Ipv6Packet,
    address_from_int,
    address_from_packed,
    address_int,
    is_multicast,
    packed_address,
)
from repro.net.udp import UdpDatagram

_DISPATCH = 0b011


class IphcError(ValueError):
    """Raised when a header cannot be compressed or parsed."""


def _need(data: bytes, offset: int, count: int) -> None:
    """Bounds check: *count* bytes must be available at *offset*."""
    if offset + count > len(data):
        raise IphcError("truncated IPHC input")


def _iid_from_mac(mac: int) -> int:
    """EUI-64 derived IID: the MAC with the U/L bit flipped."""
    return mac ^ (1 << 57)


def _address_parts(address: str) -> Tuple[int, int]:
    value = address_int(address)
    return value >> 64, value & ((1 << 64) - 1)


_LINK_LOCAL_PREFIX = 0xFE80 << 48


def _compress_unicast(address: str, mac: int) -> Tuple[int, bytes]:
    """Return (mode, inline_bytes) for a stateless unicast address."""
    prefix, iid = _address_parts(address)
    if prefix == _LINK_LOCAL_PREFIX:
        if iid == _iid_from_mac(mac):
            return 3, b""
        if iid >> 16 == 0x000000FFFE00:
            return 2, (iid & 0xFFFF).to_bytes(2, "big")
        return 1, iid.to_bytes(8, "big")
    return 0, packed_address(address)


def _decompress_unicast(mode: int, data: bytes, offset: int, mac: int) -> Tuple[str, int]:
    if mode == 0:
        _need(data, offset, 16)
        packed = bytes(data[offset : offset + 16])
        return address_from_packed(packed), offset + 16
    if mode == 1:
        _need(data, offset, 8)
        iid = int.from_bytes(data[offset : offset + 8], "big")
        offset += 8
    elif mode == 2:
        _need(data, offset, 2)
        low = int.from_bytes(data[offset : offset + 2], "big")
        iid = (0x000000FFFE00 << 16) | low
        offset += 2
    else:
        iid = _iid_from_mac(mac)
    value = (_LINK_LOCAL_PREFIX << 64) | iid
    return address_from_int(value), offset


def _compress_multicast(address: str) -> Tuple[int, bytes]:
    value = address_int(address)
    if value >> 120 != 0xFF:
        raise IphcError("not a multicast address")
    scope = (value >> 112) & 0xFF
    group = value & ((1 << 112) - 1)
    if group < 0x100 and scope == 0x02:
        # ff02::00XX
        return 3, bytes([group])
    if group >> 32 == 0:
        return 2, bytes([scope]) + (group & 0xFFFFFFFF).to_bytes(4, "big")
    if group >> 40 == 0:
        return 1, bytes([scope]) + (group & 0xFFFFFFFFFF).to_bytes(5, "big")
    return 0, packed_address(address)


def _decompress_multicast(mode: int, data: bytes, offset: int) -> Tuple[str, int]:
    if mode == 0:
        _need(data, offset, 16)
        packed = bytes(data[offset : offset + 16])
        return address_from_packed(packed), offset + 16
    if mode == 3:
        _need(data, offset, 1)
        value = (0xFF02 << 112) | data[offset]
        return address_from_int(value), offset + 1
    if mode == 2:
        _need(data, offset, 5)
        scope = data[offset]
        group = int.from_bytes(data[offset + 1 : offset + 5], "big")
        value = (0xFF << 120) | (scope << 112) | group
        return address_from_int(value), offset + 5
    _need(data, offset, 6)
    scope = data[offset]
    group = int.from_bytes(data[offset + 1 : offset + 6], "big")
    value = (0xFF << 120) | (scope << 112) | group
    return address_from_int(value), offset + 6


def _compress_udp(datagram_bytes: bytes) -> bytes:
    """LOWPAN_NHC for UDP: ports per §4.3.3, checksum inline."""
    src_port = int.from_bytes(datagram_bytes[0:2], "big")
    dst_port = int.from_bytes(datagram_bytes[2:4], "big")
    checksum = datagram_bytes[6:8]
    payload = datagram_bytes[8:]
    if src_port >> 4 == 0xF0B and dst_port >> 4 == 0xF0B:
        head = bytes(
            [0b11110011, ((src_port & 0xF) << 4) | (dst_port & 0xF)]
        )
    elif dst_port >> 8 == 0xF0:
        head = (
            bytes([0b11110001])
            + src_port.to_bytes(2, "big")
            + bytes([dst_port & 0xFF])
        )
    elif src_port >> 8 == 0xF0:
        head = (
            bytes([0b11110010, src_port & 0xFF])
            + dst_port.to_bytes(2, "big")
        )
    else:
        head = (
            bytes([0b11110000])
            + src_port.to_bytes(2, "big")
            + dst_port.to_bytes(2, "big")
        )
    return head + checksum + payload


def _decompress_udp(data: bytes, offset: int) -> Tuple[UdpDatagram, bytes]:
    _need(data, offset, 1)
    head = data[offset]
    if head >> 3 != 0b11110:
        raise IphcError("not a UDP NHC header")
    if head & 0x04:
        raise IphcError("elided UDP checksum unsupported")
    ports_mode = head & 0x03
    offset += 1
    if ports_mode == 0b11:
        _need(data, offset, 1)
        byte = data[offset]
        src_port = 0xF0B0 | (byte >> 4)
        dst_port = 0xF0B0 | (byte & 0xF)
        offset += 1
    elif ports_mode == 0b01:
        _need(data, offset, 3)
        src_port = int.from_bytes(data[offset : offset + 2], "big")
        dst_port = 0xF000 | data[offset + 2]
        offset += 3
    elif ports_mode == 0b10:
        _need(data, offset, 3)
        src_port = 0xF000 | data[offset]
        dst_port = int.from_bytes(data[offset + 1 : offset + 3], "big")
        offset += 3
    else:
        _need(data, offset, 4)
        src_port = int.from_bytes(data[offset : offset + 2], "big")
        dst_port = int.from_bytes(data[offset + 2 : offset + 4], "big")
        offset += 4
    _need(data, offset, 2)
    checksum = data[offset : offset + 2]
    offset += 2
    payload = bytes(data[offset:])
    datagram = UdpDatagram(src_port, dst_port, payload)
    return datagram, checksum


def compress(packet: Ipv6Packet, src_mac: int, dst_mac: int) -> bytes:
    """Compress *packet* into IPHC form for one 802.15.4 hop."""
    tf_elided = packet.traffic_class == 0 and packet.flow_label == 0
    udp_nhc = packet.next_header == NEXT_HEADER_UDP

    hlim_map = {1: 0b01, 64: 0b10, 255: 0b11}
    hlim_mode = hlim_map.get(packet.hop_limit, 0b00)

    dst_is_multicast = is_multicast(packet.dst)
    sam, src_inline = _compress_unicast(packet.src, src_mac)
    if dst_is_multicast:
        dam, dst_inline = _compress_multicast(packet.dst)
    else:
        dam, dst_inline = _compress_unicast(packet.dst, dst_mac)

    byte1 = (
        (_DISPATCH << 5)
        | ((0b11 if tf_elided else 0b00) << 3)
        | ((1 if udp_nhc else 0) << 2)
        | hlim_mode
    )
    byte2 = (sam << 4) | (int(dst_is_multicast) << 3) | dam

    out = bytearray([byte1, byte2])
    if not tf_elided:
        out += (
            (packet.traffic_class << 20 | packet.flow_label)
        ).to_bytes(4, "big")  # ECN/DSCP + flow label inline (TF=00)
    if not udp_nhc:
        out.append(packet.next_header)
    if hlim_mode == 0b00:
        out.append(packet.hop_limit)
    out += src_inline
    out += dst_inline
    if udp_nhc:
        out += _compress_udp(packet.payload)
    else:
        out += packet.payload
    return bytes(out)


def header_extents(data: bytes) -> Tuple[int, int]:
    """Compressed vs. uncompressed header lengths of an IPHC datagram.

    Parses only the header fields (no payload needed), which lets the
    reassembler compute how many *uncompressed* bytes the FRAG1
    fragment covers: ``len(frag1_chunk) + (uncompressed - compressed)``.
    """
    if len(data) < 2 or data[0] >> 5 != _DISPATCH:
        raise IphcError("not an IPHC header")
    byte1, byte2 = data[0], data[1]
    tf_mode = (byte1 >> 3) & 0b11
    udp_nhc = bool(byte1 & 0b100)
    hlim_mode = byte1 & 0b11
    sam = (byte2 >> 4) & 0b11
    multicast = bool(byte2 & 0b1000)
    dam = byte2 & 0b11

    offset = 2
    if tf_mode == 0b00:
        offset += 4
    if not udp_nhc:
        offset += 1
    if hlim_mode == 0b00:
        offset += 1
    unicast_lengths = {0: 16, 1: 8, 2: 2, 3: 0}
    offset += unicast_lengths[sam]
    if multicast:
        multicast_lengths = {0: 16, 1: 6, 2: 5, 3: 1}
        offset += multicast_lengths[dam]
    else:
        offset += unicast_lengths[dam]
    uncompressed = 40
    if udp_nhc:
        _need(data, offset, 1)
        head = data[offset]
        ports_mode = head & 0x03
        offset += 1 + {0b00: 4, 0b01: 3, 0b10: 3, 0b11: 1}[ports_mode]
        offset += 2  # checksum inline
        uncompressed += 8
    return offset, uncompressed


def decompress(data: bytes, src_mac: int, dst_mac: int) -> Ipv6Packet:
    """Inverse of :func:`compress` for one hop."""
    if len(data) < 2 or data[0] >> 5 != _DISPATCH:
        raise IphcError("not an IPHC header")
    byte1, byte2 = data[0], data[1]
    tf_mode = (byte1 >> 3) & 0b11
    udp_nhc = bool(byte1 & 0b100)
    hlim_mode = byte1 & 0b11
    sam = (byte2 >> 4) & 0b11
    multicast = bool(byte2 & 0b1000)
    dam = byte2 & 0b11
    if byte2 & 0x80 or byte2 & 0x40 or byte2 & 0x04:
        raise IphcError("context-based compression unsupported")

    offset = 2
    traffic_class = flow_label = 0
    if tf_mode == 0b00:
        _need(data, offset, 4)
        combined = int.from_bytes(data[offset : offset + 4], "big")
        traffic_class = (combined >> 20) & 0xFF
        flow_label = combined & 0xFFFFF
        offset += 4
    elif tf_mode != 0b11:
        raise IphcError(f"TF mode {tf_mode} unsupported")

    next_header = NEXT_HEADER_UDP
    if not udp_nhc:
        _need(data, offset, 1)
        next_header = data[offset]
        offset += 1

    hlim_values = {0b01: 1, 0b10: 64, 0b11: 255}
    if hlim_mode == 0b00:
        _need(data, offset, 1)
        hop_limit = data[offset]
        offset += 1
    else:
        hop_limit = hlim_values[hlim_mode]

    src, offset = _decompress_unicast(sam, data, offset, src_mac)
    if multicast:
        dst, offset = _decompress_multicast(dam, data, offset)
    else:
        dst, offset = _decompress_unicast(dam, data, offset, dst_mac)

    if udp_nhc:
        datagram, checksum = _decompress_udp(data, offset)
        payload = datagram.encode_with_checksum(bytes(checksum))
    else:
        payload = bytes(data[offset:])
    return Ipv6Packet(
        src=src,
        dst=dst,
        payload=payload,
        next_header=next_header,
        hop_limit=hop_limit,
        traffic_class=traffic_class,
        flow_label=flow_label,
    )
