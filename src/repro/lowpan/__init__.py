"""6LoWPAN adaptation layer over IEEE 802.15.4.

Everything the paper's wireless hops do to an IPv6 packet:

* :mod:`repro.lowpan.ieee802154` — MAC frames, 127-byte PDU limit;
* :mod:`repro.lowpan.iphc` — IPHC header compression (RFC 6282) with
  the UDP next-header compression, configured as in the paper
  (stateless, traffic class / flow label elided);
* :mod:`repro.lowpan.fragmentation` — FRAG1/FRAGN (RFC 4944 §5.3) with
  reassembly buffers.

The top-level :class:`LowpanAdaptation` turns an IPv6 packet into the
list of MAC frames for one hop and reassembles on the far side — the
red dashed "fragmentation" line of Figure 6 falls out of its
``max_payload`` arithmetic.
"""

from .ieee802154 import FRAME_MAX_PDU, MacFrame, mac_header_length
from .iphc import IphcError, compress, decompress
from .fragmentation import FragmentationError, Fragmenter, Reassembler
from .adaptation import LowpanAdaptation

__all__ = [
    "FRAME_MAX_PDU",
    "FragmentationError",
    "Fragmenter",
    "IphcError",
    "LowpanAdaptation",
    "MacFrame",
    "Reassembler",
    "compress",
    "decompress",
    "mac_header_length",
]
