"""The per-node 6LoWPAN adaptation: compress → fragment → MAC frames.

One :class:`LowpanAdaptation` per node ties IPHC and fragmentation to
the node's MAC address and produces/consumes the MAC frames the radio
medium moves around.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.ipv6 import Ipv6Packet

from .fragmentation import Fragmenter, Reassembler
from .ieee802154 import MacFrame
from .iphc import compress, decompress


class LowpanAdaptation:
    """6LoWPAN send/receive processing for one interface."""

    def __init__(self, mac: int, reassembly_timeout: float = 60.0) -> None:
        self.mac = mac
        self._fragmenter = Fragmenter(MacFrame.max_payload())
        self._reassembler = Reassembler(reassembly_timeout)
        self._seq = 0

    def packet_to_frames(self, packet: Ipv6Packet, next_hop_mac: int) -> List[MacFrame]:
        """Compress and (if needed) fragment *packet* for one hop."""
        compressed = compress(packet, self.mac, next_hop_mac)
        payloads = self._fragmenter.fragment(compressed, packet.total_length)
        frames = []
        for payload in payloads:
            frames.append(
                MacFrame(
                    src=self.mac,
                    dst=next_hop_mac,
                    seq=self._seq & 0xFF,
                    payload=payload,
                )
            )
            self._seq += 1
        return frames

    def frame_to_packet(self, frame: MacFrame, now: float) -> Optional[Ipv6Packet]:
        """Feed a received frame; returns the packet when complete."""
        compressed = self._reassembler.push(frame.src, frame.payload, now)
        if compressed is None:
            return None
        return decompress(compressed, frame.src, self.mac)

    def frame_sizes(self, packet: Ipv6Packet, next_hop_mac: int) -> List[int]:
        """PDU sizes (including MAC header + FCS) this packet produces.

        Analytical helper for the packet-size figures; does not consume
        sequence numbers.
        """
        compressed = compress(packet, self.mac, next_hop_mac)
        payloads = Fragmenter(MacFrame.max_payload()).fragment(
            compressed, packet.total_length
        )
        from .ieee802154 import FCS_LEN, mac_header_length

        return [
            mac_header_length() + len(payload) + FCS_LEN for payload in payloads
        ]
