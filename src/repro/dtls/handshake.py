"""DTLSv1.2 PSK handshake (RFC 6347 §4.2, RFC 4279 §2).

Message flow, matching Figure 6's "Session setup" dissection::

    Client                                 Server
    ClientHello            ------>
                           <------  HelloVerifyRequest (cookie)
    ClientHello (cookie)   ------>
                           <------  ServerHello
                           <------  ServerHelloDone
    ClientKeyExchange      ------>
    ChangeCipherSpec       ------>
    Finished               ------>
                           <------  ChangeCipherSpec
                           <------  Finished

Handshake messages carry the 12-byte DTLS handshake header (type,
length, message_seq, fragment_offset, fragment_length) and are encoded
byte-exactly; the Finished verify_data is computed with the real PRF
over the real transcript, so a tampered flight fails the handshake.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto import tls12_prf

from .record import DtlsError

HANDSHAKE_HEADER_LEN = 12
#: TLS_PSK_WITH_AES_128_CCM_8 (RFC 6655).
CIPHER_TLS_PSK_WITH_AES_128_CCM_8 = 0xC0A8
VERIFY_DATA_LEN = 12
MASTER_SECRET_LEN = 48
#: Key block: 2×16-byte write keys + 2×4-byte implicit IVs (no MAC keys
#: for AEAD suites).
KEY_BLOCK_LEN = 2 * 16 + 2 * 4


class HandshakeType(enum.IntEnum):
    HELLO_REQUEST = 0
    CLIENT_HELLO = 1
    SERVER_HELLO = 2
    HELLO_VERIFY_REQUEST = 3
    SERVER_HELLO_DONE = 14
    CLIENT_KEY_EXCHANGE = 16
    FINISHED = 20


@dataclass(frozen=True)
class HandshakeMessage:
    """One handshake message (unfragmented; our flights are small)."""

    msg_type: HandshakeType
    message_seq: int
    body: bytes

    def encode(self) -> bytes:
        length = len(self.body)
        return (
            bytes([self.msg_type])
            + length.to_bytes(3, "big")
            + self.message_seq.to_bytes(2, "big")
            + (0).to_bytes(3, "big")      # fragment_offset
            + length.to_bytes(3, "big")   # fragment_length
            + self.body
        )

    @classmethod
    def decode(cls, data: bytes) -> Tuple["HandshakeMessage", int]:
        if len(data) < HANDSHAKE_HEADER_LEN:
            raise DtlsError("truncated handshake header")
        msg_type = HandshakeType(data[0])
        length = int.from_bytes(data[1:4], "big")
        message_seq = int.from_bytes(data[4:6], "big")
        fragment_offset = int.from_bytes(data[6:9], "big")
        fragment_length = int.from_bytes(data[9:12], "big")
        if fragment_offset != 0 or fragment_length != length:
            raise DtlsError("fragmented handshake messages unsupported")
        end = HANDSHAKE_HEADER_LEN + length
        if end > len(data):
            raise DtlsError("truncated handshake body")
        return cls(msg_type, message_seq, bytes(data[12:end])), end


def make_premaster_secret(psk: bytes) -> bytes:
    """RFC 4279 §2: other_secret (zeros) and PSK, both length-prefixed."""
    zeros = bytes(len(psk))
    return (
        len(psk).to_bytes(2, "big") + zeros + len(psk).to_bytes(2, "big") + psk
    )


def derive_master_secret(
    premaster: bytes, client_random: bytes, server_random: bytes
) -> bytes:
    return tls12_prf(
        premaster, b"master secret", client_random + server_random,
        MASTER_SECRET_LEN,
    )


@dataclass(frozen=True)
class SessionKeys:
    """Directional keys/IVs cut from the key block (RFC 5246 §6.3)."""

    client_write_key: bytes
    server_write_key: bytes
    client_write_iv: bytes
    server_write_iv: bytes


def derive_keys(
    master_secret: bytes, client_random: bytes, server_random: bytes
) -> SessionKeys:
    block = tls12_prf(
        master_secret, b"key expansion", server_random + client_random,
        KEY_BLOCK_LEN,
    )
    return SessionKeys(
        client_write_key=block[0:16],
        server_write_key=block[16:32],
        client_write_iv=block[32:36],
        server_write_iv=block[36:40],
    )


# -- handshake message bodies --------------------------------------------


def encode_client_hello(
    client_random: bytes, cookie: bytes, session_id: bytes = b""
) -> bytes:
    body = bytearray()
    body += bytes([254, 253])            # client_version = DTLS 1.2
    body += client_random                # 32 bytes
    body += bytes([len(session_id)]) + session_id
    body += bytes([len(cookie)]) + cookie
    body += (2).to_bytes(2, "big")       # cipher_suites length
    body += CIPHER_TLS_PSK_WITH_AES_128_CCM_8.to_bytes(2, "big")
    body += bytes([1, 0])                # compression: null only
    return bytes(body)


def decode_client_hello(body: bytes) -> Tuple[bytes, bytes]:
    """Returns (client_random, cookie)."""
    if len(body) < 35:
        raise DtlsError("truncated ClientHello")
    client_random = bytes(body[2:34])
    offset = 34
    session_id_len = body[offset]
    offset += 1 + session_id_len
    cookie_len = body[offset]
    cookie = bytes(body[offset + 1 : offset + 1 + cookie_len])
    return client_random, cookie


def encode_server_hello(server_random: bytes, session_id: bytes = b"") -> bytes:
    body = bytearray()
    body += bytes([254, 253])
    body += server_random
    body += bytes([len(session_id)]) + session_id
    body += CIPHER_TLS_PSK_WITH_AES_128_CCM_8.to_bytes(2, "big")
    body += bytes([0])                   # null compression
    return bytes(body)


def decode_server_hello(body: bytes) -> bytes:
    if len(body) < 35:
        raise DtlsError("truncated ServerHello")
    return bytes(body[2:34])


def encode_hello_verify_request(cookie: bytes) -> bytes:
    return bytes([254, 253, len(cookie)]) + cookie


def decode_hello_verify_request(body: bytes) -> bytes:
    if len(body) < 3:
        raise DtlsError("truncated HelloVerifyRequest")
    cookie_len = body[2]
    return bytes(body[3 : 3 + cookie_len])


def encode_client_key_exchange(psk_identity: bytes) -> bytes:
    return len(psk_identity).to_bytes(2, "big") + psk_identity


def decode_client_key_exchange(body: bytes) -> bytes:
    if len(body) < 2:
        raise DtlsError("truncated ClientKeyExchange")
    length = int.from_bytes(body[0:2], "big")
    return bytes(body[2 : 2 + length])


@dataclass
class HandshakeResult:
    """Outcome of a completed handshake."""

    keys: SessionKeys
    master_secret: bytes
    client_random: bytes
    server_random: bytes
    #: Every handshake record flight as (direction, name, bytes) for the
    #: packet-size analysis of Figure 6.
    transcript_sizes: List[Tuple[str, str, int]] = field(default_factory=list)


class _TranscriptHash:
    """Running hash of all handshake messages (HVR excluded, RFC 6347 §4.2.6)."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256()

    def update(self, message: HandshakeMessage) -> None:
        if message.msg_type == HandshakeType.HELLO_VERIFY_REQUEST:
            return
        self._hash.update(message.encode())

    def digest(self) -> bytes:
        return self._hash.copy().digest()


class ClientHandshake:
    """Client side of the PSK handshake, driven message by message."""

    def __init__(
        self, psk: bytes, psk_identity: bytes, client_random: bytes
    ) -> None:
        if len(client_random) != 32:
            raise ValueError("client_random must be 32 bytes")
        self._psk = psk
        self._identity = psk_identity
        self._random = client_random
        self._seq = 0
        self._transcript = _TranscriptHash()
        self._server_random: Optional[bytes] = None
        self.result: Optional[HandshakeResult] = None

    def _next(self, msg_type: HandshakeType, body: bytes) -> HandshakeMessage:
        message = HandshakeMessage(msg_type, self._seq, body)
        self._seq += 1
        self._transcript.update(message)
        return message

    def start(self) -> HandshakeMessage:
        """Flight 1: ClientHello without cookie."""
        return self._next(
            HandshakeType.CLIENT_HELLO, encode_client_hello(self._random, b"")
        )

    def on_hello_verify(self, message: HandshakeMessage) -> HandshakeMessage:
        """Flight 3: repeat ClientHello with the cookie.

        Per RFC 6347 §4.2.6 the first ClientHello and the
        HelloVerifyRequest are not part of the Finished transcript, so
        the transcript is restarted here.
        """
        cookie = decode_hello_verify_request(message.body)
        self._transcript = _TranscriptHash()
        return self._next(
            HandshakeType.CLIENT_HELLO, encode_client_hello(self._random, cookie)
        )

    def on_server_hello(self, message: HandshakeMessage) -> None:
        self._transcript.update(message)
        self._server_random = decode_server_hello(message.body)

    def on_server_hello_done(
        self, message: HandshakeMessage
    ) -> Tuple[HandshakeMessage, HandshakeMessage]:
        """Flight 5: ClientKeyExchange and Finished (CCS is a record)."""
        # Validate ordering BEFORE touching the transcript: a reordered
        # ServerHelloDone must not pollute the Finished hash.
        if self._server_random is None:
            raise DtlsError("ServerHelloDone before ServerHello")
        self._transcript.update(message)
        cke = self._next(
            HandshakeType.CLIENT_KEY_EXCHANGE,
            encode_client_key_exchange(self._identity),
        )
        premaster = make_premaster_secret(self._psk)
        master = derive_master_secret(premaster, self._random, self._server_random)
        keys = derive_keys(master, self._random, self._server_random)
        verify = tls12_prf(
            master, b"client finished", self._transcript.digest(), VERIFY_DATA_LEN
        )
        finished = self._next(HandshakeType.FINISHED, verify)
        self.result = HandshakeResult(keys, master, self._random, self._server_random)
        return cke, finished

    def on_server_finished(self, message: HandshakeMessage) -> None:
        if self.result is None:
            raise DtlsError("server Finished before key derivation")
        expected = tls12_prf(
            self.result.master_secret,
            b"server finished",
            self._transcript.digest(),
            VERIFY_DATA_LEN,
        )
        if not hmac.compare_digest(expected, message.body):
            raise DtlsError("server Finished verify_data mismatch")
        self._transcript.update(message)


class ServerHandshake:
    """Server side of the PSK handshake."""

    def __init__(
        self,
        psk_store: Dict[bytes, bytes],
        server_random: bytes,
        cookie_secret: bytes = b"cookie-secret",
    ) -> None:
        if len(server_random) != 32:
            raise ValueError("server_random must be 32 bytes")
        self._psk_store = psk_store
        self._random = server_random
        self._cookie_secret = cookie_secret
        self._seq = 0
        self._transcript = _TranscriptHash()
        self._client_random: Optional[bytes] = None
        self._master: Optional[bytes] = None
        self.result: Optional[HandshakeResult] = None

    def _next(self, msg_type: HandshakeType, body: bytes) -> HandshakeMessage:
        message = HandshakeMessage(msg_type, self._seq, body)
        self._seq += 1
        self._transcript.update(message)
        return message

    def _cookie_for(self, client_random: bytes) -> bytes:
        return hmac.new(
            self._cookie_secret, client_random, hashlib.sha256
        ).digest()[:16]

    def on_client_hello(self, message: HandshakeMessage):
        """Returns HelloVerifyRequest, or (ServerHello, ServerHelloDone)."""
        client_random, cookie = decode_client_hello(message.body)
        expected = self._cookie_for(client_random)
        if not cookie:
            # Stateless: neither this ClientHello nor the HVR enter the
            # transcript.
            return self._next(
                HandshakeType.HELLO_VERIFY_REQUEST,
                encode_hello_verify_request(expected),
            )
        if not hmac.compare_digest(cookie, expected):
            raise DtlsError("invalid cookie")
        self._transcript = _TranscriptHash()
        self._transcript.update(message)
        self._client_random = client_random
        hello = self._next(
            HandshakeType.SERVER_HELLO, encode_server_hello(self._random)
        )
        done = self._next(HandshakeType.SERVER_HELLO_DONE, b"")
        return hello, done

    def on_client_key_exchange(self, message: HandshakeMessage) -> None:
        self._transcript.update(message)
        identity = decode_client_key_exchange(message.body)
        psk = self._psk_store.get(identity)
        if psk is None:
            raise DtlsError(f"unknown PSK identity {identity!r}")
        if self._client_random is None:
            raise DtlsError("ClientKeyExchange before ClientHello")
        premaster = make_premaster_secret(psk)
        self._master = derive_master_secret(
            premaster, self._client_random, self._random
        )

    def pending_keys(self) -> Optional[SessionKeys]:
        """Keys derivable after ClientKeyExchange (for the CCS switch)."""
        if self._master is None or self._client_random is None:
            return None
        return derive_keys(self._master, self._client_random, self._random)

    def on_client_finished(self, message: HandshakeMessage) -> HandshakeMessage:
        """Verify the client Finished; returns the server Finished."""
        if self._master is None or self._client_random is None:
            raise DtlsError("Finished before ClientKeyExchange")
        expected = tls12_prf(
            self._master, b"client finished", self._transcript.digest(),
            VERIFY_DATA_LEN,
        )
        if not hmac.compare_digest(expected, message.body):
            raise DtlsError("client Finished verify_data mismatch")
        self._transcript.update(message)
        verify = tls12_prf(
            self._master, b"server finished", self._transcript.digest(),
            VERIFY_DATA_LEN,
        )
        finished = self._next(HandshakeType.FINISHED, verify)
        keys = derive_keys(self._master, self._client_random, self._random)
        self.result = HandshakeResult(
            keys, self._master, self._client_random, self._random
        )
        return finished
