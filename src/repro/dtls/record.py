"""DTLS record layer (RFC 6347 §4.1) with AES-128-CCM-8 protection.

Every record carries a 13-byte header::

    type(1) version(2) epoch(2) sequence(6) length(2)

Protected records (epoch ≥ 1) use the RFC 6655 AEAD construction: an
8-byte explicit nonce (the epoch+sequence) prefixes the ciphertext, the
implicit 4-byte write IV is derived from the key block, and the AAD is
``seq(8) || type(1) || version(2) || plaintext_length(2)``.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto import AEADError, AES_128_CCM_8

# type(1) version(2) epoch(2) seq_hi(4) seq_lo(2) length(2); the 6-byte
# sequence number is reassembled from the 4+2 split.
_RECORD_HEADER = struct.Struct("!B2sHIHH")
_LENGTH_AT_11 = struct.Struct("!H")

#: DTLS 1.2 wire version ({254, 253} = 1's complement of 1.2).
DTLS_1_2 = (254, 253)

RECORD_HEADER_LEN = 13
EXPLICIT_NONCE_LEN = 8
CCM8_TAG_LEN = 8


class DtlsError(Exception):
    """Raised on DTLS protocol failures."""


class ContentType(enum.IntEnum):
    CHANGE_CIPHER_SPEC = 20
    ALERT = 21
    HANDSHAKE = 22
    APPLICATION_DATA = 23


_CONTENT_TYPE_BY_VALUE = {int(member): member for member in ContentType}
_DTLS_1_2_BYTES = bytes(DTLS_1_2)


@dataclass(frozen=True)
class DtlsPlaintext:
    """A decoded record prior to/after cryptographic processing."""

    content_type: ContentType
    epoch: int
    sequence: int
    fragment: bytes

    def header(self, length: int) -> bytes:
        return (
            bytes([self.content_type, *DTLS_1_2])
            + self.epoch.to_bytes(2, "big")
            + self.sequence.to_bytes(6, "big")
            + length.to_bytes(2, "big")
        )


class _ReplayWindow:
    """RFC 6347 §4.1.2.6 sliding window (64 entries)."""

    def __init__(self, size: int = 64) -> None:
        self._size = size
        self._highest = -1
        self._bitmap = 0

    def check_and_accept(self, sequence: int) -> bool:
        if sequence > self._highest:
            shift = sequence - self._highest
            self._bitmap = ((self._bitmap << shift) | 1) & ((1 << self._size) - 1)
            self._highest = sequence
            return True
        offset = self._highest - sequence
        if offset >= self._size or (self._bitmap >> offset) & 1:
            return False
        self._bitmap |= 1 << offset
        return True


@dataclass
class _WriteState:
    key: bytes
    iv: bytes  # 4-byte implicit part


class RecordLayer:
    """Per-connection record protection state for one direction pair.

    Epoch 0 is plaintext (the handshake up to ChangeCipherSpec); epoch 1
    is protected with the negotiated keys. Sequence numbers are per
    epoch.
    """

    def __init__(self) -> None:
        self._write_epoch = 0
        self._write_sequences = {0: 0}
        self._read_epoch = 0
        self._write_state: Optional[_WriteState] = None
        self._read_state: Optional[_WriteState] = None
        self._replay = _ReplayWindow()

    # -- key management ----------------------------------------------------

    def set_write_keys(self, key: bytes, iv: bytes) -> None:
        """Install write protection and advance the write epoch."""
        self._write_state = _WriteState(key, iv)
        self._write_epoch += 1
        self._write_sequences[self._write_epoch] = 0

    def set_read_keys(self, key: bytes, iv: bytes) -> None:
        self._read_state = _WriteState(key, iv)
        self._read_epoch += 1
        self._replay = _ReplayWindow()

    @property
    def write_epoch(self) -> int:
        return self._write_epoch

    def _next_sequence(self) -> int:
        seq = self._write_sequences[self._write_epoch]
        self._write_sequences[self._write_epoch] = seq + 1
        return seq

    # -- serialisation -------------------------------------------------------

    def seal(self, content_type: ContentType, fragment: bytes) -> bytes:
        """Produce one wire record for *fragment*."""
        epoch = self._write_epoch
        sequence = self._next_sequence()
        plain = DtlsPlaintext(content_type, epoch, sequence, fragment)
        if epoch == 0 or self._write_state is None:
            return plain.header(len(fragment)) + fragment

        state = self._write_state
        explicit = epoch.to_bytes(2, "big") + sequence.to_bytes(6, "big")
        nonce = state.iv + explicit
        aad = (
            explicit
            + bytes([content_type, *DTLS_1_2])
            + len(fragment).to_bytes(2, "big")
        )
        ciphertext = AES_128_CCM_8(state.key).encrypt(nonce, fragment, aad)
        body = explicit + ciphertext
        return plain.header(len(body)) + body

    def open(self, record) -> DtlsPlaintext:
        """Parse (and decrypt, if protected) one wire record.

        *record* may be ``bytes`` or a ``memoryview`` (e.g. a zero-copy
        slice from :func:`split_records`); it is never mutated, and the
        fragment is materialised once.
        """
        if len(record) < RECORD_HEADER_LEN:
            raise DtlsError("record shorter than header")
        ctype_raw, version, epoch, seq_hi, seq_lo, length = (
            _RECORD_HEADER.unpack_from(record)
        )
        content_type = _CONTENT_TYPE_BY_VALUE.get(ctype_raw)
        if content_type is None:
            raise DtlsError(f"unknown content type {ctype_raw}")
        if version != _DTLS_1_2_BYTES:
            raise DtlsError(f"unsupported version {tuple(version)}")
        sequence = (seq_hi << 16) | seq_lo
        body = record[13 : 13 + length]
        if len(body) != length:
            raise DtlsError("truncated record body")

        if epoch == 0:
            return DtlsPlaintext(content_type, epoch, sequence, bytes(body))

        if self._read_state is None or epoch != self._read_epoch:
            raise DtlsError(f"no read keys for epoch {epoch}")
        if len(body) < EXPLICIT_NONCE_LEN + CCM8_TAG_LEN:
            raise DtlsError("protected record too short")
        explicit = bytes(body[:EXPLICIT_NONCE_LEN])
        ciphertext = body[EXPLICIT_NONCE_LEN:]
        nonce = self._read_state.iv + explicit
        plaintext_length = len(ciphertext) - CCM8_TAG_LEN
        aad = (
            explicit
            + bytes([content_type, *DTLS_1_2])
            + plaintext_length.to_bytes(2, "big")
        )
        try:
            fragment = AES_128_CCM_8(self._read_state.key).decrypt(
                nonce, bytes(ciphertext), aad
            )
        except AEADError as exc:
            raise DtlsError("record authentication failed") from exc
        if not self._replay.check_and_accept(sequence):
            raise DtlsError(f"replayed record sequence {sequence}")
        return DtlsPlaintext(content_type, epoch, sequence, fragment)


def split_records(datagram) -> List[bytes]:
    """Split a datagram into the records it concatenates.

    Slices have the input's type: ``bytes`` in, ``bytes`` out;
    ``memoryview`` in, zero-copy views out (each directly consumable by
    :meth:`RecordLayer.open`).
    """
    records = []
    size = len(datagram)
    offset = 0
    while offset < size:
        if offset + RECORD_HEADER_LEN > size:
            raise DtlsError("trailing bytes do not form a record")
        (length,) = _LENGTH_AT_11.unpack_from(datagram, offset + 11)
        end = offset + RECORD_HEADER_LEN + length
        if end > size:
            raise DtlsError("record extends past datagram")
        records.append(datagram[offset:end])
        offset = end
    return records
