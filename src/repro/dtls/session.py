"""DTLS sessions: event-driven endpoints over any datagram transport.

A :class:`DtlsSession` consumes incoming datagrams and produces outgoing
ones; the caller (a simulated UDP socket, or a test) moves bytes between
the two sides. Handshake flights that belong together (e.g. ServerHello
+ ServerHelloDone, or ClientKeyExchange + CCS + Finished) are coalesced
into one datagram each, matching how TinyDTLS packs records and how the
paper's Figure 6 dissects the session setup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .handshake import (
    ClientHandshake,
    HandshakeMessage,
    HandshakeType,
    ServerHandshake,
)
from .record import ContentType, DtlsError, RecordLayer, split_records


@dataclass
class SessionEvents:
    """What one incoming datagram produced."""

    outgoing: List[Tuple[str, bytes]] = field(default_factory=list)
    app_data: List[bytes] = field(default_factory=list)
    established: bool = False


class DtlsSession:
    """One endpoint of a DTLSv1.2 PSK connection.

    Parameters
    ----------
    role:
        ``"client"`` or ``"server"``.
    psk / psk_identity:
        The pre-shared key and its identity (client side).
    psk_store:
        identity → key mapping (server side).
    rng:
        Source for the 32-byte randoms. Every runtime construction
        site passes its :class:`~repro.sim.clock.Clock`'s seeded RNG
        (simulated or live), keeping handshakes replayable under the
        run seed; the fallback is deterministic too so no code path
        silently depends on process entropy.
    """

    def __init__(
        self,
        role: str,
        psk: bytes = b"",
        psk_identity: bytes = b"Client_identity",
        psk_store: Optional[Dict[bytes, bytes]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if role not in ("client", "server"):
            raise ValueError("role must be 'client' or 'server'")
        self.role = role
        self._rng = rng or random.Random(0)
        self.records = RecordLayer()
        self.established = False
        random_bytes = bytes(self._rng.randrange(256) for _ in range(32))
        if role == "client":
            self._client = ClientHandshake(psk, psk_identity, random_bytes)
            self._server = None
        else:
            if psk_store is None:
                psk_store = {psk_identity: psk}
            self._server = ServerHandshake(psk_store, random_bytes)
            self._client = None

    # -- handshake driving ---------------------------------------------------

    def start_handshake(self) -> bytes:
        """Client only: the flight-1 datagram (ClientHello)."""
        if self._client is None:
            raise DtlsError("only clients initiate the handshake")
        message = self._client.start()
        return self.records.seal(ContentType.HANDSHAKE, message.encode())

    def _finish(self, result) -> None:
        keys = result.keys
        if self.role == "client":
            self.records.set_write_keys(keys.client_write_key, keys.client_write_iv)
            self.records.set_read_keys(keys.server_write_key, keys.server_write_iv)
        else:
            self.records.set_write_keys(keys.server_write_key, keys.server_write_iv)
            self.records.set_read_keys(keys.client_write_key, keys.client_write_iv)
        self.established = True

    def handle_datagram(self, datagram: bytes) -> SessionEvents:
        """Process one incoming datagram (handshake or application)."""
        events = SessionEvents()
        # A memoryview makes per-record slicing zero-copy; RecordLayer
        # materialises each fragment exactly once after decryption.
        for record in split_records(memoryview(datagram)):
            plaintext = self.records.open(record)
            if plaintext.content_type == ContentType.APPLICATION_DATA:
                events.app_data.append(plaintext.fragment)
            elif self.established:
                # Late handshake/CCS duplicates (e.g. a retransmitted
                # final flight) must not disturb the installed keys.
                continue
            elif plaintext.content_type == ContentType.CHANGE_CIPHER_SPEC:
                self._on_ccs()
            elif plaintext.content_type == ContentType.HANDSHAKE:
                offset_data = plaintext.fragment
                while offset_data:
                    message, consumed = HandshakeMessage.decode(offset_data)
                    offset_data = offset_data[consumed:]
                    self._on_handshake(message, events)
        events.established = self.established
        return events

    def _on_ccs(self) -> None:
        # The peer switches to protected records after its CCS; install
        # the matching read keys now so its Finished can be decrypted.
        if self.role == "client":
            assert self._client is not None
            if self._client.result is None:
                raise DtlsError("ChangeCipherSpec before key derivation")
            keys = self._client.result.keys
            self.records.set_read_keys(keys.server_write_key, keys.server_write_iv)
        else:
            assert self._server is not None
            keys = self._server.pending_keys()
            if keys is None:
                raise DtlsError("ChangeCipherSpec before ClientKeyExchange")
            self.records.set_read_keys(keys.client_write_key, keys.client_write_iv)

    def _on_handshake(self, message: HandshakeMessage, events: SessionEvents) -> None:
        if self.role == "server":
            self._server_handshake(message, events)
        else:
            self._client_handshake(message, events)

    def _client_handshake(self, message: HandshakeMessage, events: SessionEvents) -> None:
        client = self._client
        assert client is not None
        if message.msg_type == HandshakeType.HELLO_VERIFY_REQUEST:
            retry = client.on_hello_verify(message)
            events.outgoing.append(
                ("ClientHello[Cookie]",
                 self.records.seal(ContentType.HANDSHAKE, retry.encode()))
            )
        elif message.msg_type == HandshakeType.SERVER_HELLO:
            client.on_server_hello(message)
        elif message.msg_type == HandshakeType.SERVER_HELLO_DONE:
            cke, finished = client.on_server_hello_done(message)
            datagram = self.records.seal(ContentType.HANDSHAKE, cke.encode())
            events.outgoing.append(("ClientKeyExchange", datagram))
            ccs = self.records.seal(ContentType.CHANGE_CIPHER_SPEC, b"\x01")
            events.outgoing.append(("ChangeCipherSpec", ccs))
            assert client.result is not None
            keys = client.result.keys
            self.records.set_write_keys(keys.client_write_key, keys.client_write_iv)
            fin = self.records.seal(ContentType.HANDSHAKE, finished.encode())
            events.outgoing.append(("Finished", fin))
        elif message.msg_type == HandshakeType.FINISHED:
            # Read keys were already installed when the server's CCS
            # arrived; verifying the Finished completes the handshake.
            client.on_server_finished(message)
            self.established = True
        else:
            raise DtlsError(f"unexpected handshake message {message.msg_type!r}")

    def _server_handshake(self, message: HandshakeMessage, events: SessionEvents) -> None:
        server = self._server
        assert server is not None
        if message.msg_type == HandshakeType.CLIENT_HELLO:
            reply = server.on_client_hello(message)
            if isinstance(reply, HandshakeMessage):
                events.outgoing.append(
                    ("Hello Verify Request",
                     self.records.seal(ContentType.HANDSHAKE, reply.encode()))
                )
            else:
                hello, done = reply
                events.outgoing.append(
                    ("Server Hello",
                     self.records.seal(ContentType.HANDSHAKE, hello.encode()))
                )
                events.outgoing.append(
                    ("Server Hello Done",
                     self.records.seal(ContentType.HANDSHAKE, done.encode()))
                )
        elif message.msg_type == HandshakeType.CLIENT_KEY_EXCHANGE:
            server.on_client_key_exchange(message)
        elif message.msg_type == HandshakeType.FINISHED:
            # Client write keys must be readable *before* this record is
            # decrypted — handled by handle_datagram ordering: the CCS
            # record installed them below in _on_ccs via pending result.
            finished = server.on_client_finished(message)
            assert server.result is not None
            keys = server.result.keys
            # CCS is the last epoch-0 record; only then switch epochs.
            ccs = self.records.seal(ContentType.CHANGE_CIPHER_SPEC, b"\x01")
            events.outgoing.append(("ChangeCipherSpec", ccs))
            self.records.set_write_keys(keys.server_write_key, keys.server_write_iv)
            fin = self.records.seal(ContentType.HANDSHAKE, finished.encode())
            events.outgoing.append(("Finished", fin))
            self.established = True
        else:
            raise DtlsError(f"unexpected handshake message {message.msg_type!r}")

    # -- application data -----------------------------------------------------

    def protect(self, data: bytes) -> bytes:
        """Wrap application *data* into one protected record."""
        if not self.established:
            raise DtlsError("session not established")
        return self.records.seal(ContentType.APPLICATION_DATA, data)


def establish_pair(
    psk: bytes = b"secretPSK",
    psk_identity: bytes = b"Client_identity",
    rng: Optional[random.Random] = None,
) -> Tuple[DtlsSession, DtlsSession, List[Tuple[str, str, bytes]]]:
    """Run a full in-memory handshake; returns (client, server, flights).

    ``flights`` is a list of ``(direction, name, datagram)`` covering the
    entire session setup — the input to the Figure 6 handshake bars.
    """
    rng = rng or random.Random(0)
    client = DtlsSession("client", psk=psk, psk_identity=psk_identity, rng=rng)
    server = DtlsSession(
        "server", psk_store={psk_identity: psk}, rng=rng
    )
    flights: List[Tuple[str, str, bytes]] = [
        ("C->S", "Client Hello", client.start_handshake())
    ]
    # Alternate delivery until both sides are established.
    pending: List[Tuple[str, str, bytes]] = list(flights)
    index = 0
    while index < len(pending):
        direction, name, datagram = pending[index]
        index += 1
        receiver = server if direction == "C->S" else client
        back = "S->C" if direction == "C->S" else "C->S"
        events = receiver.handle_datagram(datagram)
        for out_name, out_datagram in events.outgoing:
            item = (back, out_name, out_datagram)
            pending.append(item)
            flights.append(item)
    if not (client.established and server.established):
        raise DtlsError("handshake did not complete")
    return client, server, flights
