"""DTLS v1.2 substrate (RFC 6347) with TLS_PSK_WITH_AES_128_CCM_8.

The paper evaluates DNS over DTLS (RFC 8094) and CoAP over DTLS
("CoAPSv1.2") with a pre-shared key and the AES-128-CCM-8 cipher suite
(RFC 6655), matching TinyDTLS. This package provides:

* the 13-byte record layer with epoch/48-bit sequence numbers and the
  AEAD nonce/AAD constructions of RFC 6655 §3 / RFC 5246 §6.2.3.3,
* the PSK handshake: ClientHello → HelloVerifyRequest (stateless
  cookie) → ClientHello(cookie) → ServerHello/ServerHelloDone →
  ClientKeyExchange/ChangeCipherSpec/Finished (both directions), with
  byte-accurate message encodings so handshake frame sizes match
  Figure 6,
* key derivation via the TLS 1.2 PRF, and
* session objects exposing ``protect``/``unprotect`` for application
  data, with anti-replay.
"""

from .record import (
    ContentType,
    DTLS_1_2,
    DtlsError,
    DtlsPlaintext,
    RecordLayer,
)
from .handshake import (
    HandshakeType,
    ClientHandshake,
    ServerHandshake,
    HandshakeResult,
)
from .session import DtlsSession, establish_pair

__all__ = [
    "ClientHandshake",
    "ContentType",
    "DTLS_1_2",
    "DtlsError",
    "DtlsPlaintext",
    "DtlsSession",
    "HandshakeResult",
    "HandshakeType",
    "RecordLayer",
    "ServerHandshake",
    "establish_pair",
]
