"""repro — a full-stack reproduction of "Securing Name Resolution in
the IoT: DNS over CoAP" (Lenders et al., CoNEXT 2023).

The package implements DNS over CoAP (DoC) and every substrate the
paper's evaluation depends on, in pure Python:

* ``repro.api``       — the unified façade: RunSpec → versioned Report
* ``repro.doc``       — the DoC client/server, caching schemes, CBOR format
* ``repro.coap``      — CoAP incl. FETCH, block-wise, caches, proxy
* ``repro.oscore``    — OSCORE object security (RFC 8613)
* ``repro.dtls``      — DTLSv1.2 PSK with AES-128-CCM-8
* ``repro.dns``       — DNS wire format, caches, resolvers
* ``repro.lowpan``    — IEEE 802.15.4 + 6LoWPAN (IPHC, fragmentation)
* ``repro.net``       — IPv6/UDP reference encodings
* ``repro.sim``       — deterministic discrete-event simulator
* ``repro.stack``     — per-node stacks and multi-hop topologies
* ``repro.transports``— DNS transport baselines + the plugin registry
* ``repro.scenarios`` — declarative scenarios, sweeps, presets
* ``repro.crypto``    — AES-CCM, HKDF, TLS 1.2 PRF (from scratch)
* ``repro.cborlib``   — CBOR (RFC 8949)
* ``repro.memmodel``  — firmware build-size model (Figures 5/8)
* ``repro.quicmodel`` — DNS-over-QUIC numerical comparison (Figure 9)
* ``repro.datasets``  — synthetic Section 3 datasets
* ``repro.experiments`` — the evaluation harness
* ``repro.live``      — wall-clock asyncio serving + load generation

Quickstart (the unified façade — one RunSpec, either substrate)::

    from repro.api import RunSpec, run

    report = run(RunSpec.from_spec("transport=coap,queries=20"))
    print(report.metrics["latency.p95_ms"])

Hands-on stack quickstart::

    from repro.sim import Simulator
    from repro.stack import build_figure2_topology
    from repro.dns import Zone, RecursiveResolver, RecordType
    from repro.doc import DocClient, DocServer

    sim = Simulator(seed=1)
    topo = build_figure2_topology(sim)
    zone = Zone(); zone.add_address("sensor.example.org", "2001:db8::1")
    server = DocServer(sim, topo.resolver_host.bind(5683),
                       RecursiveResolver(zone))
    client = DocClient(sim, topo.clients[0].bind(),
                       (topo.resolver_host.address, 5683))
    client.resolve("sensor.example.org", RecordType.AAAA,
                   lambda result, error: print(result.addresses))
    sim.run(until=10)
"""

__version__ = "1.0.0"
