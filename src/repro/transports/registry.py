"""Transport plugin registry.

Every DNS transport the reproduction compares — UDP, DTLS, CoAP,
CoAPS, OSCORE, and the modeled QUIC — is described by one
:class:`TransportProfile`: its name, default port, client/server
factories, security provisioning (DTLS pre-establishment, OSCORE
context wiring), and packet-dissection hooks. The experiment harness,
the scenario engine, and the CLI all dispatch through the registry, so
adding a transport variant is a registration, not a refactor:

    from repro.transports.registry import TransportProfile, registry

    registry.register(TransportProfile(name="mytransport", ...))

The built-in profiles live in :mod:`repro.transports.profiles` and are
registered lazily on first lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple


class UnknownTransportError(ValueError):
    """Lookup of a transport name that no profile claims."""


class TransportCapabilityError(ValueError):
    """A profile was asked for something it does not support (e.g.
    simulating the analytically-modeled QUIC transport)."""


@dataclass
class ServerHandle:
    """What a server factory returns: where the server listens plus any
    secure-socket adapter clients must pre-establish against."""

    port: int
    endpoint: Tuple[str, int]
    server: object = None
    adapter: object = None


@dataclass
class TransportEnv:
    """Everything a profile's factories need to stand up one run.

    ``scenario`` is any object exposing the scenario knobs the
    factories read (``method``, ``scheme``, ``client_coap_cache``,
    ``client_dns_cache``, ``block_size``); both
    :class:`repro.scenarios.Scenario` and the legacy
    ``ExperimentConfig`` qualify.
    """

    sim: object
    topology: object
    resolver: object
    scenario: object
    #: (client context, server context) pairs filled by provisioners.
    oscore_pairs: List[tuple] = field(default_factory=list)
    server: Optional[ServerHandle] = None
    #: Where clients send requests (the server, or a forward proxy).
    target: Optional[Tuple[str, int]] = None


@dataclass(frozen=True)
class TransportProfile:
    """One DNS transport, declared rather than special-cased.

    Factories receive a :class:`TransportEnv`; dissectors receive the
    profile itself plus the message parameters, so closely related
    transports (CoAP/CoAPS) can share one parameterized implementation.
    """

    name: str
    display_name: str
    default_port: int
    #: Encrypts application traffic (DTLS record layer or OSCORE).
    secure: bool = False
    #: Runs DNS inside CoAP (and can therefore sit behind a CoAP proxy).
    coap_based: bool = False
    #: Can be driven end-to-end in the simulator (QUIC is model-only).
    simulatable: bool = True
    #: Appears in the Figure 6 dissection grid.
    in_figure6: bool = True
    #: Prepends DTLS handshake flights in the Figure 6 grid.
    has_handshake: bool = False
    #: Adds the replay-window Echo variant in the Figure 6 grid.
    echo_variant: bool = False
    #: ``provisioner(env)`` runs once per run before any factory (e.g.
    #: derive OSCORE contexts).
    provisioner: Optional[Callable[[TransportEnv], None]] = None
    #: ``server_factory(env) -> ServerHandle``
    server_factory: Optional[Callable[[TransportEnv], ServerHandle]] = None
    #: ``client_factory(env, node, index) -> client`` where the client
    #: exposes ``resolve(name, rtype, on_result)``.
    client_factory: Optional[Callable[..., object]] = None
    #: ``dissector(profile, method, name, with_echo) -> [PacketDissection]``
    dissector: Optional[Callable[..., list]] = None

    def provision(self, env: TransportEnv) -> None:
        if self.provisioner is not None:
            self.provisioner(env)

    def build_server(self, env: TransportEnv) -> ServerHandle:
        if self.server_factory is None:
            raise TransportCapabilityError(
                f"transport {self.name!r} cannot be simulated"
            )
        return self.server_factory(env)

    def build_client(self, env: TransportEnv, node, index: int):
        if self.client_factory is None:
            raise TransportCapabilityError(
                f"transport {self.name!r} cannot be simulated"
            )
        return self.client_factory(env, node, index)

    def dissect(self, method=None, name=None, with_echo: bool = False) -> list:
        if self.dissector is None:
            raise TransportCapabilityError(
                f"transport {self.name!r} has no packet dissector"
            )
        return self.dissector(self, method=method, name=name, with_echo=with_echo)


class TransportRegistry:
    """Name → :class:`TransportProfile` mapping with ordered listing."""

    def __init__(self) -> None:
        self._profiles: Dict[str, TransportProfile] = {}
        self._builtins_loaded = False
        self._loading_builtins = False

    def register(
        self, profile: TransportProfile, replace: bool = False
    ) -> TransportProfile:
        # Load the builtins first so a plugin overriding one of them
        # (replace=True) cannot race their lazy registration.
        self._ensure_builtins()
        if not replace and profile.name in self._profiles:
            raise ValueError(f"transport {profile.name!r} already registered")
        self._profiles[profile.name] = profile
        return profile

    def unregister(self, name: str) -> None:
        self._ensure_builtins()
        self._profiles.pop(name, None)

    def get(self, name: str) -> TransportProfile:
        self._ensure_builtins()
        try:
            return self._profiles[name]
        except KeyError:
            raise UnknownTransportError(
                f"unknown transport {name!r} (known: {', '.join(self._profiles)})"
            ) from None

    def names(self, simulatable_only: bool = False) -> List[str]:
        self._ensure_builtins()
        return [
            name
            for name, profile in self._profiles.items()
            if profile.simulatable or not simulatable_only
        ]

    def __iter__(self) -> Iterator[TransportProfile]:
        self._ensure_builtins()
        return iter(list(self._profiles.values()))

    def __contains__(self, name: str) -> bool:
        self._ensure_builtins()
        return name in self._profiles

    def __len__(self) -> int:
        self._ensure_builtins()
        return len(self._profiles)

    def _ensure_builtins(self) -> None:
        if self._builtins_loaded or self._loading_builtins:
            return
        # Mark loaded only after a successful import so a failing
        # profiles module surfaces its real error (and can retry)
        # instead of leaving the registry silently empty; the loading
        # flag handles re-entrancy from profiles' own register() calls.
        self._loading_builtins = True
        try:
            import importlib

            importlib.import_module("repro.transports.profiles")
        finally:
            self._loading_builtins = False
        self._builtins_loaded = True


#: The process-wide registry all dispatch goes through.
registry = TransportRegistry()


def get_profile(name: str) -> TransportProfile:
    """Shorthand for ``registry.get(name)``."""
    return registry.get(name)


def transport_names(simulatable_only: bool = False) -> List[str]:
    """Shorthand for ``registry.names(...)``."""
    return registry.names(simulatable_only=simulatable_only)
