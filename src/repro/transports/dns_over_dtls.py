"""DNS over DTLS (RFC 8094): the encrypted datagram baseline.

Identical DNS logic to :mod:`repro.transports.dns_over_udp`, but the
socket is a DTLS adapter — exactly how the paper's DoDTLS client reuses
the generic DNS message interface over ``sock_dtls`` (Appendix B).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.coap.reliability import ReliabilityParams
from repro.dns import DNSCache, RecursiveResolver
from repro.sim.clock import Clock

from .dtls_adapter import DtlsClientAdapter, DtlsServerAdapter
from .dns_over_udp import DnsOverUdpClient, DnsOverUdpServer

DNS_OVER_DTLS_PORT = 853


class DnsOverDtlsClient(DnsOverUdpClient):
    """A stub resolver whose datagrams travel through a DTLS session."""

    def __init__(
        self,
        sim: Clock,
        udp_socket,
        server: Tuple[str, int],
        psk: bytes = b"secretPSK",
        psk_identity: bytes = b"Client_identity",
        params: ReliabilityParams = ReliabilityParams(),
        dns_cache: Optional[DNSCache] = None,
    ) -> None:
        self.adapter = DtlsClientAdapter(
            sim, udp_socket, server, psk=psk, psk_identity=psk_identity
        )
        super().__init__(
            sim, self.adapter, server, params=params, dns_cache=dns_cache
        )


class DnsOverDtlsServer(DnsOverUdpServer):
    """The recursive resolver behind a DTLS server adapter."""

    def __init__(
        self,
        sim: Clock,
        udp_socket,
        resolver: RecursiveResolver,
        psk_store: Optional[Dict[bytes, bytes]] = None,
        response_delay: float = 0.0,
    ) -> None:
        self.adapter = DtlsServerAdapter(sim, udp_socket, psk_store=psk_store)
        super().__init__(
            sim, self.adapter, resolver, response_delay=response_delay
        )
