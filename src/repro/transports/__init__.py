"""DNS transport baselines and secure-socket adapters.

The paper compares DoC against DNS over UDP and DNS over DTLS
(Section 5). Both baselines live here, together with the DTLS socket
adapter that also underpins CoAPS (CoAP over DTLS).
"""

from .dtls_adapter import DtlsClientAdapter, DtlsServerAdapter, preestablish
from .dns_over_udp import DnsOverUdpClient, DnsOverUdpServer
from .dns_over_dtls import DnsOverDtlsClient, DnsOverDtlsServer

__all__ = [
    "DnsOverDtlsClient",
    "DnsOverDtlsServer",
    "DnsOverUdpClient",
    "DnsOverUdpServer",
    "DtlsClientAdapter",
    "DtlsServerAdapter",
    "preestablish",
]
