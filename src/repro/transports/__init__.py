"""DNS transports: baselines, secure-socket adapters, plugin registry.

The paper compares DoC against DNS over UDP and DNS over DTLS
(Section 5). Both baselines live here, together with the DTLS socket
adapter that also underpins CoAPS (CoAP over DTLS), and the transport
plugin registry through which every experiment, scenario, and CLI
invocation dispatches (see :mod:`repro.transports.registry`).
"""

from .dtls_adapter import DtlsClientAdapter, DtlsServerAdapter, preestablish
from .dns_over_udp import DnsOverUdpClient, DnsOverUdpServer
from .dns_over_dtls import DnsOverDtlsClient, DnsOverDtlsServer
from .registry import (
    ServerHandle,
    TransportCapabilityError,
    TransportEnv,
    TransportProfile,
    UnknownTransportError,
    get_profile,
    registry,
    transport_names,
)

__all__ = [
    "DnsOverDtlsClient",
    "DnsOverDtlsServer",
    "DnsOverUdpClient",
    "DnsOverUdpServer",
    "DtlsClientAdapter",
    "DtlsServerAdapter",
    "ServerHandle",
    "TransportCapabilityError",
    "TransportEnv",
    "TransportProfile",
    "UnknownTransportError",
    "get_profile",
    "preestablish",
    "registry",
    "transport_names",
]
