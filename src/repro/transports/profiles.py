"""Built-in transport profiles.

Registers the paper's five runnable DNS transports (UDP, DTLS, CoAP,
CoAPS, OSCORE) plus the analytically-modeled QUIC with the
:mod:`repro.transports.registry`. Each registration bundles the
client/server factories, security provisioning, and the Figure 6
packet-dissection hook; nothing outside this module branches on
transport names.

Imports of the heavier layers (``repro.doc``, the dissection code)
happen inside the factories so the registry stays import-light and free
of cycles.
"""

from __future__ import annotations

from repro.transports.registry import (
    ServerHandle,
    TransportEnv,
    TransportProfile,
    registry,
)

DNS_PORT = 53
DNS_OVER_DTLS_PORT = 853
COAP_PORT = 5683
COAPS_PORT = 5684
DNS_OVER_QUIC_PORT = 853

#: Client-side source port for session-oriented transports, matching
#: the testbed configuration (one DTLS/CoAP session per client).
CLIENT_PORT = 6000


def _dns_cache(env: TransportEnv):
    from repro.dns import DNSCache

    caching = env.scenario.caching_spec
    return DNSCache(caching.client_dns_capacity) if caching.client_dns else None


# -- DNS over UDP -----------------------------------------------------------


def _udp_server(env: TransportEnv) -> ServerHandle:
    from repro.transports.dns_over_udp import DnsOverUdpServer

    host = env.topology.resolver_host
    server = DnsOverUdpServer(env.sim, host.bind(DNS_PORT), env.resolver)
    return ServerHandle(
        port=DNS_PORT, endpoint=(host.address, DNS_PORT), server=server
    )


def _udp_client(env: TransportEnv, node, index: int):
    from repro.transports.dns_over_udp import DnsOverUdpClient

    return DnsOverUdpClient(
        env.sim, node.bind(), env.server.endpoint, dns_cache=_dns_cache(env)
    )


# -- DNS over DTLS ----------------------------------------------------------


def _dtls_server(env: TransportEnv) -> ServerHandle:
    from repro.transports.dns_over_dtls import DnsOverDtlsServer

    host = env.topology.resolver_host
    server = DnsOverDtlsServer(
        env.sim, host.bind(DNS_OVER_DTLS_PORT), env.resolver
    )
    return ServerHandle(
        port=DNS_OVER_DTLS_PORT,
        endpoint=(host.address, DNS_OVER_DTLS_PORT),
        server=server,
        adapter=server.adapter,
    )


def _dtls_client(env: TransportEnv, node, index: int):
    from repro.transports.dns_over_dtls import DnsOverDtlsClient
    from repro.transports.dtls_adapter import preestablish

    client = DnsOverDtlsClient(
        env.sim,
        node.bind(CLIENT_PORT),
        env.server.endpoint,
        dns_cache=_dns_cache(env),
    )
    preestablish(
        client.adapter, env.server.adapter, (node.address, CLIENT_PORT)
    )
    return client


# -- DNS over CoAP (plain, DTLS-secured, OSCORE-protected) ------------------


def _provision_oscore(env: TransportEnv) -> None:
    # Pre-initialised replay windows (Section 5.1): no Echo round.
    from repro.oscore import SecurityContext

    env.oscore_pairs.append(
        SecurityContext.pair(b"experiment-master-secret", b"salt")
    )


def _coaps_server(env: TransportEnv) -> ServerHandle:
    from repro.doc import DocServer
    from repro.transports.dtls_adapter import DtlsServerAdapter

    host = env.topology.resolver_host
    adapter = DtlsServerAdapter(env.sim, host.bind(COAPS_PORT))
    server = DocServer(
        env.sim, adapter, env.resolver, scheme=env.scenario.caching_spec.scheme
    )
    return ServerHandle(
        port=COAPS_PORT,
        endpoint=(host.address, COAPS_PORT),
        server=server,
        adapter=adapter,
    )


def _coap_server(env: TransportEnv) -> ServerHandle:
    from repro.doc import DocServer

    host = env.topology.resolver_host
    # The server handles a single client context at a time; derive one
    # shared pair and multiplex by kid if ever needed.
    oscore_context = env.oscore_pairs[0][1] if env.oscore_pairs else None
    server = DocServer(
        env.sim,
        host.bind(COAP_PORT),
        env.resolver,
        scheme=env.scenario.caching_spec.scheme,
        oscore_context=oscore_context,
    )
    return ServerHandle(
        port=COAP_PORT, endpoint=(host.address, COAP_PORT), server=server
    )


def _doc_client(env: TransportEnv, node, index: int, secure: bool, oscore: bool):
    from repro.coap.cache import CoapCache
    from repro.doc import DocClient
    from repro.transports.dtls_adapter import DtlsClientAdapter, preestablish

    scenario = env.scenario
    caching = scenario.caching_spec
    socket = node.bind(CLIENT_PORT)
    if secure:
        socket = DtlsClientAdapter(env.sim, socket, env.server.endpoint)
        preestablish(
            socket, env.server.adapter, (node.address, CLIENT_PORT)
        )
    oscore_context = env.oscore_pairs[0][0] if oscore else None
    return DocClient(
        env.sim,
        socket,
        env.target,
        method=scenario.method,
        scheme=caching.scheme,
        coap_cache=(
            CoapCache(caching.client_coap_capacity)
            if caching.client_coap
            else None
        ),
        dns_cache=_dns_cache(env),
        block_size=scenario.block_size,
        oscore_context=oscore_context,
    )


def _coap_client(env, node, index):
    return _doc_client(env, node, index, secure=False, oscore=False)


def _coaps_client(env, node, index):
    return _doc_client(env, node, index, secure=True, oscore=False)


def _oscore_client(env, node, index):
    return _doc_client(env, node, index, secure=False, oscore=True)


# -- dissection hooks -------------------------------------------------------


def _dissect_plain_dns(profile, method=None, name=None, with_echo=False):
    # Shared by udp and dtls: profile.secure selects the record overhead.
    from repro.experiments import packet_sizes

    return packet_sizes.dissect_plain_dns(profile, name=name)


def _dissect_coap(profile, method=None, name=None, with_echo=False):
    from repro.experiments import packet_sizes

    return packet_sizes.dissect_doc(profile, method=method, name=name)


def _dissect_oscore(profile, method=None, name=None, with_echo=False):
    from repro.experiments import packet_sizes

    return packet_sizes.dissect_oscore(profile, name=name, with_echo=with_echo)


def _dissect_quic(profile, method=None, name=None, with_echo=False):
    from repro.quicmodel import quic_dissections

    return quic_dissections(name=name)


# -- registrations ----------------------------------------------------------
# replace=True keeps a re-import of this module (e.g. a retried builtin
# load after a transient failure) idempotent.

registry.register(
    TransportProfile(
        name="udp",
        display_name="UDP",
        default_port=DNS_PORT,
        server_factory=_udp_server,
        client_factory=_udp_client,
        dissector=_dissect_plain_dns,
    ),
    replace=True,
)

registry.register(
    TransportProfile(
        name="dtls",
        display_name="DTLSv1.2",
        default_port=DNS_OVER_DTLS_PORT,
        secure=True,
        has_handshake=True,
        server_factory=_dtls_server,
        client_factory=_dtls_client,
        dissector=_dissect_plain_dns,
    ),
    replace=True,
)

registry.register(
    TransportProfile(
        name="coap",
        display_name="CoAP",
        default_port=COAP_PORT,
        coap_based=True,
        server_factory=_coap_server,
        client_factory=_coap_client,
        dissector=_dissect_coap,
    ),
    replace=True,
)

registry.register(
    TransportProfile(
        name="coaps",
        display_name="CoAPSv1.2",
        default_port=COAPS_PORT,
        secure=True,
        coap_based=True,
        has_handshake=True,
        server_factory=_coaps_server,
        client_factory=_coaps_client,
        dissector=_dissect_coap,
    ),
    replace=True,
)

registry.register(
    TransportProfile(
        name="oscore",
        display_name="OSCORE",
        default_port=COAP_PORT,
        secure=True,
        coap_based=True,
        echo_variant=True,
        provisioner=_provision_oscore,
        server_factory=_coap_server,
        client_factory=_oscore_client,
        dissector=_dissect_oscore,
    ),
    replace=True,
)

registry.register(
    TransportProfile(
        name="quic",
        display_name="QUIC (model)",
        default_port=DNS_OVER_QUIC_PORT,
        secure=True,
        simulatable=False,
        in_figure6=False,
        dissector=_dissect_quic,
    ),
    replace=True,
)
