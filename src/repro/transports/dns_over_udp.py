"""DNS over UDP, the unencrypted baseline.

Per Appendix B, the paper extends RIOT's DNS-over-UDP client with
asynchronous queries and, for comparability, adopts the CoAP
retransmission algorithm (4 retransmissions, exponential back-off) —
this client does the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.coap.reliability import ReliabilityParams, TransmissionState
from repro.dns import DNSCache, Message, Question, RecursiveResolver, make_query
from repro.dns.resolver import ResolutionResult, StubResolver
from repro.sim.clock import Clock, Timer

DNS_PORT = 53


@dataclass
class _Pending:
    question: Question
    wire: bytes
    on_result: Callable[[Optional[ResolutionResult], Optional[Exception]], None]
    transmission: TransmissionState
    timer: Optional[Timer] = None
    done: bool = False


class DnsTimeoutError(Exception):
    """All retransmissions exhausted without a response."""


class DnsOverUdpClient:
    """Asynchronous stub resolver over plain UDP."""

    def __init__(
        self,
        sim: Clock,
        socket,
        server: Tuple[str, int],
        params: ReliabilityParams = ReliabilityParams(),
        dns_cache: Optional[DNSCache] = None,
    ) -> None:
        self.sim = sim
        self.socket = socket
        self.server = server
        self.params = params
        self.stub = StubResolver(dns_cache)
        self._pending: Dict[int, _Pending] = {}
        self._next_id = sim.rng.randrange(0x10000)
        self.transmissions = 0
        self.retransmissions = 0
        socket.on_datagram = self._on_datagram

    def resolve(
        self,
        name: str,
        rtype: int,
        on_result: Callable[[Optional[ResolutionResult], Optional[Exception]], None],
    ) -> None:
        """Resolve *name*; ``on_result(result, error)`` fires exactly once."""
        question = Question(name, rtype)
        cached = self.stub.cached_response(question, self.sim.now)
        if cached is not None:
            result = ResolutionResult(
                addresses=[
                    r.rdata.address
                    for r in cached.answers
                    if hasattr(r.rdata, "address")
                ],
                rcode=cached.flags.rcode,
                response=cached,
                min_ttl=cached.min_ttl(),
                from_cache=True,
            )
            self.sim.schedule(0.0, on_result, result, None)
            return

        txid = self._next_id
        self._next_id = (self._next_id + 1) & 0xFFFF
        query = make_query(name, rtype, txid=txid)
        pending = _Pending(
            question=question,
            wire=query.encode(),
            on_result=on_result,
            transmission=TransmissionState(self.params, self.sim.rng),
        )
        self._pending[txid] = pending
        self._transmit(txid, pending)

    def _transmit(self, txid: int, pending: _Pending) -> None:
        self.transmissions += 1
        self.socket.sendto(
            pending.wire, self.server[0], self.server[1], {"kind": "query"}
        )
        pending.timer = self.sim.schedule(
            pending.transmission.timeout, self._on_timeout, txid
        )

    def _on_timeout(self, txid: int) -> None:
        pending = self._pending.get(txid)
        if pending is None or pending.done:
            return
        if pending.transmission.register_timeout():
            self.retransmissions += 1
            self._transmit(txid, pending)
        else:
            pending.done = True
            del self._pending[txid]
            pending.on_result(None, DnsTimeoutError(pending.question.name))

    def _on_datagram(self, src_addr: str, src_port: int, data: bytes, metadata: dict) -> None:
        try:
            response = Message.decode(data)
        except ValueError:
            return
        pending = self._pending.get(response.id)
        if pending is None or pending.done:
            return
        pending.done = True
        if pending.timer is not None:
            pending.timer.cancel()
        del self._pending[response.id]
        try:
            result = self.stub.handle_response(
                pending.question, response, self.sim.now
            )
        except ValueError as exc:
            pending.on_result(None, exc)
            return
        pending.on_result(result, None)


class DnsOverUdpServer:
    """The recursive resolver exposed over UDP port 53."""

    def __init__(
        self,
        sim: Clock,
        socket,
        resolver: RecursiveResolver,
        response_delay: float = 0.0,
    ) -> None:
        self.sim = sim
        self.socket = socket
        self.resolver = resolver
        self.response_delay = response_delay
        self.queries_handled = 0
        socket.on_datagram = self._on_datagram

    def _on_datagram(self, src_addr: str, src_port: int, data: bytes, metadata: dict) -> None:
        try:
            query = Message.decode(data)
        except ValueError:
            return
        self.queries_handled += 1
        response = self.resolver.resolve(query, self.sim.now)
        wire = response.encode()

        def send() -> None:
            self.socket.sendto(wire, src_addr, src_port, {"kind": "response"})

        if self.response_delay > 0:
            self.sim.schedule(self.response_delay, send)
        else:
            send()
