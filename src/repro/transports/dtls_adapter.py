"""Socket-shaped adapters that tunnel datagrams through DTLS sessions.

Both adapters expose the same interface as :class:`repro.stack.node.UdpSocket`
(``sendto`` + ``on_datagram``), so CoAP endpoints and DNS clients stack
on top of them unchanged — mirroring RIOT's ``sock_dtls`` wrapping
``sock_udp`` (Appendix B, Figure 13).

The paper pre-initialises DTLS sessions before measurements
(Section 5.1); :func:`preestablish` performs that out-of-band handshake
in zero simulated time. A full in-network handshake is also supported
for the session-setup packet analysis of Figure 6.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.dtls import DtlsError, DtlsSession
from repro.dtls.session import establish_pair
from repro.sim.clock import Clock


#: RFC 6347 §4.2.4: initial retransmission timer 1 s, doubling up to a
#: 60 s ceiling; a bounded retry count keeps simulations terminating.
HANDSHAKE_TIMEOUT = 1.0
HANDSHAKE_TIMEOUT_CEILING = 60.0
HANDSHAKE_MAX_RETRIES = 10


class DtlsClientAdapter:
    """Client-side DTLS: one session to a fixed server endpoint.

    Handshake flights are retransmitted with the RFC 6347 §4.2.4 timer
    (1 s initial, doubling) so lossy links cannot stall the session —
    the paper's Section 2.2 point that "long duty-cycles in lossy
    networks conflict with the handshake requirements of DTLS" is
    exactly this retransmission traffic.
    """

    def __init__(
        self,
        sim: Clock,
        socket,
        server: Tuple[str, int],
        psk: bytes = b"secretPSK",
        psk_identity: bytes = b"Client_identity",
    ) -> None:
        self.sim = sim
        self.socket = socket
        self.server = server
        self.session: Optional[DtlsSession] = None
        self._psk = psk
        self._identity = psk_identity
        self.on_datagram: Optional[Callable[[str, int, bytes, dict], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        self._send_queue = []
        self._last_flight: list = []
        self._flight_retries = 0
        self._flight_timer = None
        self._seen_handshake_datagrams: set = set()
        self.handshake_retransmissions = 0
        socket.on_datagram = self._receive

    def handshake(self) -> None:
        """Start an in-network handshake (flights travel the topology)."""
        self.session = DtlsSession(
            "client", psk=self._psk, psk_identity=self._identity, rng=self.sim.rng
        )
        first = self.session.start_handshake()
        self._send_flight([first])

    def _send_flight(self, datagrams: list) -> None:
        self._last_flight = list(datagrams)
        self._flight_retries = 0
        for datagram in datagrams:
            self.socket.sendto(
                datagram, self.server[0], self.server[1],
                {"kind": "dtls-handshake"},
            )
        self._arm_flight_timer(HANDSHAKE_TIMEOUT)

    def _arm_flight_timer(self, timeout: float) -> None:
        if self._flight_timer is not None:
            self._flight_timer.cancel()
        self._flight_timer = self.sim.schedule(
            timeout, self._on_flight_timeout, timeout
        )

    def _on_flight_timeout(self, timeout: float) -> None:
        if self.session is None or self.session.established:
            return
        if self._flight_retries >= HANDSHAKE_MAX_RETRIES:
            return  # abandoned; a fresh handshake() can restart
        self._flight_retries += 1
        self.handshake_retransmissions += 1
        for datagram in self._last_flight:
            self.socket.sendto(
                datagram, self.server[0], self.server[1],
                {"kind": "dtls-handshake", "retransmission": True},
            )
        self._arm_flight_timer(min(timeout * 2, HANDSHAKE_TIMEOUT_CEILING))

    def adopt_session(self, session: DtlsSession) -> None:
        """Install a pre-established session (the paper's setup)."""
        self.session = session

    def sendto(self, payload: bytes, dst_addr: str, dst_port: int, metadata=None) -> None:
        if self.session is None or not self.session.established:
            self._send_queue.append((payload, dst_addr, dst_port, metadata))
            if self.session is None:
                self.handshake()
            return
        record = self.session.protect(payload)
        self.socket.sendto(record, dst_addr, dst_port, dict(metadata or {}))

    def _receive(self, src_addr: str, src_port: int, data: bytes, metadata: dict) -> None:
        if self.session is None:
            return
        in_handshake = not self.session.established
        if in_handshake:
            # Duplicate server flights (triggered by our own handshake
            # retransmissions) must not be reprocessed: they would
            # advance the transcript twice and break Finished.
            key = bytes(data)
            if key in self._seen_handshake_datagrams:
                return
        try:
            events = self.session.handle_datagram(data)
        except DtlsError:
            # Out-of-order flight (e.g. ServerHelloDone overtaking a
            # lost ServerHello): drop it; the retransmission timer will
            # bring the full flight around again.
            return
        if in_handshake:
            self._seen_handshake_datagrams.add(key)
        if events.outgoing:
            flight = [datagram for _name, datagram in events.outgoing]
            self._send_flight(flight)
        if self.session.established:
            if self._flight_timer is not None:
                self._flight_timer.cancel()
                self._flight_timer = None
            if self._send_queue:
                queued, self._send_queue = self._send_queue, []
                for payload, dst_addr, dst_port, md in queued:
                    self.sendto(payload, dst_addr, dst_port, md)
                if self.on_established is not None:
                    self.on_established()
        for app in events.app_data:
            if self.on_datagram is not None:
                self.on_datagram(src_addr, src_port, app, metadata)


class DtlsServerAdapter:
    """Server-side DTLS: one session per client endpoint."""

    def __init__(
        self,
        sim: Clock,
        socket,
        psk_store: Optional[Dict[bytes, bytes]] = None,
    ) -> None:
        self.sim = sim
        self.socket = socket
        self._psk_store = psk_store or {b"Client_identity": b"secretPSK"}
        self._sessions: Dict[Tuple[str, int], DtlsSession] = {}
        #: peer -> {incoming datagram bytes: outgoing reply datagrams};
        #: duplicates (client retransmissions) replay the cached reply
        #: instead of re-driving the handshake state machine.
        self._handshake_replies: Dict[Tuple[str, int], Dict[bytes, list]] = {}
        self.on_datagram: Optional[Callable[[str, int, bytes, dict], None]] = None
        socket.on_datagram = self._receive

    def adopt_session(self, peer: Tuple[str, int], session: DtlsSession) -> None:
        self._sessions[peer] = session

    def sendto(self, payload: bytes, dst_addr: str, dst_port: int, metadata=None) -> None:
        session = self._sessions.get((dst_addr, dst_port))
        if session is None or not session.established:
            raise RuntimeError(f"no DTLS session with {dst_addr}:{dst_port}")
        record = session.protect(payload)
        self.socket.sendto(record, dst_addr, dst_port, dict(metadata or {}))

    def _receive(self, src_addr: str, src_port: int, data: bytes, metadata: dict) -> None:
        peer = (src_addr, src_port)
        session = self._sessions.get(peer)
        if session is None:
            session = DtlsSession(
                "server", psk_store=self._psk_store, rng=self.sim.rng
            )
            self._sessions[peer] = session
        replies = self._handshake_replies.setdefault(peer, {})
        key = bytes(data)
        if key in replies:
            # A client handshake retransmission (possibly arriving
            # after we completed): replay our reply flight without
            # touching the state machine.
            for datagram in replies[key]:
                self.socket.sendto(
                    datagram, src_addr, src_port,
                    {"kind": "dtls-handshake", "retransmission": True},
                )
            return
        try:
            events = session.handle_datagram(data)
        except DtlsError:
            # Out-of-order flight (e.g. CCS overtaking a lost
            # ClientKeyExchange): drop; the client retransmits.
            return
        if not session.established or events.outgoing:
            replies[key] = [datagram for _name, datagram in events.outgoing]
        for name, datagram in events.outgoing:
            self.socket.sendto(
                datagram, src_addr, src_port,
                {"kind": "dtls-handshake", "handshake": name},
            )
        for app in events.app_data:
            if self.on_datagram is not None:
                self.on_datagram(src_addr, src_port, app, metadata)


def preestablish(
    client_adapter: DtlsClientAdapter,
    server_adapter: DtlsServerAdapter,
    client_endpoint: Tuple[str, int],
    psk: bytes = b"secretPSK",
    psk_identity: bytes = b"Client_identity",
) -> None:
    """Create a matching session pair out-of-band (zero network traffic),
    replicating the paper's pre-initialised DTLS sessions."""
    client_session, server_session, _flights = establish_pair(
        psk=psk, psk_identity=psk_identity, rng=client_adapter.sim.rng
    )
    client_adapter.adopt_session(client_session)
    server_adapter.adopt_session(client_endpoint, server_session)
