"""TTL-aware DNS cache, as deployed on clients and the recursive resolver.

Mirrors RIOT's ``CONFIG_DNS_CACHE_SIZE`` bounded cache (Table 6 sets it
to 8 on clients): fixed capacity with TTL aging on lookup so returned
records carry the *remaining* TTL, the behaviour that makes the paper's
DoH-like ETags unstable.

This module is a thin adapter over :mod:`repro.cache`: it contributes
the DNS cache key ``(name, type, class)`` and the TTL semantics
(zero-TTL responses uncacheable, expired entries dropped — DNS has no
revalidation); storage, aging, eviction, and statistics are the shared
:class:`~repro.cache.KeyedCache`. Eviction is expired-first with an LRU
fallback, so a dead entry never costs a live one its slot.
"""

from __future__ import annotations

from typing import Optional

from repro.cache import CacheEntry as _BaseEntry
from repro.cache import CacheStats, EvictionPolicy, KeyedCache, LookupState

from .message import Message, Question


class CacheEntry(_BaseEntry):
    """A cached response viewed with DNS vocabulary."""

    @property
    def response(self) -> Message:
        return self.value

    @property
    def inserted_at(self) -> float:
        return self.stored_at

    @property
    def ttl(self) -> int:
        return int(self.lifetime)

    def aged_response(self, now: float) -> Message:
        """The response with TTLs decremented by the elapsed cache time."""
        elapsed = int(now - self.stored_at)
        return self.response.adjust_ttls(-elapsed)


class DNSCache:
    """A bounded DNS response cache keyed by (name, type, class).

    Parameters
    ----------
    capacity:
        Maximum number of entries (RIOT uses a similarly bounded
        table); when full, an expired entry is evicted if one exists,
        otherwise the least recently used.
    """

    def __init__(self, capacity: int = 8) -> None:
        self._store = KeyedCache(
            capacity,
            policy=EvictionPolicy.EXPIRED_FIRST,
            keep_stale=False,
            entry_factory=CacheEntry,
        )

    def __len__(self) -> int:
        return len(self._store)

    @property
    def capacity(self) -> int:
        return self._store.capacity

    @property
    def stats(self) -> CacheStats:
        return self._store.stats

    @property
    def hits(self) -> int:
        return self._store.stats.hits

    @property
    def misses(self) -> int:
        return self._store.stats.misses

    def store(self, question: Question, response: Message, now: float) -> None:
        """Insert *response* for *question*; zero-TTL responses are not cached."""
        ttl = response.min_ttl()
        if ttl is None or ttl <= 0:
            return
        self._store.store(question.cache_key(), response, ttl, now)

    def lookup(self, question: Question, now: float) -> Optional[Message]:
        """Return the aged cached response, or ``None`` on miss/expiry."""
        entry, state = self._store.lookup(question.cache_key(), now)
        if state is not LookupState.HIT:
            return None
        return entry.aged_response(now)

    def expire(self, now: float) -> int:
        """Drop all stale entries; returns the number removed."""
        return self._store.expire(now)

    def clear(self) -> None:
        self._store.clear()
