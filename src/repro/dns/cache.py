"""TTL-aware DNS cache, as deployed on clients and the recursive resolver.

Mirrors RIOT's ``CONFIG_DNS_CACHE_SIZE`` bounded cache (Table 6 sets it
to 8 on clients): fixed capacity with least-recently-used eviction, and
TTL aging on lookup so returned records carry the *remaining* TTL, the
behaviour that makes the paper's DoH-like ETags unstable.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from .message import Message, Question


@dataclass
class CacheEntry:
    """A cached response together with its insertion time and lifetime."""

    response: Message
    inserted_at: float
    ttl: int

    def expires_at(self) -> float:
        return self.inserted_at + self.ttl

    def is_fresh(self, now: float) -> bool:
        return now < self.expires_at()

    def aged_response(self, now: float) -> Message:
        """The response with TTLs decremented by the elapsed cache time."""
        elapsed = int(now - self.inserted_at)
        return self.response.adjust_ttls(-elapsed)


class DNSCache:
    """A bounded DNS response cache keyed by (name, type, class).

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is
        evicted when full (RIOT uses a similarly bounded table).
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._entries: "OrderedDict[Tuple[str, int, int], CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    def store(self, question: Question, response: Message, now: float) -> None:
        """Insert *response* for *question*; zero-TTL responses are not cached."""
        ttl = response.min_ttl()
        if ttl is None or ttl <= 0:
            return
        key = question.cache_key()
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self._capacity:
            self._entries.popitem(last=False)
        self._entries[key] = CacheEntry(response, now, ttl)

    def lookup(self, question: Question, now: float) -> Optional[Message]:
        """Return the aged cached response, or ``None`` on miss/expiry."""
        key = question.cache_key()
        entry = self._entries.get(key)
        if entry is None or not entry.is_fresh(now):
            if entry is not None:
                del self._entries[key]
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.aged_response(now)

    def expire(self, now: float) -> int:
        """Drop all stale entries; returns the number removed."""
        stale = [k for k, e in self._entries.items() if not e.is_fresh(now)]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
