"""DNS protocol constants (RFC 1035 and successors)."""

from __future__ import annotations

import enum


class RecordType(enum.IntEnum):
    """DNS resource record types seen in the paper's datasets (Table 4)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    OPT = 41
    HTTPS = 65
    ANY = 255

    @classmethod
    def from_value(cls, value: int) -> "RecordType | int":
        """Return the enum member, or the raw value for unknown types.

        A plain dict lookup: the ``IntEnum`` constructor costs close to
        a microsecond per call, which dominated record decoding.
        """
        return _RECORD_TYPE_BY_VALUE.get(value, value)


_RECORD_TYPE_BY_VALUE = {int(member): member for member in RecordType}


class DNSClass(enum.IntEnum):
    """DNS classes; IN is the only one the paper's traffic uses."""

    IN = 1
    CH = 3
    HS = 4
    NONE = 254
    ANY = 255


class Opcode(enum.IntEnum):
    """DNS header opcodes."""

    QUERY = 0
    IQUERY = 1
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5


class Rcode(enum.IntEnum):
    """DNS response codes."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


#: Maximum length of a full domain name in presentation format.
MAX_NAME_LENGTH = 255
#: Maximum length of a single label.
MAX_LABEL_LENGTH = 63
