"""Zone database backing the mock recursive resolver.

The paper mocks up the recursive resolver to "generate the desired
responses" (Section 5.1). This zone database plays the role of the
authoritative data behind that mock: experiments pre-load it with the
records a run should resolve (e.g. 50 names of 24 characters, or four
AAAA records per name for the caching study).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .enums import DNSClass, RecordType
from .rdata import AData, AAAAData


@dataclass(frozen=True)
class ZoneRecord:
    """One authoritative record: owner name, type, TTL, and rdata."""

    name: str
    rtype: int
    ttl: int
    rdata: object
    rclass: int = DNSClass.IN


class Zone:
    """A flat set of authoritative records with simple lookup.

    No delegation logic — the experiments resolve leaf names only —
    but ANY queries and per-record TTL overrides are supported because
    the Section 3 datasets exercise them.
    """

    def __init__(self, records: Iterable[ZoneRecord] = ()) -> None:
        self._records: Dict[Tuple[str, int], List[ZoneRecord]] = {}
        for record in records:
            self.add(record)

    def add(self, record: ZoneRecord) -> None:
        key = (record.name.lower(), int(record.rtype))
        self._records.setdefault(key, []).append(record)

    def add_address(
        self, name: str, address: str, ttl: int = 300
    ) -> ZoneRecord:
        """Convenience: add an A or AAAA record inferred from *address*."""
        if ":" in address:
            record = ZoneRecord(name, RecordType.AAAA, ttl, AAAAData(address))
        else:
            record = ZoneRecord(name, RecordType.A, ttl, AData(address))
        self.add(record)
        return record

    def lookup(
        self, name: str, rtype: int, rclass: int = DNSClass.IN
    ) -> List[ZoneRecord]:
        """All matching records; ANY returns every type for the name."""
        name = name.lower()
        if rtype == RecordType.ANY:
            matches: List[ZoneRecord] = []
            for (owner, _rtype), records in self._records.items():
                if owner == name:
                    matches.extend(r for r in records if r.rclass == rclass)
            return matches
        return [
            r
            for r in self._records.get((name, int(rtype)), [])
            if r.rclass == rclass
        ]

    def set_ttl(self, name: str, rtype: int, ttl: int) -> int:
        """Rewrite the TTL of matching records; returns how many changed.

        Experiments use this to emulate authoritative TTL changes, the
        trigger for the DoH-like ETag instability in Figure 3.
        """
        records = self._records.get((name.lower(), int(rtype)), [])
        updated = [
            ZoneRecord(r.name, r.rtype, ttl, r.rdata, r.rclass) for r in records
        ]
        if updated:
            self._records[(name.lower(), int(rtype))] = updated
        return len(updated)

    def names(self) -> List[str]:
        """All owner names present in the zone."""
        return sorted({owner for owner, _ in self._records})

    def __len__(self) -> int:
        return sum(len(records) for records in self._records.values())
