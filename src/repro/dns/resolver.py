"""Resolver roles: query construction, stub parsing, recursive serving.

``RecursiveResolver`` is the paper's resolver *S* in Figure 2: it owns a
DNS cache and consults the authoritative zone (the stand-in for the name
servers *NS*) on cache misses. ``StubResolver`` is the client-side logic
shared by every DNS transport in the paper (UDP, DTLS, and DoC reuse one
"generic interface to compose and parse DNS messages", Appendix B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .cache import DNSCache
from .enums import DNSClass, Rcode, RecordType
from .message import Flags, Message, Question, ResourceRecord
from .rdata import AData, AAAAData
from .zone import Zone


def make_query(
    name: str,
    rtype: int = RecordType.AAAA,
    rclass: int = DNSClass.IN,
    txid: int = 0,
    recursion_desired: bool = True,
) -> Message:
    """Build a standard one-question query.

    The transaction ID defaults to 0 per the DoC cache-key rule
    (Section 4.2); plain UDP/DTLS transports pass a real ID.
    """
    return Message(
        id=txid,
        flags=Flags(qr=False, rd=recursion_desired),
        questions=(Question(name, rtype, rclass),),
    )


def min_ttl(message: Message) -> Optional[int]:
    """Minimum TTL across a response's records (the Max-Age source)."""
    return message.min_ttl()


@dataclass
class ResolutionResult:
    """Outcome of a stub resolution: addresses plus response metadata."""

    addresses: List[str]
    rcode: int
    response: Message
    min_ttl: Optional[int] = None
    #: True when served from the local DNS cache (no wire exchange).
    from_cache: bool = False


class StubResolver:
    """Client-side DNS logic: compose queries, parse/validate responses."""

    def __init__(self, cache: Optional[DNSCache] = None) -> None:
        self.cache = cache

    def compose(
        self, name: str, rtype: int = RecordType.AAAA, txid: int = 0
    ) -> Message:
        return make_query(name, rtype, txid=txid)

    def cached_response(
        self, question: Question, now: float
    ) -> Optional[Message]:
        """Look up the local DNS cache, if one is configured."""
        if self.cache is None:
            return None
        return self.cache.lookup(question, now)

    def handle_response(
        self, question: Question, response: Message, now: float
    ) -> ResolutionResult:
        """Validate *response* against *question* and extract addresses.

        The response is stored in the local DNS cache (when present)
        with whatever TTLs it carries — DoC clients must therefore
        restore TTLs from Max-Age *before* calling this (Section 4.2).
        """
        if not response.flags.qr:
            raise ValueError("response lacks QR flag")
        if response.questions and (
            response.questions[0].cache_key() != question.cache_key()
        ):
            raise ValueError(
                "response question does not match query: "
                f"{response.questions[0]} != {question}"
            )
        addresses = extract_addresses(response)
        if self.cache is not None and response.flags.rcode == Rcode.NOERROR:
            self.cache.store(question, response, now)
        return ResolutionResult(
            addresses=addresses,
            rcode=response.flags.rcode,
            response=response,
            min_ttl=response.min_ttl(),
        )


def extract_addresses(response: Message) -> List[str]:
    """All A/AAAA addresses in the answer section, in order."""
    addresses: List[str] = []
    for record in response.answers:
        if isinstance(record.rdata, (AData, AAAAData)):
            addresses.append(record.rdata.address)
    return addresses


@dataclass
class ResolverStats:
    """Counters exposed by the recursive resolver for the harness."""

    queries: int = 0
    cache_hits: int = 0
    upstream_queries: int = 0
    nxdomain: int = 0


class RecursiveResolver:
    """The recursive resolver *S*: DNS cache in front of a zone database.

    Parameters
    ----------
    zone:
        Authoritative data standing in for the upstream name servers.
    cache_capacity:
        Size of the resolver's DNS cache.
    upstream_ttl_range:
        When set to ``(low, high)``, every upstream (zone) resolution
        draws a fresh TTL uniformly from this range instead of using the
        zone's static TTLs — the paper's mocked resolver behaviour that
        "introduces quick cache renewals" (Section 6.1) and the TTL
        churn that breaks DoH-like revalidation (Figure 3 step 3).
    rng:
        Randomness source for the TTL draws (seed for determinism).
    """

    def __init__(
        self,
        zone: Zone,
        cache_capacity: int = 256,
        upstream_ttl_range: "Optional[Tuple[int, int]]" = None,
        rng: "Optional[object]" = None,
    ) -> None:
        self.zone = zone
        self.cache = DNSCache(cache_capacity)
        self.stats = ResolverStats()
        self.upstream_ttl_range = upstream_ttl_range
        if rng is None:
            import random as _random

            rng = _random.Random(0)
        self._rng = rng

    def resolve(self, query: Message, now: float = 0.0) -> Message:
        """Produce a response for *query*, echoing its transaction ID."""
        self.stats.queries += 1
        if not query.questions:
            return self._error(query, Rcode.FORMERR)
        # Common resolver behaviour (Section 3): >1 question is an error.
        if len(query.questions) > 1:
            return self._error(query, Rcode.FORMERR)
        question = query.questions[0]

        cached = self.cache.lookup(question, now)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached.with_id(query.id)

        self.stats.upstream_queries += 1
        records = self.zone.lookup(question.name, question.rtype, question.rclass)
        if not records:
            self.stats.nxdomain += 1
            return self._error(query, Rcode.NXDOMAIN)

        if self.upstream_ttl_range is not None:
            low, high = self.upstream_ttl_range
            ttl = self._rng.randint(low, high)
            answers = tuple(
                ResourceRecord(r.name, r.rtype, r.rclass, ttl, r.rdata)
                for r in records
            )
        else:
            answers = tuple(
                ResourceRecord(r.name, r.rtype, r.rclass, r.ttl, r.rdata)
                for r in records
            )
        response = Message(
            id=query.id,
            flags=Flags(qr=True, rd=query.flags.rd, ra=True),
            questions=(question,),
            answers=answers,
        )
        self.cache.store(question, response, now)
        return response

    @staticmethod
    def _error(query: Message, rcode: int) -> Message:
        return Message(
            id=query.id,
            flags=Flags(qr=True, rd=query.flags.rd, ra=True, rcode=rcode),
            questions=query.questions,
        )
