"""DNS message codec (RFC 1035 §4) with compression on encode.

The paper's DoC design (Section 4.2) requires two message-level
manipulations, both provided here:

* ``Message.with_id(0)`` — zeroing the transaction ID for deterministic
  CoAP cache keys,
* ``Message.with_ttls(ttl)`` / ``Message.adjust_ttls(delta)`` — the
  EOL-TTLs rewrite and the client-side TTL restore from Max-Age.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.net.buffers import Buffer, materialize
from .enums import _RECORD_TYPE_BY_VALUE, DNSClass, Opcode, Rcode, RecordType
from .name import decode_name, encode_name
from .rdata import decode_rdata

_HEADER = struct.Struct("!HHHHHH")
_QUESTION_FIXED = struct.Struct("!HH")
_RECORD_FIXED = struct.Struct("!HHIH")


class MessageError(ValueError):
    """Raised on malformed DNS messages."""


@dataclass(frozen=True, slots=True)
class Flags:
    """The 16 header flag bits following the transaction ID."""

    qr: bool = False
    opcode: int = Opcode.QUERY
    aa: bool = False
    tc: bool = False
    rd: bool = True
    ra: bool = False
    ad: bool = False
    cd: bool = False
    rcode: int = Rcode.NOERROR

    def encode(self) -> int:
        value = 0
        value |= int(self.qr) << 15
        value |= (self.opcode & 0xF) << 11
        value |= int(self.aa) << 10
        value |= int(self.tc) << 9
        value |= int(self.rd) << 8
        value |= int(self.ra) << 7
        value |= int(self.ad) << 5
        value |= int(self.cd) << 4
        value |= self.rcode & 0xF
        return value

    @classmethod
    def decode(cls, value: int) -> "Flags":
        return _decode_flags(value)


@lru_cache(maxsize=1024)
def _decode_flags(value: int) -> Flags:
    # Real traffic uses a handful of distinct flag words; memoising
    # skips the nine-field frozen-dataclass build on the decode path.
    return Flags(
        qr=bool(value & 0x8000),
        opcode=(value >> 11) & 0xF,
        aa=bool(value & 0x0400),
        tc=bool(value & 0x0200),
        rd=bool(value & 0x0100),
        ra=bool(value & 0x0080),
        ad=bool(value & 0x0020),
        cd=bool(value & 0x0010),
        rcode=value & 0xF,
    )


@dataclass(frozen=True, slots=True)
class Question:
    """An entry of the question section."""

    name: str
    rtype: int = RecordType.AAAA
    rclass: int = DNSClass.IN

    def encode(self, compress: Dict[str, int] | None, offset: int) -> bytes:
        out = bytearray()
        self.encode_into(out, compress, offset)
        return bytes(out)

    def encode_into(
        self,
        out: bytearray,
        compress: Dict[str, int] | None,
        offset: Optional[int] = None,
    ) -> None:
        """Append this question's wire form to *out*.

        *offset* is the wire offset of ``out``'s start; it defaults to
        0-based appending (``len(out)`` positions are the message
        offsets when *out* is the whole message being built).
        """
        base = 0 if offset is None else offset - len(out)
        out += encode_name(self.name, compress, base + len(out))
        out += int(self.rtype).to_bytes(2, "big")
        out += int(self.rclass).to_bytes(2, "big")

    def cache_key(self) -> Tuple[str, int, int]:
        """Key identifying this question for DNS caches."""
        return (self.name.lower(), int(self.rtype), int(self.rclass))


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """A resource record of the answer/authority/additional sections."""

    name: str
    rtype: int
    rclass: int
    ttl: int
    rdata: object

    def encode(self, compress: Dict[str, int] | None, offset: int) -> bytes:
        out = bytearray()
        self.encode_into(out, compress, offset)
        return bytes(out)

    def encode_into(
        self,
        out: bytearray,
        compress: Dict[str, int] | None,
        offset: Optional[int] = None,
    ) -> None:
        """Append this record's wire form to *out* (see Question)."""
        base = 0 if offset is None else offset - len(out)
        out += encode_name(self.name, compress, base + len(out))
        out += int(self.rtype).to_bytes(2, "big")
        out += int(self.rclass).to_bytes(2, "big")
        out += (self.ttl & 0xFFFFFFFF).to_bytes(4, "big")
        rdata = self.rdata.encode(compress, base + len(out) + 2)
        out += len(rdata).to_bytes(2, "big")
        out += rdata


@dataclass(frozen=True)
class Message:
    """A complete DNS message."""

    id: int = 0
    flags: Flags = field(default_factory=Flags)
    questions: Tuple[Question, ...] = ()
    answers: Tuple[ResourceRecord, ...] = ()
    authorities: Tuple[ResourceRecord, ...] = ()
    additionals: Tuple[ResourceRecord, ...] = ()

    # -- construction helpers -------------------------------------------

    def with_id(self, new_id: int) -> "Message":
        """Return a copy with the transaction ID replaced.

        DoC zeroes the ID (Section 4.2) so that equal queries serialise
        to equal bytes and hit the same CoAP cache entry.
        """
        return Message(
            new_id & 0xFFFF, self.flags, self.questions,
            self.answers, self.authorities, self.additionals,
        )

    def with_ttls(self, ttl: int) -> "Message":
        """Return a copy with every record's TTL set to *ttl*.

        With ``ttl=0`` this is the server-side EOL-TTLs rewrite.
        """
        return self._map_ttl(lambda _old: ttl)

    def adjust_ttls(self, delta: int) -> "Message":
        """Return a copy with *delta* added to every TTL (floored at 0).

        Used by clients to restore TTLs from the CoAP Max-Age option and
        by DNS caches to age records.
        """
        return self._map_ttl(lambda old: max(0, old + delta))

    def _map_ttl(self, fn) -> "Message":
        def map_section(records: Tuple[ResourceRecord, ...]):
            return tuple(
                ResourceRecord(r.name, r.rtype, r.rclass, fn(r.ttl), r.rdata)
                if r.rtype != RecordType.OPT
                else r
                for r in records
            )

        return Message(
            self.id,
            self.flags,
            self.questions,
            map_section(self.answers),
            map_section(self.authorities),
            map_section(self.additionals),
        )

    def all_records(self) -> Tuple[ResourceRecord, ...]:
        """All records across answer, authority, and additional sections."""
        return self.answers + self.authorities + self.additionals

    def min_ttl(self) -> Optional[int]:
        """Minimum TTL over all non-OPT records, or ``None`` if empty."""
        ttls = [r.ttl for r in self.all_records() if r.rtype != RecordType.OPT]
        return min(ttls) if ttls else None

    # -- wire format -----------------------------------------------------

    def encode(self, compress: bool = True) -> bytes:
        """Serialise to DNS wire format.

        Name compression is on by default, matching common resolver
        behaviour and the sizes reported in the paper.
        """
        table: Dict[str, int] | None = {} if compress else None
        out = bytearray()
        out += (self.id & 0xFFFF).to_bytes(2, "big")
        out += self.flags.encode().to_bytes(2, "big")
        for count in (
            len(self.questions),
            len(self.answers),
            len(self.authorities),
            len(self.additionals),
        ):
            if count > 0xFFFF:
                raise MessageError("section count exceeds 16 bits")
            out += count.to_bytes(2, "big")
        # Sections append into the one message buffer; ``len(out)`` is
        # each element's wire offset, so compression sees true offsets
        # without any per-question/per-record intermediate bytes.
        for question in self.questions:
            question.encode_into(out, table)
        for record in self.answers + self.authorities + self.additionals:
            record.encode_into(out, table)
        return bytes(out)

    @classmethod
    def decode(cls, data: Buffer) -> "Message":
        """Parse a wire-format DNS message from ``bytes | memoryview``.

        Decoding is a pure function of the wire bytes and a message is
        immutable all the way down (frozen dataclasses over tuples), so
        results are memoised: caching schemes decode the same response
        bytes many times over (revalidations, retransmissions, shared
        zone data). The input is materialised exactly once here — the
        memo key must own its bytes — and never mutated.
        """
        return _decode_cached(materialize(data))

    @classmethod
    def _decode(cls, data: bytes) -> "Message":
        size = len(data)
        if size < 12:
            raise MessageError("message shorter than header")
        msg_id, flags_raw, qdcount, ancount, nscount, arcount = (
            _HEADER.unpack_from(data)
        )
        flags = _decode_flags(flags_raw)
        offset = 12

        rtype_of = _RECORD_TYPE_BY_VALUE.get
        questions: List[Question] = []
        for _ in range(qdcount):
            name, offset = decode_name(data, offset)
            if offset + 4 > size:
                raise MessageError("truncated question")
            rtype, rclass = _QUESTION_FIXED.unpack_from(data, offset)
            offset += 4
            questions.append(Question(name, rtype_of(rtype, rtype), rclass))

        decode_record = cls._decode_record
        sections: List[List[ResourceRecord]] = [[], [], []]
        for section, count in zip(sections, (ancount, nscount, arcount)):
            record_append = section.append
            for _ in range(count):
                record, offset = decode_record(data, offset)
                record_append(record)

        return cls(
            id=msg_id,
            flags=flags,
            questions=tuple(questions),
            answers=tuple(sections[0]),
            authorities=tuple(sections[1]),
            additionals=tuple(sections[2]),
        )

    @staticmethod
    def _decode_record(data: bytes, offset: int) -> Tuple[ResourceRecord, int]:
        name, offset = decode_name(data, offset)
        if offset + 10 > len(data):
            raise MessageError("truncated resource record")
        rtype, rclass, ttl, rdlength = _RECORD_FIXED.unpack_from(data, offset)
        offset += 10
        if offset + rdlength > len(data):
            raise MessageError("truncated rdata")
        rdata = decode_rdata(rtype, data, offset, rdlength)
        offset += rdlength
        record = ResourceRecord(
            name, RecordType.from_value(rtype), rclass, ttl, rdata
        )
        return record, offset


@lru_cache(maxsize=2048)
def _decode_cached(data: bytes) -> Message:
    return Message._decode(data)
