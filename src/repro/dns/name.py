"""Domain-name encoding and decoding with RFC 1035 compression pointers."""

from __future__ import annotations

from typing import Dict, List, Tuple

from .enums import MAX_LABEL_LENGTH, MAX_NAME_LENGTH


class NameError_(ValueError):
    """Raised for malformed domain names or name encodings.

    Named with a trailing underscore to avoid clashing with the built-in
    :class:`NameError`.
    """


def split_name(name: str) -> List[str]:
    """Split a presentation-format name into labels, validating lengths.

    The root name is represented by ``""`` or ``"."`` and yields an empty
    label list.
    """
    name = name.rstrip(".")
    if not name:
        return []
    if len(name) > MAX_NAME_LENGTH:
        raise NameError_(f"name exceeds {MAX_NAME_LENGTH} characters: {name!r}")
    labels = name.split(".")
    for label in labels:
        if not label:
            raise NameError_(f"empty label in {name!r}")
        if len(label) > MAX_LABEL_LENGTH:
            raise NameError_(f"label exceeds {MAX_LABEL_LENGTH} chars: {label!r}")
    return labels


def encode_name(
    name: str,
    compress: Dict[str, int] | None = None,
    offset: int = 0,
) -> bytes:
    """Encode *name* in DNS wire format.

    Parameters
    ----------
    name:
        Presentation-format domain name (trailing dot optional).
    compress:
        Optional mutable mapping of already-emitted suffixes to their
        offsets in the enclosing message. When given, compression
        pointers are emitted for known suffixes and new suffixes are
        registered at ``offset`` + their position within this encoding.
    offset:
        Wire offset at which this encoding will be placed (used only to
        register suffixes in *compress*).
    """
    labels = split_name(name)
    out = bytearray()
    for index in range(len(labels)):
        suffix = ".".join(labels[index:]).lower()
        if compress is not None and suffix in compress:
            pointer = compress[suffix]
            out += bytes([0xC0 | (pointer >> 8), pointer & 0xFF])
            return bytes(out)
        if compress is not None:
            position = offset + len(out)
            # Pointers only reach 14 bits; skip registration beyond that.
            if position < 0x4000:
                compress[suffix] = position
        label = labels[index].encode("ascii")
        out += bytes([len(label)]) + label
    out += b"\x00"
    return bytes(out)


def decode_name(data: bytes, offset: int) -> Tuple[str, int]:
    """Decode a wire-format name from *data* starting at *offset*.

    Returns the presentation-format name (without trailing dot, ``""``
    for the root) and the offset just past the name's first encoding
    (i.e. past the pointer if the name was compressed).
    """
    labels: List[str] = []
    jumps = 0
    end_offset = -1
    position = offset
    while True:
        if position >= len(data):
            raise NameError_("truncated name")
        length = data[position]
        if length & 0xC0 == 0xC0:
            if position + 1 >= len(data):
                raise NameError_("truncated compression pointer")
            target = ((length & 0x3F) << 8) | data[position + 1]
            if end_offset < 0:
                end_offset = position + 2
            if target >= position:
                raise NameError_("forward compression pointer")
            position = target
            jumps += 1
            if jumps > 128:
                raise NameError_("compression pointer loop")
            continue
        if length & 0xC0:
            raise NameError_(f"reserved label type 0x{length:02x}")
        position += 1
        if length == 0:
            break
        if position + length > len(data):
            raise NameError_("truncated label")
        labels.append(data[position : position + length].decode("ascii", "replace"))
        position += length
        if sum(len(l) + 1 for l in labels) > MAX_NAME_LENGTH:
            raise NameError_("decoded name too long")
    if end_offset < 0:
        end_offset = position
    return ".".join(labels), end_offset
