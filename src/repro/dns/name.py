"""Domain-name encoding and decoding with RFC 1035 compression pointers.

Name encoding sits on the hot path of every DNS message the simulator
moves (and, through the deterministic DoC cache keys, of every cache
lookup), so the per-name work is memoised: :func:`_name_parts` caches
the validated label split with each suffix's wire bytes, and the full
uncompressed wire form is cached per name. A simulation draws from a
small fixed name population, so hit rates are effectively 100%.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from .enums import MAX_LABEL_LENGTH, MAX_NAME_LENGTH


class NameError_(ValueError):
    """Raised for malformed domain names or name encodings.

    Named with a trailing underscore to avoid clashing with the built-in
    :class:`NameError`.
    """


def split_name(name: str) -> List[str]:
    """Split a presentation-format name into labels, validating lengths.

    The root name is represented by ``""`` or ``"."`` and yields an empty
    label list.
    """
    name = name.rstrip(".")
    if not name:
        return []
    if len(name) > MAX_NAME_LENGTH:
        raise NameError_(f"name exceeds {MAX_NAME_LENGTH} characters: {name!r}")
    labels = name.split(".")
    for label in labels:
        if not label:
            raise NameError_(f"empty label in {name!r}")
        if len(label) > MAX_LABEL_LENGTH:
            raise NameError_(f"label exceeds {MAX_LABEL_LENGTH} chars: {label!r}")
    return labels


@lru_cache(maxsize=4096)
def _name_parts(name: str) -> Tuple[Tuple[str, bytes], ...]:
    """Per-label ``(lowercased suffix, wire label)`` pairs, memoised.

    The suffix strings are what compression maps key on; the wire
    label is the length byte plus the ASCII label. Validation errors
    from :func:`split_name` propagate (and are not cached).
    """
    labels = split_name(name)
    lowered = [label.lower() for label in labels]
    return tuple(
        (
            ".".join(lowered[index:]),
            bytes([len(label)]) + label.encode("ascii"),
        )
        for index, label in enumerate(labels)
    )


@lru_cache(maxsize=4096)
def _encode_uncompressed(name: str) -> bytes:
    """The full wire form of *name* with no compression, memoised."""
    return b"".join(wire for _, wire in _name_parts(name)) + b"\x00"


def encode_name(
    name: str,
    compress: Dict[str, int] | None = None,
    offset: int = 0,
) -> bytes:
    """Encode *name* in DNS wire format.

    Parameters
    ----------
    name:
        Presentation-format domain name (trailing dot optional).
    compress:
        Optional mutable mapping of already-emitted suffixes to their
        offsets in the enclosing message. When given, compression
        pointers are emitted for known suffixes and new suffixes are
        registered at ``offset`` + their position within this encoding.
    offset:
        Wire offset at which this encoding will be placed (used only to
        register suffixes in *compress*).
    """
    if compress is None:
        return _encode_uncompressed(name)
    out = bytearray()
    for suffix, wire in _name_parts(name):
        if suffix in compress:
            pointer = compress[suffix]
            out += bytes([0xC0 | (pointer >> 8), pointer & 0xFF])
            return bytes(out)
        position = offset + len(out)
        # Pointers only reach 14 bits; skip registration beyond that.
        if position < 0x4000:
            compress[suffix] = position
        out += wire
    out += b"\x00"
    return bytes(out)


def decode_name(data, offset: int) -> Tuple[str, int]:
    """Decode a wire-format name from *data* starting at *offset*.

    *data* may be ``bytes`` or a ``memoryview``; it is only indexed and
    read, never mutated. Returns the presentation-format name (without
    trailing dot, ``""`` for the root) and the offset just past the
    name's first encoding (i.e. past the pointer if the name was
    compressed).
    """
    labels: List[str] = []
    label_append = labels.append
    size = len(data)
    jumps = 0
    end_offset = -1
    position = offset
    decoded_length = 0
    while True:
        if position >= size:
            raise NameError_("truncated name")
        length = data[position]
        if length & 0xC0:
            if length & 0xC0 != 0xC0:
                raise NameError_(f"reserved label type 0x{length:02x}")
            if position + 1 >= size:
                raise NameError_("truncated compression pointer")
            target = ((length & 0x3F) << 8) | data[position + 1]
            if end_offset < 0:
                end_offset = position + 2
            if target >= position:
                raise NameError_("forward compression pointer")
            position = target
            jumps += 1
            if jumps > 128:
                raise NameError_("compression pointer loop")
            continue
        position += 1
        if length == 0:
            break
        next_position = position + length
        if next_position > size:
            raise NameError_("truncated label")
        # ``str(buffer, ...)`` decodes straight from the buffer, so the
        # label slice is the only intermediate and works for views too.
        label_append(str(data[position:next_position], "ascii", "replace"))
        position = next_position
        decoded_length += length + 1
        if decoded_length > MAX_NAME_LENGTH:
            raise NameError_("decoded name too long")
    if end_offset < 0:
        end_offset = position
    return ".".join(labels), end_offset
