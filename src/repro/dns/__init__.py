"""DNS substrate: wire format (RFC 1035), caching, and resolution.

This package is a from-scratch DNS implementation sufficient to act as
both endpoint roles the paper needs:

* the *stub resolver* side embedded in constrained clients (composing
  queries, parsing responses, maintaining a small TTL-aware cache), and
* the *recursive resolver* side (the DoC server's upstream), backed by a
  zone database that stands in for the paper's mocked resolver.

Wire-format features: domain-name compression pointers, the full header
bit layout, question/answer/authority/additional sections, and rdata
codecs for the record types observed in the paper's Section 3 datasets
(A, AAAA, NS, CNAME, SOA, PTR, TXT, SRV, HTTPS, OPT).
"""

from .enums import DNSClass, Opcode, Rcode, RecordType
from .name import NameError_, decode_name, encode_name, split_name
from .message import Flags, Message, Question, ResourceRecord
from .rdata import (
    AData,
    AAAAData,
    HTTPSData,
    NSData,
    CNAMEData,
    OPTData,
    PTRData,
    RawData,
    SOAData,
    SRVData,
    TXTData,
)
from .cache import DNSCache, CacheEntry
from .zone import Zone, ZoneRecord
from .resolver import RecursiveResolver, StubResolver, make_query, min_ttl

__all__ = [
    "AAAAData",
    "AData",
    "CNAMEData",
    "CacheEntry",
    "DNSCache",
    "DNSClass",
    "Flags",
    "HTTPSData",
    "Message",
    "NSData",
    "NameError_",
    "OPTData",
    "Opcode",
    "PTRData",
    "Question",
    "RawData",
    "Rcode",
    "RecordType",
    "RecursiveResolver",
    "ResourceRecord",
    "SOAData",
    "SRVData",
    "StubResolver",
    "TXTData",
    "Zone",
    "ZoneRecord",
    "decode_name",
    "encode_name",
    "make_query",
    "min_ttl",
    "split_name",
]
