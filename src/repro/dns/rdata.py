"""Rdata codecs for the record types used throughout the paper.

Each rdata class provides:

* ``encode(compress, offset)`` — wire bytes; name-bearing types take part
  in message compression when a compression map is supplied;
* ``decode(data, offset, rdlength)`` — classmethod parsing from a full
  message (so compression pointers can be followed).
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Tuple

_SOA_FIXED = struct.Struct("!IIIII")
_SRV_FIXED = struct.Struct("!HHH")
_PARAM_FIXED = struct.Struct("!HH")

from repro.net.ipv6 import address_from_packed, packed_address
from .enums import RecordType
from .name import decode_name, encode_name


@lru_cache(maxsize=8192)
def _packed_v4(address: str) -> bytes:
    return ipaddress.IPv4Address(address).packed


@lru_cache(maxsize=8192)
def _v4_from_packed(packed: bytes) -> str:
    return "%d.%d.%d.%d" % tuple(packed)


class RdataError(ValueError):
    """Raised for malformed rdata."""


@dataclass(frozen=True)
class AData:
    """IPv4 address rdata (``A``)."""

    address: str

    TYPE = RecordType.A

    def encode(self, compress: Dict[str, int] | None = None, offset: int = 0) -> bytes:
        return _packed_v4(self.address)

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "AData":
        if rdlength != 4:
            raise RdataError(f"A rdata must be 4 bytes, got {rdlength}")
        return cls(_v4_from_packed(bytes(data[offset : offset + 4])))


@dataclass(frozen=True)
class AAAAData:
    """IPv6 address rdata (``AAAA``)."""

    address: str

    TYPE = RecordType.AAAA

    def encode(self, compress: Dict[str, int] | None = None, offset: int = 0) -> bytes:
        return packed_address(self.address)

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "AAAAData":
        if rdlength != 16:
            raise RdataError(f"AAAA rdata must be 16 bytes, got {rdlength}")
        return cls(address_from_packed(bytes(data[offset : offset + 16])))


@dataclass(frozen=True)
class _SingleName:
    """Base for rdata consisting of a single (compressible) name."""

    target: str

    def encode(self, compress: Dict[str, int] | None = None, offset: int = 0) -> bytes:
        return encode_name(self.target, compress, offset)

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int):
        name, _ = decode_name(data, offset)
        return cls(name)


@dataclass(frozen=True)
class NSData(_SingleName):
    """Name server rdata (``NS``)."""

    TYPE = RecordType.NS


@dataclass(frozen=True)
class CNAMEData(_SingleName):
    """Canonical name rdata (``CNAME``)."""

    TYPE = RecordType.CNAME


@dataclass(frozen=True)
class PTRData(_SingleName):
    """Pointer rdata (``PTR``), prominent in the mDNS/DNS-SD datasets."""

    TYPE = RecordType.PTR


@dataclass(frozen=True)
class SOAData:
    """Start-of-authority rdata (``SOA``)."""

    mname: str
    rname: str
    serial: int
    refresh: int
    retry: int
    expire: int
    minimum: int

    TYPE = RecordType.SOA

    def encode(self, compress: Dict[str, int] | None = None, offset: int = 0) -> bytes:
        out = bytearray(encode_name(self.mname, compress, offset))
        out += encode_name(self.rname, compress, offset + len(out))
        for value in (self.serial, self.refresh, self.retry, self.expire, self.minimum):
            out += value.to_bytes(4, "big")
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "SOAData":
        mname, offset = decode_name(data, offset)
        rname, offset = decode_name(data, offset)
        if offset + 20 > len(data):
            raise RdataError("truncated SOA rdata")
        return cls(mname, rname, *_SOA_FIXED.unpack_from(data, offset))


@dataclass(frozen=True)
class TXTData:
    """Text rdata (``TXT``): one or more character strings."""

    strings: Tuple[bytes, ...]

    TYPE = RecordType.TXT

    def __post_init__(self) -> None:
        for chunk in self.strings:
            if len(chunk) > 255:
                raise RdataError("TXT character string exceeds 255 bytes")

    def encode(self, compress: Dict[str, int] | None = None, offset: int = 0) -> bytes:
        out = bytearray()
        for chunk in self.strings:
            out += bytes([len(chunk)]) + chunk
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "TXTData":
        end = offset + rdlength
        strings: List[bytes] = []
        while offset < end:
            length = data[offset]
            offset += 1
            if offset + length > end:
                raise RdataError("truncated TXT character string")
            strings.append(bytes(data[offset : offset + length]))
            offset += length
        return cls(tuple(strings))


@dataclass(frozen=True)
class SRVData:
    """Service locator rdata (``SRV``, RFC 2782), used by DNS-SD."""

    priority: int
    weight: int
    port: int
    target: str

    TYPE = RecordType.SRV

    def encode(self, compress: Dict[str, int] | None = None, offset: int = 0) -> bytes:
        out = bytearray()
        out += self.priority.to_bytes(2, "big")
        out += self.weight.to_bytes(2, "big")
        out += self.port.to_bytes(2, "big")
        # RFC 2782: the target must not be compressed.
        out += encode_name(self.target, None, 0)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "SRVData":
        if rdlength < 7:
            raise RdataError("truncated SRV rdata")
        priority, weight, port = _SRV_FIXED.unpack_from(data, offset)
        target, _ = decode_name(data, offset + 6)
        return cls(priority, weight, port, target)


@dataclass(frozen=True)
class HTTPSData:
    """Service-binding rdata (``HTTPS``, RFC 9460), seen at the IXP.

    SvcParams are kept as raw key/value pairs; the paper only needs the
    record to exist and have a realistic size.
    """

    priority: int
    target: str
    params: Tuple[Tuple[int, bytes], ...] = field(default_factory=tuple)

    TYPE = RecordType.HTTPS

    def encode(self, compress: Dict[str, int] | None = None, offset: int = 0) -> bytes:
        out = bytearray(self.priority.to_bytes(2, "big"))
        out += encode_name(self.target, None, 0)
        for key, value in sorted(self.params):
            out += key.to_bytes(2, "big")
            out += len(value).to_bytes(2, "big")
            out += value
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "HTTPSData":
        if rdlength < 2:
            raise RdataError("truncated HTTPS rdata")
        end = offset + rdlength
        (priority,) = struct.unpack_from("!H", data, offset)
        target, offset = decode_name(data, offset + 2)
        params: List[Tuple[int, bytes]] = []
        while offset < end:
            if offset + 4 > end:
                raise RdataError("truncated SvcParam")
            key, length = _PARAM_FIXED.unpack_from(data, offset)
            offset += 4
            if offset + length > end:
                raise RdataError("truncated SvcParam value")
            params.append((key, bytes(data[offset : offset + length])))
            offset += length
        return cls(priority, target, tuple(params))


@dataclass(frozen=True)
class OPTData:
    """EDNS(0) pseudo-record rdata (``OPT``, RFC 6891)."""

    options: Tuple[Tuple[int, bytes], ...] = field(default_factory=tuple)

    TYPE = RecordType.OPT

    def encode(self, compress: Dict[str, int] | None = None, offset: int = 0) -> bytes:
        out = bytearray()
        for code, value in self.options:
            out += code.to_bytes(2, "big")
            out += len(value).to_bytes(2, "big")
            out += value
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "OPTData":
        end = offset + rdlength
        options: List[Tuple[int, bytes]] = []
        while offset < end:
            if offset + 4 > end:
                raise RdataError("truncated EDNS option")
            code, length = _PARAM_FIXED.unpack_from(data, offset)
            offset += 4
            if offset + length > end:
                raise RdataError("truncated EDNS option value")
            options.append((code, bytes(data[offset : offset + length])))
            offset += length
        return cls(tuple(options))


@dataclass(frozen=True)
class RawData:
    """Opaque rdata for record types without a dedicated codec."""

    data: bytes

    def encode(self, compress: Dict[str, int] | None = None, offset: int = 0) -> bytes:
        return self.data

    @classmethod
    def decode(cls, data: bytes, offset: int, rdlength: int) -> "RawData":
        return cls(bytes(data[offset : offset + rdlength]))


_CODECS = {
    RecordType.A: AData,
    RecordType.AAAA: AAAAData,
    RecordType.NS: NSData,
    RecordType.CNAME: CNAMEData,
    RecordType.PTR: PTRData,
    RecordType.SOA: SOAData,
    RecordType.TXT: TXTData,
    RecordType.SRV: SRVData,
    RecordType.HTTPS: HTTPSData,
    RecordType.OPT: OPTData,
}


def decode_rdata(rtype: int, data: bytes, offset: int, rdlength: int):
    """Decode rdata of *rtype*, falling back to :class:`RawData`."""
    codec = _CODECS.get(rtype, RawData)
    return codec.decode(data, offset, rdlength)
