"""Per-node network stacks and topology construction.

A :class:`Node` owns a 6LoWPAN interface on the shared radio medium
(or a wired attachment for the border-router/host link), an IPv6
forwarding table (the static stand-in for the paper's RPL routes), and
a UDP socket table. :class:`Network` wires nodes into topologies such
as the paper's Figure 2.
"""

from .node import Node, StackError, UdpSocket
from .network import (
    Figure2Topology,
    LinearTopology,
    Network,
    build_figure2_topology,
    build_linear_topology,
)

__all__ = [
    "Figure2Topology",
    "LinearTopology",
    "Network",
    "Node",
    "StackError",
    "UdpSocket",
    "build_figure2_topology",
    "build_linear_topology",
]
