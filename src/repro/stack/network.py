"""Topology construction, including the paper's Figure 2 deployment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.ipv6 import global_address
from repro.sim.core import Simulator
from repro.sim.medium import RadioMedium
from repro.sim.trace import Sniffer

from .node import Node


class Network:
    """A simulation network: one radio medium plus wired attachments."""

    def __init__(self, sim: Simulator, l2_retries: int = 3) -> None:
        self.sim = sim
        self.medium = RadioMedium(sim, l2_retries=l2_retries)
        self.sniffer = Sniffer(self.medium)
        self.nodes: Dict[str, Node] = {}
        self._next_iid = 1

    def add_node(self, name: str, wireless: bool = True) -> Node:
        """Create a node; wireless nodes attach to the shared medium."""
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        iid = self._next_iid
        self._next_iid += 1
        node = Node(
            name=name,
            sim=self.sim,
            address=global_address(iid),
            mac=0x0200_0000_0000_1000 | iid,
            medium=self.medium if wireless else None,
        )
        node._neighbour_names = {}
        self.nodes[name] = node
        return node

    def connect_radio(self, a: str, b: str, loss: float = 0.0) -> None:
        """Radio adjacency with symmetric per-frame loss probability."""
        node_a, node_b = self.nodes[a], self.nodes[b]
        self.medium.connect(a, b, loss)
        node_a.add_radio_neighbour(node_b.address, node_b.mac)
        node_b.add_radio_neighbour(node_a.address, node_a.mac)
        node_a._neighbour_names[node_b.address] = b
        node_b._neighbour_names[node_a.address] = a

    def connect_wired(self, a: str, b: str, latency: float = 0.001) -> None:
        """Lossless wired link (the BR's TCP-tunneled UART + Ethernet)."""
        node_a, node_b = self.nodes[a], self.nodes[b]
        node_a.add_wired_neighbour(node_b.address, node_b, latency)
        node_b.add_wired_neighbour(node_a.address, node_a, latency)

    def set_route(self, node: str, dst: str, via: str) -> None:
        self.nodes[node].set_route(self.nodes[dst].address, self.nodes[via].address)

    def set_default_route(self, node: str, via: str) -> None:
        self.nodes[node].default_route = self.nodes[via].address


@dataclass
class Figure2Topology:
    """The paper's deployment: C1, C2 → P (forwarder) → BR → S (resolver)."""

    network: Network
    clients: List[Node]
    forwarder: Node
    border_router: Node
    resolver_host: Node

    @property
    def sniffer(self) -> Sniffer:
        return self.network.sniffer

    def client_proxy_frames(self) -> int:
        """Frames on the 2-hop-distance links (clients ↔ forwarder)."""
        return sum(
            self.sniffer.frame_count(client.name, self.forwarder.name)
            for client in self.clients
        )

    def proxy_sink_frames(self) -> int:
        """Frames on the 1-hop-distance bottleneck (forwarder ↔ BR)."""
        return self.sniffer.frame_count(
            self.forwarder.name, self.border_router.name
        )

    def client_proxy_bytes(self) -> int:
        return sum(
            self.sniffer.bytes_on_link(client.name, self.forwarder.name)
            for client in self.clients
        )

    def proxy_sink_bytes(self) -> int:
        return self.sniffer.bytes_on_link(
            self.forwarder.name, self.border_router.name
        )


def build_figure2_topology(
    sim: Simulator,
    clients: int = 2,
    loss: float = 0.0,
    l2_retries: int = 3,
) -> Figure2Topology:
    """Construct the two-wireless-hop topology of Figure 2.

    Clients reach the resolver host via the forwarder (radio hop), the
    border router (radio hop), and a wired BR↔host link. Static routes
    model the converged RPL DODAG of the testbed.
    """
    network = Network(sim, l2_retries=l2_retries)
    client_nodes = [
        network.add_node(f"c{i + 1}") for i in range(clients)
    ]
    forwarder = network.add_node("forwarder")
    border_router = network.add_node("br")
    host = network.add_node("host", wireless=False)

    for client in client_nodes:
        network.connect_radio(client.name, "forwarder", loss=loss)
    network.connect_radio("forwarder", "br", loss=loss)
    network.connect_wired("br", "host")

    # Upward default routes; downward host routes per client.
    for client in client_nodes:
        network.set_default_route(client.name, "forwarder")
    network.set_default_route("forwarder", "br")
    network.set_default_route("br", "host")
    network.set_default_route("host", "br")
    for client in client_nodes:
        network.set_route("br", client.name, "forwarder")
        network.set_route("host", client.name, "br")
        network.set_route("forwarder", client.name, client.name)

    return Figure2Topology(
        network=network,
        clients=client_nodes,
        forwarder=forwarder,
        border_router=border_router,
        resolver_host=host,
    )
