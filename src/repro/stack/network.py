"""Topology construction, including the paper's Figure 2 deployment.

The generic builder is :func:`build_linear_topology`: *clients* leaf
nodes reach a resolver host over a chain of wireless relay hops ending
at a border router, optionally followed by a wired BR↔host link (the
testbed's TCP-tunneled UART + Ethernet). The paper's Figure 2 topology
is the two-wireless-hop instance, kept as
:func:`build_figure2_topology` for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.net.ipv6 import global_address
from repro.sim.core import Simulator
from repro.sim.medium import RadioMedium
from repro.sim.trace import FrameTally, Sniffer

from .node import Node


class Network:
    """A simulation network: one radio medium plus wired attachments.

    ``capture`` selects the frame observer: ``"records"`` (default)
    attaches a full :class:`Sniffer`, ``"counts"`` the allocation-free
    :class:`FrameTally` — sufficient for every aggregate view
    (per-link counts/bytes, per-kind totals) and measurably cheaper
    per frame, which is what scenario sweeps use.
    """

    def __init__(
        self, sim: Simulator, l2_retries: int = 3, capture: str = "records"
    ) -> None:
        self.sim = sim
        self.medium = RadioMedium(sim, l2_retries=l2_retries)
        if capture == "records":
            self.sniffer = Sniffer(self.medium)
        elif capture == "counts":
            self.sniffer = FrameTally(self.medium)
        else:
            raise ValueError(
                f"capture must be 'records' or 'counts', got {capture!r}"
            )
        self.nodes: Dict[str, Node] = {}
        self._next_iid = 1

    def add_node(self, name: str, wireless: bool = True) -> Node:
        """Create a node; wireless nodes attach to the shared medium."""
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        iid = self._next_iid
        self._next_iid += 1
        node = Node(
            name=name,
            sim=self.sim,
            address=global_address(iid),
            mac=0x0200_0000_0000_1000 | iid,
            medium=self.medium if wireless else None,
        )
        node._neighbour_names = {}
        self.nodes[name] = node
        return node

    def connect_radio(self, a: str, b: str, loss: float = 0.0) -> None:
        """Radio adjacency with symmetric per-frame loss probability."""
        node_a, node_b = self.nodes[a], self.nodes[b]
        self.medium.connect(a, b, loss)
        node_a.add_radio_neighbour(node_b.address, node_b.mac)
        node_b.add_radio_neighbour(node_a.address, node_a.mac)
        node_a._neighbour_names[node_b.address] = b
        node_b._neighbour_names[node_a.address] = a

    def connect_wired(self, a: str, b: str, latency: float = 0.001) -> None:
        """Lossless wired link (the BR's TCP-tunneled UART + Ethernet)."""
        node_a, node_b = self.nodes[a], self.nodes[b]
        node_a.add_wired_neighbour(node_b.address, node_b, latency)
        node_b.add_wired_neighbour(node_a.address, node_a, latency)

    def set_route(self, node: str, dst: str, via: str) -> None:
        self.nodes[node].set_route(self.nodes[dst].address, self.nodes[via].address)

    def set_default_route(self, node: str, via: str) -> None:
        self.nodes[node].default_route = self.nodes[via].address


@dataclass
class LinearTopology:
    """Clients behind a chain of wireless hops ending at the sink.

    ``relays`` is ordered client-side first; it is empty for a one-hop
    topology where the clients talk to the border router directly. The
    paper's Figure 2 deployment (C1, C2 → P → BR → S) is the two-hop
    instance with a single relay.
    """

    network: Network
    clients: List[Node]
    relays: List[Node]
    border_router: Node
    resolver_host: Node

    @property
    def forwarder(self) -> Node:
        """The node the clients attach to (proxy placement point)."""
        return self.relays[0] if self.relays else self.border_router

    @property
    def hops(self) -> int:
        """Wireless hops between a client and the border router."""
        return len(self.relays) + 1

    @property
    def sniffer(self) -> Sniffer:
        return self.network.sniffer

    def links_at_hop(self, distance: int) -> List[tuple]:
        """Radio links at *distance* wireless hops from the sink (BR).

        Distance 1 is the bottleneck link into the border router;
        distance ``hops`` is the outermost client links.
        """
        chain = [*self.relays, self.border_router]
        hops = len(chain)
        if distance < 1 or distance > hops:
            return []
        if distance == hops:
            attach = chain[0]
            return [(client.name, attach.name) for client in self.clients]
        index = hops - distance - 1
        return [(chain[index].name, chain[index + 1].name)]

    def frames_at_hop(self, distance: int) -> int:
        return sum(
            self.sniffer.frame_count(a, b) for a, b in self.links_at_hop(distance)
        )

    def bytes_at_hop(self, distance: int) -> int:
        return sum(
            self.sniffer.bytes_on_link(a, b) for a, b in self.links_at_hop(distance)
        )

    # -- the Figure 10 accounting views -------------------------------------

    def client_proxy_frames(self) -> int:
        """Frames on the outermost links (clients ↔ first relay)."""
        return self.frames_at_hop(self.hops)

    def proxy_sink_frames(self) -> int:
        """Frames on the 1-hop-distance bottleneck into the BR."""
        return self.frames_at_hop(1)

    def client_proxy_bytes(self) -> int:
        return self.bytes_at_hop(self.hops)

    def proxy_sink_bytes(self) -> int:
        return self.bytes_at_hop(1)


#: Backwards-compatible name: the Figure 2 topology is a two-hop
#: :class:`LinearTopology`.
Figure2Topology = LinearTopology


def build_linear_topology(
    sim: Simulator,
    hops: int = 2,
    clients: int = 2,
    loss: float = 0.0,
    l2_retries: int = 3,
    wired_tail: bool = True,
    capture: str = "records",
) -> LinearTopology:
    """Construct a linear multi-hop topology.

    Clients reach the resolver host via ``hops - 1`` relay nodes and the
    border router (all radio hops), then — when *wired_tail* is true —
    a wired BR↔host link. With ``wired_tail=False`` the border router
    itself hosts the resolver (an all-wireless deployment). Static
    routes model a converged RPL DODAG. *capture* picks the frame
    observer (see :class:`Network`).
    """
    if hops < 1:
        raise ValueError(f"need at least one wireless hop, got {hops}")
    if clients < 1:
        raise ValueError(f"need at least one client, got {clients}")
    network = Network(sim, l2_retries=l2_retries, capture=capture)
    client_nodes = [network.add_node(f"c{i + 1}") for i in range(clients)]
    relay_names = (
        ["forwarder"] if hops == 2 else [f"fwd{i + 1}" for i in range(hops - 1)]
    )
    relays = [network.add_node(name) for name in relay_names]
    border_router = network.add_node("br")

    # Radio chain: clients → relays… → border router.
    chain_names = [*relay_names, "br"]
    for client in client_nodes:
        network.connect_radio(client.name, chain_names[0], loss=loss)
    for near, far in zip(chain_names, chain_names[1:]):
        network.connect_radio(near, far, loss=loss)

    if wired_tail:
        host = network.add_node("host", wireless=False)
        network.connect_wired("br", "host")
    else:
        host = border_router

    # Upward default routes along the chain; downward per-client routes.
    upstream = [*chain_names] + (["host"] if wired_tail else [])
    for client in client_nodes:
        network.set_default_route(client.name, chain_names[0])
    for near, far in zip(upstream, upstream[1:]):
        network.set_default_route(near, far)
    if wired_tail:
        network.set_default_route("host", "br")

    # Downward routes: each node on the path routes to every client via
    # the next node toward the clients.
    downstream = (["host"] if wired_tail else []) + ["br", *reversed(relay_names)]
    for client in client_nodes:
        for node_name, via in zip(downstream, downstream[1:]):
            network.set_route(node_name, client.name, via)
        network.set_route(downstream[-1], client.name, client.name)

    return LinearTopology(
        network=network,
        clients=client_nodes,
        relays=relays,
        border_router=border_router,
        resolver_host=host,
    )


def build_figure2_topology(
    sim: Simulator,
    clients: int = 2,
    loss: float = 0.0,
    l2_retries: int = 3,
) -> LinearTopology:
    """Construct the two-wireless-hop topology of Figure 2.

    Clients reach the resolver host via the forwarder (radio hop), the
    border router (radio hop), and a wired BR↔host link.
    """
    return build_linear_topology(
        sim, hops=2, clients=clients, loss=loss, l2_retries=l2_retries,
    )
