"""A simulated IPv6/6LoWPAN node with UDP sockets and static routing."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.lowpan import LowpanAdaptation, MacFrame

#: IEEE 802.15.4 broadcast address (16-bit 0xFFFF, widened here).
BROADCAST_MAC = 0xFFFF

#: IANA dynamic/private port range used for ephemeral allocation.
EPHEMERAL_PORT_RANGE = (49152, 65535)
from repro.net.ipv6 import Ipv6Packet, canonical_address, is_multicast
from repro.net.udp import UdpDatagram
from repro.sim.core import Simulator
from repro.sim.medium import RadioMedium


class StackError(Exception):
    """Raised on stack misconfiguration (no route, port in use, ...)."""


class UdpSocket:
    """A bound UDP port on a node.

    Attributes
    ----------
    on_datagram:
        Callback ``(src_addr, src_port, payload, metadata)`` invoked for
        every datagram delivered to this port.
    """

    def __init__(self, node: "Node", port: int) -> None:
        self.node = node
        self.port = port
        self.on_datagram: Optional[Callable[[str, int, bytes, dict], None]] = None

    def sendto(
        self,
        payload: bytes,
        dst_addr: str,
        dst_port: int,
        metadata: Optional[dict] = None,
    ) -> None:
        """Send *payload* to ``dst_addr:dst_port``.

        *metadata* is carried with the resulting frames for the sniffer
        (e.g. ``{"kind": "query"}``).
        """
        datagram = UdpDatagram(self.port, dst_port, payload)
        packet = Ipv6Packet(
            self.node.address,
            dst_addr,
            datagram.encode(self.node.address, dst_addr),
        )
        self.node.send_packet(packet, dict(metadata or {}))

    def close(self) -> None:
        self.node._sockets.pop(self.port, None)


class Node:
    """One network node: radio or wired attachment, routing, UDP."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        address: str,
        mac: int,
        medium: Optional[RadioMedium] = None,
    ) -> None:
        self.name = name
        self.sim = sim
        self.address = address
        self.mac = mac
        self.medium = medium
        self.lowpan = LowpanAdaptation(mac)
        self._sockets: Dict[int, UdpSocket] = {}
        #: dst address -> next hop address (static RPL stand-in).
        self.routes: Dict[str, str] = {}
        self.default_route: Optional[str] = None
        #: neighbour address -> (is_wireless, mac or peer node)
        self._neighbours: Dict[str, Tuple[bool, object]] = {}
        self._ephemeral_port = EPHEMERAL_PORT_RANGE[0]
        #: Multicast groups this node has joined (ff02::/16 link scope).
        self.multicast_groups: set = set()
        self.packets_forwarded = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        if medium is not None:
            medium.register(name, self._receive_frame)

    # -- configuration ---------------------------------------------------

    def add_radio_neighbour(self, address: str, mac: int) -> None:
        self._neighbours[address] = (True, mac)

    def add_wired_neighbour(self, address: str, peer: "Node", latency: float) -> None:
        self._neighbours[address] = (False, (peer, latency))

    def set_route(self, dst_addr: str, next_hop_addr: str) -> None:
        self.routes[dst_addr] = next_hop_addr

    def join_group(self, group_addr: str) -> None:
        """Subscribe to a link-local multicast group."""
        if not is_multicast(group_addr):
            raise StackError(f"{group_addr} is not a multicast address")
        self.multicast_groups.add(canonical_address(group_addr))

    def bind(self, port: int = 0) -> UdpSocket:
        """Bind a UDP socket; port 0 picks an ephemeral port."""
        if port == 0:
            port = self._allocate_ephemeral_port()
        if port in self._sockets:
            raise StackError(f"port {port} already bound on {self.name}")
        socket = UdpSocket(self, port)
        self._sockets[port] = socket
        return socket

    def _allocate_ephemeral_port(self) -> int:
        """Next free port in the dynamic range, wrapping at the top."""
        low, high = EPHEMERAL_PORT_RANGE
        span = high - low + 1
        for _ in range(span):
            port = self._ephemeral_port
            self._ephemeral_port = low + (port + 1 - low) % span
            if port not in self._sockets:
                return port
        raise StackError(f"{self.name}: ephemeral ports exhausted")

    # -- sending / forwarding ----------------------------------------------

    def _next_hop(self, dst_addr: str) -> str:
        if dst_addr in self._neighbours:
            return dst_addr
        next_hop = self.routes.get(dst_addr, self.default_route)
        if next_hop is None:
            raise StackError(f"{self.name}: no route to {dst_addr}")
        return next_hop

    def send_packet(self, packet: Ipv6Packet, metadata: dict) -> None:
        """Route *packet* out of this node (also used when forwarding)."""
        if packet.dst == self.address:
            self._deliver(packet, metadata)
            return
        if is_multicast(packet.dst):
            self._send_multicast(packet, metadata)
            return
        next_hop = self._next_hop(packet.dst)
        wireless, info = self._neighbours[next_hop]
        if wireless:
            if self.medium is None:
                raise StackError(f"{self.name} has no radio")
            next_mac = info
            frames = self.lowpan.packet_to_frames(packet, next_mac)
            neighbour_name = self._neighbour_name(next_hop)
            # One defensive copy per packet per hop; the fragments of a
            # packet share it (nothing downstream mutates metadata).
            frame_metadata = dict(metadata)
            for frame in frames:
                self.medium.transmit(
                    self.name, neighbour_name, frame.encode(), frame_metadata
                )
        else:
            peer, latency = info
            self.sim.schedule(latency, peer._receive_packet, packet, dict(metadata))

    def _send_multicast(self, packet: Ipv6Packet, metadata: dict) -> None:
        """Broadcast a link-scope multicast packet to all neighbours."""
        # Loopback first: members on this node receive the packet even
        # when there is no radio to broadcast it on (wired-only nodes).
        member = str(packet.dst) in self.multicast_groups
        if member:
            self._deliver(packet, metadata)
        if self.medium is None:
            if member:
                return
            raise StackError(f"{self.name} has no radio for multicast")
        frames = self.lowpan.packet_to_frames(packet, BROADCAST_MAC)
        for frame in frames:
            self.medium.broadcast(self.name, frame.encode(), dict(metadata))

    def _neighbour_name(self, address: str) -> str:
        # Radio interfaces are registered under node names; the network
        # object fills this mapping in.
        name = self._neighbour_names.get(address)
        if name is None:
            raise StackError(f"{self.name}: unknown neighbour {address}")
        return name

    _neighbour_names: Dict[str, str]

    # -- receiving ------------------------------------------------------------

    def _receive_frame(self, src_name: str, frame_bytes: bytes, metadata: dict) -> None:
        frame = MacFrame.decode(frame_bytes)
        if frame.dst != self.mac and frame.dst != BROADCAST_MAC:
            return  # not for us (promiscuous frames ignored)
        packet = self.lowpan.frame_to_packet(frame, self.sim.now)
        if packet is None:
            return  # awaiting more fragments
        self._receive_packet(packet, metadata)

    def _receive_packet(self, packet: Ipv6Packet, metadata: dict) -> None:
        if packet.dst == self.address:
            self._deliver(packet, metadata)
            return
        if is_multicast(packet.dst):
            # Link-scope multicast is never forwarded; deliver only to
            # joined groups.
            if str(packet.dst) in self.multicast_groups:
                self._deliver(packet, metadata)
            return
        # Forward.
        if packet.hop_limit <= 1:
            self.packets_dropped += 1
            return
        self.packets_forwarded += 1
        self.send_packet(packet.hop_decremented(), metadata)

    def _deliver(self, packet: Ipv6Packet, metadata: dict) -> None:
        try:
            datagram = UdpDatagram.decode(packet.payload)
        except ValueError:
            self.packets_dropped += 1
            return
        socket = self._sockets.get(datagram.dst_port)
        if socket is None or socket.on_datagram is None:
            self.packets_dropped += 1
            return
        self.packets_delivered += 1
        socket.on_datagram(packet.src, datagram.src_port, datagram.payload, metadata)
