"""CoAP substrate (RFC 7252) with the extensions DoC relies on.

Implemented here:

* the 4-byte-header message codec with delta-encoded options,
* methods GET/POST/PUT/DELETE plus FETCH/PATCH/iPATCH (RFC 8132),
* block-wise transfer options Block1/Block2 (RFC 7959),
* the freshness/validation cache model (Max-Age, ETag, 2.03 Valid),
* the reliability layer (CON/ACK, exponential back-off, RFC 7252 §4.2),
* a caching forward proxy (Proxy-Uri handling),
* a URI-Template processor (RFC 6570 level 1) for GET-based DoC.

The client/server endpoints are transport-agnostic: they talk to any
object with a datagram ``send`` and a receive callback, which is how
plain UDP, DTLS, and the simulator all plug in underneath.
"""

from .codes import Code, CodeClass
from .options import ContentFormat, OptionDef, OptionNumber, encode_options, decode_options
from .message import CoapMessage, CoapMessageError, MessageType
from .blockwise import Block, BlockError
from .cache import CoapCache, CacheKey, cache_key_for
from .reliability import ReliabilityParams, TransmissionState
from .uri import UriTemplate, base64url_decode, base64url_encode

__all__ = [
    "Block",
    "BlockError",
    "CacheKey",
    "Code",
    "CodeClass",
    "CoapCache",
    "CoapMessage",
    "CoapMessageError",
    "ContentFormat",
    "MessageType",
    "OptionDef",
    "OptionNumber",
    "ReliabilityParams",
    "TransmissionState",
    "UriTemplate",
    "base64url_decode",
    "base64url_encode",
    "cache_key_for",
    "decode_options",
    "encode_options",
]
