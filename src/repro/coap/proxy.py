"""CoAP forward proxy with response cache (RFC 7252 §5.7).

The paper's forwarder node *P* (Figure 2) runs this proxy in the
"caching CoAP proxy" scenarios: clients address their DoC requests to
the proxy with Uri-Host naming the origin; the proxy serves fresh
cached responses, revalidates stale entries with the origin using the
entry's ETag (receiving 2.03 Valid on success), and otherwise forwards
and caches. The proxy is DoC-agnostic: it treats the DNS payload as
opaque bytes, which is exactly why DoC must make equal queries
byte-identical (ID zeroing) to benefit.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.sim.clock import Clock

from .cache import CoapCache
from .codes import Code
from .endpoint import CoapClient, CoapServer
from .message import CoapMessage
from .options import OptionNumber
from .reliability import ReliabilityParams


class ForwardProxy:
    """A caching CoAP forward proxy between two sockets.

    Parameters
    ----------
    sim:
        Event loop.
    server_socket:
        Socket facing the clients.
    client_socket:
        Socket facing the origin server.
    origin:
        ``(address, port)`` of the origin CoAP server.
    cache_entries:
        Capacity of the proxy cache (Table 6: 50 on the proxy); 0
        disables caching entirely — the proxy degrades to an opaque
        forwarder (the "no proxy cache" placement of Section 6.1).
    """

    def __init__(
        self,
        sim: Clock,
        server_socket,
        client_socket,
        origin: Tuple[str, int],
        cache_entries: int = 50,
        params: ReliabilityParams = ReliabilityParams(),
    ) -> None:
        self.sim = sim
        self.origin = origin
        self.cache: Optional[CoapCache] = (
            CoapCache(cache_entries) if cache_entries > 0 else None
        )
        self.server = CoapServer(sim, server_socket, params)
        self.upstream = CoapClient(sim, client_socket, params)
        self.server.default_handler = self._handle
        self.requests_served_from_cache = 0
        self.requests_revalidated = 0
        self.requests_forwarded = 0

    def _handle(self, request: CoapMessage, respond, metadata: dict) -> None:
        now = self.sim.now
        if self.cache is None:
            fresh, entry = None, None
        else:
            fresh, entry = self.cache.lookup(request, now)
        if fresh is not None:
            self.requests_served_from_cache += 1
            metadata["cache"] = "proxy-hit"
            # RFC 7252 §5.7: a fresh entry matching a client-presented
            # ETag is confirmed with a small 2.03 Valid.
            etag = fresh.etag
            if etag is not None and etag in request.etags:
                valid = request.make_response(Code.VALID).with_option(
                    OptionNumber.ETAG, etag
                )
                max_age = fresh.max_age
                if max_age is not None:
                    valid = valid.with_uint_option(OptionNumber.MAX_AGE, max_age)
                respond(valid)
                return
            respond(fresh)
            return

        upstream_request = replace(request, token=b"", mid=0)
        if entry is not None and entry.etag is not None:
            # Stale: revalidate with the origin using the cached ETag.
            self.requests_revalidated += 1
            upstream_request = upstream_request.with_option(
                OptionNumber.ETAG, entry.etag
            )

            def on_validation(response: Optional[CoapMessage], error) -> None:
                if error is not None:
                    respond(request.make_response(Code.GATEWAY_TIMEOUT))
                    return
                if response.code == Code.VALID:
                    revived = self.cache.refresh(request, response, self.sim.now)
                    if revived is not None:
                        etag = revived.etag
                        if etag is not None and etag in request.etags:
                            # Pass the small confirmation through.
                            respond(response)
                            return
                        respond(revived)
                        return
                    # ETag changed (the DoH-like failure): fall through
                    # with whatever the origin sent.
                self._store_and_respond(request, response, respond)

            self.upstream.request(
                upstream_request, self.origin[0], self.origin[1],
                on_validation, metadata,
            )
            return

        self.requests_forwarded += 1

        def on_response(response: Optional[CoapMessage], error) -> None:
            if error is not None:
                respond(request.make_response(Code.GATEWAY_TIMEOUT))
                return
            self._store_and_respond(request, response, respond)

        self.upstream.request(
            upstream_request, self.origin[0], self.origin[1], on_response, metadata
        )

    def _store_and_respond(
        self, request: CoapMessage, response: CoapMessage, respond
    ) -> None:
        if response.code == Code.VALID:
            # 2.03 without a matching entry (e.g. ETag mismatch was
            # detected at the origin): nothing cacheable to serve.
            respond(response)
            return
        if self.cache is not None:
            self.cache.store(request, response, self.sim.now)
        respond(response)
