"""CoAP message codec (RFC 7252 §3) and convenience accessors."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .codes import CODE_BY_VALUE, Code
from .options import (
    OptionNumber,
    _decode_options,
    decode_uint,
    encode_options_into,
    encode_uint,
)

COAP_VERSION = 1
COAP_DEFAULT_PORT = 5683
COAPS_DEFAULT_PORT = 5684


class CoapMessageError(ValueError):
    """Raised on malformed CoAP messages."""


class MessageType(enum.IntEnum):
    """The four CoAP message types."""

    CON = 0
    NON = 1
    ACK = 2
    RST = 3


# Decode-path lookup tables: IntEnum constructors cost ~1 µs per call,
# a dict hit is ~20x cheaper and the value sets are tiny and fixed.
_MESSAGE_TYPE_BY_VALUE = {int(member): member for member in MessageType}
_CODE_BY_VALUE = CODE_BY_VALUE


@dataclass(frozen=True, slots=True)
class CoapMessage:
    """A CoAP message.

    Options are stored as a tuple of ``(number, raw_value)`` pairs in
    wire order; typed accessors are provided for the options DoC uses.
    """

    mtype: MessageType = MessageType.CON
    code: Code = Code.EMPTY
    mid: int = 0
    token: bytes = b""
    options: Tuple[Tuple[int, bytes], ...] = ()
    payload: bytes = b""

    # -- option helpers ---------------------------------------------------

    def option_values(self, number: int) -> List[bytes]:
        return [value for num, value in self.options if num == number]

    def option(self, number: int) -> Optional[bytes]:
        values = self.option_values(number)
        if not values:
            return None
        return values[0]

    def uint_option(self, number: int) -> Optional[int]:
        value = self.option(number)
        if value is None:
            return None
        return decode_uint(value)

    def with_option(self, number: int, value: bytes) -> "CoapMessage":
        """Copy with one more option appended (kept sorted on encode)."""
        return CoapMessage(
            self.mtype, self.code, self.mid, self.token,
            self.options + ((number, value),), self.payload,
        )

    def with_uint_option(self, number: int, value: int) -> "CoapMessage":
        return self.with_option(number, encode_uint(value))

    def without_option(self, number: int) -> "CoapMessage":
        return CoapMessage(
            self.mtype, self.code, self.mid, self.token,
            tuple((n, v) for n, v in self.options if n != number),
            self.payload,
        )

    def replace_uint_option(self, number: int, value: int) -> "CoapMessage":
        return self.without_option(number).with_uint_option(number, value)

    # Typed accessors for frequently used options --------------------------

    @property
    def content_format(self) -> Optional[int]:
        return self.uint_option(OptionNumber.CONTENT_FORMAT)

    @property
    def max_age(self) -> Optional[int]:
        return self.uint_option(OptionNumber.MAX_AGE)

    @property
    def etag(self) -> Optional[bytes]:
        return self.option(OptionNumber.ETAG)

    @property
    def etags(self) -> List[bytes]:
        """All ETag options (requests may carry several for validation)."""
        return self.option_values(OptionNumber.ETAG)

    @property
    def uri_path(self) -> str:
        return "/" + "/".join(
            value.decode("utf-8", "replace")
            for value in self.option_values(OptionNumber.URI_PATH)
        )

    @property
    def uri_queries(self) -> List[str]:
        return [
            value.decode("utf-8", "replace")
            for value in self.option_values(OptionNumber.URI_QUERY)
        ]

    def with_uri_path(self, path: str) -> "CoapMessage":
        message = self
        for segment in path.strip("/").split("/"):
            if segment:
                message = message.with_option(
                    OptionNumber.URI_PATH, segment.encode("utf-8")
                )
        return message

    # -- wire format -------------------------------------------------------

    def encode(self) -> bytes:
        if not 0 <= self.mid <= 0xFFFF:
            raise CoapMessageError("message ID out of range")
        token = self.token
        if len(token) > 8:
            raise CoapMessageError("token longer than 8 bytes")
        # One buffer end to end: header, token, options, and payload
        # are appended in place (no per-section intermediates).
        out = bytearray(
            (
                (COAP_VERSION << 6) | (self.mtype << 4) | len(token),
                int(self.code),
                self.mid >> 8,
                self.mid & 0xFF,
            )
        )
        out += token
        encode_options_into(out, self.options)
        if self.payload:
            out += b"\xff"
            out += self.payload
        return bytes(out)

    @classmethod
    def decode(cls, data) -> "CoapMessage":
        """Parse a CoAP message from ``bytes | memoryview``.

        The input is only read (never mutated); the token, option
        values, and payload are each materialised to owned ``bytes``
        exactly once, at the point they are stored on the message.
        """
        size = len(data)
        if size < 4:
            raise CoapMessageError("message shorter than header")
        first = data[0]
        version = first >> 6
        if version != COAP_VERSION:
            raise CoapMessageError(f"unsupported CoAP version {version}")
        mtype = _MESSAGE_TYPE_BY_VALUE[(first >> 4) & 0x3]
        token_length = first & 0x0F
        if token_length > 8:
            raise CoapMessageError("token length 9-15 is reserved")
        code = _CODE_BY_VALUE.get(data[1])
        if code is None:
            raise CoapMessageError(f"unknown code 0x{data[1]:02x}")
        mid = (data[2] << 8) | data[3]
        if 4 + token_length > size:
            raise CoapMessageError("truncated token")
        token = bytes(data[4 : 4 + token_length]) if token_length else b""
        options, payload_offset = _decode_options(data, 4 + token_length)
        # Single boundary materialisation: everything after the 0xFF
        # marker becomes the owned payload in one copy (empty-payload
        # messages share the b"" singleton instead of allocating).
        payload = bytes(data[payload_offset:]) if payload_offset < size else b""
        if code is Code.EMPTY and (token or options or payload):
            raise CoapMessageError("empty message with content")
        return cls(mtype, code, mid, token, options, payload)

    # -- message factories -------------------------------------------------

    @classmethod
    def request(
        cls,
        code: Code,
        path: str = "",
        *,
        mtype: MessageType = MessageType.CON,
        mid: int = 0,
        token: bytes = b"",
        payload: bytes = b"",
        confirmable: bool = True,
    ) -> "CoapMessage":
        if not code.is_request:
            raise CoapMessageError(f"{code!r} is not a request code")
        message = cls(
            mtype=mtype if confirmable else MessageType.NON,
            code=code,
            mid=mid,
            token=token,
            payload=payload,
        )
        if path:
            message = message.with_uri_path(path)
        return message

    def make_response(
        self,
        code: Code,
        *,
        payload: bytes = b"",
        piggybacked: bool = True,
    ) -> "CoapMessage":
        """Build a response matching this request's token.

        Piggybacked responses ride on the ACK (same MID); separate
        responses get a fresh CON/NON exchange.
        """
        if piggybacked and self.mtype == MessageType.CON:
            mtype, mid = MessageType.ACK, self.mid
        else:
            mtype, mid = MessageType.NON, self.mid
        return CoapMessage(
            mtype=mtype, code=code, mid=mid, token=self.token, payload=payload
        )

    def make_ack(self) -> "CoapMessage":
        """An empty ACK for this CON message."""
        return CoapMessage(mtype=MessageType.ACK, code=Code.EMPTY, mid=self.mid)

    def make_reset(self) -> "CoapMessage":
        return CoapMessage(mtype=MessageType.RST, code=Code.EMPTY, mid=self.mid)
