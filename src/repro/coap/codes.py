"""CoAP method and response codes (RFC 7252 §12.1, RFC 8132)."""

from __future__ import annotations

import enum


class CodeClass(enum.IntEnum):
    """The 3-bit class component of a CoAP code."""

    REQUEST = 0
    SUCCESS = 2
    CLIENT_ERROR = 4
    SERVER_ERROR = 5
    SIGNALING = 7


class Code(enum.IntEnum):
    """CoAP codes in their ``class.detail`` composite byte form."""

    EMPTY = 0x00

    # Methods (0.xx)
    GET = 0x01
    POST = 0x02
    PUT = 0x03
    DELETE = 0x04
    FETCH = 0x05
    PATCH = 0x06
    IPATCH = 0x07

    # Success (2.xx)
    CREATED = 0x41   # 2.01
    DELETED = 0x42   # 2.02
    VALID = 0x43     # 2.03
    CHANGED = 0x44   # 2.04
    CONTENT = 0x45   # 2.05
    CONTINUE = 0x5F  # 2.31 (RFC 7959)

    # Client errors (4.xx)
    BAD_REQUEST = 0x80
    UNAUTHORIZED = 0x81          # 4.01 (OSCORE Echo challenge)
    BAD_OPTION = 0x82
    FORBIDDEN = 0x83
    NOT_FOUND = 0x84
    METHOD_NOT_ALLOWED = 0x85
    NOT_ACCEPTABLE = 0x86
    REQUEST_ENTITY_INCOMPLETE = 0x88  # 4.08 (RFC 7959)
    PRECONDITION_FAILED = 0x8C
    REQUEST_ENTITY_TOO_LARGE = 0x8D
    UNSUPPORTED_CONTENT_FORMAT = 0x8F

    # Server errors (5.xx)
    INTERNAL_SERVER_ERROR = 0xA0
    NOT_IMPLEMENTED = 0xA1
    BAD_GATEWAY = 0xA2
    SERVICE_UNAVAILABLE = 0xA3
    GATEWAY_TIMEOUT = 0xA4
    PROXYING_NOT_SUPPORTED = 0xA5

    @property
    def code_class(self) -> int:
        return self >> 5

    @property
    def detail(self) -> int:
        return self & 0x1F

    @property
    def is_request(self) -> bool:
        return self.code_class == CodeClass.REQUEST and self != Code.EMPTY

    @property
    def is_response(self) -> bool:
        return self.code_class in (
            CodeClass.SUCCESS,
            CodeClass.CLIENT_ERROR,
            CodeClass.SERVER_ERROR,
        )

    @property
    def is_success(self) -> bool:
        return self.code_class == CodeClass.SUCCESS

    @property
    def dotted(self) -> str:
        """Presentation form, e.g. ``"2.05"``."""
        return f"{self.code_class}.{self.detail:02d}"


#: Decode-path lookup table: the ``Code(...)`` enum constructor costs
#: close to a microsecond per call; a dict hit is ~20x cheaper.
CODE_BY_VALUE = {int(member): member for member in Code}

#: Methods whose responses are cacheable when they arrive with a
#: freshness indication (RFC 7252 §5.6; FETCH per RFC 8132 §2.1 when
#: the response would be reusable for the same body). POST responses
#: are not cacheable — the root of the paper's Table 5.
CACHEABLE_METHODS = frozenset({Code.GET, Code.FETCH})

#: Methods that carry their application data in the request body.
BODY_METHODS = frozenset({Code.POST, Code.PUT, Code.FETCH, Code.PATCH, Code.IPATCH})
