"""CoAP options: registry, value codecs, and delta encoding (RFC 7252 §3.1).

Options are modelled as ``(number, bytes)`` pairs at the wire level with
helpers to convert uint/string values. The delta/extended-length scheme
is implemented exactly, since option overhead is part of every packet
size the paper reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Tuple


class OptionNumber(enum.IntEnum):
    """IANA CoAP option numbers used in this repository."""

    IF_MATCH = 1
    URI_HOST = 3
    ETAG = 4
    IF_NONE_MATCH = 5
    OBSERVE = 6
    URI_PORT = 7
    LOCATION_PATH = 8
    OSCORE = 9
    URI_PATH = 11
    CONTENT_FORMAT = 12
    MAX_AGE = 14
    URI_QUERY = 15
    ACCEPT = 17
    LOCATION_QUERY = 20
    BLOCK2 = 23
    BLOCK1 = 27
    SIZE2 = 28
    PROXY_URI = 35
    PROXY_SCHEME = 39
    SIZE1 = 60
    ECHO = 252
    NO_RESPONSE = 258

    @property
    def is_critical(self) -> bool:
        return bool(self & 1)

    @property
    def is_unsafe_to_forward(self) -> bool:
        return bool(self & 2)

    @property
    def is_no_cache_key(self) -> bool:
        """True if the option is NoCacheKey (RFC 7252 §5.4.2)."""
        return (self & 0x1E) == 0x1C


class ContentFormat(enum.IntEnum):
    """Content-Format registry entries relevant to DoC.

    ``DNS_MESSAGE`` is the ``application/dns-message`` format registered
    by draft-ietf-core-dns-over-coap; ``DNS_CBOR`` stands for the
    compressed ``application/dns+cbor`` format of Section 7
    (draft-lenders-dns-cbor).
    """

    TEXT_PLAIN = 0
    LINK_FORMAT = 40
    OCTET_STREAM = 42
    CBOR = 60
    DNS_MESSAGE = 553
    DNS_CBOR = 554


@dataclass(frozen=True)
class OptionDef:
    """Static properties of an option (for validation and tooling)."""

    number: int
    name: str
    repeatable: bool
    min_length: int
    max_length: int


_REGISTRY = {
    OptionNumber.IF_MATCH: OptionDef(1, "If-Match", True, 0, 8),
    OptionNumber.URI_HOST: OptionDef(3, "Uri-Host", False, 1, 255),
    OptionNumber.ETAG: OptionDef(4, "ETag", True, 1, 8),
    OptionNumber.IF_NONE_MATCH: OptionDef(5, "If-None-Match", False, 0, 0),
    OptionNumber.OBSERVE: OptionDef(6, "Observe", False, 0, 3),
    OptionNumber.URI_PORT: OptionDef(7, "Uri-Port", False, 0, 2),
    OptionNumber.OSCORE: OptionDef(9, "OSCORE", False, 0, 255),
    OptionNumber.URI_PATH: OptionDef(11, "Uri-Path", True, 0, 255),
    OptionNumber.CONTENT_FORMAT: OptionDef(12, "Content-Format", False, 0, 2),
    OptionNumber.MAX_AGE: OptionDef(14, "Max-Age", False, 0, 4),
    OptionNumber.URI_QUERY: OptionDef(15, "Uri-Query", True, 0, 255),
    OptionNumber.ACCEPT: OptionDef(17, "Accept", False, 0, 2),
    OptionNumber.BLOCK2: OptionDef(23, "Block2", False, 0, 3),
    OptionNumber.BLOCK1: OptionDef(27, "Block1", False, 0, 3),
    OptionNumber.SIZE2: OptionDef(28, "Size2", False, 0, 4),
    OptionNumber.PROXY_URI: OptionDef(35, "Proxy-Uri", False, 1, 1034),
    OptionNumber.PROXY_SCHEME: OptionDef(39, "Proxy-Scheme", False, 1, 255),
    OptionNumber.SIZE1: OptionDef(60, "Size1", False, 0, 4),
    OptionNumber.ECHO: OptionDef(252, "Echo", False, 1, 40),
}


def option_def(number: int) -> OptionDef | None:
    """Look up the registry entry for *number*, if known."""
    try:
        return _REGISTRY[OptionNumber(number)]
    except ValueError:
        return None


class OptionError(ValueError):
    """Raised on malformed option encodings."""


def encode_uint(value: int) -> bytes:
    """Encode a CoAP uint option value (shortest form; 0 is empty)."""
    if value < 0:
        raise OptionError("uint option value must be non-negative")
    if value == 0:
        return b""
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


def decode_uint(data: bytes) -> int:
    """Decode a CoAP uint option value."""
    return int.from_bytes(data, "big")


def _nibble(value: int) -> Tuple[int, bytes]:
    """Split delta/length into its 4-bit nibble and extension bytes."""
    if value < 13:
        return value, b""
    if value < 269:
        return 13, bytes([value - 13])
    if value < 65805:
        return 14, (value - 269).to_bytes(2, "big")
    raise OptionError("option delta/length too large")


def encode_options_into(
    out: bytearray, options: Iterable[Tuple[int, bytes]]
) -> None:
    """Serialise options into *out* (sorted by number, stable).

    Appending into the caller's buffer avoids the intermediate
    per-message allocation on the encode hot path; small deltas and
    lengths (< 13, the overwhelmingly common case) take the no-extension
    fast branch.
    """
    previous = 0
    ordered = list(options)
    if any(
        ordered[index][0] > ordered[index + 1][0]
        for index in range(len(ordered) - 1)
    ):
        ordered.sort(key=lambda item: item[0])
    for number, value in ordered:
        delta = number - previous
        length = len(value)
        if delta < 13 and length < 13:
            out.append((delta << 4) | length)
        else:
            delta_nibble, delta_ext = _nibble(delta)
            length_nibble, length_ext = _nibble(length)
            out.append((delta_nibble << 4) | length_nibble)
            out += delta_ext
            out += length_ext
        out += value
        previous = number


def encode_options(options: Iterable[Tuple[int, bytes]]) -> bytes:
    """Serialise options (sorted by number, stable for equal numbers)."""
    out = bytearray()
    encode_options_into(out, options)
    return bytes(out)


def decode_options(data, offset: int = 0) -> Tuple[List[Tuple[int, bytes]], int]:
    """Parse options starting at *offset*.

    *data* may be ``bytes`` or a ``memoryview`` and is never mutated;
    option values are materialised to owned ``bytes``. Returns the
    option list and the offset of the payload (just past the 0xFF
    payload marker if present, else end of data).
    """
    options, payload_offset = _decode_options(data, offset)
    return list(options), payload_offset


def _decode_options(data, offset: int = 0) -> Tuple[Tuple[Tuple[int, bytes], ...], int]:
    """:func:`decode_options` returning the tuple the hot path stores.

    ``CoapMessage.decode`` keeps options as a tuple; building it here
    skips a list-to-tuple copy per message.
    """
    options: List[Tuple[int, bytes]] = []
    number = 0
    size = len(data)
    append = options.append
    while offset < size:
        byte = data[offset]
        if byte == 0xFF:
            offset += 1
            if offset >= size:
                raise OptionError("payload marker with empty payload")
            return tuple(options), offset
        offset += 1
        delta = byte >> 4
        length = byte & 0x0F
        if delta >= 13:
            if delta == 13:
                if offset >= size:
                    raise OptionError("truncated option extension")
                delta = data[offset] + 13
                offset += 1
            elif delta == 14:
                if offset + 2 > size:
                    raise OptionError("truncated option extension")
                delta = int.from_bytes(data[offset : offset + 2], "big") + 269
                offset += 2
            else:
                raise OptionError("reserved option nibble 15")
        if length >= 13:
            if length == 13:
                if offset >= size:
                    raise OptionError("truncated option extension")
                length = data[offset] + 13
                offset += 1
            elif length == 14:
                if offset + 2 > size:
                    raise OptionError("truncated option extension")
                length = int.from_bytes(data[offset : offset + 2], "big") + 269
                offset += 2
            else:
                raise OptionError("reserved option nibble 15")
        number += delta
        end = offset + length
        if end > size:
            raise OptionError("truncated option value")
        append((number, bytes(data[offset:end])))
        offset = end
    return tuple(options), size
