"""Block-wise transfer (RFC 7959): the Block1/Block2 option value codec
plus helpers to slice bodies into blocks and reassemble them.

The paper's Appendix A/D evaluates block sizes 16, 32, and 64 bytes for
DoC queries (Block1) and responses (Block2); Figure 14 and Figure 15
are regenerated from this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .options import OptionError, decode_uint, encode_uint

#: Valid block sizes are powers of two from 16 to 1024 (SZX 0..6).
VALID_BLOCK_SIZES = tuple(16 << szx for szx in range(7))


class BlockError(ValueError):
    """Raised on invalid block option values or inconsistent transfers."""


@dataclass(frozen=True)
class Block:
    """A decoded Block1/Block2 option value: NUM / M / SZX.

    Attributes
    ----------
    number:
        Block number (NUM), counting blocks of the given size.
    more:
        The M bit — whether more blocks follow.
    size:
        Block size in bytes (16..1024, power of two).
    """

    number: int
    more: bool
    size: int

    def __post_init__(self) -> None:
        if self.size not in VALID_BLOCK_SIZES:
            raise BlockError(f"invalid block size {self.size}")
        if self.number < 0 or self.number >= 1 << 20:
            raise BlockError(f"block number {self.number} out of range")

    @property
    def szx(self) -> int:
        return VALID_BLOCK_SIZES.index(self.size)

    @property
    def offset(self) -> int:
        """Byte offset of this block within the full body."""
        return self.number * self.size

    def encode(self) -> bytes:
        return encode_uint((self.number << 4) | (int(self.more) << 3) | self.szx)

    @classmethod
    def decode(cls, data: bytes) -> "Block":
        if len(data) > 3:
            raise BlockError("block option longer than 3 bytes")
        value = decode_uint(data)
        szx = value & 0x7
        if szx == 7:
            raise BlockError("SZX 7 is reserved")
        return cls(number=value >> 4, more=bool(value & 0x8), size=16 << szx)

    def __str__(self) -> str:  # matches the paper's n/m/s notation
        return f"{self.number}/{int(self.more)}/{self.size}"


def split_body(body: bytes, size: int) -> List[bytes]:
    """Slice *body* into blocks of *size* bytes (last may be shorter)."""
    if size not in VALID_BLOCK_SIZES:
        raise BlockError(f"invalid block size {size}")
    if not body:
        return [b""]
    return [body[i : i + size] for i in range(0, len(body), size)]


def block_for(body: bytes, number: int, size: int) -> tuple:
    """Return ``(Block, chunk)`` for block *number* of *body*."""
    blocks = split_body(body, size)
    if number >= len(blocks):
        raise BlockError(f"block {number} beyond body of {len(blocks)} blocks")
    more = number < len(blocks) - 1
    return Block(number, more, size), blocks[number]


class BlockAssembler:
    """Reassembles a body from in-order block transfers.

    RFC 7959 requires blocks to arrive in order within one transfer
    (each request names the next block); out-of-order or size-switched
    continuations restart per §2.5 semantics here simplified to an
    error, which the endpoints translate to 4.08.
    """

    def __init__(self) -> None:
        self._chunks: List[bytes] = []
        self._size: Optional[int] = None
        self._complete = False

    @property
    def complete(self) -> bool:
        return self._complete

    def add(self, block: Block, chunk: bytes) -> bool:
        """Add one block; returns True when the body is complete."""
        if self._complete:
            raise BlockError("transfer already complete")
        if self._size is None:
            if block.number != 0:
                raise BlockError("transfer must start at block 0")
            self._size = block.size
        elif block.size != self._size:
            raise BlockError("block size changed mid-transfer")
        if block.number != len(self._chunks):
            raise BlockError(
                f"expected block {len(self._chunks)}, got {block.number}"
            )
        if block.more and len(chunk) != block.size:
            raise BlockError("non-final block must be full-sized")
        self._chunks.append(chunk)
        if not block.more:
            self._complete = True
        return self._complete

    def body(self) -> bytes:
        if not self._complete:
            raise BlockError("transfer incomplete")
        return b"".join(self._chunks)

    def reset(self) -> None:
        self._chunks.clear()
        self._size = None
        self._complete = False
