"""CoAP message-layer reliability (RFC 7252 §4.2).

Confirmable messages are retransmitted with binary exponential back-off:
the initial timeout is drawn uniformly from
``[ACK_TIMEOUT, ACK_TIMEOUT * ACK_RANDOM_FACTOR]`` and doubles up to
``MAX_RETRANSMIT`` times. The paper leans on this algorithm twice: its
DNS-over-UDP baseline adopts it for comparability (Appendix B), and the
gray retransmission regions of Figure 11 are exactly the cumulative
back-off windows computed by :meth:`ReliabilityParams.retransmission_window`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class ReliabilityParams:
    """RFC 7252 §4.8 transmission parameters."""

    ack_timeout: float = 2.0
    ack_random_factor: float = 1.5
    max_retransmit: int = 4
    nstart: int = 1

    @property
    def max_transmit_span(self) -> float:
        """Time from first transmission to the last retransmission."""
        return (
            self.ack_timeout
            * ((1 << self.max_retransmit) - 1)
            * self.ack_random_factor
        )

    @property
    def max_transmit_wait(self) -> float:
        """Time until a sender gives up on a confirmable exchange."""
        return (
            self.ack_timeout
            * ((1 << (self.max_retransmit + 1)) - 1)
            * self.ack_random_factor
        )

    def initial_timeout(self, rng: random.Random) -> float:
        """Draw the randomised initial ACK timeout."""
        return rng.uniform(
            self.ack_timeout, self.ack_timeout * self.ack_random_factor
        )

    def retransmission_window(self, attempt: int) -> Tuple[float, float]:
        """Earliest/latest offset of retransmission *attempt* (1-based).

        These are the boundaries of the gray areas in Figure 11.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        scale = (1 << attempt) - 1
        return (
            self.ack_timeout * scale,
            self.ack_timeout * self.ack_random_factor * scale,
        )


class TransmissionState:
    """Retransmission bookkeeping for one outstanding CON message."""

    def __init__(self, params: ReliabilityParams, rng: random.Random) -> None:
        self._params = params
        self.timeout = params.initial_timeout(rng)
        self.retransmissions = 0
        self.acknowledged = False

    @property
    def exhausted(self) -> bool:
        """True when MAX_RETRANSMIT retransmissions have been spent."""
        return self.retransmissions >= self._params.max_retransmit

    def register_timeout(self) -> bool:
        """Record a timeout; True if a retransmission should be sent.

        Doubles the timeout for the next attempt per §4.2.
        """
        if self.acknowledged or self.exhausted:
            return False
        self.retransmissions += 1
        self.timeout *= 2
        return True

    def acknowledge(self) -> None:
        self.acknowledged = True


def retransmission_offsets(
    params: ReliabilityParams, rng: random.Random
) -> List[float]:
    """Sampled retransmission time offsets for one exchange (no ACK).

    Useful for analytical plots: the offsets of all MAX_RETRANSMIT
    retransmissions relative to the initial transmission.
    """
    offsets = []
    timeout = params.initial_timeout(rng)
    elapsed = 0.0
    for _ in range(params.max_retransmit):
        elapsed += timeout
        offsets.append(elapsed)
        timeout *= 2
    return offsets
