"""CoAP endpoints: the message layer and request/response layer.

:class:`CoapClient` and :class:`CoapServer` implement RFC 7252's two
sub-layers over any datagram transport (a simulated UDP socket or a
DTLS session adapter):

* message layer — CON/ACK/RST exchange, deduplication, and the
  exponential back-off retransmission of §4.2 (the source of the gray
  regions in the paper's Figure 11);
* request/response layer — token matching, piggybacked and separate
  responses, and block-wise transfers (RFC 7959) in both directions.

The client can be given a :class:`repro.coap.cache.CoapCache` to act as
the paper's "CoAP client cache" configuration, including ETag
revalidation of stale entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.clock import Clock, Timer

from .blockwise import Block, BlockAssembler, block_for
from .cache import CoapCache
from .codes import Code
from .message import CoapMessage, CoapMessageError, MessageType
from .options import OptionNumber
from .reliability import ReliabilityParams, TransmissionState

#: How long (peer, MID) pairs are remembered for deduplication.
EXCHANGE_LIFETIME = 247.0


class CoapTimeoutError(Exception):
    """Raised (delivered via errback) when retransmissions are exhausted."""


@dataclass
class ClientEvent:
    """One client-side transmission/cache event (Figure 11 input)."""

    time: float
    kind: str          # "transmission" | "retransmission" | "cache_hit" | "validation"
    token: bytes
    mid: int


class _Exchange:
    """State of one outstanding request."""

    def __init__(
        self,
        request: CoapMessage,
        dst: Tuple[str, int],
        on_response: Callable[[Optional[CoapMessage], Optional[Exception]], None],
        metadata: dict,
    ) -> None:
        self.request = request
        self.dst = dst
        self.on_response = on_response
        self.metadata = metadata
        self.transmission: Optional[TransmissionState] = None
        self.timer: Optional[Timer] = None
        self.acknowledged = False
        self.block1_body: Optional[bytes] = None
        self.block1_number = 0
        self.block2_assembler: Optional[BlockAssembler] = None
        self.first_block_response: Optional[CoapMessage] = None
        self.done = False


class CoapClient:
    """The client role: request/response with reliability and block-wise.

    Parameters
    ----------
    sim:
        The runtime :class:`~repro.sim.clock.Clock` (timers and RNG) —
        a :class:`~repro.sim.core.Simulator` for simulated runs or an
        :class:`~repro.live.clock.AsyncioClock` for real sockets.
    socket:
        Object with ``sendto(payload, dst_addr, dst_port, metadata)``
        and an ``on_datagram`` callback attribute.
    cache:
        Optional CoAP response cache (the paper's client CoAP cache).
    block_size:
        When set, force block-wise transfer with this block size for
        request bodies (Block1) and ask for it in responses (Block2).
    """

    def __init__(
        self,
        sim: Clock,
        socket,
        params: ReliabilityParams = ReliabilityParams(),
        cache: Optional[CoapCache] = None,
        block_size: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.socket = socket
        self.params = params
        self.cache = cache
        self.block_size = block_size
        self.events: List[ClientEvent] = []
        self._exchanges: Dict[bytes, _Exchange] = {}
        self._next_mid = sim.rng.randrange(0x10000)
        self._next_token = sim.rng.randrange(1 << 32)
        socket.on_datagram = self._on_datagram

    # -- public API -----------------------------------------------------------

    def request(
        self,
        message: CoapMessage,
        dst_addr: str,
        dst_port: int,
        on_response: Callable[[Optional[CoapMessage], Optional[Exception]], None],
        metadata: Optional[dict] = None,
    ) -> bytes:
        """Issue *message*; ``on_response(response, error)`` fires once.

        Returns the token assigned to the exchange. Responses served
        from the local cache short-circuit the network entirely.
        """
        metadata = dict(metadata or {})
        token = self._claim_token()
        message = self._prepare(message, token)

        if self.cache is not None:
            served = self._try_cache(message, dst_addr, dst_port, on_response, metadata)
            if served:
                return token

        exchange = _Exchange(message, (dst_addr, dst_port), on_response, metadata)
        if self.block_size is not None and len(message.payload) > self.block_size:
            exchange.block1_body = message.payload
            message = self._block1_request(exchange, 0)
            exchange.request = message
        self._exchanges[token] = exchange
        self._transmit(exchange, first=True)
        return token

    # -- cache integration ------------------------------------------------------

    def _try_cache(
        self,
        message: CoapMessage,
        dst_addr: str,
        dst_port: int,
        on_response,
        metadata: dict,
    ) -> bool:
        assert self.cache is not None
        fresh, entry = self.cache.lookup(message, self.sim.now)
        if fresh is not None:
            self.events.append(
                ClientEvent(self.sim.now, "cache_hit", message.token, message.mid)
            )
            self.sim.schedule(0.0, on_response, fresh, None)
            return True
        if entry is not None and entry.etag is not None:
            # Stale entry: revalidate with the ETag.
            message = message.with_option(OptionNumber.ETAG, entry.etag)
            original = on_response

            def on_validated(response: Optional[CoapMessage], error):
                if response is not None and response.code == Code.VALID:
                    revived = self.cache.refresh(
                        message.without_option(OptionNumber.ETAG), response, self.sim.now
                    )
                    if revived is not None:
                        self.events.append(
                            ClientEvent(
                                self.sim.now, "validation", message.token, message.mid
                            )
                        )
                        original(revived, None)
                        return
                original(response, error)

            exchange = _Exchange(message, (dst_addr, dst_port), on_validated, metadata)
            self._exchanges[message.token] = exchange
            self._transmit(exchange, first=True)
            return True
        return False

    # -- internals ----------------------------------------------------------------

    def _claim_token(self) -> bytes:
        token = self._next_token.to_bytes(4, "big")
        self._next_token = (self._next_token + 1) & 0xFFFFFFFF
        return token

    def _claim_mid(self) -> int:
        mid = self._next_mid
        self._next_mid = (self._next_mid + 1) & 0xFFFF
        return mid

    def _prepare(self, message: CoapMessage, token: bytes) -> CoapMessage:
        from dataclasses import replace

        message = replace(message, token=token, mid=self._claim_mid())
        if (
            self.block_size is not None
            and OptionNumber.BLOCK2 not in [n for n, _ in message.options]
        ):
            # Ask the server to use our block size for the response.
            message = message.with_option(
                OptionNumber.BLOCK2, Block(0, False, self.block_size).encode()
            )
        return message

    def _block1_request(self, exchange: _Exchange, number: int) -> CoapMessage:
        from dataclasses import replace

        assert exchange.block1_body is not None
        block, chunk = block_for(exchange.block1_body, number, self.block_size)
        message = replace(
            exchange.request, payload=chunk, mid=self._claim_mid()
        ).without_option(OptionNumber.BLOCK1).with_option(
            OptionNumber.BLOCK1, block.encode()
        )
        exchange.block1_number = number
        return message

    def _transmit(self, exchange: _Exchange, first: bool) -> None:
        message = exchange.request
        self.events.append(
            ClientEvent(
                self.sim.now,
                "transmission" if first else "retransmission",
                message.token,
                message.mid,
            )
        )
        self.socket.sendto(
            message.encode(), exchange.dst[0], exchange.dst[1], exchange.metadata
        )
        if message.mtype == MessageType.CON:
            if first:
                exchange.transmission = TransmissionState(self.params, self.sim.rng)
            assert exchange.transmission is not None
            exchange.timer = self.sim.schedule(
                exchange.transmission.timeout, self._on_timeout, exchange
            )

    def _on_timeout(self, exchange: _Exchange) -> None:
        if exchange.done or exchange.acknowledged:
            return
        assert exchange.transmission is not None
        if exchange.transmission.register_timeout():
            self._transmit(exchange, first=False)
        else:
            self._fail(exchange, CoapTimeoutError("retransmissions exhausted"))

    def _fail(self, exchange: _Exchange, error: Exception) -> None:
        if exchange.done:
            return
        exchange.done = True
        self._exchanges.pop(exchange.request.token, None)
        exchange.on_response(None, error)

    def _on_datagram(self, src_addr: str, src_port: int, data: bytes, metadata: dict) -> None:
        try:
            message = CoapMessage.decode(data)
        except CoapMessageError:
            return

        if message.mtype == MessageType.ACK and message.code == Code.EMPTY:
            # Empty ACK: stop retransmitting, await separate response.
            for exchange in self._exchanges.values():
                if exchange.request.mid == message.mid:
                    self._stop_timer(exchange)
                    exchange.acknowledged = True
                    return
            return
        if message.mtype == MessageType.RST:
            for token, exchange in list(self._exchanges.items()):
                if exchange.request.mid == message.mid:
                    self._fail(exchange, CoapTimeoutError("reset by peer"))
            return
        if not message.code.is_response:
            return

        exchange = self._exchanges.get(message.token)
        if message.mtype == MessageType.CON:
            # Separate CON response: always ACK, even duplicates.
            ack = message.make_ack()
            self.socket.sendto(
                ack.encode(), src_addr, src_port, {"kind": "ack"}
            )
        if exchange is None or exchange.done:
            return
        self._stop_timer(exchange)
        exchange.acknowledged = True
        self._handle_response(exchange, message)

    def _stop_timer(self, exchange: _Exchange) -> None:
        if exchange.timer is not None:
            exchange.timer.cancel()
            exchange.timer = None

    def _handle_response(self, exchange: _Exchange, response: CoapMessage) -> None:
        # Block1 continuation (2.31 Continue).
        if response.code == Code.CONTINUE and exchange.block1_body is not None:
            next_number = exchange.block1_number + 1
            exchange.request = self._block1_request(exchange, next_number)
            exchange.transmission = None
            self._transmit(exchange, first=True)
            return

        # Block2 download.
        block2_data = response.option(OptionNumber.BLOCK2)
        if block2_data is not None:
            block = Block.decode(block2_data)
            if exchange.block2_assembler is None:
                exchange.block2_assembler = BlockAssembler()
                exchange.first_block_response = response
            exchange.block2_assembler.add(block, response.payload)
            if block.more:
                from dataclasses import replace

                # Continuation: same token, no body (RFC 7959 §3.3).
                next_request = replace(
                    exchange.request, mid=self._claim_mid(), payload=b""
                ).without_option(OptionNumber.BLOCK2).without_option(
                    OptionNumber.BLOCK1
                ).with_option(
                    OptionNumber.BLOCK2,
                    Block(block.number + 1, False, block.size).encode(),
                )
                exchange.request = next_request
                exchange.transmission = None
                exchange.acknowledged = False
                self._transmit(exchange, first=True)
                return
            # Complete: synthesise the full response.
            from dataclasses import replace

            first = exchange.first_block_response
            assert first is not None
            response = replace(
                first.without_option(OptionNumber.BLOCK2),
                payload=exchange.block2_assembler.body(),
            )

        exchange.done = True
        self._exchanges.pop(exchange.request.token, None)
        if self.cache is not None:
            key_request = exchange.request.without_option(OptionNumber.ETAG)
            if response.code == Code.VALID:
                pass  # refresh handled by the validation callback
            else:
                self.cache.store(key_request, response, self.sim.now)
        exchange.on_response(response, None)


ResourceHandler = Callable[
    [CoapMessage, Callable[[CoapMessage], None], dict], None
]


class CoapServer:
    """The server role: resources, dedup, separate responses, Block2.

    Handlers receive ``(request, respond, metadata)`` and must call
    ``respond(response_message)`` exactly once, synchronously or later
    (a later call produces an empty ACK + separate CON response, the
    behaviour a proxy needs while it forwards upstream).
    """

    def __init__(
        self,
        sim: Clock,
        socket,
        params: ReliabilityParams = ReliabilityParams(),
    ) -> None:
        self.sim = sim
        self.socket = socket
        self.params = params
        self._resources: Dict[str, ResourceHandler] = {}
        self.default_handler: Optional[ResourceHandler] = None
        #: (peer, mid) -> encoded reply, for deduplication.
        self._dedup: Dict[Tuple[str, int, int], bytes] = {}
        #: Block2 continuation state: full responses by cache key-ish token.
        self._block2_store: Dict[Tuple, CoapMessage] = {}
        self._block1_assembly: Dict[Tuple[str, int], BlockAssembler] = {}
        self._separate_pending: Dict[int, Callable[[], None]] = {}
        self._current_peer: Tuple[str, int] = ("", 0)
        self._next_mid = sim.rng.randrange(0x10000)
        socket.on_datagram = self._on_datagram

    def add_resource(self, path: str, handler: ResourceHandler) -> None:
        self._resources["/" + path.strip("/")] = handler

    # -- receive path -----------------------------------------------------------

    def _on_datagram(self, src_addr: str, src_port: int, data: bytes, metadata: dict) -> None:
        try:
            message = CoapMessage.decode(data)
        except CoapMessageError:
            return
        if message.mtype == MessageType.ACK or message.mtype == MessageType.RST:
            self._note_ack(message.mid)
            return
        if not message.code.is_request:
            return

        self._current_peer = (src_addr, src_port)
        dedup_key = (src_addr, src_port, message.mid)
        cached_reply = self._dedup.get(dedup_key)
        if cached_reply is not None:
            self.socket.sendto(cached_reply, src_addr, src_port, {"kind": "dup-reply"})
            return

        handler = self._resources.get(message.uri_path, self.default_handler)
        if handler is None:
            self._reply(
                message, src_addr, src_port,
                message.make_response(Code.NOT_FOUND), dedup_key, metadata,
            )
            return

        request, early_reply = self._apply_blockwise_request(message)
        if early_reply is not None:
            self._reply(message, src_addr, src_port, early_reply, dedup_key, metadata)
            return
        if request is None:
            return  # mid-assembly, 2.31 already sent via early_reply path

        served = self._serve_block2_continuation(message, src_addr, src_port, dedup_key, metadata)
        if served:
            return

        responded = {"sync": True, "done": False}

        def respond(response: CoapMessage) -> None:
            if responded["done"]:
                raise RuntimeError("respond() called twice")
            responded["done"] = True
            response = self._apply_blockwise_response(message, response)
            if responded["sync"]:
                self._reply(message, src_addr, src_port, response, dedup_key, metadata)
            else:
                self._send_separate(message, src_addr, src_port, response, metadata)

        handler(request, respond, metadata)
        if not responded["done"] and message.mtype == MessageType.CON:
            # Handler deferred: empty ACK now, separate response later.
            self.socket.sendto(
                message.make_ack().encode(), src_addr, src_port, {"kind": "ack"}
            )
        responded["sync"] = False

    # -- block-wise (server side) --------------------------------------------------

    def _apply_blockwise_request(self, message: CoapMessage):
        """Handle Block1 assembly; returns (complete_request, early_reply)."""
        block1_data = message.option(OptionNumber.BLOCK1)
        if block1_data is None:
            return message, None
        block = Block.decode(block1_data)
        key = (message.token.hex(), 1)
        assembler = self._block1_assembly.get(key)
        if assembler is None or block.number == 0:
            assembler = BlockAssembler()
            self._block1_assembly[key] = assembler
        try:
            complete = assembler.add(block, message.payload)
        except Exception:
            return None, message.make_response(Code.REQUEST_ENTITY_INCOMPLETE)
        if not complete:
            reply = message.make_response(Code.CONTINUE).with_option(
                OptionNumber.BLOCK1, block.encode()
            )
            return None, reply
        del self._block1_assembly[key]
        from dataclasses import replace

        full = replace(message, payload=assembler.body()).without_option(
            OptionNumber.BLOCK1
        )
        return full, None

    def _block2_key(self, message: CoapMessage, src_addr: str, src_port: int) -> Tuple:
        # Continuation requests keep the exchange token (RFC 7959 §3.3),
        # so the token identifies the stored full response.
        return (src_addr, src_port, message.token)

    def _serve_block2_continuation(
        self, message: CoapMessage, src_addr: str, src_port: int, dedup_key, metadata
    ) -> bool:
        block2_data = message.option(OptionNumber.BLOCK2)
        if block2_data is None:
            return False
        block = Block.decode(block2_data)
        if block.number == 0:
            return False
        key = self._block2_key(message, src_addr, src_port)
        full = self._block2_store.get(key)
        if full is None:
            self._reply(
                message, src_addr, src_port,
                message.make_response(Code.REQUEST_ENTITY_INCOMPLETE),
                dedup_key, metadata,
            )
            return True
        from dataclasses import replace

        try:
            blk, chunk = block_for(full.payload, block.number, block.size)
        except Exception:
            self._reply(
                message, src_addr, src_port,
                message.make_response(Code.BAD_OPTION), dedup_key, metadata,
            )
            return True
        piece = replace(
            full, payload=chunk, mid=message.mid, token=message.token,
            mtype=MessageType.ACK if message.mtype == MessageType.CON else MessageType.NON,
        ).without_option(OptionNumber.BLOCK2).with_option(
            OptionNumber.BLOCK2, blk.encode()
        )
        self._reply(message, src_addr, src_port, piece, dedup_key, metadata)
        return True

    def _apply_blockwise_response(
        self, request: CoapMessage, response: CoapMessage
    ) -> CoapMessage:
        """Slice large responses into block 0 when Block2 was requested."""
        block2_data = request.option(OptionNumber.BLOCK2)
        if block2_data is None or not response.code.is_success:
            return response
        preferred = Block.decode(block2_data)
        if len(response.payload) <= preferred.size:
            return response
        # Store the full response for continuations, send block 0.
        src_addr, src_port = self._current_peer
        key = self._block2_key(request, src_addr, src_port)
        self._block2_store[key] = response
        from dataclasses import replace

        blk, chunk = block_for(response.payload, 0, preferred.size)
        return replace(response, payload=chunk).with_option(
            OptionNumber.BLOCK2, blk.encode()
        )

    # -- send path ---------------------------------------------------------------

    def _reply(
        self,
        request: CoapMessage,
        src_addr: str,
        src_port: int,
        response: CoapMessage,
        dedup_key,
        metadata: dict,
    ) -> None:
        from dataclasses import replace

        self._current_peer = (src_addr, src_port)
        if request.mtype == MessageType.CON:
            response = replace(
                response, mtype=MessageType.ACK, mid=request.mid, token=request.token
            )
        else:
            response = replace(
                response, mtype=MessageType.NON, mid=request.mid, token=request.token
            )
        encoded = response.encode()
        self._dedup[dedup_key] = encoded
        self.sim.schedule(
            EXCHANGE_LIFETIME, self._dedup.pop, dedup_key, None
        )
        out_metadata = dict(metadata)
        out_metadata["kind"] = out_metadata.get("response_kind", "response")
        self.socket.sendto(encoded, src_addr, src_port, out_metadata)

    def _send_separate(
        self,
        request: CoapMessage,
        src_addr: str,
        src_port: int,
        response: CoapMessage,
        metadata: dict,
    ) -> None:
        from dataclasses import replace

        mid = self._next_mid
        self._next_mid = (self._next_mid + 1) & 0xFFFF
        response = replace(
            response, mtype=MessageType.CON, mid=mid, token=request.token
        )
        out_metadata = dict(metadata)
        out_metadata["kind"] = out_metadata.get("response_kind", "response")
        # Separate CON responses get their own (simple) retransmission.
        state = TransmissionState(self.params, self.sim.rng)
        encoded = response.encode()

        def send_and_arm() -> None:
            self.socket.sendto(encoded, src_addr, src_port, out_metadata)
            self.sim.schedule(state.timeout, maybe_retransmit)

        acked = {"done": False}

        def maybe_retransmit() -> None:
            if acked["done"]:
                return
            if state.register_timeout():
                send_and_arm()

        # Hook ACK detection: we watch for the ACK in _on_datagram via
        # a registry keyed by MID.
        self._separate_pending[mid] = lambda: acked.__setitem__("done", True)
        send_and_arm()

    def _note_ack(self, mid: int) -> None:
        callback = self._separate_pending.pop(mid, None)
        if callback is not None:
            callback()
