"""URI-Template processing (RFC 6570 level 1) and base64url coding.

DoC's GET method requires the client to expand a resource template such
as ``/dns?dns={dns}`` with the base64url-encoded DNS query (mirroring
DoH, RFC 8484 §4.1). The paper measures this template processor at
about 1 kByte of ROM on the device; here it is a small, strict parser
limited to simple string expansion — exactly what the draft requires.
"""

from __future__ import annotations

import base64
import re
from typing import Dict, List, Tuple

_VARIABLE = re.compile(r"\{(\??)([A-Za-z0-9_]+)\}")

#: Characters that never need percent-encoding in a query component.
_UNRESERVED = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-._~"
)


class UriTemplateError(ValueError):
    """Raised for unsupported or malformed templates."""


def _pct_encode(value: str) -> str:
    out: List[str] = []
    for char in value:
        if char in _UNRESERVED:
            out.append(char)
        else:
            out.extend(f"%{byte:02X}" for byte in char.encode("utf-8"))
    return "".join(out)


class UriTemplate:
    """A parsed URI template: simple ``{var}`` plus form-style ``{?var}``
    expansion (the two operators DoC resource templates need, e.g.
    ``/dns{?dns}`` as used by draft-ietf-core-dns-over-coap).

    >>> UriTemplate("/dns?dns={dns}").expand(dns="AAABAA")
    '/dns?dns=AAABAA'
    >>> UriTemplate("/dns{?dns}").expand(dns="AAABAA")
    '/dns?dns=AAABAA'
    """

    def __init__(self, template: str) -> None:
        self.template = template
        self.variables: List[str] = []
        for match in _VARIABLE.finditer(template):
            self.variables.append(match.group(2))
        if "{" in _VARIABLE.sub("", template) or "}" in _VARIABLE.sub("", template):
            raise UriTemplateError(f"malformed template {template!r}")
        if len(set(self.variables)) != len(self.variables):
            raise UriTemplateError("repeated variable in template")

    def expand(self, **values: str) -> str:
        """Expand the template; all variables must be supplied."""
        missing = [v for v in self.variables if v not in values]
        if missing:
            raise UriTemplateError(f"missing variables: {missing}")

        def substitute(match: "re.Match[str]") -> str:
            operator, name = match.group(1), match.group(2)
            encoded = _pct_encode(values[name])
            if operator == "?":
                return f"?{name}={encoded}"
            return encoded

        return _VARIABLE.sub(substitute, self.template)

    def split_expanded(self, **values: str) -> Tuple[List[str], List[str]]:
        """Expand and split into CoAP Uri-Path segments and Uri-Query items."""
        expanded = self.expand(**values)
        path, _, query = expanded.partition("?")
        segments = [seg for seg in path.split("/") if seg]
        queries = [q for q in query.split("&") if q] if query else []
        return segments, queries


def base64url_encode(data: bytes) -> str:
    """base64url without padding (RFC 4648 §5), as DoH/DoC GET requires."""
    return base64.urlsafe_b64encode(data).rstrip(b"=").decode("ascii")


def base64url_decode(text: str) -> bytes:
    """Inverse of :func:`base64url_encode` (re-adds padding)."""
    padding = -len(text) % 4
    return base64.urlsafe_b64decode(text + "=" * padding)
