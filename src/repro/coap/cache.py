"""CoAP response cache with freshness and validation (RFC 7252 §5.6).

This single implementation backs all three cache locations the paper
evaluates (Section 6.1): the client CoAP cache, and the forward proxy
cache. Its key properties drive the paper's results:

* **Cache key** — method, the cache-relevant options (Uri-Path/Query
  etc., excluding NoCacheKey options), and for FETCH the request payload
  (RFC 8132 §2). This is why DoC zeroes the DNS ID: equal queries must
  serialise to equal payloads to share an entry.
* **Freshness** — governed by Max-Age (default 60 s), decremented when a
  cached response is served, exactly the Max-Age aging in Figure 3.
* **Validation** — stale entries are kept; their ETag is offered on
  re-requests, and a 2.03 Valid refreshes the entry without re-sending
  the payload (the EOL-TTLs win in Figure 3, step 4).

The module is a thin adapter over :mod:`repro.cache`: it owns the CoAP
cache-key computation and the Max-Age/ETag semantics; storage, aging,
eviction (expired-first with LRU fallback), and the unified
:class:`~repro.cache.CacheStats` are the shared
:class:`~repro.cache.KeyedCache`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cache import CacheEntry as _BaseEntry
from repro.cache import CacheStats, EvictionPolicy, KeyedCache, LookupState

from .codes import CACHEABLE_METHODS, Code
from .message import CoapMessage
from .options import OptionNumber

__all__ = [
    "CacheStats",
    "CoapCache",
    "CoapCacheEntry",
    "DEFAULT_MAX_AGE",
    "cache_key_for",
]

#: RFC 7252 §5.10.5: default Max-Age when the option is absent.
DEFAULT_MAX_AGE = 60

CacheKey = Tuple[int, Tuple[Tuple[int, bytes], ...], bytes]


def cache_key_for(request: CoapMessage) -> Optional[CacheKey]:
    """Compute the cache key for *request*, or None if uncacheable.

    POST is not cacheable (Table 5); GET keys on the options only;
    FETCH additionally keys on the payload (its Content-Format is part
    of the options already).
    """
    if request.code not in CACHEABLE_METHODS:
        return None
    relevant = tuple(
        (number, value)
        for number, value in sorted(request.options)
        if not _excluded_from_cache_key(number)
    )
    payload = request.payload if request.code == Code.FETCH else b""
    return (int(request.code), relevant, payload)


def _excluded_from_cache_key(number: int) -> bool:
    # NoCacheKey options plus hop-by-hop/transfer options.
    if (number & 0x1E) == 0x1C:
        return True
    return number in (
        OptionNumber.BLOCK1,
        OptionNumber.BLOCK2,
        OptionNumber.ETAG,
        OptionNumber.ECHO,
    )


class CoapCacheEntry(_BaseEntry):
    """A cached response viewed with CoAP vocabulary."""

    @property
    def response(self) -> CoapMessage:
        return self.value

    @property
    def max_age(self) -> int:
        return int(self.lifetime)

    @property
    def etag(self) -> Optional[bytes]:
        return self.response.etag


class CoapCache:
    """Bounded CoAP response cache (client- or proxy-side).

    Parameters
    ----------
    capacity:
        Maximum entries; RIOT's ``CONFIG_NANOCOAP_CACHE_ENTRIES`` is 8
        on clients and 50 on the proxy (Table 6).
    """

    def __init__(self, capacity: int = 8) -> None:
        self._store = KeyedCache(
            capacity,
            policy=EvictionPolicy.EXPIRED_FIRST,
            keep_stale=True,
            entry_factory=CoapCacheEntry,
        )
        self.stats = self._store.stats

    def __len__(self) -> int:
        return len(self._store)

    @property
    def capacity(self) -> int:
        return self._store.capacity

    # -- lookups ----------------------------------------------------------

    def lookup(
        self, request: CoapMessage, now: float
    ) -> Tuple[Optional[CoapMessage], Optional[CoapCacheEntry]]:
        """Serve *request* from cache if possible.

        Returns ``(response, entry)``:

        * fresh hit — an aged copy of the response (Max-Age reduced by
          the elapsed time) and the entry;
        * stale hit — ``(None, entry)``; the caller should revalidate
          with the entry's ETag;
        * miss — ``(None, None)``.
        """
        key = cache_key_for(request)
        if key is None:
            return None, None
        entry, state = self._store.lookup(key, now)
        if state is LookupState.HIT:
            aged = entry.response.replace_uint_option(
                OptionNumber.MAX_AGE, entry.remaining(now)
            )
            return aged, entry
        if state is LookupState.STALE:
            return None, entry
        return None, None

    # -- updates ----------------------------------------------------------

    def store(
        self, request: CoapMessage, response: CoapMessage, now: float
    ) -> bool:
        """Cache *response* for *request* if cacheable; returns success."""
        key = cache_key_for(request)
        if key is None or not response.code.is_success:
            return False
        if response.code == Code.VALID:
            return self.refresh(request, response, now) is not None
        max_age = response.max_age
        if max_age is None:
            max_age = DEFAULT_MAX_AGE
        self._store.store(key, response, max_age, now)
        return True

    def refresh(
        self, request: CoapMessage, valid_response: CoapMessage, now: float
    ) -> Optional[CoapMessage]:
        """Apply a 2.03 Valid to the stale entry for *request*.

        Returns the revived full response (with the refreshed Max-Age)
        or ``None`` when no matching entry exists or the ETag differs —
        the failure mode the DoH-like scheme hits in Figure 3 step 4.
        """
        key = cache_key_for(request)
        if key is None:
            return None
        entry = self._store.peek(key)
        if entry is None:
            return None
        new_etag = valid_response.etag
        if new_etag is not None and entry.etag != new_etag:
            self._store.note_validation_failure()
            return None
        max_age = valid_response.max_age
        if max_age is None:
            max_age = DEFAULT_MAX_AGE
        refreshed = entry.response.replace_uint_option(
            OptionNumber.MAX_AGE, max_age
        )
        self._store.refresh(key, now, max_age, value=refreshed)
        return refreshed

    def etags_for(self, request: CoapMessage, now: float) -> List[bytes]:
        """ETags usable to validate a stale entry for *request*."""
        key = cache_key_for(request)
        if key is None:
            return []
        entry = self._store.peek(key)
        if entry is None or entry.etag is None:
            return []
        return [entry.etag]

    def clear(self) -> None:
        self._store.clear()
